//! Facade crate: re-exports the workspace public API for examples and integration tests.
pub use ab;
pub use bitmap;
pub use datagen;
pub use hashkit;
pub use wah;
