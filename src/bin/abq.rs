//! `abq` — build, inspect and query Approximate Bitmap indexes from
//! the command line.
//!
//! ```text
//! abq build --csv data.csv --out index.ab [--bins 10] [--alpha 8]
//!           [--level per-attribute|per-dataset|per-column] [--k N]
//! abq info  --index index.ab
//! abq verify --index index.ab
//! abq query --index index.ab --where attr=LO..HI [--where ...]
//!           [--rows LO..HI] [--limit N]
//! abq serve --csv data.csv [--threads N] [--shards N] [--bins N]
//!           [--alpha N] [--deadline-ms N] [--wah] [--retries N]
//!           [--kernel scalar|batched|simd] [--batch-rows adaptive|N]
//!           [--hier [off|auto|force]] [--hybrid [off|auto|force]]
//!           [--listen HOST:PORT [--max-conns N] [--drain-ms N]
//!            [--trace-dump FILE]]
//! abq store build --csv data.csv --out index.abpg [--shards N]
//!           [--page-size N] [--bins N] [--alpha N] [--level L] [--hier]
//!           [--hybrid]
//! abq store verify --store index.abpg
//! abq store scrub --store index.abpg [--pread] [--csv data.csv ...]
//! abq loadgen --addr HOST:PORT [--conns N] [--secs S]
//!           [--pipeline N | --rps R] [--mix rect,cells,batch]
//!           [--seed N] [--batch-size N] [--deadline-ms N] [--out FILE]
//! abq bench-svc --csv data.csv [--threads N] [--shards N]
//!           [--queries N] [--bins N] [--alpha N] [--retries N]
//!           [--kernel scalar|batched|simd] [--batch-rows adaptive|N]
//! abq bench-report [BENCH_kernel.json BENCH_simd.json ...]
//! ```
//!
//! `build` reads a numeric CSV with a header row, discretizes every
//! column into equi-depth bins, and writes the serialized AB index.
//! `query` evaluates a rectangular query (bin intervals per attribute,
//! optional row range) against the index alone — no access to the
//! original data, the paper's privacy-preserving deployment — and
//! prints the matching row ids (approximate: 100% recall, small
//! controlled false-positive rate).
//! `serve` builds a sharded concurrent [`svc::Service`] over the CSV
//! and answers queries read line by line from stdin — or, with
//! `--listen`, over TCP through the [`net`] front end (ABQ/1 binary
//! framing, pipelined requests, graceful drain on SIGINT/SIGTERM).
//! With `--store FILE` it serves from a crash-safe `ABPG` segment
//! store instead of rebuilding (mmap by default, `--store-pread` for
//! the portable path), and a background scrubber re-verifies the file
//! every `--scrub-ms` (0 disables; add `--csv` to enable online
//! repair, otherwise damaged shards are quarantined into degraded
//! superset answers).
//! `store build|verify|scrub` manage those segment stores: `build`
//! writes one atomically (tmp + fsync + rename), `verify` is the
//! offline integrity audit, `scrub` runs one detect→quarantine→repair
//! pass from the command line.
//! `loadgen` drives a live `--listen` server over real sockets in
//! closed-loop (`--pipeline`) or open-loop (`--rps`) mode and writes
//! client-observed throughput and latency quantiles to a
//! `BENCH_*.json` snapshot.
//! `bench-svc` measures the service's query throughput.
//! `bench-report` folds `BENCH_*.json` snapshots from the repro
//! binaries into one throughput summary (speedups vs scalar), so perf
//! trajectory diffs cleanly across PRs.
//! `verify` checks an `ABIX`/`ABSH` file's per-segment checksums and
//! header sanity without decoding the bit arrays.
//!
//! `serve` and `bench-svc` wrap each query in a bounded retry with
//! decorrelated-jitter backoff ([`mod@svc::retry`]), so transient
//! [`svc::SvcError::Overloaded`] rejections are absorbed instead of
//! surfacing to the caller.

use ab::{AbConfig, AbIndex, Level};
use bitmap::{AttrRange, BinnedTable, Column, EquiDepth, RectQuery, Table};
use std::process::ExitCode;
use svc::{Service, SvcConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("build") => cmd_build(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("store") => cmd_store(&args[1..]),
        Some("loadgen") => cmd_loadgen(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("bench-svc") => cmd_bench_svc(&args[1..]),
        Some("bench-report") => cmd_bench_report(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            print_usage();
            ExitCode::from(2)
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage:\n  abq build --csv FILE --out FILE [--bins N] [--alpha N] \
         [--level L] [--k N] [--precision P]\n  abq info  --index FILE\n  \
         abq verify --index FILE\n  \
         abq query --index FILE [--where ATTR=LO..HI]... [--rows LO..HI] [--limit N]\n  \
         abq serve --csv FILE [--threads N] [--shards N] [--bins N] [--alpha N] \
         [--deadline-ms N] [--wah] [--retries N] [--kernel scalar|batched|simd] \
         [--batch-rows adaptive|N] [--hier [off|auto|force]] \
         [--hybrid [off|auto|force]] \
         [--telemetry-addr HOST:PORT] [--slow-ms N] \
         [--store FILE [--store-pread] [--scrub-ms N]] \
         [--listen HOST:PORT [--max-conns N] [--drain-ms N] [--trace-dump FILE]]\n  \
         abq store build --csv FILE --out FILE [--shards N] [--page-size N] \
         [--bins N] [--alpha N] [--level L] [--hier] [--hybrid]\n  \
         abq store verify --store FILE\n  \
         abq store scrub --store FILE [--pread] [--csv FILE [--bins N] [--alpha N] [--level L]]\n  \
         abq loadgen --addr HOST:PORT [--conns N] [--secs S] [--pipeline N | --rps R] \
         [--mix rect,cells,batch] [--seed N] [--batch-size N] [--deadline-ms N] \
         [--out FILE]\n  \
         abq trace (--addr HOST:PORT | --file DUMP.json)\n  \
         abq bench-svc --csv FILE [--threads N] [--shards N] [--queries N] \
         [--bins N] [--alpha N] [--retries N] [--kernel scalar|batched|simd] \
         [--batch-rows adaptive|N]\n  \
         abq bench-report [BENCH_FILE.json ...]"
    );
}

/// Pulls the value of `--flag` out of an argument list.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.windows(2)
        .find(|w| w[0] == flag)
        .map(|w| w[1].as_str())
}

/// All values of a repeatable `--flag`.
fn flag_values<'a>(args: &'a [String], flag: &str) -> Vec<&'a str> {
    args.windows(2)
        .filter(|w| w[0] == flag)
        .map(|w| w[1].as_str())
        .collect()
}

fn parse_level(s: &str) -> Result<Level, String> {
    match s {
        "per-dataset" => Ok(Level::PerDataset),
        "per-attribute" => Ok(Level::PerAttribute),
        "per-column" => Ok(Level::PerColumn),
        other => Err(format!(
            "unknown level `{other}` (per-dataset | per-attribute | per-column)"
        )),
    }
}

/// Parses `LO..HI` (inclusive bounds) into a pair.
fn parse_range(s: &str) -> Result<(u64, u64), String> {
    let (lo, hi) = s
        .split_once("..")
        .ok_or_else(|| format!("`{s}` is not a LO..HI range"))?;
    let lo: u64 = lo.trim().parse().map_err(|_| format!("bad bound `{lo}`"))?;
    let hi: u64 = hi.trim().parse().map_err(|_| format!("bad bound `{hi}`"))?;
    if lo > hi {
        return Err(format!("empty range {lo}..{hi}"));
    }
    Ok((lo, hi))
}

/// Reads a numeric CSV with a header row into a [`Table`].
fn read_csv(path: &str) -> Result<Table, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or_else(|| format!("{path}: empty file"))?;
    let names: Vec<String> = header.split(',').map(|s| s.trim().to_owned()).collect();
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); names.len()];
    for (lineno, line) in lines.enumerate() {
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != names.len() {
            return Err(format!(
                "{path}: line {}: {} fields, expected {}",
                lineno + 2,
                cells.len(),
                names.len()
            ));
        }
        for (c, cell) in cells.iter().enumerate() {
            let v: f64 = cell
                .trim()
                .parse()
                .map_err(|_| format!("{path}: line {}: `{cell}` is not numeric", lineno + 2))?;
            columns[c].push(v);
        }
    }
    if columns.first().is_none_or(|c| c.is_empty()) {
        return Err(format!("{path}: no data rows"));
    }
    Ok(Table::new(
        names
            .into_iter()
            .zip(columns)
            .map(|(name, values)| Column::new(name, values))
            .collect(),
    ))
}

fn cmd_build(args: &[String]) -> Result<(), String> {
    let csv = flag_value(args, "--csv").ok_or("--csv is required")?;
    let out = flag_value(args, "--out").ok_or("--out is required")?;
    let bins: u32 = flag_value(args, "--bins")
        .unwrap_or("10")
        .parse()
        .map_err(|_| "--bins must be an integer")?;
    let level = parse_level(flag_value(args, "--level").unwrap_or("per-attribute"))?;

    let mut config = AbConfig::new(level);
    if let Some(p) = flag_value(args, "--precision") {
        let p: f64 = p.parse().map_err(|_| "--precision must be a number")?;
        config = config.with_min_precision(p);
    } else {
        let alpha: u64 = flag_value(args, "--alpha")
            .unwrap_or("8")
            .parse()
            .map_err(|_| "--alpha must be an integer")?;
        config = config.with_alpha(alpha);
    }
    if let Some(k) = flag_value(args, "--k") {
        config = config.with_k(k.parse().map_err(|_| "--k must be an integer")?);
    }

    let table = read_csv(csv)?;
    let binned = BinnedTable::from_table(&table, &EquiDepth::new(bins));
    let index = AbIndex::build(&binned, &config);
    let bytes = ab::to_bytes(&index);
    std::fs::write(out, &bytes).map_err(|e| format!("{out}: {e}"))?;
    println!(
        "indexed {} rows x {} attributes into {} ABs ({} bytes) -> {out}",
        table.num_rows(),
        table.num_attributes(),
        index.abs().len(),
        bytes.len(),
    );
    Ok(())
}

fn load_index(args: &[String]) -> Result<AbIndex, String> {
    let path = flag_value(args, "--index").ok_or("--index is required")?;
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    ab::from_bytes(&bytes).map_err(|e| format!("{path}: {e}"))
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let index = load_index(args)?;
    println!(
        "level: {}\nrows: {}\nattributes: {}\nABs: {}\ntotal size: {} bytes",
        index.level(),
        index.num_rows(),
        index.num_attributes(),
        index.abs().len(),
        index.size_bytes(),
    );
    for a in index.attributes() {
        println!("  {} (bins: {})", a.name, a.cardinality);
    }
    if let Some(ab0) = index.abs().first() {
        println!(
            "k: {}, expected FP rate at current load: {:.5}",
            ab0.k(),
            index.expected_fp_rate()
        );
    }
    Ok(())
}

/// `abq verify` — per-segment checksum and header report for an
/// `ABIX` or `ABSH` file, without decoding the bit arrays (fast even
/// on indexes far larger than memory bandwidth would make a full
/// decode). Exits non-zero when any segment is damaged.
fn cmd_verify(args: &[String]) -> Result<(), String> {
    let path = flag_value(args, "--index").ok_or("--index is required")?;
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    let report = ab::verify(&bytes).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "{path}: {} v{}, {} bytes, {} segment(s)",
        report.container,
        report.version,
        bytes.len(),
        report.segments.len()
    );
    for seg in &report.segments {
        let crc = match seg.checksum {
            ab::ChecksumStatus::Ok => "crc ok".to_string(),
            ab::ChecksumStatus::Absent => "crc absent (v1 format)".to_string(),
            ab::ChecksumStatus::Mismatch { stored, computed } => {
                format!("CRC MISMATCH stored {stored:#010x} computed {computed:#010x}")
            }
        };
        match &seg.header {
            Ok(h) => println!(
                "  shard {}: rows {}..{}, {} bytes, {}, level {}, {} attrs, {} ABs",
                seg.shard,
                seg.start_row,
                seg.start_row + h.num_rows,
                seg.byte_len,
                crc,
                h.level,
                h.attributes,
                h.abs
            ),
            Err(e) => println!(
                "  shard {}: start row {}, {} bytes, {}, header unreadable: {e}",
                seg.shard, seg.start_row, seg.byte_len, crc
            ),
        }
    }
    if report.healthy() {
        println!("healthy");
        Ok(())
    } else {
        let bad: Vec<String> = report
            .segments
            .iter()
            .filter(|s| !s.healthy())
            .map(|s| s.shard.to_string())
            .collect();
        Err(format!(
            "{path}: corrupted segment(s) {} — rebuild them from source data",
            bad.join(", ")
        ))
    }
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let index = load_index(args)?;
    let mut ranges = Vec::new();
    for w in flag_values(args, "--where") {
        let (attr_name, range) = w
            .split_once('=')
            .ok_or_else(|| format!("`{w}` is not ATTR=LO..HI"))?;
        let attr = index
            .attributes()
            .iter()
            .position(|a| a.name == attr_name.trim())
            .ok_or_else(|| format!("unknown attribute `{attr_name}`"))?;
        let (lo, hi) = parse_range(range)?;
        let card = index.attributes()[attr].cardinality as u64;
        if hi >= card {
            return Err(format!(
                "bin {hi} out of range for `{attr_name}` (cardinality {card})"
            ));
        }
        ranges.push(AttrRange::new(attr, lo as u32, hi as u32));
    }
    let (row_lo, row_hi) = match flag_value(args, "--rows") {
        Some(r) => {
            let (lo, hi) = parse_range(r)?;
            if hi as usize >= index.num_rows() {
                return Err(format!("row {hi} out of range ({})", index.num_rows()));
            }
            (lo as usize, hi as usize)
        }
        None => (0, index.num_rows() - 1),
    };
    let limit: usize = flag_value(args, "--limit")
        .unwrap_or("50")
        .parse()
        .map_err(|_| "--limit must be an integer")?;

    let query = RectQuery::new(ranges, row_lo, row_hi);
    let (rows, stats) = index.execute_rect_with_stats(&query);
    println!(
        "{} candidate rows ({} cells probed; recall 100%, false positives possible):",
        rows.len(),
        stats.cells_probed
    );
    for r in rows.iter().take(limit) {
        println!("{r}");
    }
    if rows.len() > limit {
        println!("... ({} more; raise --limit)", rows.len() - limit);
    }
    Ok(())
}

/// Presence of a valueless `--flag`.
fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// The `--threads` flag (satellite of the service layer): explicit
/// `N`, or the machine's available parallelism.
fn parse_threads(args: &[String]) -> Result<usize, String> {
    match flag_value(args, "--threads") {
        Some(t) => {
            let n: usize = t.parse().map_err(|_| "--threads must be an integer")?;
            if n == 0 {
                return Err("--threads must be at least 1".into());
            }
            Ok(n)
        }
        None => Ok(std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)),
    }
}

/// The `--kernel` flag: which probe engine shard jobs run on
/// (default batched; results are identical, only throughput differs).
/// `simd` needs the `simd` cargo feature compiled in to differ from
/// `batched` — without it the wave loop degrades to scalar reads.
fn parse_kernel(args: &[String]) -> Result<ab::KernelKind, String> {
    match flag_value(args, "--kernel") {
        Some(k) => k.parse().map_err(|e| format!("--kernel: {e}")),
        None => Ok(ab::KernelKind::default()),
    }
}

/// The `--batch-rows` flag: probe-batch depth policy (default
/// adaptive: sized per query from the AB footprint vs the cache
/// hierarchy).
fn parse_batch_rows(args: &[String]) -> Result<ab::BatchRows, String> {
    match flag_value(args, "--batch-rows") {
        Some(b) => b.parse().map_err(|e| format!("--batch-rows: {e}")),
        None => Ok(ab::BatchRows::default()),
    }
}

/// The `--hier` flag: hierarchical pruning policy. Bare `--hier`
/// means auto (the planner decides per query when descending the
/// pyramid beats a flat scan); `--hier off|auto|force` is explicit.
/// Results are bit-identical either way — only throughput differs.
fn parse_hier(args: &[String]) -> Result<ab::HierMode, String> {
    match args.iter().position(|a| a == "--hier") {
        None => Ok(ab::HierMode::Off),
        // The mode operand is optional, so only consume the next
        // token when it actually names a mode (`--hier --listen ...`
        // must not eat `--listen`).
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some("off") => Ok(ab::HierMode::Off),
            Some("auto") | None => Ok(ab::HierMode::Auto),
            Some("force") => Ok(ab::HierMode::Force),
            Some(_) => Ok(ab::HierMode::Auto),
        },
    }
}

/// The `--hybrid` flag: hybrid exact-tier policy. Bare `--hybrid`
/// means auto (queries touching exact-backed bins answer them from
/// Roaring containers — zero hash probes, zero false positives — and
/// fall back to the AB elsewhere); `--hybrid off|auto|force` is
/// explicit. Which bins get exact backing is the planner's
/// calibrated split decision (`AB_HYBRID` overrides it).
fn parse_hybrid(args: &[String]) -> Result<ab::HybridMode, String> {
    match args.iter().position(|a| a == "--hybrid") {
        None => Ok(ab::HybridMode::Off),
        // As with --hier, the mode operand is optional: only consume
        // the next token when it names a mode.
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some("off") => Ok(ab::HybridMode::Off),
            Some("auto") | None => Ok(ab::HybridMode::Auto),
            Some("force") => Ok(ab::HybridMode::Force),
            Some(_) => Ok(ab::HybridMode::Auto),
        },
    }
}

/// Retry policy for the `serve`/`bench-svc` query paths: up to
/// `--retries` attempts (default 4; 1 disables retrying) with
/// decorrelated-jitter backoff against transient overload.
fn parse_retry_policy(args: &[String]) -> Result<svc::RetryPolicy, String> {
    let attempts: usize = flag_value(args, "--retries")
        .unwrap_or("4")
        .parse()
        .map_err(|_| "--retries must be an integer")?;
    if attempts == 0 {
        return Err("--retries must be at least 1".into());
    }
    Ok(svc::RetryPolicy {
        max_attempts: attempts,
        ..svc::RetryPolicy::default()
    })
}

/// Shared `--csv`/`--bins`/`--alpha`/`--level` parsing: CSV → binned
/// table + AB build config (the inputs a store repair needs too).
fn binned_and_config(args: &[String]) -> Result<(BinnedTable, AbConfig), String> {
    let csv = flag_value(args, "--csv").ok_or("--csv is required")?;
    let bins: u32 = flag_value(args, "--bins")
        .unwrap_or("10")
        .parse()
        .map_err(|_| "--bins must be an integer")?;
    let alpha: u64 = flag_value(args, "--alpha")
        .unwrap_or("8")
        .parse()
        .map_err(|_| "--alpha must be an integer")?;
    let level = parse_level(flag_value(args, "--level").unwrap_or("per-attribute"))?;
    let table = read_csv(csv)?;
    Ok((
        BinnedTable::from_table(&table, &EquiDepth::new(bins)),
        AbConfig::new(level).with_alpha(alpha),
    ))
}

/// Shared setup for `serve` and `bench-svc`: CSV → binned table →
/// sharded service. Prints the chosen shard/thread split.
fn build_service(args: &[String], with_wah: bool) -> Result<Service, String> {
    let (binned, config) = binned_and_config(args)?;
    let threads = parse_threads(args)?;
    let shards: usize = match flag_value(args, "--shards") {
        Some(s) => s.parse().map_err(|_| "--shards must be an integer")?,
        None => 0,
    };
    let default_deadline = match flag_value(args, "--deadline-ms") {
        Some(ms) => Some(std::time::Duration::from_millis(
            ms.parse().map_err(|_| "--deadline-ms must be an integer")?,
        )),
        None => None,
    };

    let kernel = parse_kernel(args)?;
    let batch_rows = parse_batch_rows(args)?;
    let slow_query = match flag_value(args, "--slow-ms") {
        Some(ms) => Some(std::time::Duration::from_millis(
            ms.parse().map_err(|_| "--slow-ms must be an integer")?,
        )),
        None => None,
    };

    let cfg = SvcConfig {
        threads,
        shards,
        default_deadline,
        with_wah,
        kernel,
        batch_rows,
        slow_query,
        hier: parse_hier(args)?,
        hybrid: parse_hybrid(args)?,
        ..SvcConfig::default()
    };
    let svc = Service::build(&binned, &config, &cfg);
    println!(
        "ready: {} rows x {} attributes, {} shards on {} threads ({} AB bytes, {} kernel)",
        svc.index().num_rows(),
        svc.index().attributes().len(),
        svc.index().num_shards(),
        svc.threads(),
        svc.index().size_bytes(),
        svc.kernel(),
    );
    Ok(svc)
}

/// `serve --store`: ABPG file → sharded index → service, plus the
/// background scrubber (interval `--scrub-ms`, default 5000; 0
/// disables). With `--csv` the scrubber repairs damage in place;
/// without it, damaged shards are quarantined into degraded answers.
fn build_service_from_store(
    args: &[String],
    path: &str,
) -> Result<(Service, Option<svc::Scrubber>), String> {
    let st = store::Store::open_with(std::path::Path::new(path), has_flag(args, "--store-pread"))
        .map_err(|e| format!("{path}: {e}"))?;
    let index = svc::ShardedIndex::from_bytes(st.payload()).map_err(|e| format!("{path}: {e}"))?;
    let default_deadline = match flag_value(args, "--deadline-ms") {
        Some(ms) => Some(std::time::Duration::from_millis(
            ms.parse().map_err(|_| "--deadline-ms must be an integer")?,
        )),
        None => None,
    };
    let slow_query = match flag_value(args, "--slow-ms") {
        Some(ms) => Some(std::time::Duration::from_millis(
            ms.parse().map_err(|_| "--slow-ms must be an integer")?,
        )),
        None => None,
    };
    let cfg = SvcConfig {
        threads: parse_threads(args)?,
        shards: index.num_shards(),
        default_deadline,
        kernel: parse_kernel(args)?,
        batch_rows: parse_batch_rows(args)?,
        slow_query,
        // Old (pre-pyramid) segments are fine: Service::from_index
        // rebuilds the pyramid per shard when hier is requested.
        // Hybrid containers however live in the segment itself (v4
        // ABIX built with `store build --hybrid`); the flag only
        // controls whether the kernel consults them.
        hier: parse_hier(args)?,
        hybrid: parse_hybrid(args)?,
        ..SvcConfig::default()
    };
    let svc = Service::from_index(index, &cfg);
    println!(
        "ready: {} rows x {} attributes, {} shards on {} threads \
         ({} AB bytes, {} kernel, {} store {path})",
        svc.index().num_rows(),
        svc.index().attributes().len(),
        svc.index().num_shards(),
        svc.threads(),
        svc.index().size_bytes(),
        svc.kernel(),
        st.backend(),
    );
    let scrub_ms: u64 = flag_value(args, "--scrub-ms")
        .unwrap_or("5000")
        .parse()
        .map_err(|_| "--scrub-ms must be an integer")?;
    let scrubber = if scrub_ms == 0 {
        None
    } else {
        let repair = match flag_value(args, "--csv") {
            Some(_) => {
                let (table, config) = binned_and_config(args)?;
                Some(svc::RepairSource { table, config })
            }
            None => None,
        };
        let with_repair = repair.is_some();
        let s = svc::Scrubber::spawn(
            st,
            svc.health_arc(),
            repair,
            std::time::Duration::from_millis(scrub_ms),
            std::sync::Arc::new(store::RealIo),
        )
        .map_err(|e| format!("scrubber: {e}"))?;
        println!(
            "scrubbing every {scrub_ms} ms ({})",
            if with_repair {
                "online repair enabled"
            } else {
                "quarantine only; pass --csv to enable repair"
            }
        );
        Some(s)
    };
    Ok((svc, scrubber))
}

/// Parses one REPL line into a query: whitespace-separated
/// `ATTR=LO..HI` terms plus an optional `rows LO..HI` pair.
fn parse_repl_query(line: &str, svc: &Service) -> Result<RectQuery, String> {
    let mut ranges = Vec::new();
    let mut rows = None;
    let mut tokens = line.split_whitespace().peekable();
    while let Some(tok) = tokens.next() {
        if tok == "rows" {
            let spec = tokens.next().ok_or("`rows` needs a LO..HI range")?;
            let (lo, hi) = parse_range(spec)?;
            if hi as usize >= svc.index().num_rows() {
                return Err(format!(
                    "row {hi} out of range ({})",
                    svc.index().num_rows()
                ));
            }
            rows = Some((lo as usize, hi as usize));
        } else {
            let (attr_name, range) = tok
                .split_once('=')
                .ok_or_else(|| format!("`{tok}` is not ATTR=LO..HI"))?;
            let attr = svc
                .index()
                .attributes()
                .iter()
                .position(|a| a.name == attr_name.trim())
                .ok_or_else(|| format!("unknown attribute `{attr_name}`"))?;
            let (lo, hi) = parse_range(range)?;
            let card = svc.index().attributes()[attr].cardinality as u64;
            if hi >= card {
                return Err(format!(
                    "bin {hi} out of range for `{attr_name}` (cardinality {card})"
                ));
            }
            ranges.push(AttrRange::new(attr, lo as u32, hi as u32));
        }
    }
    let (row_lo, row_hi) = rows.unwrap_or((0, svc.index().num_rows() - 1));
    Ok(RectQuery::new(ranges, row_lo, row_hi))
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let wah = has_flag(args, "--wah");
    // `--store` serves from a crash-safe ABPG file instead of
    // rebuilding from CSV; the scrubber handle must stay alive for
    // the whole serve (dropping it stops the background verification).
    let (svc, scrubber) = match flag_value(args, "--store") {
        Some(path) => {
            if wah {
                return Err("--wah needs an in-memory build (drop --store)".into());
            }
            build_service_from_store(args, path)?
        }
        None => (build_service(args, wah)?, None),
    };
    let store_status = scrubber.as_ref().map(|s| s.status());
    let policy = parse_retry_policy(args)?;
    let limit: usize = flag_value(args, "--limit")
        .unwrap_or("20")
        .parse()
        .map_err(|_| "--limit must be an integer")?;
    let deadline_ms: Option<u64> = match flag_value(args, "--deadline-ms") {
        Some(ms) => Some(ms.parse().map_err(|_| "--deadline-ms must be an integer")?),
        None => None,
    };
    // Caller-owned RequestCtx bypasses the service's default deadline,
    // so the REPL re-applies --deadline-ms per attempt itself.
    let mk_deadline = || match deadline_ms {
        Some(ms) => svc::Deadline::within(std::time::Duration::from_millis(ms)),
        None => svc::Deadline::none(),
    };
    // Keep the handle alive for the whole REPL; dropping it stops the
    // endpoint.
    let _telemetry = match flag_value(args, "--telemetry-addr") {
        Some(addr) => {
            // Surface the exact tier's per-shard split in /healthz
            // whenever any shard actually carries containers.
            let split = svc.index().hybrid_split_stats();
            let hybrid_status = split
                .iter()
                .any(|s| s.is_some())
                .then(|| std::sync::Arc::new(svc::HybridStatus::new(split)));
            let srv = svc::TelemetryServer::bind_with_status(
                addr,
                svc.health_arc(),
                store_status.clone(),
                hybrid_status,
            )
            .map_err(|e| format!("telemetry bind {addr}: {e}"))?;
            println!(
                "telemetry: http://{}/metrics /healthz /debug/traces",
                srv.local_addr()
            );
            Some(srv)
        }
        None => None,
    };
    // `--listen` swaps the stdin REPL for the TCP front end; the
    // telemetry handle (if any) stays alive for the server's lifetime.
    if let Some(listen) = flag_value(args, "--listen") {
        return serve_listen(args, svc, listen);
    }
    println!("query syntax: ATTR=LO..HI [ATTR=LO..HI ...] [rows LO..HI]; `quit` to exit");
    let stdin = std::io::stdin();
    let mut line = String::new();
    let mut served = 0u64;
    loop {
        line.clear();
        if std::io::BufRead::read_line(&mut stdin.lock(), &mut line).map_err(|e| e.to_string())?
            == 0
        {
            break; // EOF
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if trimmed == "quit" || trimmed == "exit" {
            break;
        }
        served += 1;
        match parse_repl_query(trimmed, &svc).map(|q| {
            // One caller-owned trace per REPL query: every retry
            // attempt lands in the same span tree (a failed attempt
            // cancels its RequestCtx, so each attempt gets a fresh
            // ctx carrying the same trace).
            let trace = obs::TraceCtx::start(if wah { "rect_wah" } else { "rect" });
            let out = svc::retry_traced(&policy, served, &trace, |_| {
                let ctx = svc::RequestCtx::traced(mk_deadline(), trace.clone());
                if wah {
                    svc.query_rect_wah_ctx(&q, &ctx)
                } else {
                    svc.query_rect_ctx(&q, &ctx)
                }
            });
            svc.finish_trace(&trace);
            out
        }) {
            Ok(Ok(matches)) => {
                println!("{} rows", matches.len());
                for r in matches.iter().take(limit) {
                    println!("{r}");
                }
                if matches.len() > limit {
                    println!("... ({} more; raise --limit)", matches.len() - limit);
                }
            }
            Ok(Err(e)) => println!("error: {e}"),
            Err(e) => println!("error: {e}"),
        }
    }
    Ok(())
}

/// `abq serve --listen` — the TCP front end: binds the [`net`] event
/// loop over the freshly built service and parks until SIGINT/SIGTERM,
/// then drains gracefully (stop accepting, answer everything already
/// admitted, bounded by `--drain-ms`) and exits 0.
fn serve_listen(args: &[String], svc: Service, listen: &str) -> Result<(), String> {
    let drain_ms: u64 = flag_value(args, "--drain-ms")
        .unwrap_or("2000")
        .parse()
        .map_err(|_| "--drain-ms must be an integer")?;
    let mut cfg = net::NetConfig::default();
    if let Some(n) = flag_value(args, "--max-conns") {
        cfg.max_connections = n.parse().map_err(|_| "--max-conns must be an integer")?;
    }
    if let Some(ms) = flag_value(args, "--deadline-ms") {
        cfg.default_deadline_ms = ms.parse().map_err(|_| "--deadline-ms must be an integer")?;
    }
    let server = net::NetServer::bind(listen, std::sync::Arc::new(svc), cfg)
        .map_err(|e| format!("listen {listen}: {e}"))?;
    println!(
        "listening on {} ({} backend); SIGINT/SIGTERM drains and exits",
        server.local_addr(),
        server.backend()
    );
    net::sys::signal::install_shutdown_handler();
    while !net::sys::signal::shutdown_requested() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    println!("shutdown requested; draining (up to {drain_ms} ms)");
    server.shutdown(std::time::Duration::from_millis(drain_ms));
    // The flight recorder still holds the last traces after the
    // listener is gone; --trace-dump persists them for `abq trace`.
    if let Some(path) = flag_value(args, "--trace-dump") {
        std::fs::write(path, obs::recorder().to_json()).map_err(|e| format!("{path}: {e}"))?;
        println!("wrote trace dump to {path}");
    }
    println!("drained; exiting");
    Ok(())
}

/// `abq store` — manage crash-safe `ABPG` segment stores.
fn cmd_store(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("build") => cmd_store_build(&args[1..]),
        Some("verify") => cmd_store_verify(&args[1..]),
        Some("scrub") => cmd_store_scrub(&args[1..]),
        Some(other) => Err(format!(
            "unknown store subcommand `{other}` (build | verify | scrub)"
        )),
        None => Err("store needs a subcommand: build | verify | scrub".into()),
    }
}

/// `abq store build` — CSV → sharded index → atomically written
/// `ABPG` store (tmp + fsync + rename, page CRCs throughout).
fn cmd_store_build(args: &[String]) -> Result<(), String> {
    let out = flag_value(args, "--out").ok_or("--out is required")?;
    let (binned, config) = binned_and_config(args)?;
    let shards: usize = match flag_value(args, "--shards") {
        Some(s) => {
            let n = s.parse().map_err(|_| "--shards must be an integer")?;
            if n == 0 {
                return Err("--shards must be at least 1".into());
            }
            n
        }
        None => SvcConfig::default().resolved_shards(binned.num_rows()),
    };
    let page_size: u32 = match flag_value(args, "--page-size") {
        Some(p) => p.parse().map_err(|_| "--page-size must be an integer")?,
        None => store::DEFAULT_PAGE_SIZE,
    };
    let mut index = svc::ShardedIndex::build(&binned, &config, shards, false);
    let hier = parse_hier(args)? != ab::HierMode::Off;
    if hier {
        // Persist the pruning pyramid alongside each shard (ABIX v3
        // pages in the segment); serving later needs no rebuild.
        index.ensure_hier(&ab::HierConfig::default());
    }
    let hybrid = has_flag(args, "--hybrid");
    if hybrid {
        // Persist the planner-split exact tier alongside each shard
        // (ABIX v4 pages): Roaring containers for the hot bins, built
        // here once so serving can answer them with zero hash probes
        // and zero false positives without the source table.
        index.ensure_hybrid(&binned, &ab::HybridConfig::default());
    }
    let payload = index.to_bytes();
    store::write(
        std::path::Path::new(out),
        &payload,
        page_size,
        &store::RealIo,
    )
    .map_err(|e| format!("{out}: {e}"))?;
    let hybrid_note = if hybrid {
        let (bins, bytes) = index
            .hybrid_split_stats()
            .iter()
            .flatten()
            .fold((0usize, 0usize), |(b, sz), (backed, _, s)| {
                (b + backed, sz + s)
            });
        format!(", hybrid containers: {bins} exact-backed bins, {bytes} bytes")
    } else {
        String::new()
    };
    println!(
        "stored {} rows x {} attributes as {} shard(s), {} payload bytes \
         ({}-byte pages{}{hybrid_note}) -> {out}",
        index.num_rows(),
        index.attributes().len(),
        index.num_shards(),
        payload.len(),
        page_size,
        if hier { ", hier pyramids" } else { "" },
    );
    Ok(())
}

/// `abq store verify` — offline integrity audit: header, meta-page
/// padding, CRC table, and every payload page, without deserializing
/// the index. Exits non-zero on any damage.
fn cmd_store_verify(args: &[String]) -> Result<(), String> {
    let path = flag_value(args, "--store").ok_or("--store is required")?;
    let (header, report) =
        store::Store::audit(std::path::Path::new(path)).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "{path}: ABPG v{}, {} payload bytes in {} page(s) of {} bytes, {} shard(s)",
        header.version,
        header.payload_len,
        header.payload_pages(),
        header.page_size,
        header.shard_count,
    );
    println!("scanned {} page(s)", report.pages_scanned);
    if report.clean() {
        println!("healthy");
        Ok(())
    } else {
        Err(format!(
            "{path}: {} damaged page(s) {:?} implicating shard(s) {:?} — \
             run `abq store scrub --csv ...` to repair, or rebuild",
            report.bad_pages.len(),
            report.bad_pages,
            report.bad_shards,
        ))
    }
}

/// `abq store scrub` — one online scrub pass from the CLI: open the
/// store (mmap, or `--pread`), verify every page, and — when the
/// original CSV and build flags are supplied — rewrite the file
/// bit-identically through the same atomic protocol `build` uses.
fn cmd_store_scrub(args: &[String]) -> Result<(), String> {
    let path = flag_value(args, "--store").ok_or("--store is required")?;
    let p = std::path::Path::new(path);
    let force_pread = has_flag(args, "--pread");
    let repair = match flag_value(args, "--csv") {
        Some(_) => {
            let (table, config) = binned_and_config(args)?;
            Some(svc::RepairSource { table, config })
        }
        None => None,
    };
    let mut st = match store::Store::open_with(p, force_pread) {
        Ok(st) => st,
        Err(store::StoreError::Io(e)) => return Err(format!("{path}: {e}")),
        // Typed corruption is already visible at open (a live service
        // only hits the scrub_pass path for rot that lands *after* a
        // clean open). From the CLI the equivalent repair is a full
        // rebuild from the source data, under the file's own geometry
        // when the header still reads.
        Err(e) => {
            let Some(repair) = repair else {
                return Err(format!(
                    "{path}: {e} — pass --csv (and matching build flags) to rebuild in place"
                ));
            };
            return rebuild_store(p, path, &repair, force_pread);
        }
    };
    let health = svc::ShardHealth::new(st.num_shards());
    let status = svc::StoreStatus::new(st.backend());
    let outcome = svc::scrub_pass(&mut st, &health, repair.as_ref(), &status, &store::RealIo)
        .map_err(|e| format!("{path}: scrub pass: {e}"))?;
    println!(
        "scanned {} page(s) ({} backend)",
        status.pages_scanned(),
        status.backend()
    );
    match outcome {
        svc::PassOutcome::Clean => {
            println!("healthy");
            Ok(())
        }
        svc::PassOutcome::Repaired(shards) => {
            println!("repaired shard(s) {shards:?}; store rewritten and re-verified");
            Ok(())
        }
        svc::PassOutcome::Degraded(shards) => Err(format!(
            "{path}: damage implicating shard(s) {shards:?}{}",
            if repair.is_some() {
                " — repair failed; rebuild from source data"
            } else {
                " — pass --csv (and matching build flags) to repair in place"
            }
        )),
    }
}

/// Full rebuild for a store too damaged to open: re-index the source
/// table and rewrite through the atomic protocol, preserving the
/// file's shard count and page size when its header is still intact
/// (a deterministic build ⇒ a bit-identical file).
fn rebuild_store(
    p: &std::path::Path,
    path: &str,
    repair: &svc::RepairSource,
    force_pread: bool,
) -> Result<(), String> {
    let (shards, page_size) = match store::Store::audit(p) {
        Ok((h, _)) => (h.shard_count as usize, h.page_size),
        Err(_) => (
            SvcConfig::default().resolved_shards(repair.table.num_rows()),
            store::DEFAULT_PAGE_SIZE,
        ),
    };
    let index = svc::ShardedIndex::build(&repair.table, &repair.config, shards, false);
    store::write(p, &index.to_bytes(), page_size, &store::RealIo)
        .map_err(|e| format!("{path}: rewrite: {e}"))?;
    store::Store::open_with(p, force_pread)
        .map_err(|e| format!("{path}: re-verify after rebuild: {e}"))?;
    println!("rebuilt {path} from source data ({shards} shard(s), {page_size}-byte pages)");
    Ok(())
}

/// Parses `--mix`: comma-separated kinds with optional `:weight`
/// (`rect`, `rect,batch`, `rect:3,cells:1`).
fn parse_mix(s: &str) -> Result<net::loadgen::Mix, String> {
    let mut mix = net::loadgen::Mix {
        rect: 0,
        cells: 0,
        batch: 0,
    };
    for part in s.split(',') {
        let (kind, weight) = match part.split_once(':') {
            Some((k, w)) => (
                k.trim(),
                w.trim()
                    .parse::<u32>()
                    .map_err(|_| format!("bad weight in `{part}`"))?,
            ),
            None => (part.trim(), 1),
        };
        match kind {
            "rect" => mix.rect += weight,
            "cells" => mix.cells += weight,
            "batch" => mix.batch += weight,
            other => return Err(format!("unknown kind `{other}` (rect | cells | batch)")),
        }
    }
    if mix.rect + mix.cells + mix.batch == 0 {
        return Err("--mix needs at least one nonzero weight".into());
    }
    Ok(mix)
}

/// `abq loadgen` — drives a live `--listen` server over real sockets
/// and writes client-observed rps + latency quantiles to a
/// `BENCH_*.json` snapshot for `abq bench-report`.
fn cmd_loadgen(args: &[String]) -> Result<(), String> {
    let addr = flag_value(args, "--addr").ok_or("--addr is required")?;
    let conns: usize = flag_value(args, "--conns")
        .unwrap_or("1")
        .parse()
        .map_err(|_| "--conns must be an integer")?;
    let secs: f64 = flag_value(args, "--secs")
        .unwrap_or("5")
        .parse()
        .map_err(|_| "--secs must be a number")?;
    if !secs.is_finite() || secs <= 0.0 {
        return Err("--secs must be positive".into());
    }
    // `--rps` selects the open loop (fixed arrival rate, coordinated-
    // omission-corrected latency); otherwise closed loop with a
    // per-connection pipeline window.
    let mode = match (flag_value(args, "--rps"), flag_value(args, "--pipeline")) {
        (Some(_), Some(_)) => return Err("pass --rps or --pipeline, not both".into()),
        (Some(r), None) => net::loadgen::Mode::Open {
            rps: r.parse().map_err(|_| "--rps must be a number")?,
        },
        (None, p) => net::loadgen::Mode::Closed {
            pipeline: p
                .unwrap_or("1")
                .parse()
                .map_err(|_| "--pipeline must be an integer")?,
        },
    };
    let cfg = net::loadgen::LoadgenConfig {
        addr: addr.to_string(),
        conns: conns.max(1),
        duration: std::time::Duration::from_secs_f64(secs),
        mode,
        mix: parse_mix(flag_value(args, "--mix").unwrap_or("rect"))?,
        seed: flag_value(args, "--seed")
            .unwrap_or("42")
            .parse()
            .map_err(|_| "--seed must be an integer")?,
        batch_size: flag_value(args, "--batch-size")
            .unwrap_or("8")
            .parse()
            .map_err(|_| "--batch-size must be an integer")?,
        deadline_ms: flag_value(args, "--deadline-ms")
            .unwrap_or("0")
            .parse()
            .map_err(|_| "--deadline-ms must be an integer")?,
    };
    let report = net::loadgen::run(&cfg).map_err(|e| format!("loadgen against {addr}: {e}"))?;

    println!(
        "{} ok, {} error frame(s) ({} shed), {} transport error(s), {} reconnect(s) \
         in {:.3}s -> {:.0} req/s ({} conns, {})",
        report.total_ok,
        report.total_errors,
        report.total_shed,
        report.transport_errors,
        report.reconnects,
        report.elapsed.as_secs_f64(),
        report.rps,
        cfg.conns,
        match cfg.mode {
            net::loadgen::Mode::Closed { pipeline } => format!("closed loop, pipeline {pipeline}"),
            net::loadgen::Mode::Open { rps } => format!("open loop, {rps:.0} req/s target"),
        },
    );
    println!("kind    ok        err       shed      p50 µs    p95 µs    p99 µs    p999 µs");
    for k in &report.kinds {
        println!(
            "{:<6}  {:<8}  {:<8}  {:<8}  {:<8}  {:<8}  {:<8}  {:<8}",
            k.kind, k.ok, k.errors, k.shed, k.p50, k.p95, k.p99, k.p999
        );
    }

    // Snapshot keys follow the grammar `bench-report` folds:
    // net.rps.<kind>.conns<N>, net.latency_us.<kind>.conns<N>.<p>, and
    // the reliability counts net.errors/shed.<kind>.conns<N> +
    // net.transport_errors/reconnects.conns<N>.
    let out = flag_value(args, "--out").unwrap_or("BENCH_net.json");
    let mut snap = obs::global()
        .snapshot()
        .with_extra(&format!("net.total_rps.conns{conns}"), report.rps)
        .with_extra(
            &format!("net.transport_errors.conns{conns}"),
            report.transport_errors as f64,
        )
        .with_extra(
            &format!("net.reconnects.conns{conns}"),
            report.reconnects as f64,
        );
    for k in &report.kinds {
        let secs = report.elapsed.as_secs_f64().max(1e-9);
        snap = snap.with_extra(
            &format!("net.rps.{}.conns{conns}", k.kind),
            k.ok as f64 / secs,
        );
        snap = snap
            .with_extra(
                &format!("net.errors.{}.conns{conns}", k.kind),
                k.errors as f64,
            )
            .with_extra(&format!("net.shed.{}.conns{conns}", k.kind), k.shed as f64);
        let base = format!("net.latency_us.{}.conns{conns}", k.kind);
        snap = snap
            .with_extra(&format!("{base}.p50"), k.p50 as f64)
            .with_extra(&format!("{base}.p95"), k.p95 as f64)
            .with_extra(&format!("{base}.p99"), k.p99 as f64)
            .with_extra(&format!("{base}.p999"), k.p999 as f64);
    }
    std::fs::write(out, snap.to_json()).map_err(|e| format!("{out}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}

/// `abq trace` — fetch (or read from a file) a `/debug/traces` dump
/// and pretty-print each trace's span tree.
fn cmd_trace(args: &[String]) -> Result<(), String> {
    let dump = match (flag_value(args, "--addr"), flag_value(args, "--file")) {
        (Some(addr), None) => http_get(addr, "/debug/traces")?,
        (None, Some(path)) => std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?,
        _ => return Err("pass exactly one of --addr HOST:PORT or --file DUMP.json".into()),
    };
    let traces = obs::parse_dump(&dump)?;
    if traces.is_empty() {
        println!("no traces recorded yet");
        return Ok(());
    }
    for t in &traces {
        print!("{}", t.render_tree());
    }
    println!("{} trace(s)", traces.len());
    Ok(())
}

/// Minimal HTTP/1.0 GET against the telemetry endpoint; returns the
/// response body.
fn http_get(addr: &str, path: &str) -> Result<String, String> {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).map_err(|e| format!("{addr}: {e}"))?;
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .map_err(|e| e.to_string())?;
    write!(stream, "GET {path} HTTP/1.0\r\nHost: {addr}\r\n\r\n").map_err(|e| e.to_string())?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| e.to_string())?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("{addr}: malformed HTTP response"))?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains("200") {
        return Err(format!("{addr}{path}: {status}"));
    }
    Ok(body.to_string())
}

fn cmd_bench_svc(args: &[String]) -> Result<(), String> {
    let svc = build_service(args, false)?;
    let policy = parse_retry_policy(args)?;
    let queries: usize = flag_value(args, "--queries")
        .unwrap_or("200")
        .parse()
        .map_err(|_| "--queries must be an integer")?;
    let num_rows = svc.index().num_rows();
    let attrs = svc.index().attributes();

    // Deterministic query mix: vary the constrained attribute, the bin
    // window, and the row interval per query.
    let workload: Vec<RectQuery> = (0..queries)
        .map(|i| {
            let a = i % attrs.len();
            let card = attrs[a].cardinality;
            let lo = (hashkit::splitmix64(i as u64) % card as u64) as u32;
            let hi = (lo + card / 2).min(card - 1);
            let rl = (hashkit::splitmix64(i as u64 ^ 0xBEEF) % num_rows as u64) as usize;
            RectQuery::new(
                vec![AttrRange::new(a, lo, hi)],
                rl.min(num_rows - 1),
                num_rows - 1,
            )
        })
        .collect();

    let started = std::time::Instant::now();
    let mut total_matches = 0usize;
    for (i, q) in workload.iter().enumerate() {
        total_matches += svc::retry(&policy, i as u64, |_| svc.query_rect(q))
            .map_err(|e| e.to_string())?
            .len();
    }
    let elapsed = started.elapsed();
    let rps = queries as f64 / elapsed.as_secs_f64();
    println!(
        "{queries} queries in {:.3}s -> {rps:.0} req/s ({} threads, {} shards, {} total matches)",
        elapsed.as_secs_f64(),
        svc.threads(),
        svc.index().num_shards(),
        total_matches,
    );
    Ok(())
}

/// `abq bench-report [FILES...]` — folds `BENCH_*.json` snapshots into
/// one throughput summary. With no arguments it reads every
/// `BENCH_*.json` in the current directory.
fn cmd_bench_report(args: &[String]) -> Result<(), String> {
    let paths: Vec<std::path::PathBuf> = if args.is_empty() {
        let mut found: Vec<std::path::PathBuf> = std::fs::read_dir(".")
            .map_err(|e| e.to_string())?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            })
            .collect();
        found.sort();
        if found.is_empty() {
            return Err("no BENCH_*.json files in the current directory \
                        (run the repro binaries first, or pass paths)"
                .into());
        }
        found
    } else {
        args.iter().map(std::path::PathBuf::from).collect()
    };
    // A malformed snapshot fails the whole command (nonzero exit)
    // rather than silently vanishing from the report.
    print!("{}", bench::bench_report(&paths)?);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flag_parsing() {
        let args = strings(&["--csv", "a.csv", "--out", "x.ab"]);
        assert_eq!(flag_value(&args, "--csv"), Some("a.csv"));
        assert_eq!(flag_value(&args, "--nope"), None);
    }

    #[test]
    fn repeatable_flags() {
        let args = strings(&["--where", "a=0..1", "--where", "b=2..3"]);
        assert_eq!(flag_values(&args, "--where"), vec!["a=0..1", "b=2..3"]);
    }

    #[test]
    fn range_parsing() {
        assert_eq!(parse_range("3..7"), Ok((3, 7)));
        assert!(parse_range("7..3").is_err());
        assert!(parse_range("x..3").is_err());
        assert!(parse_range("37").is_err());
    }

    #[test]
    fn level_parsing() {
        assert_eq!(parse_level("per-column"), Ok(Level::PerColumn));
        assert!(parse_level("nope").is_err());
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("abq_test_csv");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        std::fs::write(&path, "x,y\n1.0,2.0\n3.5,4.5\n").unwrap();
        let t = read_csv(path.to_str().unwrap()).unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.column_by_name("y").unwrap().values, vec![2.0, 4.5]);
    }

    #[test]
    fn csv_rejects_ragged_rows() {
        let dir = std::env::temp_dir().join("abq_test_csv2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.csv");
        std::fs::write(&path, "x,y\n1.0\n").unwrap();
        assert!(read_csv(path.to_str().unwrap()).is_err());
    }

    fn tiny_service() -> Service {
        let t = Table::new(vec![
            Column::new("price", (0..200).map(|i| (i % 50) as f64).collect()),
            Column::new("qty", (0..200).map(|i| (i % 9) as f64).collect()),
        ]);
        let binned = BinnedTable::from_table(&t, &EquiDepth::new(5));
        Service::build(
            &binned,
            &AbConfig::new(Level::PerAttribute).with_alpha(8),
            &SvcConfig {
                threads: 2,
                shards: 4,
                ..SvcConfig::default()
            },
        )
    }

    #[test]
    fn repl_query_parsing() {
        let svc = tiny_service();
        let q = parse_repl_query("price=0..2 qty=1..1 rows 10..99", &svc).unwrap();
        assert_eq!(q.ranges.len(), 2);
        assert_eq!(q.ranges[0], AttrRange::new(0, 0, 2));
        assert_eq!(q.ranges[1], AttrRange::new(1, 1, 1));
        assert_eq!((q.row_lo, q.row_hi), (10, 99));
        // Defaults to the full row range.
        let q = parse_repl_query("price=0..4", &svc).unwrap();
        assert_eq!((q.row_lo, q.row_hi), (0, 199));
        assert!(parse_repl_query("nope=0..1", &svc).is_err());
        assert!(parse_repl_query("price=0..9", &svc).is_err());
        assert!(parse_repl_query("rows 0..500", &svc).is_err());
        assert!(parse_repl_query("price0..2", &svc).is_err());
    }

    #[test]
    fn threads_flag_parses_and_defaults() {
        assert_eq!(parse_threads(&strings(&["--threads", "4"])), Ok(4));
        assert!(parse_threads(&strings(&["--threads", "0"])).is_err());
        assert!(parse_threads(&strings(&["--threads", "x"])).is_err());
        assert!(parse_threads(&strings(&[])).unwrap() >= 1);
        assert!(has_flag(&strings(&["--wah"]), "--wah"));
        assert!(!has_flag(&strings(&[]), "--wah"));
    }

    #[test]
    fn kernel_flag_parses_and_defaults() {
        assert_eq!(
            parse_kernel(&strings(&["--kernel", "scalar"])),
            Ok(ab::KernelKind::Scalar)
        );
        assert_eq!(
            parse_kernel(&strings(&["--kernel", "batched"])),
            Ok(ab::KernelKind::Batched)
        );
        assert_eq!(
            parse_kernel(&strings(&["--kernel", "simd"])),
            Ok(ab::KernelKind::Simd)
        );
        assert_eq!(parse_kernel(&strings(&[])), Ok(ab::KernelKind::Batched));
        let err = parse_kernel(&strings(&["--kernel", "turbo"])).unwrap_err();
        assert!(err.contains("scalar|batched|simd"), "{err}");
    }

    #[test]
    fn batch_rows_flag_parses_and_defaults() {
        assert_eq!(
            parse_batch_rows(&strings(&["--batch-rows", "adaptive"])),
            Ok(ab::BatchRows::Adaptive)
        );
        assert_eq!(
            parse_batch_rows(&strings(&["--batch-rows", "128"])),
            Ok(ab::BatchRows::Fixed(128))
        );
        assert_eq!(parse_batch_rows(&strings(&[])), Ok(ab::BatchRows::Adaptive));
        assert!(parse_batch_rows(&strings(&["--batch-rows", "0"])).is_err());
        assert!(parse_batch_rows(&strings(&["--batch-rows", "x"])).is_err());
    }

    #[test]
    fn bench_report_reads_snapshots() {
        let dir = std::env::temp_dir().join("abq_test_bench_report");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("BENCH_fake.json");
        std::fs::write(
            &p,
            r#"{"counters":{},"histograms":{},"extra":{
                "kernel.rows_per_sec.scalar.k8.out_llc": 1e6,
                "kernel.rows_per_sec.simd.k8.out_llc": 2e6}}"#,
        )
        .unwrap();
        cmd_bench_report(&strings(&[p.to_str().unwrap()])).unwrap();
        // A malformed snapshot is a hard error naming the file —
        // silently skipping it would read as "bench regressed to
        // nothing". Missing files are still just skipped.
        let bad = dir.join("BENCH_bad.json");
        std::fs::write(&bad, "{oops").unwrap();
        let err = cmd_bench_report(&strings(&[bad.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("BENCH_bad.json"), "{err}");
        let missing = dir.join("BENCH_absent.json");
        cmd_bench_report(&strings(&[p.to_str().unwrap(), missing.to_str().unwrap()])).unwrap();
    }

    #[test]
    fn hier_flag_parses_bare_and_explicit() {
        assert_eq!(parse_hier(&strings(&[])), Ok(ab::HierMode::Off));
        assert_eq!(parse_hier(&strings(&["--hier"])), Ok(ab::HierMode::Auto));
        assert_eq!(
            parse_hier(&strings(&["--hier", "force"])),
            Ok(ab::HierMode::Force)
        );
        assert_eq!(
            parse_hier(&strings(&["--hier", "off"])),
            Ok(ab::HierMode::Off)
        );
        assert_eq!(
            parse_hier(&strings(&["--hier", "auto"])),
            Ok(ab::HierMode::Auto)
        );
        // Bare --hier followed by another flag must not eat it.
        assert_eq!(
            parse_hier(&strings(&["--hier", "--listen"])),
            Ok(ab::HierMode::Auto)
        );
    }

    #[test]
    fn store_build_with_hier_persists_pyramids() {
        let dir = std::env::temp_dir().join("abq_test_store_hier");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("d.csv");
        let abpg = dir.join("d.abpg");
        let mut body = String::from("v\n");
        for i in 0..300 {
            body.push_str(&format!("{}.0\n", i / 30));
        }
        std::fs::write(&csv, body).unwrap();
        cmd_store_build(&strings(&[
            "--csv",
            csv.to_str().unwrap(),
            "--out",
            abpg.to_str().unwrap(),
            "--shards",
            "2",
            "--hier",
        ]))
        .unwrap();
        cmd_store_verify(&strings(&["--store", abpg.to_str().unwrap()])).unwrap();
        // The pyramid rides the segment: loading needs no rebuild.
        let st = store::Store::open_with(&abpg, false).unwrap();
        let idx = svc::ShardedIndex::from_bytes(st.payload()).unwrap();
        assert!(idx.shards().iter().all(|s| s.index().hier().is_some()));
    }

    #[test]
    fn hybrid_flag_parses_bare_and_explicit() {
        assert_eq!(parse_hybrid(&strings(&[])), Ok(ab::HybridMode::Off));
        assert_eq!(
            parse_hybrid(&strings(&["--hybrid"])),
            Ok(ab::HybridMode::Auto)
        );
        assert_eq!(
            parse_hybrid(&strings(&["--hybrid", "force"])),
            Ok(ab::HybridMode::Force)
        );
        assert_eq!(
            parse_hybrid(&strings(&["--hybrid", "off"])),
            Ok(ab::HybridMode::Off)
        );
        // Bare --hybrid followed by another flag must not eat it.
        assert_eq!(
            parse_hybrid(&strings(&["--hybrid", "--listen"])),
            Ok(ab::HybridMode::Auto)
        );
    }

    #[test]
    fn store_build_with_hybrid_persists_exact_containers() {
        let dir = std::env::temp_dir().join("abq_test_store_hybrid");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("d.csv");
        let abpg = dir.join("d.abpg");
        // Clustered values: every bin is dense in its run of rows, so
        // the planner's split decision backs bins exactly.
        let mut body = String::from("v\n");
        for i in 0..300 {
            body.push_str(&format!("{}.0\n", i / 30));
        }
        std::fs::write(&csv, body).unwrap();
        cmd_store_build(&strings(&[
            "--csv",
            csv.to_str().unwrap(),
            "--out",
            abpg.to_str().unwrap(),
            "--shards",
            "2",
            "--hybrid",
        ]))
        .unwrap();
        cmd_store_verify(&strings(&["--store", abpg.to_str().unwrap()])).unwrap();
        // The containers ride the segment (ABIX v4): loading needs no
        // rebuild and no source table.
        let st = store::Store::open_with(&abpg, false).unwrap();
        let idx = svc::ShardedIndex::from_bytes(st.payload()).unwrap();
        assert!(idx.shards().iter().all(|s| s.index().hybrid().is_some()));
        assert!(idx.hybrid_split_stats().iter().all(|s| s.is_some()));
    }

    #[test]
    fn bench_svc_runs_end_to_end() {
        let dir = std::env::temp_dir().join("abq_test_bench_svc");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("d.csv");
        let mut body = String::from("price,qty\n");
        for i in 0..300 {
            body.push_str(&format!("{}.0,{}.0\n", i % 41, (i * 3) % 11));
        }
        std::fs::write(&csv, body).unwrap();
        // Every kernel drives the full service path from the CLI
        // (simd degrades gracefully on builds without the feature).
        for kernel in ["scalar", "batched", "simd"] {
            cmd_bench_svc(&strings(&[
                "--csv",
                csv.to_str().unwrap(),
                "--threads",
                "2",
                "--shards",
                "3",
                "--queries",
                "20",
                "--kernel",
                kernel,
            ]))
            .unwrap();
        }
    }

    #[test]
    fn mix_flag_parses_kinds_and_weights() {
        assert_eq!(parse_mix("rect").unwrap(), net::loadgen::Mix::RECT);
        let m = parse_mix("rect:3,cells:1,batch:2").unwrap();
        assert_eq!((m.rect, m.cells, m.batch), (3, 1, 2));
        let m = parse_mix("rect,batch").unwrap();
        assert_eq!((m.rect, m.cells, m.batch), (1, 0, 1));
        assert!(parse_mix("turbo").is_err());
        assert!(parse_mix("rect:x").is_err());
        assert!(parse_mix("rect:0").is_err());
    }

    #[test]
    fn loadgen_end_to_end_over_loopback() {
        let svc = tiny_service();
        let server = net::NetServer::bind(
            "127.0.0.1:0",
            std::sync::Arc::new(svc),
            net::NetConfig::default(),
        )
        .unwrap();
        let addr = server.local_addr().to_string();
        let dir = std::env::temp_dir().join("abq_test_loadgen");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("BENCH_net.json");
        cmd_loadgen(&strings(&[
            "--addr",
            &addr,
            "--conns",
            "2",
            "--secs",
            "0.3",
            "--mix",
            "rect,batch",
            "--batch-size",
            "3",
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        assert!(text.contains("net.rps.rect.conns2"), "{text}");
        assert!(text.contains("net.latency_us.batch.conns2.p99"), "{text}");
        server.shutdown(std::time::Duration::from_secs(2));
        // The written snapshot folds straight into bench-report.
        cmd_bench_report(&strings(&[out.to_str().unwrap()])).unwrap();
    }

    #[test]
    fn loadgen_flag_validation() {
        assert!(cmd_loadgen(&strings(&[])).is_err()); // --addr required
        assert!(cmd_loadgen(&strings(&["--addr", "x", "--rps", "10", "--pipeline", "2"])).is_err());
        assert!(cmd_loadgen(&strings(&["--addr", "x", "--secs", "0"])).is_err());
    }

    #[test]
    fn retry_flag_parses_and_bounds() {
        assert_eq!(
            parse_retry_policy(&strings(&["--retries", "7"]))
                .unwrap()
                .max_attempts,
            7
        );
        assert_eq!(parse_retry_policy(&strings(&[])).unwrap().max_attempts, 4);
        assert!(parse_retry_policy(&strings(&["--retries", "0"])).is_err());
        assert!(parse_retry_policy(&strings(&["--retries", "x"])).is_err());
    }

    #[test]
    fn verify_reports_health_and_detects_corruption() {
        let dir = std::env::temp_dir().join("abq_test_verify");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("d.csv");
        let idx = dir.join("d.ab");
        let mut body = String::from("price,qty\n");
        for i in 0..200 {
            body.push_str(&format!("{}.0,{}.0\n", i % 31, (i * 5) % 7));
        }
        std::fs::write(&csv, body).unwrap();
        cmd_build(&strings(&[
            "--csv",
            csv.to_str().unwrap(),
            "--out",
            idx.to_str().unwrap(),
        ]))
        .unwrap();
        cmd_verify(&strings(&["--index", idx.to_str().unwrap()])).unwrap();
        // Flip one payload byte: verify must now fail with a
        // checksum complaint instead of succeeding.
        let mut bytes = std::fs::read(&idx).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&idx, &bytes).unwrap();
        let err = cmd_verify(&strings(&["--index", idx.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("corrupted"), "unexpected error: {err}");
    }

    #[test]
    fn end_to_end_build_and_query() {
        let dir = std::env::temp_dir().join("abq_test_e2e");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("d.csv");
        let idx = dir.join("d.ab");
        let mut body = String::from("price,qty\n");
        for i in 0..500 {
            body.push_str(&format!("{}.0,{}.0\n", i % 97, (i * 7) % 13));
        }
        std::fs::write(&csv, body).unwrap();
        cmd_build(&strings(&[
            "--csv",
            csv.to_str().unwrap(),
            "--out",
            idx.to_str().unwrap(),
            "--bins",
            "8",
            "--alpha",
            "16",
        ]))
        .unwrap();
        cmd_info(&strings(&["--index", idx.to_str().unwrap()])).unwrap();
        cmd_query(&strings(&[
            "--index",
            idx.to_str().unwrap(),
            "--where",
            "price=0..3",
            "--rows",
            "0..99",
        ]))
        .unwrap();
    }

    #[test]
    fn store_build_verify_scrub_end_to_end() {
        let dir = std::env::temp_dir().join("abq_test_store");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("d.csv");
        let abpg = dir.join("d.abpg");
        let mut body = String::from("price,qty\n");
        for i in 0..400 {
            body.push_str(&format!("{}.0,{}.0\n", i % 31, (i * 5) % 11));
        }
        std::fs::write(&csv, body).unwrap();
        let build_flags = [
            "--csv",
            csv.to_str().unwrap(),
            "--bins",
            "6",
            "--alpha",
            "8",
            "--shards",
            "3",
        ];
        let with_store = |extra: &[&str]| {
            let mut v = strings(extra);
            v.extend(strings(&["--store", abpg.to_str().unwrap()]));
            v
        };
        let mut args = strings(&build_flags);
        args.extend(strings(&[
            "--out",
            abpg.to_str().unwrap(),
            "--page-size",
            "256",
        ]));
        cmd_store_build(&args).unwrap();
        cmd_store_verify(&with_store(&[])).unwrap();
        let pristine = std::fs::read(&abpg).unwrap();

        // Rot one payload byte: verify must name the damage, scrub
        // without the CSV must refuse, scrub with it must restore the
        // exact original file.
        let mut rotted = pristine.clone();
        let at = rotted.len() - 10;
        rotted[at] ^= 0x40;
        std::fs::write(&abpg, &rotted).unwrap();
        let err = cmd_store_verify(&with_store(&[])).unwrap_err();
        assert!(err.contains("damaged"), "unexpected error: {err}");
        let err = cmd_store_scrub(&with_store(&[])).unwrap_err();
        assert!(err.contains("--csv"), "unexpected error: {err}");
        let mut repair = strings(&build_flags);
        repair.extend(strings(&["--store", abpg.to_str().unwrap()]));
        cmd_store_scrub(&repair).unwrap();
        assert_eq!(
            std::fs::read(&abpg).unwrap(),
            pristine,
            "repair must be bit-identical"
        );
        cmd_store_verify(&with_store(&[])).unwrap();
    }

    #[test]
    fn store_flag_validation() {
        assert!(cmd_store(&strings(&[])).is_err());
        assert!(cmd_store(&strings(&["nope"])).is_err());
        assert!(cmd_store_build(&strings(&["--csv", "x.csv"])).is_err()); // --out required
        assert!(cmd_store_verify(&strings(&[])).is_err()); // --store required
        assert!(cmd_store_scrub(&strings(&[])).is_err());
        // --wah cannot be served from a store (no WAH sidecar there).
        assert!(cmd_serve(&strings(&["--store", "x.abpg", "--wah"])).is_err());
    }
}
