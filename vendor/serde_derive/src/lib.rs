//! Offline stub for `serde_derive` (see `vendor/README.md`).
//!
//! The companion `serde` stub blanket-implements its marker traits, so
//! the derives have nothing to generate — they only need to exist and
//! to register `serde` as a helper attribute so `#[serde(default)]`
//! and friends keep compiling.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
