//! The case runner: seeded RNG, per-test configuration, and the
//! accept/reject/fail loop behind the `proptest!` macro.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Deterministic splitmix64 stream feeding every strategy draw.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A stream fully determined by `seed`.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform in `[0, 1)` with 53 random bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property is false for the drawn inputs.
    Fail(String),
    /// `prop_assume!` discarded the inputs; draw a replacement.
    Reject,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs one property until `cfg.cases` cases are accepted. Panics (= fails
/// the surrounding `#[test]`) on the first failing case, reporting the
/// case seed; a case that itself panics is annotated the same way before
/// the panic is propagated.
pub fn run<F>(cfg: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = fnv1a(name);
    let mut accepted = 0u32;
    let mut attempt = 0u64;
    let max_attempts = (cfg.cases as u64).saturating_mul(20).max(100);
    while accepted < cfg.cases {
        attempt += 1;
        assert!(
            attempt <= max_attempts,
            "proptest '{name}': too many rejected cases \
             ({accepted}/{} accepted after {attempt} attempts)",
            cfg.cases
        );
        let seed = base ^ attempt.wrapping_mul(0xa076_1d64_78bd_642f);
        let mut rng = TestRng::new(seed);
        match catch_unwind(AssertUnwindSafe(|| case(&mut rng))) {
            Ok(Ok(())) => accepted += 1,
            Ok(Err(TestCaseError::Reject)) => continue,
            Ok(Err(TestCaseError::Fail(msg))) => {
                panic!("proptest '{name}' failed at case {attempt} (seed {seed:#x}): {msg}")
            }
            Err(payload) => {
                eprintln!("proptest '{name}': panic at case {attempt} (seed {seed:#x})");
                resume_unwind(payload);
            }
        }
    }
}
