//! Collection strategies (`prop::collection::{vec, btree_set}`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// An inclusive size band for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range: {r:?}");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range: {r:?}");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
    }
}

/// A `Vec` of values from `element`, sized inside `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// A `BTreeSet` of values from `element`, targeting a size inside
/// `size`. If the element domain is too small to reach the drawn size,
/// the set is returned as large as the draw budget allowed.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.pick(rng);
        let mut set = BTreeSet::new();
        let mut budget = n.saturating_mul(8) + 8;
        while set.len() < n && budget > 0 {
            set.insert(self.element.generate(rng));
            budget -= 1;
        }
        set
    }
}
