//! Strategies: deterministic value generators plus the combinators the
//! workspace uses (`prop_map`, `prop_flat_map`, tuples, `Just`, ranges,
//! `any`, `prop_oneof!`'s `Union`).

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A generator of values of one type. Unlike real proptest there is no
/// value tree: a strategy draws a concrete value and failures are not
/// shrunk.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value from the seeded stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value and draws
    /// from it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among same-typed strategies; built by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given arms (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Full-domain generation for `any::<T>()`.
pub trait Arbitrary {
    /// Draws a uniform value over the type's whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Generates any value of `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (self.start as i128, self.end as i128);
                assert!(lo < hi, "strategy range is empty: {:?}", self);
                (lo + (rng.next_u64() as i128).rem_euclid(hi - lo)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "strategy range is empty: {:?}", self);
                (lo + (rng.next_u64() as i128).rem_euclid(hi - lo + 1)) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "strategy range is empty: {self:?}");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "strategy range is empty: {self:?}");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}
