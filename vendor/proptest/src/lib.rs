//! Offline stub for `proptest` (see `vendor/README.md`).
//!
//! A working miniature of the proptest API surface this workspace
//! uses: strategies are deterministic seeded generators, the
//! `proptest!` macro expands each property into a `#[test]` that runs
//! `ProptestConfig::cases` random cases, and `prop_assert*!` failures
//! report the case number and seed so a failure is reproducible.
//! **There is no shrinking** — a failing case is reported as drawn.

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// `if !cond { fail the current case }`, optionally with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Case-level `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// Case-level `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: both sides are {:?}", a);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, $($fmt)*);
    }};
}

/// Discards the current case (drawn inputs don't satisfy a
/// precondition); the runner draws a replacement.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Picks uniformly among the listed strategies (all must share one
/// value type). Weighted arms are not supported by the stub.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...)` body
/// becomes a `#[test]` running `cases` seeded random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                $crate::test_runner::run(&config, stringify!($name), |__rng| {
                    $(let $pat = $crate::strategy::Strategy::generate(&{ $strat }, &mut *__rng);)+
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    __result
                });
            }
        )*
    };
}
