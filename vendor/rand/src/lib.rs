//! Offline stub for `rand` (see `vendor/README.md`).
//!
//! Provides exactly the surface the workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng::{gen, gen_range,
//! gen_bool}`](Rng). The generator is splitmix64 — deterministic,
//! uniform, and plenty for data synthesis; it makes no cryptographic
//! claims (neither does the workspace).

use std::ops::{Range, RangeInclusive};

/// Re-export home of [`StdRng`], mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::StdRng;
}

/// Construction from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A uniform random-value source.
pub trait Rng {
    /// The raw 64-bit output all other methods derive from.
    fn next_u64(&mut self) -> u64;

    /// A uniform value of `T` over its full domain (`f64` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// A uniform value inside `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

/// The standard (full-domain) distribution; backs [`Rng::gen`].
pub trait Standard {
    /// Draws one value from `rng`.
    fn from_rng<R: Rng>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: Rng>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: Rng>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value inside the range.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! sample_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (self.start as i128, self.end as i128);
                assert!(lo < hi, "gen_range: empty range");
                (lo + (rng.next_u64() as i128).rem_euclid(hi - lo)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "gen_range: empty range");
                (lo + (rng.next_u64() as i128).rem_euclid(hi - lo + 1)) as $t
            }
        }
    )*};
}
sample_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + rng.gen::<f64>() * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + rng.gen::<f64>() * (hi - lo)
    }
}

/// The workspace's standard generator: splitmix64.
#[derive(Clone, Debug)]
pub struct StdRng {
    state: u64,
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl<R: Rng> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_uniform_enough() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        assert_eq!(a.next_u64(), b.next_u64());

        let mut r = StdRng::seed_from_u64(7);
        let mean = (0..10_000).map(|_| r.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        for _ in 0..1000 {
            let v = r.gen_range(3u32..9);
            assert!((3..9).contains(&v));
            let w = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
    }
}
