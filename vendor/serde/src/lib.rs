//! Offline stub for `serde` (see `vendor/README.md`).
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize` to keep
//! its snapshot types consumable by downstream tooling; every byte of
//! JSON the repo emits or parses is hand-rolled. So the traits here are
//! empty markers with blanket impls, and the derives are no-ops that
//! accept the `#[serde(...)]` helper-attribute surface.

/// Marker stand-in for `serde::Serialize`. Blanket-implemented.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`. Blanket-implemented.
pub trait Deserialize {}
impl<T: ?Sized> Deserialize for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
