//! Offline stub for `criterion` (see `vendor/README.md`).
//!
//! Compile-compatible with the subset the workspace's benches use
//! (`benchmark_group`, `sample_size`, `measurement_time`,
//! `bench_function`, `Bencher::iter`, `black_box`, the `criterion_group!`
//! / `criterion_main!` macros) and functional enough to run: each
//! bench is timed with plain `Instant` and the mean per-iteration cost
//! is printed. No statistics, no HTML reports.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle, one per `criterion_group!` function.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id.as_ref(), self.measurement_time, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.as_ref().to_string(),
            measurement_time: self.measurement_time,
        }
    }
}

/// A named set of benchmarks sharing measurement settings.
pub struct BenchmarkGroup {
    name: String,
    measurement_time: Duration,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; the stub has no sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub's only warm-up is the
    /// single priming call inside [`Bencher::iter`].
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Caps how long each benchmark in the group is measured.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &format!("{}/{}", self.name, id.as_ref()),
            self.measurement_time,
            f,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    measurement_time: Duration,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `f` repeatedly until the measurement budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up, and a floor so even slow bodies get measured.
        black_box(f());
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(f());
            iters += 1;
            if start.elapsed() >= self.measurement_time || iters >= 1_000_000 {
                break;
            }
        }
        self.total = start.elapsed();
        self.iters = iters;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, measurement_time: Duration, mut f: F) {
    let mut b = Bencher {
        measurement_time,
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if b.iters > 0 {
        let per = b.total.as_nanos() as f64 / b.iters as f64;
        println!("{id}: {per:.1} ns/iter ({} iters)", b.iters);
    } else {
        println!("{id}: no measurement (Bencher::iter never called)");
    }
}

/// Bundles benchmark functions into a single runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
