//! Property tests for the data and query generators.

use bitmap::{BitmapIndex, Encoding};
use datagen::{generate, small_uniform, QueryGenParams};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The §5.3 guarantee: every generated query has a non-empty exact
    /// answer, across the whole parameter space.
    #[test]
    fn queries_always_match_at_least_one_row(
        rows in 50usize..800,
        attrs in 1usize..4,
        bins in 2u32..12,
        qdim_seed in 0usize..8,
        sel in 0.05f64..1.0,
        r in 0.01f64..1.0,
        seed in any::<u64>(),
    ) {
        let ds = small_uniform(rows, attrs, bins, seed);
        let exact = BitmapIndex::build(&ds.binned, Encoding::Equality);
        let params = QueryGenParams {
            num_queries: 5,
            qdim: qdim_seed % attrs + 1,
            sel,
            r,
            seed,
        };
        for q in generate(&ds.binned, &params) {
            prop_assert!(!exact.evaluate_rows(&q).is_empty(), "empty answer for {:?}", q);
        }
    }

    /// Generated row ranges respect the requested fraction.
    #[test]
    fn row_ranges_have_requested_span(rows in 100usize..1000, r in 0.01f64..1.0,
                                      seed in any::<u64>()) {
        let ds = small_uniform(rows, 2, 5, seed);
        let params = QueryGenParams { num_queries: 5, qdim: 1, sel: 0.5, r, seed };
        let span = ((r * rows as f64).round() as usize).clamp(1, rows);
        for q in generate(&ds.binned, &params) {
            prop_assert!(q.num_rows() <= span);
            prop_assert!(q.row_hi < rows);
        }
    }

    /// Dataset generation is a pure function of (scale, seed).
    #[test]
    fn datasets_deterministic(seed in any::<u64>()) {
        let a = small_uniform(300, 2, 8, seed);
        let b = small_uniform(300, 2, 8, seed);
        prop_assert_eq!(a.binned, b.binned);
    }

    /// Z-order round trips arbitrary coordinates.
    #[test]
    fn zorder_roundtrip(x in any::<u32>(), y in any::<u32>()) {
        let (gx, gy) = datagen::zorder::decode2(datagen::zorder::encode2(x, y));
        prop_assert_eq!((gx, gy), (x, y));
    }

    /// Z-order is monotone within rows of an aligned power-of-two grid
    /// block (locality sanity).
    #[test]
    fn zorder_block_locality(bx in 0u32..256, by in 0u32..256) {
        // 4-aligned 4x4 block occupies 16 consecutive codes.
        let (x0, y0) = (bx * 4, by * 4);
        let mut codes: Vec<u64> = (0..4)
            .flat_map(|dx| (0..4).map(move |dy| datagen::zorder::encode2(x0 + dx, y0 + dy)))
            .collect();
        codes.sort_unstable();
        prop_assert_eq!(codes[15] - codes[0], 15);
    }
}
