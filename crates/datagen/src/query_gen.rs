//! The sampling query generator of paper §5.3 (Table 7).
//!
//! Queries are anchored at sampled rows so the exact answer is never
//! empty (required for meaningful precision measurements: "if the
//! number of actual query results is 0, the precision of the AB would
//! always be 0"). Parameters:
//!
//! * `num_queries` (paper `q`, set to 100),
//! * `qdim` — number of constrained attributes,
//! * `sel` — fraction of each attribute's cardinality forming the bin
//!   interval,
//! * `r` — fraction of rows forming the row range.
//!
//! For each query: sample a row `r_j`; pick `qdim` distinct random
//! attributes; each interval starts at `r_j`'s bin (`l_i = bin(A_i,
//! r_j)`) and spans `sel·C_i` bins; the row range spans `r·N` rows and
//! is positioned randomly subject to containing `r_j`, preserving the
//! at-least-one-match guarantee.

use bitmap::{AttrRange, BinnedTable, RectQuery};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for the query generator (paper Table 7).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueryGenParams {
    /// Number of queries to generate (paper: 100).
    pub num_queries: usize,
    /// Query dimensionality (constrained attributes).
    pub qdim: usize,
    /// Attribute selectivity: fraction of the cardinality per interval.
    pub sel: f64,
    /// Fraction of rows in the row range.
    pub r: f64,
    /// RNG seed.
    pub seed: u64,
}

impl QueryGenParams {
    /// The experimental workhorse (§5.4): 2-dimensional queries of 4
    /// bins per attribute, targeting `rows` rows out of `n`.
    pub fn paper_default(table: &BinnedTable, rows: usize, seed: u64) -> Self {
        let card = table.column(0).cardinality as f64;
        QueryGenParams {
            num_queries: 100,
            qdim: 2.min(table.num_attributes()),
            sel: (4.0 / card).min(1.0),
            r: rows as f64 / table.num_rows() as f64,
            seed,
        }
    }
}

/// Generates `params.num_queries` rectangular queries over `table`.
///
/// Every query's exact answer contains at least the anchor row.
///
/// # Panics
///
/// Panics if `qdim` exceeds the attribute count, `sel`/`r` are outside
/// `(0, 1]`, or the table is empty.
pub fn generate(table: &BinnedTable, params: &QueryGenParams) -> Vec<RectQuery> {
    let n = table.num_rows();
    let d = table.num_attributes();
    assert!(n > 0, "empty table");
    assert!(
        params.qdim >= 1 && params.qdim <= d,
        "qdim {} out of range 1..={d}",
        params.qdim
    );
    assert!(
        params.sel > 0.0 && params.sel <= 1.0,
        "sel must be in (0,1], got {}",
        params.sel
    );
    assert!(
        params.r > 0.0 && params.r <= 1.0,
        "r must be in (0,1], got {}",
        params.r
    );
    let mut rng = StdRng::seed_from_u64(params.seed);
    let queries: Vec<RectQuery> = (0..params.num_queries)
        .map(|_| one_query(table, params, &mut rng))
        .collect();
    obs::counter!("datagen.queries_generated").add(queries.len() as u64);
    queries
}

fn one_query(table: &BinnedTable, params: &QueryGenParams, rng: &mut StdRng) -> RectQuery {
    let n = table.num_rows();
    let d = table.num_attributes();
    let anchor = rng.gen_range(0..n);

    // qdim distinct attributes by partial Fisher–Yates.
    let mut attrs: Vec<usize> = (0..d).collect();
    for i in 0..params.qdim {
        let j = rng.gen_range(i..d);
        attrs.swap(i, j);
    }
    attrs.truncate(params.qdim);
    attrs.sort_unstable();

    let ranges = attrs
        .into_iter()
        .map(|a| {
            let col = table.column(a);
            let c = col.cardinality;
            let lo = col.bins[anchor];
            let width = ((params.sel * c as f64).round() as u32).max(1);
            let hi = (lo + width - 1).min(c - 1);
            AttrRange::new(a, lo, hi)
        })
        .collect();

    // Row range of span r·N containing the anchor.
    let span = ((params.r * n as f64).round() as usize).clamp(1, n);
    let lo_min = anchor.saturating_sub(span - 1);
    let lo_max = anchor.min(n - span);
    let row_lo = if lo_min >= lo_max {
        lo_min.min(lo_max)
    } else {
        rng.gen_range(lo_min..=lo_max)
    };
    let row_hi = (row_lo + span - 1).min(n - 1);
    debug_assert!((row_lo..=row_hi).contains(&anchor));
    RectQuery::new(ranges, row_lo, row_hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::small_uniform;
    use bitmap::{BitmapIndex, Encoding};

    fn table() -> BinnedTable {
        small_uniform(5000, 4, 10, 3).binned
    }

    #[test]
    fn generates_requested_count_and_shape() {
        let t = table();
        let p = QueryGenParams {
            num_queries: 25,
            qdim: 2,
            sel: 0.4,
            r: 0.1,
            seed: 11,
        };
        let qs = generate(&t, &p);
        assert_eq!(qs.len(), 25);
        let mut full_width = 0;
        for q in &qs {
            assert_eq!(q.qdim(), 2);
            // span = 10% of 5000 = 500 rows
            assert_eq!(q.num_rows(), 500);
            for r in &q.ranges {
                // 0.4 × 10 bins, clamped at the top of the domain per
                // the paper's u_i = min(l_i + sel·C_i, C_i).
                assert!(r.width() <= 4 && r.width() >= 1);
                if r.width() == 4 {
                    full_width += 1;
                }
            }
        }
        assert!(full_width > 20, "most intervals should be unclamped");
    }

    #[test]
    fn every_query_has_a_match() {
        let t = table();
        let exact = BitmapIndex::build(&t, Encoding::Equality);
        let p = QueryGenParams {
            num_queries: 50,
            qdim: 3,
            sel: 0.2,
            r: 0.02,
            seed: 5,
        };
        for (i, q) in generate(&t, &p).iter().enumerate() {
            assert!(
                !exact.evaluate_rows(q).is_empty(),
                "query {i} has an empty exact answer: {q:?}"
            );
        }
    }

    #[test]
    fn paper_default_targets_row_count() {
        let t = table();
        let p = QueryGenParams::paper_default(&t, 500, 1);
        assert_eq!(p.qdim, 2);
        assert!((p.sel - 0.4).abs() < 1e-12);
        let qs = generate(&t, &p);
        assert!(qs.iter().all(|q| q.num_rows() == 500));
    }

    #[test]
    fn deterministic_under_seed() {
        let t = table();
        let p = QueryGenParams {
            num_queries: 10,
            qdim: 1,
            sel: 0.3,
            r: 0.5,
            seed: 99,
        };
        assert_eq!(generate(&t, &p), generate(&t, &p));
    }

    #[test]
    fn full_row_range_supported() {
        let t = table();
        let p = QueryGenParams {
            num_queries: 5,
            qdim: 1,
            sel: 1.0,
            r: 1.0,
            seed: 2,
        };
        for q in generate(&t, &p) {
            assert_eq!((q.row_lo, q.row_hi), (0, 4999));
        }
    }

    #[test]
    #[should_panic(expected = "qdim")]
    fn qdim_validation() {
        let t = table();
        generate(
            &t,
            &QueryGenParams {
                num_queries: 1,
                qdim: 9,
                sel: 0.5,
                r: 0.5,
                seed: 0,
            },
        );
    }

    #[test]
    fn distinct_attributes_chosen() {
        let t = table();
        let p = QueryGenParams {
            num_queries: 40,
            qdim: 4,
            sel: 0.2,
            r: 0.1,
            seed: 13,
        };
        for q in generate(&t, &p) {
            let mut attrs: Vec<usize> = q.ranges.iter().map(|r| r.attribute).collect();
            attrs.dedup();
            assert_eq!(attrs.len(), 4, "duplicate attributes in {q:?}");
        }
    }
}
