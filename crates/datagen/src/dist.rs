//! Random value distributions for synthetic data sets.
//!
//! The experimental data sets (paper Table 3) are uniform (synthetic),
//! skewed (HEP — high-energy physics events), and correlated (Landsat —
//! SVD components of satellite imagery). This module provides the
//! samplers those stand-ins are built from: uniform, Zipf, and Gaussian
//! (Box–Muller, since only `rand`'s core API is available offline).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded random source shared by the generators; deterministic for
/// reproducible experiments.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Samples a uniform `f64` in `[0, 1)`.
pub fn uniform01<R: Rng>(rng: &mut R) -> f64 {
    rng.gen::<f64>()
}

/// A Zipf sampler over `{0, 1, …, v−1}` with exponent `theta`: value
/// `i` has probability proportional to `1 / (i+1)^theta`. Uses a
/// precomputed CDF (cardinalities here are small), binary-searched per
/// sample.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler.
    ///
    /// # Panics
    ///
    /// Panics if `v == 0` or `theta < 0`.
    pub fn new(v: usize, theta: f64) -> Self {
        assert!(v > 0, "support size must be positive");
        assert!(theta >= 0.0, "theta must be non-negative");
        let mut cdf = Vec::with_capacity(v);
        let mut acc = 0.0;
        for i in 0..v {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draws one sample.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u = rng.gen::<f64>();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// A standard-normal sampler via the Box–Muller transform; caches the
/// second variate.
#[derive(Clone, Debug, Default)]
pub struct Gaussian {
    cached: Option<f64>,
}

impl Gaussian {
    /// Creates the sampler.
    pub fn new() -> Self {
        Gaussian { cached: None }
    }

    /// Draws one standard-normal sample.
    pub fn sample<R: Rng>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.cached.take() {
            return z;
        }
        // Box–Muller: two uniforms → two independent normals.
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE); // avoid ln(0)
        let u2: f64 = rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.cached = Some(r * theta.sin());
        r * theta.cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let a: Vec<u32> = (0..5).map(|_| rng(42).gen()).collect();
        let b: Vec<u32> = (0..5).map(|_| rng(42).gen()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn zipf_is_skewed() {
        let z = Zipf::new(10, 1.0);
        let mut r = rng(1);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            counts[z.sample(&mut r)] += 1;
        }
        // Head value dominates; tail value is rare.
        assert!(counts[0] > counts[9] * 3, "{counts:?}");
        // All values appear.
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
    }

    #[test]
    fn zipf_theta_zero_is_uniform() {
        let z = Zipf::new(5, 0.0);
        let mut r = rng(2);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[z.sample(&mut r)] += 1;
        }
        for &c in &counts {
            let expected = 10_000.0;
            assert!((c as f64 - expected).abs() < expected * 0.1, "{counts:?}");
        }
    }

    #[test]
    fn zipf_frequencies_match_law() {
        let z = Zipf::new(8, 1.0);
        let mut r = rng(3);
        let n = 100_000;
        let mut counts = [0usize; 8];
        for _ in 0..n {
            counts[z.sample(&mut r)] += 1;
        }
        // P(0)/P(3) should be ≈ 4.
        let ratio = counts[0] as f64 / counts[3] as f64;
        assert!((ratio - 4.0).abs() < 0.6, "ratio {ratio}");
    }

    #[test]
    fn gaussian_moments() {
        let mut g = Gaussian::new();
        let mut r = rng(4);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| g.sample(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zipf_rejects_empty_support() {
        Zipf::new(0, 1.0);
    }
}
