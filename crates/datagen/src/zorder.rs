//! Z-order (Morton) space-filling curve mapping.
//!
//! The paper's introduction motivates row-subset queries with spatial
//! data: "we could map the x, y, and z coordinates of a data point to
//! a single integer by using a well-known mapping function or a
//! space-filling curve and physically order the points by three
//! attributes at the same time. When users ask for a particular
//! region, a small cube within the data space, we can map all the
//! points in the query to their index and evaluate the query
//! conditions over the resulting rows." This module provides that
//! mapping for 2-D and 3-D grids, plus the region → row-id expansion
//! used by `examples/spatial_viz.rs`.

/// Interleaves the low 32 bits of `x` with zeros (one gap bit).
fn spread2(x: u64) -> u64 {
    let mut x = x & 0xFFFF_FFFF;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

/// Inverse of [`spread2`].
fn squash2(x: u64) -> u64 {
    let mut x = x & 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x >> 16)) & 0x0000_0000_FFFF_FFFF;
    x
}

/// Interleaves the low 21 bits of `x` with two gap bits.
fn spread3(x: u64) -> u64 {
    let mut x = x & 0x1F_FFFF;
    x = (x | (x << 32)) & 0x001F_0000_0000_FFFF;
    x = (x | (x << 16)) & 0x001F_0000_FF00_00FF;
    x = (x | (x << 8)) & 0x100F_00F0_0F00_F00F;
    x = (x | (x << 4)) & 0x10C3_0C30_C30C_30C3;
    x = (x | (x << 2)) & 0x1249_2492_4924_9249;
    x
}

/// Inverse of [`spread3`].
fn squash3(x: u64) -> u64 {
    let mut x = x & 0x1249_2492_4924_9249;
    x = (x | (x >> 2)) & 0x10C3_0C30_C30C_30C3;
    x = (x | (x >> 4)) & 0x100F_00F0_0F00_F00F;
    x = (x | (x >> 8)) & 0x001F_0000_FF00_00FF;
    x = (x | (x >> 16)) & 0x001F_0000_0000_FFFF;
    x = (x | (x >> 32)) & 0x0000_0000_001F_FFFF;
    x
}

/// Maps 2-D coordinates to their Morton code (row identifier).
pub fn encode2(x: u32, y: u32) -> u64 {
    spread2(x as u64) | (spread2(y as u64) << 1)
}

/// Inverse of [`encode2`].
pub fn decode2(z: u64) -> (u32, u32) {
    (squash2(z) as u32, squash2(z >> 1) as u32)
}

/// Maps 3-D coordinates (each < 2²¹) to their Morton code.
///
/// # Panics
///
/// Panics if any coordinate needs more than 21 bits.
pub fn encode3(x: u32, y: u32, z: u32) -> u64 {
    assert!(
        x < (1 << 21) && y < (1 << 21) && z < (1 << 21),
        "3-D Morton coordinates must fit in 21 bits"
    );
    spread3(x as u64) | (spread3(y as u64) << 1) | (spread3(z as u64) << 2)
}

/// Inverse of [`encode3`].
pub fn decode3(m: u64) -> (u32, u32, u32) {
    (
        squash3(m) as u32,
        squash3(m >> 1) as u32,
        squash3(m >> 2) as u32,
    )
}

/// Enumerates the row identifiers of every point inside a 2-D
/// rectangle `[x0, x1] × [y0, y1]`, sorted ascending — the "map all
/// the points in the query to their index" step of the intro's
/// visualization scenario.
pub fn region_rows2(x0: u32, x1: u32, y0: u32, y1: u32) -> Vec<u64> {
    assert!(x0 <= x1 && y0 <= y1, "empty region");
    let mut rows = Vec::with_capacity(((x1 - x0 + 1) * (y1 - y0 + 1)) as usize);
    for x in x0..=x1 {
        for y in y0..=y1 {
            rows.push(encode2(x, y));
        }
    }
    rows.sort_unstable();
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode2_known_values() {
        assert_eq!(encode2(0, 0), 0);
        assert_eq!(encode2(1, 0), 1);
        assert_eq!(encode2(0, 1), 2);
        assert_eq!(encode2(1, 1), 3);
        assert_eq!(encode2(2, 0), 4);
        assert_eq!(encode2(7, 7), 63);
    }

    #[test]
    fn roundtrip2() {
        for x in [0u32, 1, 2, 255, 1000, u32::MAX] {
            for y in [0u32, 3, 77, 65535, u32::MAX] {
                assert_eq!(decode2(encode2(x, y)), (x, y));
            }
        }
    }

    #[test]
    fn roundtrip3() {
        for x in [0u32, 1, 1023, (1 << 21) - 1] {
            for y in [0u32, 7, 2000] {
                for z in [0u32, 5, 99999] {
                    assert_eq!(decode3(encode3(x, y, z)), (x, y, z));
                }
            }
        }
    }

    #[test]
    fn encode2_is_injective_on_grid() {
        let mut seen = std::collections::HashSet::new();
        for x in 0..32 {
            for y in 0..32 {
                assert!(seen.insert(encode2(x, y)));
            }
        }
    }

    #[test]
    fn locality_within_aligned_quads() {
        // An aligned 2×2 quad occupies 4 consecutive codes.
        let base = encode2(4, 6);
        let codes = [encode2(4, 6), encode2(5, 6), encode2(4, 7), encode2(5, 7)];
        let max = *codes.iter().max().unwrap();
        assert_eq!(max - base, 3);
    }

    #[test]
    fn region_rows_sorted_and_complete() {
        let rows = region_rows2(2, 5, 3, 4);
        assert_eq!(rows.len(), 8);
        assert!(rows.windows(2).all(|w| w[0] < w[1]));
        for &r in &rows {
            let (x, y) = decode2(r);
            assert!((2..=5).contains(&x) && (3..=4).contains(&y));
        }
    }

    #[test]
    #[should_panic(expected = "21 bits")]
    fn encode3_rejects_wide_coords() {
        encode3(1 << 21, 0, 0);
    }
}
