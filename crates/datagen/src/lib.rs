//! Synthetic data and queries for the AB reproduction.
//!
//! * [`dist`] — uniform / Zipf / Gaussian samplers.
//! * [`datasets`] — the paper's three data sets (Table 3): the exact
//!   Uniform reconstruction and distribution-matched HEP / Landsat
//!   stand-ins, all equi-depth binned.
//! * [`query_gen`] — the sampling query generator of §5.3 (Table 7):
//!   anchored rectangular queries with a guaranteed non-empty exact
//!   answer.
//! * [`zorder`] — the intro's space-filling-curve row mapping for
//!   spatial workloads.
//!
//! # Example
//!
//! ```
//! use datagen::{datasets, query_gen};
//!
//! let ds = datasets::small_uniform(2000, 3, 10, 42);
//! let params = query_gen::QueryGenParams::paper_default(&ds.binned, 200, 1);
//! let queries = query_gen::generate(&ds.binned, &params);
//! assert_eq!(queries.len(), 100);
//! assert!(queries.iter().all(|q| q.num_rows() == 200));
//! ```

#![warn(missing_docs)]

pub mod datasets;
pub mod dist;
pub mod query_gen;
pub mod zorder;

pub use datasets::{
    hep_like, landsat_like, paper_datasets, rebin, small_uniform, uniform_dataset, Dataset,
};
pub use dist::{rng, Gaussian, Zipf};
pub use query_gen::{generate, QueryGenParams};
