//! The three experimental data sets of paper Table 3 — one exact
//! reconstruction and two synthetic stand-ins.
//!
//! | data set | rows | attributes | bins/attr | bitmaps | set bits |
//! |---|---|---|---|---|---|
//! | Uniform | 100,000 | 2 | 50 | 100 | 200,000 |
//! | Landsat | 275,465 | 60 | 15 | 900 | 16,527,900 |
//! | HEP | 2,173,762 | 6 | 11 | 66 | 13,042,572 |
//!
//! The Uniform set is fully specified by the paper; HEP (high-energy
//! physics events) and Landsat (SVD of satellite images) are real,
//! unavailable data sets replaced here by distribution-matched
//! synthetics (see DESIGN.md): Zipf-skewed attributes for HEP,
//! correlated Gaussian components for Landsat. Equi-depth binning —
//! the paper's preferred discretization (§5.1) — then yields bitmaps
//! with the same structural parameters `(N, d, C_i, s)` that drive
//! every AB and WAH result.

use crate::dist::{rng, Gaussian, Zipf};
use bitmap::{BinnedTable, Binner, Column, EquiDepth, Table};
use rand::Rng;

/// A generated data set: the raw table, its binned form, and the
/// paper's name for it.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Display name ("uniform", "landsat", "hep").
    pub name: String,
    /// Raw numeric table.
    pub table: Table,
    /// Equi-depth binned form (the input to all indexes).
    pub binned: BinnedTable,
    /// Bins per attribute.
    pub bins: u32,
}

impl Dataset {
    fn build(name: &str, table: Table, bins: u32) -> Self {
        let binned = BinnedTable::from_table(&table, &EquiDepth::new(bins));
        Dataset {
            name: name.to_owned(),
            table,
            binned,
            bins,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.table.num_rows()
    }

    /// Number of attributes.
    pub fn attributes(&self) -> usize {
        self.table.num_attributes()
    }

    /// Total bitmap columns (`d × bins`).
    pub fn total_bitmaps(&self) -> usize {
        self.binned.total_bitmaps()
    }

    /// Total set bits in the equality bitmap table (`d × N`).
    pub fn total_set_bits(&self) -> usize {
        self.binned.total_set_bits()
    }
}

/// Scales a paper row count: `scale = 1.0` reproduces the published
/// sizes, smaller values shrink runtimes proportionally (minimum 100
/// rows so bin structure survives).
fn scaled(rows: usize, scale: f64) -> usize {
    ((rows as f64 * scale) as usize).max(100)
}

/// The paper's Uniform data set: 100,000 rows, 2 attributes of
/// cardinality 50, uniformly distributed (§5.1, Table 3).
pub fn uniform_dataset(scale: f64, seed: u64) -> Dataset {
    let rows = scaled(100_000, scale);
    let mut r = rng(seed);
    let cols = (0..2)
        .map(|a| {
            Column::new(
                format!("u{a}"),
                (0..rows).map(|_| r.gen::<f64>()).collect::<Vec<_>>(),
            )
        })
        .collect();
    Dataset::build("uniform", Table::new(cols), 50)
}

/// HEP stand-in: 2,173,762 rows, 6 attributes, 11 bins each. Physics
/// event attributes (energies, momenta) are heavy-tailed, so each
/// attribute draws from a Zipf-weighted mixture over 1,000 latent
/// levels plus jitter. Consecutive events from the same run are
/// correlated, so each attribute re-uses the previous row's value with
/// probability 0.75 — this is what gives the real HEP bitmaps the run
/// structure that lets WAH compress them to ~0.65 of verbatim size
/// (Table 3) while Landsat stays incompressible.
pub fn hep_like(scale: f64, seed: u64) -> Dataset {
    let rows = scaled(2_173_762, scale);
    let mut r = rng(seed ^ 0x4845_5021);
    let zipf = Zipf::new(1000, 1.1);
    let persistence = 0.75f64;
    let cols = (0..6)
        .map(|a| {
            let mut prev = 0.0f64;
            let vals = (0..rows)
                .map(|i| {
                    if i == 0 || r.gen::<f64>() >= persistence {
                        prev = zipf.sample(&mut r) as f64 + r.gen::<f64>();
                    }
                    prev
                })
                .collect::<Vec<_>>();
            Column::new(format!("hep{a}"), vals)
        })
        .collect();
    Dataset::build("hep", Table::new(cols), 11)
}

/// Landsat stand-in: 275,465 rows, 60 attributes, 15 bins each. The
/// real data are SVD components of satellite tiles: roughly Gaussian
/// marginals with strong correlation between neighbouring components.
/// We generate an AR(1)-style latent walk across attributes
/// (correlation 0.8), which reproduces the paper's "WAH compresses
/// poorly here" regime.
pub fn landsat_like(scale: f64, seed: u64) -> Dataset {
    let rows = scaled(275_465, scale);
    let mut r = rng(seed ^ 0x4C41_4E44);
    let mut gauss = Gaussian::new();
    let d = 60usize;
    let rho = 0.8f64;
    let noise = (1.0 - rho * rho).sqrt();
    // Row-major generation of correlated components.
    let mut cols: Vec<Vec<f64>> = (0..d).map(|_| Vec::with_capacity(rows)).collect();
    for _ in 0..rows {
        let mut prev = gauss.sample(&mut r);
        cols[0].push(prev);
        for col in cols.iter_mut().skip(1) {
            prev = rho * prev + noise * gauss.sample(&mut r);
            col.push(prev);
        }
    }
    let columns = cols
        .into_iter()
        .enumerate()
        .map(|(a, vals)| Column::new(format!("svd{a}"), vals))
        .collect();
    Dataset::build("landsat", Table::new(columns), 15)
}

/// All three paper data sets at a common scale, in Table 3 order.
pub fn paper_datasets(scale: f64, seed: u64) -> Vec<Dataset> {
    vec![
        uniform_dataset(scale, seed),
        landsat_like(scale, seed),
        hep_like(scale, seed),
    ]
}

/// A small generic data set for tests and examples: `rows` rows,
/// `attrs` uniform attributes binned to `bins` bins.
pub fn small_uniform(rows: usize, attrs: usize, bins: u32, seed: u64) -> Dataset {
    let mut r = rng(seed);
    let cols = (0..attrs)
        .map(|a| {
            Column::new(
                format!("x{a}"),
                (0..rows).map(|_| r.gen::<f64>()).collect::<Vec<_>>(),
            )
        })
        .collect();
    Dataset::build("small", Table::new(cols), bins)
}

/// Re-bins a dataset with a different binner (e.g. equi-width for an
/// ablation).
pub fn rebin<B: Binner>(ds: &Dataset, binner: &B) -> BinnedTable {
    BinnedTable::from_table(&ds.table, binner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_matches_table3_shape() {
        let ds = uniform_dataset(1.0, 7);
        assert_eq!(ds.rows(), 100_000);
        assert_eq!(ds.attributes(), 2);
        assert_eq!(ds.total_bitmaps(), 100);
        assert_eq!(ds.total_set_bits(), 200_000);
    }

    #[test]
    fn hep_matches_table3_shape_scaled() {
        let ds = hep_like(0.01, 7);
        assert_eq!(ds.rows(), 21_737);
        assert_eq!(ds.attributes(), 6);
        assert_eq!(ds.total_bitmaps(), 66);
    }

    #[test]
    fn landsat_matches_table3_shape_scaled() {
        let ds = landsat_like(0.01, 7);
        assert_eq!(ds.rows(), 2_754);
        assert_eq!(ds.attributes(), 60);
        assert_eq!(ds.total_bitmaps(), 900);
    }

    #[test]
    fn equidepth_bins_are_balanced() {
        let ds = uniform_dataset(0.05, 7);
        for col in ds.binned.columns() {
            let counts = col.bin_counts();
            let expect = ds.rows() / 50;
            for &c in &counts {
                assert!((c as i64 - expect as i64).unsigned_abs() <= 1, "{counts:?}");
            }
        }
    }

    #[test]
    fn hep_raw_values_are_skewed() {
        let ds = hep_like(0.005, 7);
        let col = ds.table.column(0);
        let median = {
            let mut v = col.values.clone();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        let max = col.max().unwrap();
        // Heavy tail: max far above median.
        assert!(max > median * 10.0, "median {median}, max {max}");
    }

    #[test]
    fn landsat_neighbours_are_correlated() {
        let ds = landsat_like(0.02, 7);
        let a = &ds.table.column(10).values;
        let b = &ds.table.column(11).values;
        let n = a.len() as f64;
        let (ma, mb) = (a.iter().sum::<f64>() / n, b.iter().sum::<f64>() / n);
        let cov = a
            .iter()
            .zip(b)
            .map(|(x, y)| (x - ma) * (y - mb))
            .sum::<f64>()
            / n;
        let (va, vb) = (
            a.iter().map(|x| (x - ma).powi(2)).sum::<f64>() / n,
            b.iter().map(|y| (y - mb).powi(2)).sum::<f64>() / n,
        );
        let corr = cov / (va * vb).sqrt();
        assert!(corr > 0.6, "corr {corr}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = uniform_dataset(0.01, 9);
        let b = uniform_dataset(0.01, 9);
        assert_eq!(a.table, b.table);
        let c = uniform_dataset(0.01, 10);
        assert_ne!(a.table, c.table);
    }

    #[test]
    fn scale_floor_is_100_rows() {
        let ds = uniform_dataset(0.0000001, 1);
        assert_eq!(ds.rows(), 100);
    }
}
