//! Compressed-domain logical operations over WAH bitmaps.
//!
//! The word alignment of WAH fills guarantees that AND/OR/XOR only ever
//! touch whole words (paper §2.2.1): two fills combine into a fill of
//! `min` length, a fill against a literal behaves as an all-zero or
//! all-one literal. The result is built with run coalescing, so the
//! output is itself properly compressed.

use crate::encode::{WahBitmap, WahBuilder, GROUP_BITS, LITERAL_MASK};

/// Cursor over the groups of a WAH word stream. `remaining` counts the
/// groups left in the current run; for literals it is 1.
///
/// Decoded-word counts accumulate in plain fields on the hot loop and
/// are flushed to the `wah.ops.*` counters once per operation
/// ([`Cursor::flush_metrics`]), keeping atomics off the word stream.
struct Cursor<'a> {
    words: &'a [u32],
    idx: usize,
    /// Groups left in the current run (0 = exhausted / before first load).
    remaining: u32,
    /// Group value for the current run (0 / LITERAL_MASK for fills).
    value: u32,
    /// Whether the current run is a fill (multi-group capable).
    is_fill: bool,
    /// Fill words decoded so far.
    fills: u64,
    /// Literal words decoded so far.
    literals: u64,
}

impl<'a> Cursor<'a> {
    fn new(wah: &'a WahBitmap) -> Self {
        let mut c = Cursor {
            words: &wah.words,
            idx: 0,
            remaining: 0,
            value: 0,
            is_fill: false,
            fills: 0,
            literals: 0,
        };
        c.load();
        c
    }

    /// Loads the next word if the current run is exhausted. Returns
    /// `false` at end of stream.
    fn load(&mut self) -> bool {
        while self.remaining == 0 {
            let Some(&w) = self.words.get(self.idx) else {
                return false;
            };
            self.idx += 1;
            if w & 0x8000_0000 != 0 {
                self.is_fill = true;
                self.remaining = w & 0x3FFF_FFFF;
                self.value = if w & 0x4000_0000 != 0 {
                    LITERAL_MASK
                } else {
                    0
                };
                self.fills += 1;
            } else {
                self.is_fill = false;
                self.remaining = 1;
                self.value = w;
                self.literals += 1;
            }
        }
        true
    }

    #[inline]
    fn consume(&mut self, n: u32) {
        debug_assert!(n <= self.remaining);
        self.remaining -= n;
    }

    /// One-shot flush of this cursor's decode counts into the global
    /// registry.
    fn flush_metrics(&self) {
        #[cfg(not(feature = "obs-off"))]
        {
            obs::counter!("wah.ops.words_scanned").add(self.idx as u64);
            obs::counter!("wah.ops.fills_decoded").add(self.fills);
            obs::counter!("wah.ops.literals_decoded").add(self.literals);
        }
    }
}

/// Applies a word-wise binary operation to two WAH bitmaps of equal
/// logical length, producing a compressed result.
///
/// `op` receives 31-bit group payloads and must return a 31-bit payload
/// (e.g. `|a, b| a & b`).
///
/// # Panics
///
/// Panics if the operands have different logical lengths.
pub fn binary_op<F: Fn(u32, u32) -> u32>(a: &WahBitmap, b: &WahBitmap, op: F) -> WahBitmap {
    assert_eq!(
        a.len(),
        b.len(),
        "WAH logical op on different lengths: {} vs {}",
        a.len(),
        b.len()
    );
    let mut x = Cursor::new(a);
    let mut y = Cursor::new(b);
    let mut out = WahBuilder::with_capacity(a.num_words().max(b.num_words()));
    loop {
        let xa = x.load();
        let ya = y.load();
        if !xa || !ya {
            debug_assert_eq!(xa, ya, "operand group counts diverged");
            break;
        }
        if x.is_fill && y.is_fill {
            let n = x.remaining.min(y.remaining);
            out.append_group_n(op(x.value, y.value) & LITERAL_MASK, n);
            x.consume(n);
            y.consume(n);
        } else {
            out.append_group(op(x.value, y.value) & LITERAL_MASK);
            x.consume(1);
            y.consume(1);
        }
    }
    #[cfg(not(feature = "obs-off"))]
    obs::counter!("wah.ops.executed").inc();
    x.flush_metrics();
    y.flush_metrics();
    out.finish(a.len())
}

impl WahBitmap {
    /// Bitwise AND in the compressed domain.
    pub fn and(&self, other: &WahBitmap) -> WahBitmap {
        binary_op(self, other, |a, b| a & b)
    }

    /// Bitwise OR in the compressed domain.
    pub fn or(&self, other: &WahBitmap) -> WahBitmap {
        binary_op(self, other, |a, b| a | b)
    }

    /// Bitwise XOR in the compressed domain.
    pub fn xor(&self, other: &WahBitmap) -> WahBitmap {
        binary_op(self, other, |a, b| a ^ b)
    }

    /// Bitwise AND-NOT (`self & !other`) in the compressed domain.
    pub fn andnot(&self, other: &WahBitmap) -> WahBitmap {
        binary_op(self, other, |a, b| a & !b)
    }

    /// Bitwise NOT in the compressed domain. Bits beyond the logical
    /// length stay zero.
    pub fn not(&self) -> WahBitmap {
        let mut out = WahBuilder::with_capacity(self.num_words());
        let mut c = Cursor::new(self);
        while c.load() {
            let flipped = !c.value & LITERAL_MASK;
            if c.is_fill {
                let n = c.remaining;
                out.append_group_n(flipped, n);
                c.consume(n);
            } else {
                out.append_group(flipped);
                c.consume(1);
            }
        }
        #[cfg(not(feature = "obs-off"))]
        obs::counter!("wah.ops.executed").inc();
        c.flush_metrics();
        let mut res = out.finish(self.len());
        mask_tail(&mut res);
        res
    }

    /// OR of many bitmaps (the per-attribute bin union of a range
    /// query). Returns an all-zero bitmap of length `len` when `maps`
    /// is empty.
    ///
    /// Reduces pairwise as a balanced tree rather than a left fold:
    /// with w bins of compressed size m, the fold costs O(w²·m) because
    /// the accumulator keeps growing, the tree O(w·m·log w).
    pub fn or_many<'a, I: IntoIterator<Item = &'a WahBitmap>>(len: usize, maps: I) -> WahBitmap {
        let mut level: Vec<WahBitmap> = maps.into_iter().cloned().collect();
        if level.is_empty() {
            return WahBitmap::from_bitvec(&bitmap::BitVec::zeros(len));
        }
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            let mut it = level.chunks(2);
            for pair in &mut it {
                next.push(match pair {
                    [a, b] => a.or(b),
                    [a] => a.clone(),
                    _ => unreachable!(),
                });
            }
            level = next;
        }
        level.pop().expect("non-empty by construction")
    }
}

/// Clears any set bits in the final (partial) group beyond the logical
/// length — needed after NOT, which flips the padding.
fn mask_tail(wah: &mut WahBitmap) {
    let rem = wah.num_bits % GROUP_BITS;
    if rem == 0 || wah.num_bits == 0 {
        return;
    }
    let mask = (1u32 << rem) - 1;
    // The final group is the last group of the last run. Split it out,
    // mask it, and re-append.
    let Some(&last) = wah.words.last() else {
        return;
    };
    let num_bits = wah.num_bits;
    if last & 0x8000_0000 != 0 {
        let value = last & 0x4000_0000 != 0;
        let groups = last & 0x3FFF_FFFF;
        if !value {
            return; // zero fill already has a clean tail
        }
        wah.words.pop();
        let mut b = WahBuilder::with_capacity(2);
        if groups > 1 {
            b.append_fill(true, groups - 1);
        }
        b.append_group(LITERAL_MASK & mask);
        let tail = b.finish(0);
        wah.words.extend_from_slice(&tail.words);
    } else {
        let masked = last & mask;
        wah.words.pop();
        let mut b = WahBuilder::with_capacity(1);
        b.append_group(masked);
        let tail = b.finish(0);
        // Coalesce with preceding word if the masked literal became a
        // zero fill adjacent to another zero fill.
        if let (Some(&prev), Some(&t)) = (wah.words.last(), tail.words.first()) {
            if prev & 0xC000_0000 == 0x8000_0000 && t & 0xC000_0000 == 0x8000_0000 {
                let combined = (prev & 0x3FFF_FFFF) + (t & 0x3FFF_FFFF);
                if combined <= 0x3FFF_FFFF {
                    *wah.words.last_mut().unwrap() = 0x8000_0000 | combined;
                    wah.num_bits = num_bits;
                    return;
                }
            }
        }
        wah.words.extend_from_slice(&tail.words);
    }
    wah.num_bits = num_bits;
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitmap::BitVec;

    fn wah(len: usize, ones: &[usize]) -> WahBitmap {
        WahBitmap::from_ones(len, ones.iter().copied())
    }

    #[test]
    fn and_matches_uncompressed() {
        let a = wah(200, &[1, 40, 100, 150, 199]);
        let b = wah(200, &[1, 41, 100, 199]);
        assert_eq!(a.and(&b).iter_ones().collect::<Vec<_>>(), vec![1, 100, 199]);
    }

    #[test]
    fn or_matches_uncompressed() {
        let a = wah(200, &[1, 40]);
        let b = wah(200, &[41, 199]);
        assert_eq!(
            a.or(&b).iter_ones().collect::<Vec<_>>(),
            vec![1, 40, 41, 199]
        );
    }

    #[test]
    fn xor_and_andnot() {
        let a = wah(100, &[1, 2, 3]);
        let b = wah(100, &[2, 3, 4]);
        assert_eq!(a.xor(&b).iter_ones().collect::<Vec<_>>(), vec![1, 4]);
        assert_eq!(a.andnot(&b).iter_ones().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn ops_on_long_fills() {
        // Two sparse bitmaps with long zero fills between set regions.
        let a = wah(1_000_000, &[0, 500_000]);
        let b = wah(1_000_000, &[500_000, 999_999]);
        let and = a.and(&b);
        assert_eq!(and.iter_ones().collect::<Vec<_>>(), vec![500_000]);
        assert!(and.num_words() < 10);
        let or = a.or(&b);
        assert_eq!(
            or.iter_ones().collect::<Vec<_>>(),
            vec![0, 500_000, 999_999]
        );
    }

    #[test]
    fn op_result_is_coalesced() {
        // a has ones everywhere, b zeros everywhere → AND must be a
        // single zero fill, not a chain of words.
        let a = WahBitmap::from_bitvec(&BitVec::ones(31 * 100));
        let b = WahBitmap::from_bitvec(&BitVec::zeros(31 * 100));
        let and = a.and(&b);
        assert_eq!(and.num_words(), 1);
        assert_eq!(and.count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "different lengths")]
    fn length_mismatch_panics() {
        wah(10, &[]).and(&wah(11, &[]));
    }

    #[test]
    fn not_flips_and_masks_tail() {
        let a = wah(40, &[0, 39]);
        let n = a.not();
        assert_eq!(n.len(), 40);
        assert_eq!(n.count_ones(), 38);
        let ones: Vec<usize> = n.iter_ones().collect();
        assert!(!ones.contains(&0));
        assert!(!ones.contains(&39));
        assert!(ones.iter().all(|&p| p < 40));
    }

    #[test]
    fn not_of_zeros_is_all_ones() {
        let z = WahBitmap::from_bitvec(&BitVec::zeros(100));
        let n = z.not();
        assert_eq!(n.count_ones(), 100);
        assert_eq!(n.not().count_ones(), 0);
    }

    #[test]
    fn double_not_is_identity() {
        let a = wah(123, &[0, 1, 62, 93, 122]);
        assert_eq!(a.not().not().to_bitvec(), a.to_bitvec());
    }

    #[test]
    fn not_tail_inside_one_fill() {
        // 35 bits of all ones: one full one-group + partial group that
        // the encoder padded; NOT must produce all zeros.
        let a = WahBitmap::from_bitvec(&BitVec::ones(35));
        let n = a.not();
        assert_eq!(n.count_ones(), 0);
        assert_eq!(n.len(), 35);
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn ops_flush_decode_counters() {
        let words = obs::global().counter("wah.ops.words_scanned");
        let fills = obs::global().counter("wah.ops.fills_decoded");
        let lits = obs::global().counter("wah.ops.literals_decoded");
        let (w0, f0, l0) = (words.get(), fills.get(), lits.get());
        // Sparse megabit bitmaps: mostly fills, a few literals.
        let a = wah(1_000_000, &[0, 500_000]);
        let b = wah(1_000_000, &[500_000, 999_999]);
        let scanned = (a.num_words() + b.num_words()) as u64;
        let _ = a.and(&b);
        // >= not ==: other tests in this binary run ops concurrently.
        assert!(words.get() - w0 >= scanned);
        assert!(fills.get() > f0, "no fill decodes counted");
        assert!(lits.get() > l0, "no literal decodes counted");
    }

    #[test]
    fn or_many_unions_bins() {
        let maps = [wah(50, &[1]), wah(50, &[2]), wah(50, &[3])];
        let u = WahBitmap::or_many(50, maps.iter());
        assert_eq!(u.iter_ones().collect::<Vec<_>>(), vec![1, 2, 3]);
        let empty = WahBitmap::or_many(50, []);
        assert_eq!(empty.len(), 50);
        assert_eq!(empty.count_ones(), 0);
    }
}
