//! The Word-Aligned Hybrid (WAH) compressed bitmap representation.
//!
//! WAH (Wu, Otoo, Shoshani) stores a bitmap as a sequence of 32-bit
//! words of two kinds (paper §2.2.1):
//!
//! * **literal** — most significant bit 0; the lower 31 bits carry 31
//!   verbatim bitmap bits.
//! * **fill** — most significant bit 1; the second most significant bit
//!   is the fill value; the remaining 30 bits count how many 31-bit
//!   groups the fill spans.
//!
//! The word alignment of fills is what lets logical operations work on
//! whole words without bit-level shifting — and also what destroys
//! direct access: locating bit *i* requires scanning the word stream.
//! [`WahBitmap::get`] implements that scan so the cost the paper
//! describes is measurable.

use bitmap::BitVec;
use serde::{Deserialize, Serialize};

/// Bits carried by one literal word / one fill group.
pub const GROUP_BITS: usize = 31;
/// Mask of the 31 payload bits of a literal word.
pub const LITERAL_MASK: u32 = 0x7FFF_FFFF;
/// Flag bit distinguishing fill words from literal words.
const FILL_FLAG: u32 = 0x8000_0000;
/// Fill-value bit of a fill word.
const FILL_BIT: u32 = 0x4000_0000;
/// Maximum group count representable in one fill word.
const MAX_FILL: u32 = 0x3FFF_FFFF;

/// A WAH-compressed bitmap.
///
/// # Examples
///
/// ```
/// use bitmap::BitVec;
/// use wah::WahBitmap;
///
/// let bv = BitVec::from_ones(100_000, [5usize, 70_000]);
/// let wah = WahBitmap::from_bitvec(&bv);
/// assert!(wah.size_bytes() < bv.size_bytes());      // sparse → compresses
/// assert_eq!(wah.to_bitvec(), bv);                  // lossless
/// assert!(wah.get(70_000) && !wah.get(70_001));     // O(words) scan
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WahBitmap {
    pub(crate) words: Vec<u32>,
    pub(crate) num_bits: usize,
}

impl WahBitmap {
    /// An empty bitmap of zero logical length.
    pub fn new() -> Self {
        WahBitmap {
            words: Vec::new(),
            num_bits: 0,
        }
    }

    /// Compresses a verbatim bit vector.
    pub fn from_bitvec(bv: &BitVec) -> Self {
        let num_bits = bv.len();
        let groups = num_bits.div_ceil(GROUP_BITS);
        let mut out = WahBuilder::with_capacity(groups / 4 + 1);
        let words = bv.words();
        for g in 0..groups {
            out.append_group(extract_group(words, g * GROUP_BITS));
        }
        out.finish(num_bits)
    }

    /// Compresses a bitmap of `len` bits given its set positions.
    pub fn from_ones<I: IntoIterator<Item = usize>>(len: usize, ones: I) -> Self {
        Self::from_bitvec(&BitVec::from_ones(len, ones))
    }

    /// Decompresses back to a verbatim bit vector.
    pub fn to_bitvec(&self) -> BitVec {
        let mut bv = BitVec::zeros(self.num_bits);
        let mut base = 0usize;
        for run in self.runs() {
            match run {
                Run::Fill { value, groups } => {
                    if value {
                        let end = (base + groups as usize * GROUP_BITS).min(self.num_bits);
                        for i in base..end {
                            bv.set(i);
                        }
                    }
                    base += groups as usize * GROUP_BITS;
                }
                Run::Literal(w) => {
                    let end = (base + GROUP_BITS).min(self.num_bits);
                    let mut bits = w;
                    while bits != 0 {
                        let tz = bits.trailing_zeros() as usize;
                        if base + tz < end {
                            bv.set(base + tz);
                        }
                        bits &= bits - 1;
                    }
                    base += GROUP_BITS;
                }
            }
        }
        bv
    }

    /// Logical (uncompressed) length in bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.num_bits
    }

    /// `true` when the logical length is zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.num_bits == 0
    }

    /// Compressed size in bytes (4 bytes per stored word).
    pub fn size_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u32>()
    }

    /// Number of stored 32-bit words.
    pub fn num_words(&self) -> usize {
        self.words.len()
    }

    /// Raw word stream (literal / fill encoding as documented above).
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Number of set bits, counted from the compressed form.
    pub fn count_ones(&self) -> usize {
        let mut total = 0usize;
        let mut base = 0usize;
        for run in self.runs() {
            match run {
                Run::Fill { value, groups } => {
                    let span = groups as usize * GROUP_BITS;
                    if value {
                        total += span.min(self.num_bits - base);
                    }
                    base += span;
                }
                Run::Literal(w) => {
                    // Trailing literal may be partial; mask to num_bits.
                    let valid = (self.num_bits - base).min(GROUP_BITS);
                    let mask = if valid == GROUP_BITS {
                        LITERAL_MASK
                    } else {
                        (1u32 << valid) - 1
                    };
                    total += (w & mask).count_ones() as usize;
                    base += GROUP_BITS;
                }
            }
        }
        total
    }

    /// Reads bit `pos` by scanning the word stream — the operation whose
    /// cost motivates the Approximate Bitmap: O(compressed words), not
    /// O(1).
    ///
    /// # Panics
    ///
    /// Panics if `pos >= len`.
    pub fn get(&self, pos: usize) -> bool {
        assert!(
            pos < self.num_bits,
            "bit {pos} out of range {}",
            self.num_bits
        );
        let target_group = pos / GROUP_BITS;
        let offset = pos % GROUP_BITS;
        let mut group = 0usize;
        for run in self.runs() {
            match run {
                Run::Fill { value, groups } => {
                    if target_group < group + groups as usize {
                        return value;
                    }
                    group += groups as usize;
                }
                Run::Literal(w) => {
                    if target_group == group {
                        return (w >> offset) & 1 == 1;
                    }
                    group += 1;
                }
            }
        }
        unreachable!("group accounting covered all bits")
    }

    /// Iterates over the word stream as decoded runs.
    pub fn runs(&self) -> impl Iterator<Item = Run> + '_ {
        self.words.iter().map(|&w| {
            if w & FILL_FLAG != 0 {
                Run::Fill {
                    value: w & FILL_BIT != 0,
                    groups: w & MAX_FILL,
                }
            } else {
                Run::Literal(w)
            }
        })
    }

    /// Iterates over the positions of set bits in increasing order,
    /// without decompressing.
    pub fn iter_ones(&self) -> WahOnes<'_> {
        WahOnes {
            wah: self,
            word_idx: 0,
            base: 0,
            pending_literal: 0,
            fill_end: 0,
            fill_pos: 0,
        }
    }

    /// Compression ratio: compressed bytes / verbatim bytes.
    pub fn compression_ratio(&self) -> f64 {
        if self.num_bits == 0 {
            return 0.0;
        }
        self.size_bytes() as f64 / (self.num_bits as f64 / 8.0)
    }
}

impl Default for WahBitmap {
    fn default() -> Self {
        Self::new()
    }
}

/// A decoded WAH run: either one literal group or a multi-group fill.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Run {
    /// A fill of `groups` consecutive 31-bit groups of all-`value` bits.
    Fill {
        /// The repeated bit value.
        value: bool,
        /// Number of 31-bit groups spanned.
        groups: u32,
    },
    /// A single 31-bit literal group (payload in the low 31 bits).
    Literal(u32),
}

/// Iterator over set-bit positions of a [`WahBitmap`].
pub struct WahOnes<'a> {
    wah: &'a WahBitmap,
    word_idx: usize,
    /// Bit position of the start of the current word's coverage.
    base: usize,
    /// Remaining set bits of the current literal (shifted copy).
    pending_literal: u32,
    /// One-fill currently being emitted: [fill_pos, fill_end).
    fill_end: usize,
    fill_pos: usize,
}

impl Iterator for WahOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            // Drain an in-progress one-fill.
            if self.fill_pos < self.fill_end {
                let p = self.fill_pos;
                self.fill_pos += 1;
                if p < self.wah.num_bits {
                    return Some(p);
                }
                continue;
            }
            // Drain an in-progress literal.
            if self.pending_literal != 0 {
                let tz = self.pending_literal.trailing_zeros() as usize;
                self.pending_literal &= self.pending_literal - 1;
                let p = self.base - GROUP_BITS + tz;
                if p < self.wah.num_bits {
                    return Some(p);
                }
                continue;
            }
            // Load the next word.
            let w = *self.wah.words.get(self.word_idx)?;
            self.word_idx += 1;
            if w & FILL_FLAG != 0 {
                let groups = (w & MAX_FILL) as usize;
                let span = groups * GROUP_BITS;
                if w & FILL_BIT != 0 {
                    self.fill_pos = self.base;
                    self.fill_end = self.base + span;
                }
                self.base += span;
            } else {
                self.base += GROUP_BITS;
                self.pending_literal = w;
            }
        }
    }
}

/// Extracts the 31-bit group starting at `bit_pos` from 64-bit words;
/// bits beyond the words are zero.
#[inline]
pub(crate) fn extract_group(words: &[u64], bit_pos: usize) -> u32 {
    let w = bit_pos / 64;
    if w >= words.len() {
        return 0;
    }
    let o = bit_pos % 64;
    let lo = words[w] >> o;
    let hi = if o > 64 - GROUP_BITS && w + 1 < words.len() {
        words[w + 1] << (64 - o)
    } else {
        0
    };
    ((lo | hi) as u32) & LITERAL_MASK
}

/// Incrementally builds a WAH word stream with run coalescing.
#[derive(Clone, Debug)]
pub struct WahBuilder {
    words: Vec<u32>,
}

impl WahBuilder {
    /// Creates a builder with pre-reserved word capacity.
    pub fn with_capacity(cap: usize) -> Self {
        WahBuilder {
            words: Vec::with_capacity(cap),
        }
    }

    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Appends one 31-bit group, choosing literal or fill encoding and
    /// coalescing with the previous word where possible.
    #[inline]
    pub fn append_group(&mut self, group: u32) {
        debug_assert_eq!(group & !LITERAL_MASK, 0, "group exceeds 31 bits");
        match group {
            0 => self.append_fill(false, 1),
            LITERAL_MASK => self.append_fill(true, 1),
            w => self.words.push(w),
        }
    }

    /// Appends `count` identical fill groups of `value`, coalescing.
    pub fn append_fill(&mut self, value: bool, mut count: u32) {
        if count == 0 {
            return;
        }
        let vbit = if value { FILL_BIT } else { 0 };
        if let Some(last) = self.words.last_mut() {
            if *last & (FILL_FLAG | FILL_BIT) == FILL_FLAG | vbit {
                let existing = *last & MAX_FILL;
                let take = count.min(MAX_FILL - existing);
                *last += take;
                count -= take;
            }
        }
        while count > 0 {
            let take = count.min(MAX_FILL);
            self.words.push(FILL_FLAG | vbit | take);
            count -= take;
        }
    }

    /// Appends `count` copies of an arbitrary group value.
    pub fn append_group_n(&mut self, group: u32, count: u32) {
        match group {
            0 => self.append_fill(false, count),
            LITERAL_MASK => self.append_fill(true, count),
            w => {
                for _ in 0..count {
                    self.words.push(w);
                }
            }
        }
    }

    /// Finalizes the stream with the logical bit length.
    pub fn finish(self, num_bits: usize) -> WahBitmap {
        WahBitmap {
            words: self.words,
            num_bits,
        }
    }
}

impl Default for WahBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_bitmap() {
        let w = WahBitmap::new();
        assert_eq!(w.len(), 0);
        assert_eq!(w.count_ones(), 0);
        assert!(w.iter_ones().next().is_none());
    }

    #[test]
    fn roundtrip_small() {
        let bv = BitVec::from_ones(10, [0, 3, 9]);
        let w = WahBitmap::from_bitvec(&bv);
        assert_eq!(w.to_bitvec(), bv);
        assert_eq!(w.count_ones(), 3);
    }

    #[test]
    fn roundtrip_exact_group_boundary() {
        for len in [31usize, 62, 93, 64, 128] {
            let bv = BitVec::from_ones(len, [0, len - 1]);
            let w = WahBitmap::from_bitvec(&bv);
            assert_eq!(w.to_bitvec(), bv, "len {len}");
        }
    }

    #[test]
    fn zero_run_compresses_to_one_fill() {
        let bv = BitVec::zeros(31 * 1000);
        let w = WahBitmap::from_bitvec(&bv);
        assert_eq!(w.num_words(), 1);
        let first = w.runs().next().unwrap();
        match first {
            Run::Fill { value, groups } => {
                assert!(!value);
                assert_eq!(groups, 1000);
            }
            r => panic!("expected fill, got {r:?}"),
        }
    }

    #[test]
    fn one_run_compresses_to_one_fill() {
        let bv = BitVec::ones(31 * 50);
        let w = WahBitmap::from_bitvec(&bv);
        assert_eq!(w.num_words(), 1);
        assert_eq!(w.count_ones(), 31 * 50);
    }

    #[test]
    fn alternating_bits_stay_literal() {
        let bv = BitVec::from_ones(31 * 4, (0..31 * 4).step_by(2));
        let w = WahBitmap::from_bitvec(&bv);
        assert_eq!(w.num_words(), 4); // no compression possible
        assert_eq!(w.to_bitvec(), bv);
    }

    #[test]
    fn get_matches_bitvec() {
        let bv = BitVec::from_ones(500, [0, 31, 62, 100, 311, 499]);
        let w = WahBitmap::from_bitvec(&bv);
        for i in 0..500 {
            assert_eq!(w.get(i), bv.get(i), "bit {i}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        WahBitmap::from_bitvec(&BitVec::zeros(10)).get(10);
    }

    #[test]
    fn iter_ones_matches_bitvec() {
        let ones = [0usize, 5, 30, 31, 32, 61, 62, 93, 200, 930, 931];
        let bv = BitVec::from_ones(1000, ones);
        let w = WahBitmap::from_bitvec(&bv);
        assert_eq!(w.iter_ones().collect::<Vec<_>>(), ones.to_vec());
    }

    #[test]
    fn iter_ones_through_one_fill() {
        let bv = BitVec::ones(100);
        let w = WahBitmap::from_bitvec(&bv);
        assert_eq!(
            w.iter_ones().collect::<Vec<_>>(),
            (0..100).collect::<Vec<_>>()
        );
    }

    #[test]
    fn count_ones_with_partial_tail_group() {
        // 40 bits: one full group + 9-bit tail, all ones.
        let bv = BitVec::ones(40);
        let w = WahBitmap::from_bitvec(&bv);
        assert_eq!(w.count_ones(), 40);
    }

    #[test]
    fn sparse_bitmap_compresses() {
        let bv = BitVec::from_ones(1_000_000, (0..1_000_000).step_by(50_000));
        let w = WahBitmap::from_bitvec(&bv);
        assert!(w.size_bytes() < 1_000_000 / 8 / 100);
        assert!(w.compression_ratio() < 0.01);
    }

    #[test]
    fn builder_coalesces_fills() {
        let mut b = WahBuilder::new();
        b.append_fill(false, 3);
        b.append_fill(false, 4);
        b.append_fill(true, 2);
        let w = b.finish(31 * 9);
        assert_eq!(w.num_words(), 2);
        assert_eq!(w.count_ones(), 62);
    }

    #[test]
    fn builder_fill_overflow_splits_words() {
        let mut b = WahBuilder::new();
        b.append_fill(false, MAX_FILL);
        b.append_fill(false, 5);
        let w = b.finish((MAX_FILL as usize + 5) * GROUP_BITS);
        assert_eq!(w.num_words(), 2);
        let runs: Vec<Run> = w.runs().collect();
        assert_eq!(
            runs,
            vec![
                Run::Fill {
                    value: false,
                    groups: MAX_FILL
                },
                Run::Fill {
                    value: false,
                    groups: 5
                }
            ]
        );
    }

    #[test]
    fn extract_group_spans_word_boundary() {
        // Set bits 60..70 in a 128-bit vector; group 1 covers bits 31..62,
        // group 2 covers bits 62..93.
        let bv = BitVec::from_ones(128, 60..70);
        let g1 = extract_group(bv.words(), 31);
        let g2 = extract_group(bv.words(), 62);
        // Bits 60,61 → positions 29,30 of group 1.
        assert_eq!(g1, (1 << 29) | (1 << 30));
        // Bits 62..70 → positions 0..8 of group 2.
        assert_eq!(g2, 0xFF);
    }
}
