//! Run-length bitmap compression baselines: WAH and BBC.
//!
//! This crate implements the two compression schemes the paper's
//! background covers (§2.2.1) and that the evaluation compares the
//! Approximate Bitmap against:
//!
//! * [`WahBitmap`] — the Word-Aligned Hybrid code of Wu, Otoo and
//!   Shoshani: 32-bit literal/fill words, compressed-domain
//!   AND/OR/XOR/NOT, the fastest-query run-length scheme and the
//!   paper's primary baseline.
//! * [`BbcBitmap`] — a Byte-aligned Bitmap Code variant: better
//!   compression, slower operations.
//!
//! Both types deliberately expose [`WahBitmap::get`] / [`BbcBitmap::get`]
//! as stream scans: run-length encoding loses direct access, which is
//! precisely the deficiency the Approximate Bitmap addresses.
//!
//! # Example: the classic bitmap query plan
//!
//! ```
//! use bitmap::BitVec;
//! use wah::WahBitmap;
//!
//! // Two bin bitmaps of one attribute and a row-range mask.
//! let bin1 = WahBitmap::from_ones(1000, (0..1000).step_by(3));
//! let bin2 = WahBitmap::from_ones(1000, (1..1000).step_by(3));
//! let mask = WahBitmap::from_bitvec(&BitVec::from_ones(1000, 100..200));
//!
//! // attribute IN {bin1, bin2} AND row IN [100, 200)
//! let result = bin1.or(&bin2).and(&mask);
//! assert_eq!(result.count_ones(), 67);
//! ```

#![warn(missing_docs)]

pub mod bbc;
pub mod encode;
pub mod ewah;
pub mod index;
pub mod ops;

pub use bbc::{BbcBitmap, ByteRun};
pub use encode::{Run, WahBitmap, WahBuilder, GROUP_BITS, LITERAL_MASK};
pub use ewah::EwahBitmap;
pub use index::{WahAttribute, WahIndex};
pub use ops::binary_op;
