//! EWAH — the Enhanced Word-Aligned Hybrid code.
//!
//! EWAH (Lemire, Kaser, Aouiche; the format inside git's bitmap
//! index) is WAH's 64-bit descendant. The stream alternates *marker*
//! words and runs of verbatim *literal* words:
//!
//! ```text
//! marker: bit 0      — value of the clean run (all-0 / all-1 words)
//!         bits 1..33 — clean run length, in 64-bit words
//!         bits 33..64— number of literal words following the marker
//! ```
//!
//! Compared with WAH, EWAH never splits a machine word (no 31-bit
//! groups), wastes no flag bit per literal, and can skip whole literal
//! runs during operations — at the cost of one marker word even for
//! isolated literals. It rounds out the run-length family next to
//! [`crate::WahBitmap`] and [`crate::BbcBitmap`].

use bitmap::BitVec;
use serde::{Deserialize, Serialize};

/// Maximum clean-run length per marker (32 bits of count).
const MAX_RUN: u64 = (1 << 32) - 1;
/// Maximum literal words per marker (31 bits of count).
const MAX_LIT: u64 = (1 << 31) - 1;

/// An EWAH-compressed bitmap.
///
/// # Examples
///
/// ```
/// use bitmap::BitVec;
/// use wah::EwahBitmap;
///
/// let bv = BitVec::from_ones(1_000_000, [5usize, 700_000]);
/// let e = EwahBitmap::from_bitvec(&bv);
/// assert!(e.size_bytes() < bv.size_bytes() / 100);
/// assert_eq!(e.to_bitvec(), bv);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EwahBitmap {
    words: Vec<u64>,
    num_bits: usize,
}

/// A decoded EWAH segment: one marker's clean run plus its literals.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Segment {
    run_value: bool,
    run_words: u64,
    literal_words: u32,
}

#[inline]
fn marker(run_value: bool, run_words: u64, literal_words: u64) -> u64 {
    debug_assert!(run_words <= MAX_RUN && literal_words <= MAX_LIT);
    (run_value as u64) | (run_words << 1) | (literal_words << 33)
}

#[inline]
fn parse_marker(w: u64) -> Segment {
    Segment {
        run_value: w & 1 == 1,
        run_words: (w >> 1) & MAX_RUN,
        literal_words: (w >> 33) as u32,
    }
}

impl EwahBitmap {
    /// An empty bitmap.
    pub fn new() -> Self {
        EwahBitmap {
            words: Vec::new(),
            num_bits: 0,
        }
    }

    /// Compresses a verbatim bit vector.
    pub fn from_bitvec(bv: &BitVec) -> Self {
        let num_bits = bv.len();
        let n_words = num_bits.div_ceil(64);
        let src = bv.words();
        let word_at = |i: usize| -> u64 { src.get(i).copied().unwrap_or(0) };
        // Mask of valid bits in the final word.
        let tail_mask = if num_bits.is_multiple_of(64) {
            u64::MAX
        } else {
            (1u64 << (num_bits % 64)) - 1
        };
        let get = |i: usize| -> u64 {
            let w = word_at(i);
            if i + 1 == n_words {
                w & tail_mask
            } else {
                w
            }
        };

        let mut out = Vec::new();
        let mut i = 0usize;
        while i < n_words {
            // Measure the clean run (prefer the first word's kind).
            let first = get(i);
            let run_value = first == u64::MAX;
            let clean = |w: u64| -> bool { w == if run_value { u64::MAX } else { 0 } };
            let mut run = 0u64;
            while i < n_words && clean(get(i)) && run < MAX_RUN {
                run += 1;
                i += 1;
            }
            // Collect following literal words (stop at the next clean
            // pair to let the next marker take over; a single clean
            // word between literals is cheaper kept literal only if it
            // is not extendable, so we stop at any clean word — simple
            // and canonical).
            let lit_start = i;
            while i < n_words && ((i - lit_start) as u64) < MAX_LIT {
                let w = get(i);
                if w == 0 || w == u64::MAX {
                    break;
                }
                i += 1;
            }
            let lits = (i - lit_start) as u64;
            if run == 0 && lits == 0 {
                // A clean word of the *other* kind than `run_value`
                // guessed: loop again with correct kind.
                // get(i) is clean (0 or MAX) but not matching run_value
                // guess; since run_value was derived from get(i) this
                // cannot happen — defensive break.
                unreachable!("encoder made no progress");
            }
            out.push(marker(run_value, run, lits));
            out.extend((lit_start..i).map(get));
        }
        EwahBitmap {
            words: out,
            num_bits,
        }
    }

    /// Compresses a bitmap of `len` bits given its set positions.
    pub fn from_ones<I: IntoIterator<Item = usize>>(len: usize, ones: I) -> Self {
        Self::from_bitvec(&BitVec::from_ones(len, ones))
    }

    /// Decompresses back to a verbatim bit vector.
    pub fn to_bitvec(&self) -> BitVec {
        let mut words = Vec::with_capacity(self.num_bits.div_ceil(64));
        let mut i = 0usize;
        while i < self.words.len() {
            let seg = parse_marker(self.words[i]);
            i += 1;
            let fill = if seg.run_value { u64::MAX } else { 0 };
            words.extend(std::iter::repeat_n(fill, seg.run_words as usize));
            for _ in 0..seg.literal_words {
                words.push(self.words[i]);
                i += 1;
            }
        }
        words.resize(self.num_bits.div_ceil(64), 0);
        BitVec::from_words(words, self.num_bits)
    }

    /// Logical length in bits.
    pub fn len(&self) -> usize {
        self.num_bits
    }

    /// `true` when the logical length is zero.
    pub fn is_empty(&self) -> bool {
        self.num_bits == 0
    }

    /// Compressed size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Number of set bits, from the compressed form.
    pub fn count_ones(&self) -> usize {
        let mut total = 0usize;
        let mut bit_base = 0usize;
        let mut i = 0usize;
        while i < self.words.len() {
            let seg = parse_marker(self.words[i]);
            i += 1;
            let run_bits = seg.run_words as usize * 64;
            if seg.run_value {
                total += run_bits.min(self.num_bits.saturating_sub(bit_base));
            }
            bit_base += run_bits;
            for _ in 0..seg.literal_words {
                total += self.words[i].count_ones() as usize;
                i += 1;
                bit_base += 64;
            }
        }
        total
    }

    /// Reads bit `pos` by scanning the marker stream — like WAH, no
    /// direct access, but markers let whole literal runs be skipped.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= len`.
    pub fn get(&self, pos: usize) -> bool {
        assert!(
            pos < self.num_bits,
            "bit {pos} out of range {}",
            self.num_bits
        );
        let target_word = pos / 64;
        let bit = pos % 64;
        let mut word_base = 0usize;
        let mut i = 0usize;
        while i < self.words.len() {
            let seg = parse_marker(self.words[i]);
            i += 1;
            if target_word < word_base + seg.run_words as usize {
                return seg.run_value;
            }
            word_base += seg.run_words as usize;
            let lits = seg.literal_words as usize;
            if target_word < word_base + lits {
                // Jump straight into the literal block.
                let w = self.words[i + (target_word - word_base)];
                return w >> bit & 1 == 1;
            }
            i += lits;
            word_base += lits;
        }
        false // trailing zero words are implicit
    }

    /// Iterates set-bit positions in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        let mut positions = Vec::new();
        // EWAH iteration is simplest via segment walk; bounded by the
        // number of set bits, so collecting is linear in output size.
        let mut bit_base = 0usize;
        let mut i = 0usize;
        while i < self.words.len() {
            let seg = parse_marker(self.words[i]);
            i += 1;
            if seg.run_value {
                let end = (bit_base + seg.run_words as usize * 64).min(self.num_bits);
                positions.extend(bit_base..end);
            }
            bit_base += seg.run_words as usize * 64;
            for _ in 0..seg.literal_words {
                let mut w = self.words[i];
                i += 1;
                while w != 0 {
                    let tz = w.trailing_zeros() as usize;
                    w &= w - 1;
                    if bit_base + tz < self.num_bits {
                        positions.push(bit_base + tz);
                    }
                }
                bit_base += 64;
            }
        }
        positions.into_iter()
    }

    /// Word-wise binary operation in the compressed domain.
    fn binary_op<F: Fn(u64, u64) -> u64>(&self, other: &EwahBitmap, op: F) -> EwahBitmap {
        assert_eq!(
            self.num_bits, other.num_bits,
            "EWAH logical op on different lengths"
        );
        let mut xa = WordCursor::new(self);
        let mut xb = WordCursor::new(other);
        let n_words = self.num_bits.div_ceil(64);
        // Produce the result as raw words, then re-encode: EWAH's
        // markers make streaming merge bookkeeping heavy; for this
        // library the simple route is exact and still O(words).
        let mut raw = Vec::with_capacity(n_words);
        for _ in 0..n_words {
            raw.push(op(xa.next_word(), xb.next_word()));
        }
        let mut bv = BitVec::from_words(raw, n_words * 64);
        if bv.len() != self.num_bits {
            // Rebuild at the exact logical length.
            let mut exact = BitVec::zeros(self.num_bits);
            for p in bv.iter_ones().filter(|&p| p < self.num_bits) {
                exact.set(p);
            }
            bv = exact;
        }
        EwahBitmap::from_bitvec(&bv)
    }

    /// Bitwise AND.
    pub fn and(&self, other: &EwahBitmap) -> EwahBitmap {
        self.binary_op(other, |a, b| a & b)
    }

    /// Bitwise OR.
    pub fn or(&self, other: &EwahBitmap) -> EwahBitmap {
        self.binary_op(other, |a, b| a | b)
    }

    /// Bitwise XOR.
    pub fn xor(&self, other: &EwahBitmap) -> EwahBitmap {
        self.binary_op(other, |a, b| a ^ b)
    }
}

impl Default for EwahBitmap {
    fn default() -> Self {
        Self::new()
    }
}

/// Streams the decompressed 64-bit words of an EWAH bitmap.
struct WordCursor<'a> {
    words: &'a [u64],
    idx: usize,
    run_left: u64,
    run_fill: u64,
    lits_left: u32,
}

impl<'a> WordCursor<'a> {
    fn new(e: &'a EwahBitmap) -> Self {
        WordCursor {
            words: &e.words,
            idx: 0,
            run_left: 0,
            run_fill: 0,
            lits_left: 0,
        }
    }

    fn next_word(&mut self) -> u64 {
        loop {
            if self.run_left > 0 {
                self.run_left -= 1;
                return self.run_fill;
            }
            if self.lits_left > 0 {
                self.lits_left -= 1;
                let w = self.words[self.idx];
                self.idx += 1;
                return w;
            }
            if self.idx >= self.words.len() {
                return 0; // implicit trailing zeros
            }
            let seg = parse_marker(self.words[self.idx]);
            self.idx += 1;
            self.run_left = seg.run_words;
            self.run_fill = if seg.run_value { u64::MAX } else { 0 };
            self.lits_left = seg.literal_words;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty() {
        let e = EwahBitmap::new();
        assert_eq!(e.len(), 0);
        assert_eq!(e.count_ones(), 0);
    }

    #[test]
    fn roundtrip_patterns() {
        for (len, ones) in [
            (10usize, vec![0usize, 9]),
            (64, vec![0, 63]),
            (65, vec![64]),
            (1000, (0..1000).step_by(3).collect()),
            (1000, vec![]),
            (1000, (0..1000).collect()),
        ] {
            let bv = BitVec::from_ones(len, ones);
            let e = EwahBitmap::from_bitvec(&bv);
            assert_eq!(e.to_bitvec(), bv, "len {len}");
            assert_eq!(e.count_ones(), bv.count_ones(), "len {len}");
        }
    }

    #[test]
    fn long_runs_compress_to_two_words() {
        let e = EwahBitmap::from_bitvec(&BitVec::zeros(64 * 10_000));
        assert_eq!(e.size_bytes(), 8); // one marker
        let e1 = EwahBitmap::from_bitvec(&BitVec::ones(64 * 10_000));
        assert_eq!(e1.size_bytes(), 8);
        assert_eq!(e1.count_ones(), 64 * 10_000);
    }

    #[test]
    fn get_matches_bitvec() {
        let bv = BitVec::from_ones(500, [0, 63, 64, 127, 128, 300, 499]);
        let e = EwahBitmap::from_bitvec(&bv);
        for i in 0..500 {
            assert_eq!(e.get(i), bv.get(i), "bit {i}");
        }
    }

    #[test]
    fn iter_ones_matches() {
        let ones = vec![1usize, 63, 64, 65, 200, 449];
        let bv = BitVec::from_ones(450, ones.clone());
        let e = EwahBitmap::from_bitvec(&bv);
        assert_eq!(e.iter_ones().collect::<Vec<_>>(), ones);
    }

    #[test]
    fn ops_match_bitvec() {
        let a = BitVec::from_ones(1000, (0..1000).step_by(7));
        let b = BitVec::from_ones(1000, (0..1000).step_by(5));
        let (ea, eb) = (EwahBitmap::from_bitvec(&a), EwahBitmap::from_bitvec(&b));
        assert_eq!(ea.and(&eb).to_bitvec(), a.and(&b));
        assert_eq!(ea.or(&eb).to_bitvec(), a.or(&b));
        assert_eq!(ea.xor(&eb).to_bitvec(), a.xor(&b));
    }

    #[test]
    fn ewah_denser_than_wah_on_incompressible_data() {
        // Dense alternating bits: nothing to run-length. WAH pays a
        // flag bit per 31 payload bits (~3.2% overhead); EWAH stores
        // whole 64-bit literals behind one marker.
        let bv = BitVec::from_ones(64 * 1000, (0..64 * 1000).step_by(2));
        let e = EwahBitmap::from_bitvec(&bv);
        let w = crate::WahBitmap::from_bitvec(&bv);
        assert!(
            e.size_bytes() < w.size_bytes(),
            "ewah {} vs wah {}",
            e.size_bytes(),
            w.size_bytes()
        );
        // And within 1% of the verbatim size.
        assert!(e.size_bytes() as f64 <= bv.size_bytes() as f64 * 1.01);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range() {
        EwahBitmap::from_bitvec(&BitVec::zeros(5)).get(5);
    }
}
