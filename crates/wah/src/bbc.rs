//! A BBC-style byte-aligned run-length bitmap codec.
//!
//! The Byte-aligned Bitmap Code (Antoshenkov) is the other classic
//! run-length scheme the paper discusses (§2.2.1): it stores compressed
//! data in bytes rather than words, compresses better than WAH, and is
//! 2–20× slower to operate on. This module implements a faithful
//! *simplified* variant (documented in DESIGN.md): the stream is a
//! sequence of atoms, each
//!
//! ```text
//! header byte:  f gggg llll   (big-endian bit order)
//!   f    — fill value of the gap (1 bit)
//!   ggg  — gap length in bytes, 0..=6; 7 = escape, gap length follows
//!          as a LEB128 varint
//!   llll — number of verbatim literal bytes following the header, 0..=15
//! ```
//!
//! i.e. a run of `gap` fill bytes followed by `lit` literal bytes. This
//! keeps BBC's two essential properties relative to WAH — finer (byte)
//! alignment giving better compression, and more per-unit decode work
//! giving slower operations — which is all the baseline comparison
//! needs.

use bitmap::BitVec;
use serde::{Deserialize, Serialize};

/// Gap-length escape marker in the header's 3-bit gap field.
const GAP_ESCAPE: u8 = 7;
/// Max literal bytes per atom.
const MAX_LIT: usize = 15;

/// A BBC-style compressed bitmap.
///
/// # Examples
///
/// ```
/// use bitmap::BitVec;
/// use wah::BbcBitmap;
///
/// let bv = BitVec::from_ones(80_000, [3usize, 40_000, 79_999]);
/// let bbc = BbcBitmap::from_bitvec(&bv);
/// assert_eq!(bbc.to_bitvec(), bv);
/// assert!(bbc.size_bytes() < bv.size_bytes());
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BbcBitmap {
    bytes: Vec<u8>,
    num_bits: usize,
}

impl BbcBitmap {
    /// Compresses a verbatim bit vector.
    pub fn from_bitvec(bv: &BitVec) -> Self {
        let num_bits = bv.len();
        let num_bytes = num_bits.div_ceil(8);
        // Materialize the bitmap as bytes (LSB-first within each byte,
        // consistent with BitVec's bit order).
        let mut raw = Vec::with_capacity(num_bytes);
        let words = bv.words();
        for i in 0..num_bytes {
            let w = i / 8;
            let o = (i % 8) * 8;
            raw.push(((words.get(w).copied().unwrap_or(0) >> o) & 0xFF) as u8);
        }

        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos < raw.len() {
            // Measure the gap: run of identical 0x00 or 0xFF bytes.
            let fill_val = match raw[pos] {
                0x00 => Some(false),
                0xFF => Some(true),
                _ => None,
            };
            let (fill, gap) = match fill_val {
                Some(v) => {
                    let target = if v { 0xFF } else { 0x00 };
                    let mut g = 0usize;
                    while pos + g < raw.len() && raw[pos + g] == target {
                        g += 1;
                    }
                    (v, g)
                }
                None => (false, 0usize),
            };
            pos += gap;
            // Collect following literal bytes (non-fill), up to MAX_LIT.
            let lit_start = pos;
            while pos < raw.len()
                && pos - lit_start < MAX_LIT
                && raw[pos] != 0x00
                && raw[pos] != 0xFF
            {
                pos += 1;
            }
            let lits = &raw[lit_start..pos];
            Self::push_atom(&mut out, fill, gap, lits);
        }
        BbcBitmap {
            bytes: out,
            num_bits,
        }
    }

    /// Compresses a bitmap of `len` bits given its set positions.
    pub fn from_ones<I: IntoIterator<Item = usize>>(len: usize, ones: I) -> Self {
        Self::from_bitvec(&BitVec::from_ones(len, ones))
    }

    fn push_atom(out: &mut Vec<u8>, fill: bool, gap: usize, lits: &[u8]) {
        debug_assert!(lits.len() <= MAX_LIT);
        let f = (fill as u8) << 7;
        if gap < GAP_ESCAPE as usize {
            out.push(f | ((gap as u8) << 4) | lits.len() as u8);
        } else {
            out.push(f | (GAP_ESCAPE << 4) | lits.len() as u8);
            // LEB128 varint for the gap length.
            let mut g = gap as u64;
            loop {
                let mut byte = (g & 0x7F) as u8;
                g >>= 7;
                if g != 0 {
                    byte |= 0x80;
                }
                out.push(byte);
                if g == 0 {
                    break;
                }
            }
        }
        out.extend_from_slice(lits);
    }

    /// Decompresses back to a verbatim bit vector.
    pub fn to_bitvec(&self) -> BitVec {
        let mut bv = BitVec::zeros(self.num_bits);
        let mut bit = 0usize;
        for run in self.byte_runs() {
            match run {
                ByteRun::Fill { value, bytes } => {
                    if value {
                        let end = (bit + bytes * 8).min(self.num_bits);
                        for i in bit..end {
                            bv.set(i);
                        }
                    }
                    bit += bytes * 8;
                }
                ByteRun::Literal(b) => {
                    for o in 0..8 {
                        if b >> o & 1 == 1 && bit + o < self.num_bits {
                            bv.set(bit + o);
                        }
                    }
                    bit += 8;
                }
            }
        }
        bv
    }

    /// Logical (uncompressed) length in bits.
    pub fn len(&self) -> usize {
        self.num_bits
    }

    /// `true` when the logical length is zero.
    pub fn is_empty(&self) -> bool {
        self.num_bits == 0
    }

    /// Compressed size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Number of set bits, from the compressed form.
    pub fn count_ones(&self) -> usize {
        let mut total = 0usize;
        let mut bit = 0usize;
        for run in self.byte_runs() {
            match run {
                ByteRun::Fill { value, bytes } => {
                    let span = bytes * 8;
                    if value {
                        total += span.min(self.num_bits.saturating_sub(bit));
                    }
                    bit += span;
                }
                ByteRun::Literal(b) => {
                    let valid = (self.num_bits - bit).min(8);
                    let mask = if valid == 8 { 0xFF } else { (1u8 << valid) - 1 };
                    total += (b & mask).count_ones() as usize;
                    bit += 8;
                }
            }
        }
        total
    }

    /// Reads bit `pos` by scanning the atom stream (no direct access,
    /// same as WAH).
    ///
    /// # Panics
    ///
    /// Panics if `pos >= len`.
    pub fn get(&self, pos: usize) -> bool {
        assert!(
            pos < self.num_bits,
            "bit {pos} out of range {}",
            self.num_bits
        );
        let target_byte = pos / 8;
        let offset = pos % 8;
        let mut byte = 0usize;
        for run in self.byte_runs() {
            match run {
                ByteRun::Fill { value, bytes } => {
                    if target_byte < byte + bytes {
                        return value;
                    }
                    byte += bytes;
                }
                ByteRun::Literal(b) => {
                    if target_byte == byte {
                        return b >> offset & 1 == 1;
                    }
                    byte += 1;
                }
            }
        }
        // Trailing bytes beyond the last atom are zero by construction.
        false
    }

    /// Iterates the stream as byte-granularity runs.
    pub fn byte_runs(&self) -> ByteRuns<'_> {
        ByteRuns {
            bytes: &self.bytes,
            idx: 0,
            pending_fill: None,
            pending_lits: 0,
        }
    }

    /// Bitwise AND via byte-run iteration (compressed domain).
    pub fn and(&self, other: &BbcBitmap) -> BbcBitmap {
        self.binary_op(other, |a, b| a & b)
    }

    /// Bitwise OR via byte-run iteration (compressed domain).
    pub fn or(&self, other: &BbcBitmap) -> BbcBitmap {
        self.binary_op(other, |a, b| a | b)
    }

    /// Bitwise XOR via byte-run iteration (compressed domain).
    pub fn xor(&self, other: &BbcBitmap) -> BbcBitmap {
        self.binary_op(other, |a, b| a ^ b)
    }

    fn binary_op<F: Fn(u8, u8) -> u8>(&self, other: &BbcBitmap, op: F) -> BbcBitmap {
        assert_eq!(
            self.num_bits, other.num_bits,
            "BBC logical op on different lengths"
        );
        let num_bytes = self.num_bits.div_ceil(8);
        let mut xs = self.byte_stream();
        let mut ys = other.byte_stream();
        // Re-encode on the fly through a raw byte accumulator. BBC's
        // byte granularity makes run-merging bookkeeping dominate; the
        // simple per-byte loop reproduces exactly the 2-20x CPU
        // disadvantage vs WAH reported in the paper.
        let mut raw = Vec::with_capacity(num_bytes);
        for _ in 0..num_bytes {
            raw.push(op(xs.next().unwrap_or(0), ys.next().unwrap_or(0)));
        }
        let mut bv = BitVec::zeros(self.num_bits);
        // Rebuild through BitVec to reuse the canonical encoder.
        {
            let mut bit = 0usize;
            for b in &raw {
                for o in 0..8 {
                    if b >> o & 1 == 1 && bit + o < self.num_bits {
                        bv.set(bit + o);
                    }
                }
                bit += 8;
            }
        }
        BbcBitmap::from_bitvec(&bv)
    }

    /// Iterator over decompressed bytes.
    fn byte_stream(&self) -> impl Iterator<Item = u8> + '_ {
        self.byte_runs().flat_map(|r| match r {
            ByteRun::Fill { value, bytes } => {
                let v = if value { 0xFF } else { 0x00 };
                itertools_repeat(v, bytes)
            }
            ByteRun::Literal(b) => itertools_repeat(b, 1),
        })
    }
}

/// `std::iter::repeat_n` with a concrete nameable type.
fn itertools_repeat(v: u8, n: usize) -> std::iter::RepeatN<u8> {
    std::iter::repeat_n(v, n)
}

/// A decoded BBC run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ByteRun {
    /// `bytes` consecutive fill bytes of all-`value` bits.
    Fill {
        /// Repeated bit value.
        value: bool,
        /// Number of bytes spanned.
        bytes: usize,
    },
    /// One verbatim byte.
    Literal(u8),
}

/// Iterator over [`ByteRun`]s of a [`BbcBitmap`].
pub struct ByteRuns<'a> {
    bytes: &'a [u8],
    idx: usize,
    pending_fill: Option<(bool, usize)>,
    pending_lits: usize,
}

impl Iterator for ByteRuns<'_> {
    type Item = ByteRun;

    fn next(&mut self) -> Option<ByteRun> {
        if let Some((value, bytes)) = self.pending_fill.take() {
            return Some(ByteRun::Fill { value, bytes });
        }
        if self.pending_lits > 0 {
            self.pending_lits -= 1;
            let b = self.bytes[self.idx];
            self.idx += 1;
            return Some(ByteRun::Literal(b));
        }
        let header = *self.bytes.get(self.idx)?;
        self.idx += 1;
        let fill = header & 0x80 != 0;
        let gap_field = (header >> 4) & 0x07;
        let lits = (header & 0x0F) as usize;
        let gap = if gap_field == GAP_ESCAPE {
            // LEB128 varint.
            let mut g: u64 = 0;
            let mut shift = 0;
            loop {
                let byte = self.bytes[self.idx];
                self.idx += 1;
                g |= ((byte & 0x7F) as u64) << shift;
                shift += 7;
                if byte & 0x80 == 0 {
                    break;
                }
            }
            g as usize
        } else {
            gap_field as usize
        };
        self.pending_lits = lits;
        if gap > 0 {
            if lits == 0 && self.idx >= self.bytes.len() {
                return Some(ByteRun::Fill {
                    value: fill,
                    bytes: gap,
                });
            }
            // Emit the gap now; literals follow on subsequent calls.
            return Some(ByteRun::Fill {
                value: fill,
                bytes: gap,
            });
        }
        self.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_roundtrip() {
        let bv = BitVec::zeros(0);
        let bbc = BbcBitmap::from_bitvec(&bv);
        assert_eq!(bbc.to_bitvec(), bv);
        assert_eq!(bbc.size_bytes(), 0);
    }

    #[test]
    fn roundtrip_mixed() {
        let bv = BitVec::from_ones(1000, [0, 7, 8, 100, 500, 999]);
        let bbc = BbcBitmap::from_bitvec(&bv);
        assert_eq!(bbc.to_bitvec(), bv);
        assert_eq!(bbc.count_ones(), 6);
    }

    #[test]
    fn all_ones_compresses_to_fill() {
        let bv = BitVec::ones(8000);
        let bbc = BbcBitmap::from_bitvec(&bv);
        assert!(bbc.size_bytes() <= 3, "size {}", bbc.size_bytes());
        assert_eq!(bbc.count_ones(), 8000);
    }

    #[test]
    fn long_zero_gap_uses_escape() {
        let bv = BitVec::from_ones(100_000, [99_999]);
        let bbc = BbcBitmap::from_bitvec(&bv);
        assert!(bbc.size_bytes() < 10);
        assert_eq!(bbc.to_bitvec(), bv);
    }

    #[test]
    fn bbc_compresses_better_than_wah_on_byte_runs() {
        // Runs that are byte-aligned but not 31-bit aligned favour BBC.
        let mut bv = BitVec::zeros(31 * 8 * 100);
        for g in 0..100 {
            let base = g * 31 * 8;
            for i in 0..8 {
                bv.set(base + i);
            }
        }
        let bbc = BbcBitmap::from_bitvec(&bv);
        let wah = crate::WahBitmap::from_bitvec(&bv);
        assert!(
            bbc.size_bytes() < wah.size_bytes(),
            "bbc {} vs wah {}",
            bbc.size_bytes(),
            wah.size_bytes()
        );
    }

    #[test]
    fn get_matches_bitvec() {
        let bv = BitVec::from_ones(300, [0, 8, 15, 64, 255, 299]);
        let bbc = BbcBitmap::from_bitvec(&bv);
        for i in 0..300 {
            assert_eq!(bbc.get(i), bv.get(i), "bit {i}");
        }
    }

    #[test]
    fn logical_ops_match_bitvec() {
        let a = BitVec::from_ones(500, [1, 9, 100, 300]);
        let b = BitVec::from_ones(500, [9, 100, 301]);
        let (ba, bb) = (BbcBitmap::from_bitvec(&a), BbcBitmap::from_bitvec(&b));
        assert_eq!(ba.and(&bb).to_bitvec(), a.and(&b));
        assert_eq!(ba.or(&bb).to_bitvec(), a.or(&b));
        assert_eq!(ba.xor(&bb).to_bitvec(), a.xor(&b));
    }

    #[test]
    fn partial_tail_byte() {
        let bv = BitVec::ones(13); // 1 byte + 5 bits
        let bbc = BbcBitmap::from_bitvec(&bv);
        assert_eq!(bbc.count_ones(), 13);
        assert_eq!(bbc.to_bitvec(), bv);
    }
}
