//! The WAH-compressed bitmap index — the paper's baseline system.
//!
//! [`WahIndex`] stores one WAH-compressed bitmap per stored vector of
//! every attribute — under the equality encoding (default), or the
//! range / interval encodings of Chan & Ioannidis (§2.2) — and
//! evaluates rectangular queries the classic way: combine the per-
//! attribute bitmaps of each interval, AND across attributes, then AND
//! with a row-range mask (paper §3.3: "perform a bit-wise AND
//! operation with the resulting bitmap and an auxiliary bitmap which
//! only has set positions [row range]"). All operations run in the
//! compressed domain. This is the cost model Figure 14 measures: the
//! work is proportional to the compressed column sizes, *not* to the
//! number of rows queried.

use crate::encode::WahBitmap;
use bitmap::{BinnedTable, BitVec, Encoding, RectQuery};
use serde::{Deserialize, Serialize};

/// One attribute's WAH-compressed bitmaps.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WahAttribute {
    /// Attribute name.
    pub name: String,
    /// Number of bins.
    pub cardinality: u32,
    /// Encoding of the stored vectors.
    pub encoding: Encoding,
    /// The compressed bitmap vectors (interpretation per `encoding`).
    pub bitmaps: Vec<WahBitmap>,
    num_rows: usize,
}

impl WahAttribute {
    /// Encodes and compresses one binned column.
    pub fn encode(col: &bitmap::BinnedColumn, encoding: Encoding) -> Self {
        // Build through the verbatim encoder (single source of truth
        // for the encoding semantics), then compress each vector.
        let exact = bitmap::EncodedAttribute::encode(col, encoding);
        WahAttribute {
            name: col.name.clone(),
            cardinality: col.cardinality,
            encoding,
            bitmaps: exact.bitmaps.iter().map(WahBitmap::from_bitvec).collect(),
            num_rows: col.len(),
        }
    }

    /// Rows whose bin lies in `[lo, hi]`, computed entirely in the
    /// compressed domain.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `hi >= cardinality`.
    pub fn range(&self, lo: u32, hi: u32) -> WahBitmap {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        assert!(hi < self.cardinality, "bin {hi} out of range");
        let c = self.cardinality as usize;
        let (lo, hi) = (lo as usize, hi as usize);
        match self.encoding {
            Encoding::Equality => WahBitmap::or_many(self.num_rows, self.bitmaps[lo..=hi].iter()),
            Encoding::Range => {
                // rows in [lo, hi] = R_hi AND NOT R_{lo-1}; R_{c-1}=1s.
                let upper = if hi == c - 1 {
                    WahBitmap::from_bitvec(&BitVec::ones(self.num_rows))
                } else {
                    self.bitmaps[hi].clone()
                };
                if lo == 0 {
                    upper
                } else {
                    upper.andnot(&self.bitmaps[lo - 1])
                }
            }
            Encoding::Interval => self.interval_range(lo, hi),
        }
    }

    /// Interval-encoding range evaluation (mirrors
    /// `bitmap::EncodedAttribute::interval_range`, on compressed
    /// vectors).
    fn interval_range(&self, lo: usize, hi: usize) -> WahBitmap {
        let c = self.cardinality as usize;
        let m = c.div_ceil(2);
        let last = c - m;
        let n = self.num_rows;

        let ge_high = |j: usize| -> WahBitmap {
            debug_assert!(j > last && j < c);
            self.bitmaps[last].andnot(&self.bitmaps[j - m])
        };
        let ge = |j: usize| -> WahBitmap {
            if j == 0 {
                WahBitmap::from_bitvec(&BitVec::ones(n))
            } else if j <= last {
                let mut acc = self.bitmaps[j].clone();
                if j + m < c {
                    acc = acc.or(&ge_high(j + m));
                }
                acc
            } else {
                ge_high(j)
            }
        };
        let le = |j: usize| -> WahBitmap {
            if j >= c - 1 {
                WahBitmap::from_bitvec(&BitVec::ones(n))
            } else {
                ge(j + 1).not()
            }
        };

        if lo == 0 {
            le(hi)
        } else if hi == c - 1 {
            ge(lo)
        } else {
            le(hi).and(&ge(lo))
        }
    }
}

/// A WAH-compressed bitmap index.
///
/// # Examples
///
/// ```
/// use bitmap::{AttrRange, BinnedColumn, BinnedTable, RectQuery};
/// use wah::WahIndex;
///
/// let table = BinnedTable::new(vec![
///     BinnedColumn::new("A", vec![0, 1, 2, 0, 1, 1, 0, 2], 3),
/// ]);
/// let index = WahIndex::build(&table);
/// let q = RectQuery::new(vec![AttrRange::new(0, 0, 1)], 3, 7);
/// assert_eq!(index.evaluate_rows(&q), vec![3, 4, 5, 6]);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WahIndex {
    attributes: Vec<WahAttribute>,
    num_rows: usize,
}

impl WahIndex {
    /// Builds an equality-encoded index from a binned table.
    pub fn build(table: &BinnedTable) -> Self {
        Self::build_with_encoding(table, Encoding::Equality)
    }

    /// Builds the index under a chosen encoding (paper §2.2: equality,
    /// range, or interval).
    pub fn build_with_encoding(table: &BinnedTable, encoding: Encoding) -> Self {
        WahIndex {
            attributes: table
                .columns()
                .iter()
                .map(|col| WahAttribute::encode(col, encoding))
                .collect(),
            num_rows: table.num_rows(),
        }
    }

    /// Number of rows indexed.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Per-attribute compressed bitmaps.
    pub fn attributes(&self) -> &[WahAttribute] {
        &self.attributes
    }

    /// Total compressed size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.attributes
            .iter()
            .flat_map(|a| a.bitmaps.iter())
            .map(WahBitmap::size_bytes)
            .sum()
    }

    /// Total number of stored bitmaps.
    pub fn num_bitmaps(&self) -> usize {
        self.attributes.iter().map(|a| a.bitmaps.len()).sum()
    }

    /// Evaluates a rectangular query entirely in the compressed
    /// domain, returning the result as a compressed bitmap.
    pub fn evaluate(&self, query: &RectQuery) -> WahBitmap {
        assert!(
            query.row_hi < self.num_rows,
            "row {} out of range {}",
            query.row_hi,
            self.num_rows
        );
        let mut acc: Option<WahBitmap> = None;
        for r in &query.ranges {
            let ored = self.attributes[r.attribute].range(r.lo, r.hi);
            acc = Some(match acc {
                None => ored,
                Some(a) => a.and(&ored),
            });
        }
        let combined = acc.unwrap_or_else(|| WahBitmap::from_bitvec(&BitVec::ones(self.num_rows)));
        // Row-range restriction: the auxiliary mask AND of §3.3. The
        // mask compresses to ≤ 5 words regardless of span.
        let mask = WahBitmap::from_bitvec(&BitVec::from_ones(
            self.num_rows,
            query.row_lo..=query.row_hi,
        ));
        combined.and(&mask)
    }

    /// Evaluates a query and decodes the matching row identifiers.
    pub fn evaluate_rows(&self, query: &RectQuery) -> Vec<usize> {
        self.evaluate(query).iter_ones().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitmap::{AttrRange, BinnedColumn, BitmapIndex};

    fn table() -> BinnedTable {
        BinnedTable::new(vec![
            BinnedColumn::new("A", vec![0, 1, 2, 0, 1, 1, 0, 2], 3),
            BinnedColumn::new("B", vec![2, 0, 1, 1, 0, 1, 0, 2], 3),
        ])
    }

    #[test]
    fn matches_uncompressed_index() {
        let t = table();
        let wah = WahIndex::build(&t);
        let exact = BitmapIndex::build(&t, Encoding::Equality);
        for lo in 0..3u32 {
            for hi in lo..3u32 {
                for row_lo in [0usize, 2, 5] {
                    let q = RectQuery::new(vec![AttrRange::new(1, lo, hi)], row_lo, 7);
                    assert_eq!(
                        wah.evaluate_rows(&q),
                        exact.evaluate_rows(&q),
                        "bins [{lo},{hi}] rows {row_lo}..=7"
                    );
                }
            }
        }
    }

    #[test]
    fn all_encodings_agree() {
        let t = BinnedTable::new(vec![BinnedColumn::new(
            "x",
            vec![0, 1, 2, 3, 4, 2, 2, 0, 4, 1, 3, 3],
            5,
        )]);
        let eq = WahIndex::build_with_encoding(&t, Encoding::Equality);
        let rg = WahIndex::build_with_encoding(&t, Encoding::Range);
        let iv = WahIndex::build_with_encoding(&t, Encoding::Interval);
        for lo in 0..5u32 {
            for hi in lo..5u32 {
                let q = RectQuery::new(vec![AttrRange::new(0, lo, hi)], 0, 11);
                let want = eq.evaluate_rows(&q);
                assert_eq!(rg.evaluate_rows(&q), want, "range [{lo},{hi}]");
                assert_eq!(iv.evaluate_rows(&q), want, "interval [{lo},{hi}]");
            }
        }
    }

    #[test]
    fn range_encoding_uses_fewer_ops_for_wide_ranges() {
        // Structural check: the range encoding touches at most 2
        // stored bitmaps per interval, equality touches width-many.
        let t = table();
        let rg = WahIndex::build_with_encoding(&t, Encoding::Range);
        assert_eq!(rg.attributes()[0].bitmaps.len(), 2); // C-1 stored
        let iv = WahIndex::build_with_encoding(&t, Encoding::Interval);
        assert_eq!(iv.attributes()[0].bitmaps.len(), 2); // C-m+1 stored
    }

    #[test]
    fn multi_attribute_conjunction() {
        let t = table();
        let wah = WahIndex::build(&t);
        let exact = BitmapIndex::build(&t, Encoding::Equality);
        let q = RectQuery::new(vec![AttrRange::new(0, 0, 1), AttrRange::new(1, 1, 2)], 0, 7);
        assert_eq!(wah.evaluate_rows(&q), exact.evaluate_rows(&q));
    }

    #[test]
    fn unconstrained_query_gives_row_range() {
        let wah = WahIndex::build(&table());
        let q = RectQuery::new(vec![], 2, 4);
        assert_eq!(wah.evaluate_rows(&q), vec![2, 3, 4]);
    }

    #[test]
    fn compressed_smaller_than_verbatim_on_sparse_bins() {
        // Data physically sorted by the attribute: each bin is one
        // contiguous run (the clustered case WAH is designed for; the
        // reordering literature in §2.2.1 exists to manufacture it).
        let n = 50_000usize;
        let bins: Vec<u32> = (0..n).map(|i| (i * 50 / n) as u32).collect();
        let t = BinnedTable::new(vec![BinnedColumn::new("x", bins, 50)]);
        let wah = WahIndex::build(&t);
        let exact = BitmapIndex::build(&t, Encoding::Equality);
        assert!(
            wah.size_bytes() < exact.size_bytes(),
            "wah {} vs exact {}",
            wah.size_bytes(),
            exact.size_bytes()
        );
    }

    #[test]
    fn size_accounting_counts_all_bitmaps() {
        let wah = WahIndex::build(&table());
        assert_eq!(wah.num_bitmaps(), 6);
        assert!(wah.size_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_row_range() {
        WahIndex::build(&table()).evaluate(&RectQuery::new(vec![], 0, 8));
    }
}
