//! Property-based tests: WAH and BBC behave exactly like verbatim
//! bitmaps under every operation.

use bitmap::BitVec;
use proptest::prelude::*;
use wah::{BbcBitmap, EwahBitmap, WahBitmap};

/// Strategy: (length, set positions) pairs with clustered and scattered
/// bits — clustering exercises fills, scattering exercises literals.
fn bitmap_strategy() -> impl Strategy<Value = (usize, Vec<usize>)> {
    (1usize..2000).prop_flat_map(|len| {
        let positions = prop::collection::btree_set(0..len, 0..len.min(80))
            .prop_map(|s| s.into_iter().collect::<Vec<_>>());
        (Just(len), positions)
    })
}

/// Strategy: dense run-structured bitmaps (long fills of both values).
fn runs_strategy() -> impl Strategy<Value = (usize, Vec<usize>)> {
    prop::collection::vec((0usize..50, any::<bool>()), 1..30).prop_map(|runs| {
        let mut ones = Vec::new();
        let mut pos = 0;
        for (len, val) in runs {
            if val {
                ones.extend(pos..pos + len);
            }
            pos += len;
        }
        (pos.max(1), ones)
    })
}

proptest! {
    #[test]
    fn wah_roundtrip((len, ones) in bitmap_strategy()) {
        let bv = BitVec::from_ones(len, ones);
        let w = WahBitmap::from_bitvec(&bv);
        prop_assert_eq!(w.to_bitvec(), bv);
    }

    #[test]
    fn wah_roundtrip_runs((len, ones) in runs_strategy()) {
        let bv = BitVec::from_ones(len, ones);
        let w = WahBitmap::from_bitvec(&bv);
        prop_assert_eq!(&w.to_bitvec(), &bv);
        prop_assert_eq!(w.count_ones(), bv.count_ones());
    }

    #[test]
    fn wah_get_matches((len, ones) in bitmap_strategy()) {
        let bv = BitVec::from_ones(len, ones);
        let w = WahBitmap::from_bitvec(&bv);
        for i in (0..len).step_by((len / 17).max(1)) {
            prop_assert_eq!(w.get(i), bv.get(i));
        }
    }

    #[test]
    fn wah_iter_ones_matches((len, ones) in runs_strategy()) {
        let bv = BitVec::from_ones(len, ones);
        let w = WahBitmap::from_bitvec(&bv);
        prop_assert_eq!(
            w.iter_ones().collect::<Vec<_>>(),
            bv.iter_ones().collect::<Vec<_>>()
        );
    }

    #[test]
    fn wah_ops_match_bitvec((len, a) in bitmap_strategy(), bseed in prop::collection::vec(any::<u16>(), 0..80)) {
        let b: Vec<usize> = bseed.into_iter().map(|x| x as usize % len).collect();
        let (va, vb) = (BitVec::from_ones(len, a), BitVec::from_ones(len, b));
        let (wa, wb) = (WahBitmap::from_bitvec(&va), WahBitmap::from_bitvec(&vb));
        prop_assert_eq!(wa.and(&wb).to_bitvec(), va.and(&vb));
        prop_assert_eq!(wa.or(&wb).to_bitvec(), va.or(&vb));
        prop_assert_eq!(wa.xor(&wb).to_bitvec(), va.xor(&vb));
        prop_assert_eq!(wa.andnot(&wb).to_bitvec(), va.andnot(&vb));
    }

    #[test]
    fn wah_not_matches_bitvec((len, ones) in runs_strategy()) {
        let bv = BitVec::from_ones(len, ones);
        let w = WahBitmap::from_bitvec(&bv);
        prop_assert_eq!(w.not().to_bitvec(), bv.not());
        prop_assert_eq!(w.not().not().to_bitvec(), bv);
    }

    #[test]
    fn bbc_roundtrip((len, ones) in bitmap_strategy()) {
        let bv = BitVec::from_ones(len, ones);
        let b = BbcBitmap::from_bitvec(&bv);
        prop_assert_eq!(b.to_bitvec(), bv);
    }

    #[test]
    fn bbc_roundtrip_runs((len, ones) in runs_strategy()) {
        let bv = BitVec::from_ones(len, ones);
        let b = BbcBitmap::from_bitvec(&bv);
        prop_assert_eq!(&b.to_bitvec(), &bv);
        prop_assert_eq!(b.count_ones(), bv.count_ones());
    }

    #[test]
    fn bbc_ops_match_bitvec((len, a) in runs_strategy(), bseed in prop::collection::vec(any::<u16>(), 0..40)) {
        let b: Vec<usize> = bseed.into_iter().map(|x| x as usize % len).collect();
        let (va, vb) = (BitVec::from_ones(len, a), BitVec::from_ones(len, b));
        let (ba, bb) = (BbcBitmap::from_bitvec(&va), BbcBitmap::from_bitvec(&vb));
        prop_assert_eq!(ba.and(&bb).to_bitvec(), va.and(&vb));
        prop_assert_eq!(ba.or(&bb).to_bitvec(), va.or(&vb));
        prop_assert_eq!(ba.xor(&bb).to_bitvec(), va.xor(&vb));
    }

    #[test]
    fn bbc_get_matches((len, ones) in runs_strategy()) {
        let bv = BitVec::from_ones(len, ones);
        let b = BbcBitmap::from_bitvec(&bv);
        for i in 0..len {
            prop_assert_eq!(b.get(i), bv.get(i), "bit {}", i);
        }
    }

    #[test]
    fn wah_count_ones_matches((len, ones) in bitmap_strategy()) {
        let bv = BitVec::from_ones(len, ones);
        prop_assert_eq!(WahBitmap::from_bitvec(&bv).count_ones(), bv.count_ones());
    }

    #[test]
    fn ewah_roundtrip((len, ones) in bitmap_strategy()) {
        let bv = BitVec::from_ones(len, ones);
        let e = EwahBitmap::from_bitvec(&bv);
        prop_assert_eq!(e.to_bitvec(), bv);
    }

    #[test]
    fn ewah_roundtrip_runs((len, ones) in runs_strategy()) {
        let bv = BitVec::from_ones(len, ones);
        let e = EwahBitmap::from_bitvec(&bv);
        prop_assert_eq!(&e.to_bitvec(), &bv);
        prop_assert_eq!(e.count_ones(), bv.count_ones());
        prop_assert_eq!(
            e.iter_ones().collect::<Vec<_>>(),
            bv.iter_ones().collect::<Vec<_>>()
        );
    }

    #[test]
    fn ewah_get_matches((len, ones) in runs_strategy()) {
        let bv = BitVec::from_ones(len, ones);
        let e = EwahBitmap::from_bitvec(&bv);
        for i in 0..len {
            prop_assert_eq!(e.get(i), bv.get(i), "bit {}", i);
        }
    }

    #[test]
    fn ewah_ops_match_bitvec((len, a) in runs_strategy(), bseed in prop::collection::vec(any::<u16>(), 0..60)) {
        let b: Vec<usize> = bseed.into_iter().map(|x| x as usize % len).collect();
        let (va, vb) = (BitVec::from_ones(len, a), BitVec::from_ones(len, b));
        let (ea, eb) = (EwahBitmap::from_bitvec(&va), EwahBitmap::from_bitvec(&vb));
        prop_assert_eq!(ea.and(&eb).to_bitvec(), va.and(&vb));
        prop_assert_eq!(ea.or(&eb).to_bitvec(), va.or(&vb));
        prop_assert_eq!(ea.xor(&eb).to_bitvec(), va.xor(&vb));
    }

    /// All three run-length codecs agree on every derived quantity.
    #[test]
    fn codecs_agree((len, ones) in runs_strategy()) {
        let bv = BitVec::from_ones(len, ones);
        let w = WahBitmap::from_bitvec(&bv);
        let b = BbcBitmap::from_bitvec(&bv);
        let e = EwahBitmap::from_bitvec(&bv);
        prop_assert_eq!(w.count_ones(), bv.count_ones());
        prop_assert_eq!(b.count_ones(), bv.count_ones());
        prop_assert_eq!(e.count_ones(), bv.count_ones());
        prop_assert_eq!(w.to_bitvec(), e.to_bitvec());
        prop_assert_eq!(b.to_bitvec(), e.to_bitvec());
    }
}
