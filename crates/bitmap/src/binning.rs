//! Attribute discretization (binning).
//!
//! Bitmap indexes first partition each attribute's domain into bins
//! (paper §1). The experimental framework (§5.1) notes that equi-depth
//! bins — "bins with the same number of points" — are preferred because
//! they give uniform search times, and that any data set can be turned
//! into uniformly distributed bitmaps this way. This module provides:
//!
//! * [`EquiWidth`] — equal-size intervals over `[min, max]`.
//! * [`EquiDepth`] — quantile bins with (roughly) equal point counts.
//! * [`ExplicitEdges`] — caller-supplied bin boundaries.
//!
//! All binners implement the [`Binner`] trait, which maps a column of
//! `f64` values to a [`BinnedColumn`] of bin identifiers.

use crate::table::Column;
use serde::{Deserialize, Serialize};

/// A discretized column: each row mapped to a bin in `0..cardinality`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BinnedColumn {
    /// Attribute name carried over from the source column.
    pub name: String,
    /// Bin id per row; each value is `< cardinality`.
    pub bins: Vec<u32>,
    /// Number of bins for this attribute.
    pub cardinality: u32,
    /// Lower value bound of each bin (ascending, `cardinality`
    /// entries), when the binner can supply them. Enables raw
    /// value-range queries via [`BinnedColumn::bins_covering`].
    pub lower_edges: Option<Vec<f64>>,
}

impl BinnedColumn {
    /// Creates a binned column, validating that every bin id is in range.
    ///
    /// # Panics
    ///
    /// Panics if any bin id is `>= cardinality` or `cardinality == 0`.
    pub fn new(name: impl Into<String>, bins: Vec<u32>, cardinality: u32) -> Self {
        assert!(cardinality > 0, "cardinality must be positive");
        if let Some(&bad) = bins.iter().find(|&&b| b >= cardinality) {
            panic!("bin id {bad} out of range 0..{cardinality}");
        }
        BinnedColumn {
            name: name.into(),
            bins,
            cardinality,
            lower_edges: None,
        }
    }

    /// Attaches the per-bin lower value bounds.
    ///
    /// # Panics
    ///
    /// Panics unless `edges` has `cardinality` non-decreasing entries.
    pub fn with_lower_edges(mut self, edges: Vec<f64>) -> Self {
        assert_eq!(
            edges.len(),
            self.cardinality as usize,
            "need one lower edge per bin"
        );
        assert!(
            edges.windows(2).all(|w| w[0] <= w[1]),
            "edges must be non-decreasing"
        );
        self.lower_edges = Some(edges);
        self
    }

    /// The smallest bin interval covering every value in `[lo, hi]`
    /// (conservative: the covering bins may admit values outside the
    /// range; a second exact step can prune). Returns `None` when the
    /// binner supplied no edges.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn bins_covering(&self, lo: f64, hi: f64) -> Option<(u32, u32)> {
        assert!(lo <= hi, "empty value range {lo}..{hi}");
        let edges = self.lower_edges.as_ref()?;
        // Bin j spans [edges[j], edges[j+1]); the value v lands in the
        // last bin whose lower edge is <= v (bin 0 for out-of-range-low
        // values).
        let bin_of = |v: f64| -> u32 {
            (edges.partition_point(|&e| e <= v).saturating_sub(1) as u32).min(self.cardinality - 1)
        };
        Some((bin_of(lo), bin_of(hi)))
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// `true` when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// Number of rows falling into each bin (`cardinality` entries).
    pub fn bin_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.cardinality as usize];
        for &b in &self.bins {
            counts[b as usize] += 1;
        }
        counts
    }
}

/// Maps a raw column to bin identifiers.
pub trait Binner {
    /// Discretizes `column` into a [`BinnedColumn`].
    fn bin(&self, column: &Column) -> BinnedColumn;
}

/// Equal-width bins over the observed `[min, max]` range.
///
/// Values equal to the maximum land in the last bin. A constant column
/// maps every row to bin 0.
#[derive(Clone, Copy, Debug)]
pub struct EquiWidth {
    /// Number of bins to produce.
    pub bins: u32,
}

impl EquiWidth {
    /// Creates an equi-width binner with `bins` bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`.
    pub fn new(bins: u32) -> Self {
        assert!(bins > 0, "bins must be positive");
        EquiWidth { bins }
    }
}

impl Binner for EquiWidth {
    fn bin(&self, column: &Column) -> BinnedColumn {
        let (min, max) = match (column.min(), column.max()) {
            (Some(mn), Some(mx)) => (mn, mx),
            _ => {
                return BinnedColumn::new(column.name.clone(), vec![], self.bins);
            }
        };
        let width = (max - min) / self.bins as f64;
        let ids = column
            .values
            .iter()
            .map(|&v| {
                if width == 0.0 || v.is_nan() {
                    0
                } else {
                    (((v - min) / width) as u32).min(self.bins - 1)
                }
            })
            .collect();
        // Edges are only meaningful for a finite, non-degenerate range
        // (±∞ values make the width infinite and the edges NaN).
        let binned = BinnedColumn::new(column.name.clone(), ids, self.bins);
        if width.is_finite() && width > 0.0 {
            let edges = (0..self.bins).map(|j| min + j as f64 * width).collect();
            binned.with_lower_edges(edges)
        } else {
            binned
        }
    }
}

/// Equi-depth (quantile) bins: each bin receives roughly the same number
/// of rows, which is the paper's preferred discretization (§5.1).
///
/// Ties are broken by value order, so rows with identical values may
/// still split across adjacent bins; this matches the "roughly the same
/// number of data points" formulation and keeps bin occupancies balanced
/// even for highly skewed data.
#[derive(Clone, Copy, Debug)]
pub struct EquiDepth {
    /// Number of bins to produce.
    pub bins: u32,
}

impl EquiDepth {
    /// Creates an equi-depth binner with `bins` bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`.
    pub fn new(bins: u32) -> Self {
        assert!(bins > 0, "bins must be positive");
        EquiDepth { bins }
    }
}

impl Binner for EquiDepth {
    fn bin(&self, column: &Column) -> BinnedColumn {
        let n = column.len();
        if n == 0 {
            return BinnedColumn::new(column.name.clone(), vec![], self.bins);
        }
        // Sort row indices by value; assign bin = floor(rank * bins / n).
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by(|&a, &b| {
            column.values[a as usize]
                .partial_cmp(&column.values[b as usize])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut ids = vec![0u32; n];
        for (rank, &row) in order.iter().enumerate() {
            ids[row as usize] = ((rank as u64 * self.bins as u64) / n as u64) as u32;
        }
        // Lower edge of bin j = value at its first rank; bins past the
        // data (more bins than rows) repeat the last edge.
        let mut edges = Vec::with_capacity(self.bins as usize);
        for j in 0..self.bins as u64 {
            let rank = ((j * n as u64).div_ceil(self.bins as u64) as usize).min(n - 1);
            let v = column.values[order[rank] as usize];
            let prev = edges.last().copied().unwrap_or(f64::NEG_INFINITY);
            edges.push(if v.is_nan() { prev } else { v.max(prev) });
        }
        edges[0] = edges[0].min(column.min().unwrap_or(edges[0]));
        let binned = BinnedColumn::new(column.name.clone(), ids, self.bins);
        if edges.windows(2).all(|w| w[0] <= w[1]) {
            binned.with_lower_edges(edges)
        } else {
            binned
        }
    }
}

/// Bins defined by explicit right-open edges: value `v` falls in bin `i`
/// when `edges[i] <= v < edges[i+1]`; values below the first edge go to
/// bin 0 and values at or above the last edge go to the final bin.
#[derive(Clone, Debug)]
pub struct ExplicitEdges {
    /// Strictly increasing interior + outer edges; produces
    /// `edges.len() - 1` bins.
    pub edges: Vec<f64>,
}

impl ExplicitEdges {
    /// Creates an explicit-edge binner.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two edges are given or they are not strictly
    /// increasing.
    pub fn new(edges: Vec<f64>) -> Self {
        assert!(edges.len() >= 2, "need at least two edges");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "edges must be strictly increasing"
        );
        ExplicitEdges { edges }
    }

    /// Number of bins implied by the edges.
    pub fn cardinality(&self) -> u32 {
        (self.edges.len() - 1) as u32
    }
}

impl Binner for ExplicitEdges {
    fn bin(&self, column: &Column) -> BinnedColumn {
        let card = self.cardinality();
        let ids = column
            .values
            .iter()
            .map(|&v| {
                // partition_point returns the count of edges <= v, i.e.
                // the 1-based bin boundary index.
                let p = self.edges.partition_point(|&e| e <= v);
                (p.saturating_sub(1) as u32).min(card - 1)
            })
            .collect();
        BinnedColumn::new(column.name.clone(), ids, card)
            .with_lower_edges(self.edges[..card as usize].to_vec())
    }
}

/// A fully discretized table: one [`BinnedColumn`] per attribute, equal
/// row counts. This is the input the bitmap index and the Approximate
/// Bitmap are built from.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BinnedTable {
    columns: Vec<BinnedColumn>,
    num_rows: usize,
}

impl BinnedTable {
    /// Creates a binned table from per-attribute binned columns.
    ///
    /// # Panics
    ///
    /// Panics on row-count mismatch between columns.
    pub fn new(columns: Vec<BinnedColumn>) -> Self {
        let num_rows = columns.first().map_or(0, BinnedColumn::len);
        for c in &columns {
            assert_eq!(
                c.len(),
                num_rows,
                "binned column `{}` length {} != {}",
                c.name,
                c.len(),
                num_rows
            );
        }
        BinnedTable { columns, num_rows }
    }

    /// Discretizes every column of `table` with the same binner.
    pub fn from_table<B: Binner>(table: &crate::table::Table, binner: &B) -> Self {
        Self::new(table.columns().iter().map(|c| binner.bin(c)).collect())
    }

    /// Number of rows.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of attributes.
    #[inline]
    pub fn num_attributes(&self) -> usize {
        self.columns.len()
    }

    /// Per-attribute binned columns.
    pub fn columns(&self) -> &[BinnedColumn] {
        &self.columns
    }

    /// Binned column by attribute index.
    pub fn column(&self, idx: usize) -> &BinnedColumn {
        &self.columns[idx]
    }

    /// Total number of bitmap columns, `Σ cardinality_i`.
    pub fn total_bitmaps(&self) -> usize {
        self.columns.iter().map(|c| c.cardinality as usize).sum()
    }

    /// Total number of set bits in the equality-encoded bitmap table:
    /// exactly one per row per attribute, i.e. `num_rows * num_attributes`.
    pub fn total_set_bits(&self) -> usize {
        self.num_rows * self.columns.len()
    }

    /// Extracts the contiguous row slice `rows` as its own table:
    /// every column keeps its name, cardinality and bin edges, but
    /// holds only the selected rows (renumbered from 0). This is the
    /// row-range partitioning step of a sharded index layout — each
    /// shard indexes its slice independently.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or extends past the table.
    pub fn slice_rows(&self, rows: std::ops::Range<usize>) -> BinnedTable {
        assert!(!rows.is_empty(), "empty row slice {rows:?}");
        assert!(
            rows.end <= self.num_rows,
            "row slice {rows:?} out of range {}",
            self.num_rows
        );
        BinnedTable::new(
            self.columns
                .iter()
                .map(|c| {
                    let mut col = BinnedColumn::new(
                        c.name.clone(),
                        c.bins[rows.clone()].to_vec(),
                        c.cardinality,
                    );
                    if let Some(edges) = &c.lower_edges {
                        col = col.with_lower_edges(edges.clone());
                    }
                    col
                })
                .collect(),
        )
    }

    /// Global column identifier of `(attribute, bin)` under the paper's
    /// column numbering: attributes laid out left to right, bins within
    /// an attribute contiguous (§3.2.1).
    pub fn global_column(&self, attribute: usize, bin: u32) -> usize {
        assert!(
            bin < self.columns[attribute].cardinality,
            "bin {bin} out of range for attribute {attribute}"
        );
        let offset: usize = self.columns[..attribute]
            .iter()
            .map(|c| c.cardinality as usize)
            .sum();
        offset + bin as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Table;

    fn col(vals: &[f64]) -> Column {
        Column::new("x", vals.to_vec())
    }

    #[test]
    fn equi_width_splits_range() {
        let b = EquiWidth::new(4).bin(&col(&[0.0, 1.0, 2.0, 3.0, 4.0]));
        assert_eq!(b.cardinality, 4);
        assert_eq!(b.bins, vec![0, 1, 2, 3, 3]); // max value joins last bin
    }

    #[test]
    fn equi_width_constant_column_all_bin_zero() {
        let b = EquiWidth::new(3).bin(&col(&[5.0, 5.0, 5.0]));
        assert_eq!(b.bins, vec![0, 0, 0]);
    }

    #[test]
    fn equi_depth_balances_counts() {
        let vals: Vec<f64> = (0..100).map(|i| (i * i) as f64).collect(); // skewed
        let b = EquiDepth::new(5).bin(&col(&vals));
        let counts = b.bin_counts();
        assert_eq!(counts, vec![20; 5]);
    }

    #[test]
    fn equi_depth_preserves_order() {
        let b = EquiDepth::new(2).bin(&col(&[9.0, 1.0, 5.0, 3.0]));
        // Sorted order: 1.0, 3.0 -> bin 0; 5.0, 9.0 -> bin 1.
        assert_eq!(b.bins, vec![1, 0, 1, 0]);
    }

    #[test]
    fn explicit_edges_partition() {
        let binner = ExplicitEdges::new(vec![0.0, 1.0, 2.0]);
        let b = binner.bin(&col(&[-0.5, 0.0, 0.5, 1.0, 1.5, 2.0, 9.0]));
        assert_eq!(b.bins, vec![0, 0, 0, 1, 1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn explicit_edges_must_increase() {
        ExplicitEdges::new(vec![1.0, 1.0]);
    }

    #[test]
    fn slice_rows_extracts_contiguous_shard() {
        let t = BinnedTable::new(vec![
            BinnedColumn::new("a", vec![0, 1, 2, 0, 1, 2], 3),
            BinnedColumn::new("b", vec![1, 1, 0, 0, 1, 1], 2).with_lower_edges(vec![0.0, 10.0]),
        ]);
        let s = t.slice_rows(2..5);
        assert_eq!(s.num_rows(), 3);
        assert_eq!(s.column(0).bins, vec![2, 0, 1]);
        assert_eq!(s.column(0).cardinality, 3);
        assert_eq!(s.column(1).bins, vec![0, 0, 1]);
        assert_eq!(s.column(1).lower_edges, Some(vec![0.0, 10.0]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_rows_validates_bounds() {
        let t = BinnedTable::new(vec![BinnedColumn::new("a", vec![0, 1], 2)]);
        t.slice_rows(1..3);
    }

    #[test]
    fn binned_table_global_columns() {
        // Figure 6 layout: A (3 bins), B (3 bins), C (3 bins).
        let t = BinnedTable::new(vec![
            BinnedColumn::new("A", vec![0, 1], 3),
            BinnedColumn::new("B", vec![2, 0], 3),
            BinnedColumn::new("C", vec![1, 1], 3),
        ]);
        assert_eq!(t.global_column(0, 0), 0);
        assert_eq!(t.global_column(1, 0), 3);
        assert_eq!(t.global_column(2, 2), 8);
        assert_eq!(t.total_bitmaps(), 9);
        assert_eq!(t.total_set_bits(), 6);
    }

    #[test]
    fn from_table_bins_all_columns() {
        let t = Table::new(vec![
            Column::new("a", vec![0.0, 10.0]),
            Column::new("b", vec![5.0, 5.0]),
        ]);
        let bt = BinnedTable::from_table(&t, &EquiWidth::new(2));
        assert_eq!(bt.num_attributes(), 2);
        assert_eq!(bt.num_rows(), 2);
        assert_eq!(bt.column(0).bins, vec![0, 1]);
    }

    #[test]
    fn bin_counts_sum_to_rows() {
        let b = BinnedColumn::new("x", vec![0, 1, 1, 2, 2, 2], 3);
        assert_eq!(b.bin_counts(), vec![1, 2, 3]);
    }

    #[test]
    fn equiwidth_edges_cover_range() {
        let b = EquiWidth::new(4).bin(&col(&[0.0, 1.0, 2.0, 3.0, 4.0]));
        assert_eq!(b.lower_edges, Some(vec![0.0, 1.0, 2.0, 3.0]));
        assert_eq!(b.bins_covering(0.5, 2.5), Some((0, 2)));
        assert_eq!(b.bins_covering(3.0, 3.9), Some((3, 3)));
        // Out-of-range values clamp conservatively.
        assert_eq!(b.bins_covering(-5.0, 99.0), Some((0, 3)));
    }

    #[test]
    fn equidepth_edges_translate_value_ranges() {
        let vals: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let b = EquiDepth::new(4).bin(&col(&vals));
        // Bins: [0,25), [25,50), [50,75), [75,100).
        assert_eq!(b.lower_edges, Some(vec![0.0, 25.0, 50.0, 75.0]));
        assert_eq!(b.bins_covering(30.0, 60.0), Some((1, 2)));
        assert_eq!(b.bins_covering(75.0, 75.0), Some((3, 3)));
        // The covering bins really contain every matching row.
        let (lo_bin, hi_bin) = b.bins_covering(30.0, 60.0).unwrap();
        for (row, &v) in vals.iter().enumerate() {
            if (30.0..=60.0).contains(&v) {
                let bin = b.bins[row];
                assert!(bin >= lo_bin && bin <= hi_bin, "row {row} escaped cover");
            }
        }
    }

    #[test]
    fn explicit_edges_exposed() {
        let binner = ExplicitEdges::new(vec![0.0, 1.0, 2.0]);
        let b = binner.bin(&col(&[0.5, 1.5]));
        assert_eq!(b.lower_edges, Some(vec![0.0, 1.0]));
        assert_eq!(b.bins_covering(1.1, 1.2), Some((1, 1)));
    }

    #[test]
    fn manual_columns_have_no_edges() {
        let b = BinnedColumn::new("x", vec![0, 1], 2);
        assert_eq!(b.bins_covering(0.0, 1.0), None);
    }

    #[test]
    #[should_panic(expected = "one lower edge per bin")]
    fn with_lower_edges_validates_length() {
        BinnedColumn::new("x", vec![0, 1], 2).with_lower_edges(vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn binned_column_validates_ids() {
        BinnedColumn::new("x", vec![0, 5], 3);
    }
}
