//! Verbatim bitmap machinery: bit vectors, boolean matrices, attribute
//! binning, and classic bitmap indexes.
//!
//! This crate is the substrate underneath the Approximate Bitmap (AB)
//! reproduction of *Apaydin, Ferhatosmanoglu, Canahuate, Tosun —
//! "Approximate Encoding for Direct Access and Query Processing over
//! Compressed Bitmaps", VLDB 2006*. It provides:
//!
//! * [`BitVec`] — a word-backed bit vector with word-parallel logical
//!   operations, rank, and set-bit iteration.
//! * [`BoolMatrix`] — dense boolean matrices (paper §3.1 treats bitmap
//!   tables as boolean matrices).
//! * [`binning`] — equi-width / equi-depth / explicit discretization of
//!   numeric attributes into bins (paper §5.1).
//! * [`Encoding`] / [`EncodedAttribute`] — equality, range and interval
//!   bitmap encodings (paper §2.2).
//! * [`BitmapIndex`] — the exact index with rectangular-query
//!   evaluation, used as ground truth and as the WAH baseline's source.
//!
//! # Quick example
//!
//! ```
//! use bitmap::{BinnedTable, Binner, BitmapIndex, Column, Encoding, EquiDepth,
//!              RectQuery, AttrRange, Table};
//!
//! let table = Table::new(vec![
//!     Column::new("temp", (0..100).map(|i| i as f64).collect()),
//!     Column::new("pressure", (0..100).map(|i| ((i * 37) % 100) as f64).collect()),
//! ]);
//! let binned = BinnedTable::from_table(&table, &EquiDepth::new(10));
//! let index = BitmapIndex::build(&binned, Encoding::Equality);
//! // temp in bins 0..=1 AND pressure in bins 5..=9, rows 10..=59
//! let q = RectQuery::new(
//!     vec![AttrRange::new(0, 0, 1), AttrRange::new(1, 5, 9)], 10, 59);
//! let rows = index.evaluate_rows(&q);
//! assert!(rows.iter().all(|&r| (10..=59).contains(&r)));
//! ```

#![warn(missing_docs)]

pub mod binning;
pub mod bitvec;
pub mod encoding;
pub mod index;
pub mod matrix;
pub mod reorder;
pub mod table;

pub use binning::{BinnedColumn, BinnedTable, Binner, EquiDepth, EquiWidth, ExplicitEdges};
pub use bitvec::BitVec;
pub use encoding::{EncodedAttribute, Encoding};
pub use index::{AttrRange, BitmapIndex, RectQuery};
pub use matrix::BoolMatrix;
pub use reorder::{apply_permutation, gray_order, lexicographic_order, total_transitions};
pub use table::{Column, Table};
