//! The exact (verbatim) bitmap index and its query engine.
//!
//! A [`BitmapIndex`] holds one [`EncodedAttribute`] per attribute of a
//! [`BinnedTable`]. Queries are conjunctions of per-attribute bin ranges
//! — the "rectangular" queries of paper §3.3 — optionally restricted to
//! a contiguous row range (the `R` component of the paper's query
//! definition). The index is the ground truth the Approximate Bitmap is
//! measured against and the pruning structure for the exact second step
//! of query execution.

use crate::binning::BinnedTable;
use crate::bitvec::BitVec;
use crate::encoding::{EncodedAttribute, Encoding};
use crate::matrix::BoolMatrix;
use serde::{Deserialize, Serialize};

/// One attribute's contribution to a rectangular query: the bins
/// `lo..=hi` are OR-ed together.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttrRange {
    /// Attribute index into the table.
    pub attribute: usize,
    /// Lowest selected bin (inclusive).
    pub lo: u32,
    /// Highest selected bin (inclusive).
    pub hi: u32,
}

impl AttrRange {
    /// Convenience constructor.
    pub fn new(attribute: usize, lo: u32, hi: u32) -> Self {
        assert!(lo <= hi, "empty bin range {lo}..={hi}");
        AttrRange { attribute, lo, hi }
    }

    /// Number of bins selected.
    pub fn width(&self) -> u32 {
        self.hi - self.lo + 1
    }
}

/// A rectangular bitmap query: AND of per-attribute bin ranges,
/// restricted to rows `row_lo..=row_hi` (paper §3.3 definition, with the
/// row list expressed as a contiguous range as in the experiments §5.3).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RectQuery {
    /// Per-attribute ranges; attributes not listed are unconstrained.
    pub ranges: Vec<AttrRange>,
    /// First row considered (inclusive).
    pub row_lo: usize,
    /// Last row considered (inclusive).
    pub row_hi: usize,
}

impl RectQuery {
    /// Creates a query over rows `row_lo..=row_hi`.
    pub fn new(ranges: Vec<AttrRange>, row_lo: usize, row_hi: usize) -> Self {
        assert!(row_lo <= row_hi, "empty row range {row_lo}..={row_hi}");
        RectQuery {
            ranges,
            row_lo,
            row_hi,
        }
    }

    /// Number of rows the query targets.
    pub fn num_rows(&self) -> usize {
        self.row_hi - self.row_lo + 1
    }

    /// Query dimensionality (number of constrained attributes).
    pub fn qdim(&self) -> usize {
        self.ranges.len()
    }
}

/// An exact bitmap index over a binned table.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BitmapIndex {
    attributes: Vec<EncodedAttribute>,
    num_rows: usize,
}

impl BitmapIndex {
    /// Builds the index from a binned table under one encoding.
    pub fn build(table: &BinnedTable, encoding: Encoding) -> Self {
        BitmapIndex {
            attributes: table
                .columns()
                .iter()
                .map(|c| EncodedAttribute::encode(c, encoding))
                .collect(),
            num_rows: table.num_rows(),
        }
    }

    /// Number of rows indexed.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of attributes indexed.
    pub fn num_attributes(&self) -> usize {
        self.attributes.len()
    }

    /// Per-attribute encoded bitmaps.
    pub fn attributes(&self) -> &[EncodedAttribute] {
        &self.attributes
    }

    /// Attribute by index.
    pub fn attribute(&self, idx: usize) -> &EncodedAttribute {
        &self.attributes[idx]
    }

    /// Total uncompressed size in bytes of all stored bitmaps.
    pub fn size_bytes(&self) -> usize {
        self.attributes
            .iter()
            .map(EncodedAttribute::size_bytes)
            .sum()
    }

    /// Total number of stored bitmap vectors.
    pub fn num_bitmaps(&self) -> usize {
        self.attributes.iter().map(|a| a.bitmaps.len()).sum()
    }

    /// Evaluates a rectangular query, returning the matching rows as a
    /// full-length [`BitVec`] (bits outside `row_lo..=row_hi` are zero).
    ///
    /// This is the classic bitmap plan: OR the bin bitmaps within each
    /// attribute range, AND across attributes, then mask the row range —
    /// the full-column work the paper contrasts with AB's O(c) access.
    pub fn evaluate(&self, query: &RectQuery) -> BitVec {
        assert!(
            query.row_hi < self.num_rows,
            "row {} out of range {}",
            query.row_hi,
            self.num_rows
        );
        obs::counter!("bitmap.exact.queries").inc();
        let mut acc: Option<BitVec> = None;
        for r in &query.ranges {
            let ored = self.attributes[r.attribute].range(r.lo, r.hi);
            acc = Some(match acc {
                None => ored,
                Some(mut a) => {
                    a.and_assign(&ored);
                    a
                }
            });
        }
        let mut result = acc.unwrap_or_else(|| BitVec::ones(self.num_rows));
        // Mask to the queried row range (the paper's auxiliary-bitmap
        // AND, or equivalently a scan of the result positions).
        let mut mask = BitVec::zeros(self.num_rows);
        for i in query.row_lo..=query.row_hi {
            mask.set(i);
        }
        result.and_assign(&mask);
        result
    }

    /// Evaluates a query and returns matching row identifiers.
    pub fn evaluate_rows(&self, query: &RectQuery) -> Vec<usize> {
        self.evaluate(query).iter_ones().collect()
    }

    /// Materializes the equality-encoded bitmap table as a boolean
    /// matrix with the paper's global column layout (Figure 6): rows ×
    /// Σ cardinality. Only valid for equality-encoded indexes.
    ///
    /// # Panics
    ///
    /// Panics if any attribute uses a non-equality encoding.
    pub fn to_matrix(&self) -> BoolMatrix {
        for a in &self.attributes {
            assert_eq!(
                a.encoding,
                Encoding::Equality,
                "to_matrix requires equality encoding"
            );
        }
        let total_cols: usize = self.attributes.iter().map(|a| a.bitmaps.len()).sum();
        let mut m = BoolMatrix::zeros(self.num_rows, total_cols);
        let mut offset = 0;
        for a in &self.attributes {
            for (j, bv) in a.bitmaps.iter().enumerate() {
                for row in bv.iter_ones() {
                    m.set(row, offset + j);
                }
            }
            offset += a.bitmaps.len();
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binning::BinnedColumn;

    /// The bitmap table of Figure 6: 8 rows, attributes A, B, C with 3
    /// bins each. Bin assignments chosen arbitrarily but fixed.
    fn fig6_table() -> BinnedTable {
        BinnedTable::new(vec![
            BinnedColumn::new("A", vec![0, 1, 2, 0, 1, 1, 0, 2], 3),
            BinnedColumn::new("B", vec![2, 0, 1, 1, 0, 1, 0, 2], 3),
            BinnedColumn::new("C", vec![1, 1, 0, 2, 2, 0, 1, 0], 3),
        ])
    }

    #[test]
    fn build_counts() {
        let idx = BitmapIndex::build(&fig6_table(), Encoding::Equality);
        assert_eq!(idx.num_rows(), 8);
        assert_eq!(idx.num_attributes(), 3);
        assert_eq!(idx.num_bitmaps(), 9);
    }

    #[test]
    fn q3_one_dimensional_query() {
        // Q3 = {(A, bins 0..=1), rows 3..=7}: paper asks rows 4..8
        // (1-based) where A in bin 1 or 2.
        let idx = BitmapIndex::build(&fig6_table(), Encoding::Equality);
        let q = RectQuery::new(vec![AttrRange::new(0, 0, 1)], 3, 7);
        // A bins: rows with bin(A) <= 1 → rows 0,1,3,4,5,6; within 3..=7
        // → 3,4,5,6.
        assert_eq!(idx.evaluate_rows(&q), vec![3, 4, 5, 6]);
    }

    #[test]
    fn q4_two_dimensional_query() {
        let idx = BitmapIndex::build(&fig6_table(), Encoding::Equality);
        let q = RectQuery::new(vec![AttrRange::new(0, 0, 1), AttrRange::new(1, 1, 2)], 3, 7);
        // A in {0,1}: rows 0,1,3,4,5,6; B in {1,2}: rows 0,2,3,5,7.
        // AND → 0,3,5; row range 3..=7 → 3,5.
        assert_eq!(idx.evaluate_rows(&q), vec![3, 5]);
    }

    #[test]
    fn unconstrained_query_returns_row_range() {
        let idx = BitmapIndex::build(&fig6_table(), Encoding::Equality);
        let q = RectQuery::new(vec![], 2, 4);
        assert_eq!(idx.evaluate_rows(&q), vec![2, 3, 4]);
    }

    #[test]
    fn encodings_agree_on_queries() {
        let t = fig6_table();
        let eq = BitmapIndex::build(&t, Encoding::Equality);
        let rg = BitmapIndex::build(&t, Encoding::Range);
        let iv = BitmapIndex::build(&t, Encoding::Interval);
        for lo in 0..3u32 {
            for hi in lo..3u32 {
                let q = RectQuery::new(vec![AttrRange::new(1, lo, hi)], 0, 7);
                let want = eq.evaluate_rows(&q);
                assert_eq!(rg.evaluate_rows(&q), want, "range enc [{lo},{hi}]");
                assert_eq!(iv.evaluate_rows(&q), want, "interval enc [{lo},{hi}]");
            }
        }
    }

    #[test]
    fn to_matrix_matches_figure6_layout() {
        let idx = BitmapIndex::build(&fig6_table(), Encoding::Equality);
        let m = idx.to_matrix();
        assert_eq!((m.rows(), m.cols()), (8, 9));
        // Row 0: A=0 → col 0; B=2 → col 3+2=5; C=1 → col 6+1=7.
        assert!(m.get(0, 0));
        assert!(m.get(0, 5));
        assert!(m.get(0, 7));
        assert_eq!(m.count_ones(), 24); // 8 rows × 3 attributes
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn evaluate_rejects_bad_rows() {
        let idx = BitmapIndex::build(&fig6_table(), Encoding::Equality);
        idx.evaluate(&RectQuery::new(vec![], 0, 8));
    }

    #[test]
    fn size_accounting() {
        let idx = BitmapIndex::build(&fig6_table(), Encoding::Equality);
        assert_eq!(idx.size_bytes(), 9 * 8); // 9 bitmaps × 1 word
    }
}
