//! Dense boolean matrices.
//!
//! The paper (§3.1) treats a bitmap table as a special case of a boolean
//! matrix and defines the AB encoding over general matrices first.
//! [`BoolMatrix`] is that general form: a rows × cols grid of bits with
//! row-major storage, cell access, and iteration over set cells.

use crate::bitvec::BitVec;
use serde::{Deserialize, Serialize};

/// A dense boolean matrix stored row-major in a single [`BitVec`].
///
/// # Examples
///
/// ```
/// use bitmap::BoolMatrix;
///
/// // The 8x6 example matrix of Figure 2 has M(6,5) set (1-based in the
/// // paper; this API is 0-based).
/// let mut m = BoolMatrix::zeros(8, 6);
/// m.set(5, 4);
/// assert!(m.get(5, 4));
/// assert_eq!(m.count_ones(), 1);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoolMatrix {
    bits: BitVec,
    rows: usize,
    cols: usize,
}

impl BoolMatrix {
    /// Creates an all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        BoolMatrix {
            bits: BitVec::zeros(rows * cols),
            rows,
            cols,
        }
    }

    /// Builds a matrix from an iterator of set cells `(row, col)`.
    pub fn from_cells<I: IntoIterator<Item = (usize, usize)>>(
        rows: usize,
        cols: usize,
        cells: I,
    ) -> Self {
        let mut m = Self::zeros(rows, cols);
        for (r, c) in cells {
            m.set(r, c);
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of set cells.
    pub fn count_ones(&self) -> usize {
        self.bits.count_ones()
    }

    #[inline]
    fn idx(&self, row: usize, col: usize) -> usize {
        assert!(
            row < self.rows && col < self.cols,
            "cell ({row},{col}) out of range {}x{}",
            self.rows,
            self.cols
        );
        row * self.cols + col
    }

    /// Returns the value of cell `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> bool {
        self.bits.get(self.idx(row, col))
    }

    /// Sets cell `(row, col)` to one.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize) {
        let i = self.idx(row, col);
        self.bits.set(i);
    }

    /// Clears cell `(row, col)` to zero.
    #[inline]
    pub fn reset(&mut self, row: usize, col: usize) {
        let i = self.idx(row, col);
        self.bits.reset(i);
    }

    /// Iterates over set cells as `(row, col)` in row-major order.
    pub fn iter_set(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.bits
            .iter_ones()
            .map(|i| (i / self.cols, i % self.cols))
    }

    /// Extracts column `col` as a [`BitVec`] of `rows` bits.
    pub fn column(&self, col: usize) -> BitVec {
        assert!(col < self.cols, "column {col} out of range {}", self.cols);
        let mut bv = BitVec::zeros(self.rows);
        for r in 0..self.rows {
            if self.get(r, col) {
                bv.set(r);
            }
        }
        bv
    }

    /// Extracts row `row` as a [`BitVec`] of `cols` bits.
    pub fn row(&self, row: usize) -> BitVec {
        assert!(row < self.rows, "row {row} out of range {}", self.rows);
        let mut bv = BitVec::zeros(self.cols);
        for c in 0..self.cols {
            if self.get(row, c) {
                bv.set(c);
            }
        }
        bv
    }

    /// The 8×6 boolean matrix of the paper's Figure 2 (0-based cells).
    ///
    /// Useful in tests and doc examples across the workspace so that the
    /// worked examples of §3.1 (queries Q1 and Q2) can be checked against
    /// the published values.
    pub fn paper_example() -> Self {
        // Figure 2 (rows 1..=8, columns 1..=6 in the paper; converted to
        // 0-based). Set cells chosen to agree with the worked queries:
        // row 3 (paper) is all zero; column 6 (paper) = (1,0,0,1,0,0,1,1)
        // has true answer {rows 1,4,8} with the paper's AB answering an
        // extra false positive at row 7; cell (6,5) is set.
        Self::from_cells(
            8,
            6,
            [
                (0, 0),
                (0, 5),
                (1, 2),
                (3, 1),
                (3, 5),
                (4, 3),
                (5, 4),
                (6, 0),
                (7, 2),
                (7, 5),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_matrix_empty() {
        let m = BoolMatrix::zeros(4, 5);
        assert_eq!(m.rows(), 4);
        assert_eq!(m.cols(), 5);
        assert_eq!(m.count_ones(), 0);
    }

    #[test]
    fn set_get_reset() {
        let mut m = BoolMatrix::zeros(3, 3);
        m.set(2, 1);
        assert!(m.get(2, 1));
        assert!(!m.get(1, 2));
        m.reset(2, 1);
        assert!(!m.get(2, 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BoolMatrix::zeros(2, 2).get(2, 0);
    }

    #[test]
    fn iter_set_row_major() {
        let m = BoolMatrix::from_cells(3, 4, [(2, 0), (0, 3), (1, 1)]);
        assert_eq!(
            m.iter_set().collect::<Vec<_>>(),
            vec![(0, 3), (1, 1), (2, 0)]
        );
    }

    #[test]
    fn column_and_row_extraction() {
        let m = BoolMatrix::from_cells(3, 3, [(0, 1), (2, 1), (2, 2)]);
        assert_eq!(m.column(1).iter_ones().collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(m.row(2).iter_ones().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn paper_example_shape() {
        let m = BoolMatrix::paper_example();
        assert_eq!((m.rows(), m.cols()), (8, 6));
        // Row 3 of the paper (index 2) is all zeros: Q1's exact answer.
        assert_eq!(m.row(2).count_ones(), 0);
        // Column 6 of the paper (index 5) = rows {1,4,8} → indices {0,3,7}.
        assert_eq!(m.column(5).iter_ones().collect::<Vec<_>>(), vec![0, 3, 7]);
        // Cell (6,5) of the paper (index (5,4)) is set.
        assert!(m.get(5, 4));
    }
}
