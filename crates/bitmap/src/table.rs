//! A minimal columnar table of numeric attributes.
//!
//! Bitmap indexes are built over discretized (binned) attributes; the
//! source data itself is a table of `f64` columns. This module provides
//! just enough of a table abstraction to feed the binners and indexes:
//! named columns, row count, and column access.

use serde::{Deserialize, Serialize};

/// A named column of `f64` values.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Column {
    /// Attribute name (e.g. `"A"`, `"energy"`).
    pub name: String,
    /// Row values, one per table row.
    pub values: Vec<f64>,
}

impl Column {
    /// Creates a column from a name and values.
    pub fn new(name: impl Into<String>, values: Vec<f64>) -> Self {
        Column {
            name: name.into(),
            values,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Minimum value, or `None` for an empty column. NaNs are ignored.
    pub fn min(&self) -> Option<f64> {
        self.values
            .iter()
            .copied()
            .filter(|v| !v.is_nan())
            .fold(None, |m, v| Some(m.map_or(v, |m: f64| m.min(v))))
    }

    /// Maximum value, or `None` for an empty column. NaNs are ignored.
    pub fn max(&self) -> Option<f64> {
        self.values
            .iter()
            .copied()
            .filter(|v| !v.is_nan())
            .fold(None, |m, v| Some(m.map_or(v, |m: f64| m.max(v))))
    }
}

/// A columnar table: equal-length named columns.
///
/// # Examples
///
/// ```
/// use bitmap::{Column, Table};
///
/// let t = Table::new(vec![
///     Column::new("x", vec![1.0, 2.0, 3.0]),
///     Column::new("y", vec![0.5, 0.5, 0.9]),
/// ]);
/// assert_eq!(t.num_rows(), 3);
/// assert_eq!(t.num_attributes(), 2);
/// assert_eq!(t.column_by_name("y").unwrap().values[2], 0.9);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Table {
    columns: Vec<Column>,
    num_rows: usize,
}

impl Table {
    /// Creates a table from columns.
    ///
    /// # Panics
    ///
    /// Panics if the columns have differing lengths.
    pub fn new(columns: Vec<Column>) -> Self {
        let num_rows = columns.first().map_or(0, Column::len);
        for c in &columns {
            assert_eq!(
                c.len(),
                num_rows,
                "column `{}` length {} != {}",
                c.name,
                c.len(),
                num_rows
            );
        }
        Table { columns, num_rows }
    }

    /// Number of rows.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of attributes (columns).
    #[inline]
    pub fn num_attributes(&self) -> usize {
        self.columns.len()
    }

    /// All columns in declaration order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column by positional index.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Column lookup by name.
    pub fn column_by_name(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_basic_accessors() {
        let t = Table::new(vec![
            Column::new("a", vec![1.0, 2.0]),
            Column::new("b", vec![3.0, 4.0]),
        ]);
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.num_attributes(), 2);
        assert_eq!(t.column(1).name, "b");
        assert_eq!(t.column_index("b"), Some(1));
        assert!(t.column_by_name("c").is_none());
    }

    #[test]
    #[should_panic(expected = "length")]
    fn mismatched_lengths_panic() {
        Table::new(vec![
            Column::new("a", vec![1.0]),
            Column::new("b", vec![1.0, 2.0]),
        ]);
    }

    #[test]
    fn empty_table() {
        let t = Table::new(vec![]);
        assert_eq!(t.num_rows(), 0);
        assert_eq!(t.num_attributes(), 0);
    }

    #[test]
    fn min_max_ignores_nan() {
        let c = Column::new("x", vec![f64::NAN, 2.0, -1.0]);
        assert_eq!(c.min(), Some(-1.0));
        assert_eq!(c.max(), Some(2.0));
        assert_eq!(Column::new("e", vec![]).min(), None);
    }
}
