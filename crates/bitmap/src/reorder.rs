//! Row-reordering preprocessing for run-length compression.
//!
//! Paper §2.2.1: "reordering has been proposed as a preprocessing step
//! for improving the compression of bitmaps … the tuple reordering
//! problem is NP-complete and [Pinar, Tao, Ferhatosmanoglu] propose a
//! Gray code ordering heuristic." This module implements the two
//! standard heuristics over a [`BinnedTable`]:
//!
//! * [`lexicographic_order`] — sort rows by their bin tuple;
//! * [`gray_order`] — reflected Gray-code ordering over mixed-radix
//!   bin tuples: adjacent rows differ in few bins, maximizing run
//!   lengths across *all* bitmap columns instead of only the leading
//!   ones.
//!
//! Reordering does not change query answers (row identifiers are
//! remapped) but can shrink WAH-compressed bitmaps dramatically; the
//! `reorder` Criterion bench quantifies it.

use crate::binning::{BinnedColumn, BinnedTable};
use std::cmp::Ordering;

/// A row permutation: `perm[new_position] = old_row`.
pub type Permutation = Vec<u32>;

/// Sorts rows lexicographically by their bin tuples.
pub fn lexicographic_order(table: &BinnedTable) -> Permutation {
    let mut perm: Permutation = (0..table.num_rows() as u32).collect();
    perm.sort_by(|&a, &b| cmp_rows(table, a as usize, b as usize, false));
    perm
}

/// Orders rows by the reflected Gray-code ordering of their bin
/// tuples: within each prefix, the direction of the next attribute
/// alternates, so consecutive rows agree in as many bins as possible.
pub fn gray_order(table: &BinnedTable) -> Permutation {
    let mut perm: Permutation = (0..table.num_rows() as u32).collect();
    perm.sort_by(|&a, &b| cmp_rows(table, a as usize, b as usize, true));
    perm
}

/// Compares two rows attribute by attribute; in Gray mode the
/// comparison direction flips whenever an equal prefix coordinate is
/// odd (the reflection rule of mixed-radix Gray codes).
fn cmp_rows(table: &BinnedTable, a: usize, b: usize, gray: bool) -> Ordering {
    let mut flipped = false;
    for col in table.columns() {
        let (va, vb) = (col.bins[a], col.bins[b]);
        if va != vb {
            let ord = va.cmp(&vb);
            return if flipped { ord.reverse() } else { ord };
        }
        if gray && va % 2 == 1 {
            flipped = !flipped;
        }
    }
    Ordering::Equal
}

/// Applies a permutation, producing the reordered table:
/// row `i` of the result is row `perm[i]` of the input.
///
/// # Panics
///
/// Panics if `perm` is not a permutation of `0..num_rows`.
pub fn apply_permutation(table: &BinnedTable, perm: &[u32]) -> BinnedTable {
    let n = table.num_rows();
    assert_eq!(perm.len(), n, "permutation length mismatch");
    let mut seen = vec![false; n];
    for &p in perm {
        assert!(
            (p as usize) < n && !seen[p as usize],
            "not a permutation: duplicate or out-of-range row {p}"
        );
        seen[p as usize] = true;
    }
    BinnedTable::new(
        table
            .columns()
            .iter()
            .map(|col| {
                BinnedColumn::new(
                    col.name.clone(),
                    perm.iter().map(|&p| col.bins[p as usize]).collect(),
                    col.cardinality,
                )
            })
            .collect(),
    )
}

/// Total number of bit transitions (0→1 or 1→0) down all bitmap
/// columns — the quantity run-length encodings pay for and reordering
/// minimizes. Lower is better.
pub fn total_transitions(table: &BinnedTable) -> usize {
    let mut transitions = 0usize;
    for col in table.columns() {
        // A transition happens in bitmap `b` at row `i` iff exactly one
        // of rows i-1, i falls in bin b; summing over bitmaps, each
        // adjacent pair with differing bins contributes 2 transitions.
        for w in col.bins.windows(2) {
            if w[0] != w[1] {
                transitions += 2;
            }
        }
    }
    transitions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_table(rows: usize, attrs: usize, card: u32, seed: u64) -> BinnedTable {
        // Small xorshift-free deterministic fill (no rand dependency in
        // this crate).
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        BinnedTable::new(
            (0..attrs)
                .map(|a| {
                    BinnedColumn::new(
                        format!("a{a}"),
                        (0..rows).map(|_| (next() % card as u64) as u32).collect(),
                        card,
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn permutations_are_valid() {
        let t = random_table(500, 3, 8, 42);
        for perm in [lexicographic_order(&t), gray_order(&t)] {
            let mut sorted = perm.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..500).collect::<Vec<u32>>());
        }
    }

    #[test]
    fn apply_permutation_permutes_all_columns() {
        let t = random_table(100, 2, 5, 7);
        let perm = lexicographic_order(&t);
        let reordered = apply_permutation(&t, &perm);
        assert_eq!(reordered.num_rows(), 100);
        // Row i of result equals row perm[i] of input, per attribute.
        for a in 0..2 {
            for (i, &p) in perm.iter().enumerate() {
                assert_eq!(reordered.column(a).bins[i], t.column(a).bins[p as usize]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn bad_permutation_rejected() {
        let t = random_table(10, 1, 3, 1);
        apply_permutation(&t, &[0, 0, 1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn lexicographic_sorts_first_column_into_runs() {
        let t = random_table(1000, 2, 8, 11);
        let r = apply_permutation(&t, &lexicographic_order(&t));
        // First column is fully sorted: at most cardinality-1 breaks.
        let breaks = r.column(0).bins.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(breaks <= 7, "{breaks} breaks");
    }

    #[test]
    fn both_orderings_reduce_transitions() {
        let t = random_table(2000, 3, 6, 13);
        let base = total_transitions(&t);
        let lex = total_transitions(&apply_permutation(&t, &lexicographic_order(&t)));
        let gray = total_transitions(&apply_permutation(&t, &gray_order(&t)));
        assert!(lex < base, "lex {lex} vs base {base}");
        assert!(gray < base, "gray {gray} vs base {base}");
    }

    #[test]
    fn gray_beats_lexicographic_on_transitions() {
        // The headline of the Gray-code heuristic: fewer transitions
        // than plain sorting on the same data.
        let t = random_table(5000, 3, 4, 17);
        let lex = total_transitions(&apply_permutation(&t, &lexicographic_order(&t)));
        let gray = total_transitions(&apply_permutation(&t, &gray_order(&t)));
        assert!(gray <= lex, "gray {gray} should not exceed lex {lex}");
    }

    #[test]
    fn gray_order_adjacent_rows_share_prefix_structure() {
        // On the full cross product of a 2-attribute domain the Gray
        // order must change exactly one attribute between neighbours.
        let card = 4u32;
        let mut rows_a = Vec::new();
        let mut rows_b = Vec::new();
        for a in 0..card {
            for b in 0..card {
                rows_a.push(a);
                rows_b.push(b);
            }
        }
        let t = BinnedTable::new(vec![
            BinnedColumn::new("a", rows_a, card),
            BinnedColumn::new("b", rows_b, card),
        ]);
        let r = apply_permutation(&t, &gray_order(&t));
        for i in 1..r.num_rows() {
            let diff = (0..2)
                .filter(|&a| r.column(a).bins[i] != r.column(a).bins[i - 1])
                .count();
            assert_eq!(
                diff,
                1,
                "rows {} and {} differ in {diff} attributes",
                i - 1,
                i
            );
        }
    }

    #[test]
    fn reordering_preserves_bin_histograms() {
        let t = random_table(300, 2, 5, 23);
        let r = apply_permutation(&t, &gray_order(&t));
        for a in 0..2 {
            assert_eq!(t.column(a).bin_counts(), r.column(a).bin_counts());
        }
    }
}
