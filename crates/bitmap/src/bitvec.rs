//! A dense, word-backed bit vector.
//!
//! [`BitVec`] is the verbatim (uncompressed) bitmap representation used
//! throughout the workspace: the exact bitmap index stores one `BitVec`
//! per bin, the WAH codec compresses from / decompresses to a `BitVec`,
//! and the Approximate Bitmap uses one as its underlying hash-addressed
//! bit array.
//!
//! Bits are stored in little-endian order within 64-bit words: bit `i`
//! lives in word `i / 64` at position `i % 64`.

use serde::{Deserialize, Serialize};

/// Number of bits per storage word.
const WORD_BITS: usize = 64;

/// A fixed-length, heap-allocated bit vector with word-parallel logical
/// operations.
///
/// # Examples
///
/// ```
/// use bitmap::BitVec;
///
/// let mut bv = BitVec::zeros(128);
/// bv.set(3);
/// bv.set(100);
/// assert!(bv.get(3));
/// assert!(!bv.get(4));
/// assert_eq!(bv.count_ones(), 2);
/// assert_eq!(bv.iter_ones().collect::<Vec<_>>(), vec![3, 100]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitVec {
    words: Vec<u64>,
    /// Logical length in bits; the final word may be partially used and
    /// its unused high bits are kept at zero as an invariant.
    len: usize,
}

impl std::fmt::Debug for BitVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BitVec(len={}, ones={})", self.len, self.count_ones())
    }
}

impl BitVec {
    /// Creates a bit vector of `len` zero bits.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            words: vec![0u64; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// Creates a bit vector of `len` one bits.
    pub fn ones(len: usize) -> Self {
        let mut bv = BitVec {
            words: vec![u64::MAX; len.div_ceil(WORD_BITS)],
            len,
        };
        bv.clear_trailing();
        bv
    }

    /// Builds a bit vector from an iterator of set-bit positions.
    ///
    /// Positions out of range `0..len` cause a panic.
    pub fn from_ones<I: IntoIterator<Item = usize>>(len: usize, ones: I) -> Self {
        let mut bv = Self::zeros(len);
        for i in ones {
            bv.set(i);
        }
        bv
    }

    /// Reconstructs a bit vector from raw little-endian words, e.g.
    /// when deserializing. Unused high bits of the final word are
    /// cleared to restore the invariant.
    ///
    /// # Panics
    ///
    /// Panics if `words.len()` does not match `len.div_ceil(64)`.
    pub fn from_words(words: Vec<u64>, len: usize) -> Self {
        assert_eq!(
            words.len(),
            len.div_ceil(WORD_BITS),
            "word count does not match bit length {len}"
        );
        let mut bv = BitVec { words, len };
        bv.clear_trailing();
        bv
    }

    /// Builds a bit vector from a slice of booleans.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut bv = Self::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                bv.set(i);
            }
        }
        bv
    }

    /// Logical length in bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the vector has zero length.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Heap bytes used by the word storage (capacity-independent).
    pub fn size_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }

    /// Returns the value of bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Sets bit `i` to one.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
    }

    /// Clears bit `i` to zero.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn reset(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / WORD_BITS] &= !(1u64 << (i % WORD_BITS));
    }

    /// Assigns bit `i`.
    #[inline]
    pub fn assign(&mut self, i: usize, value: bool) {
        if value {
            self.set(i);
        } else {
            self.reset(i);
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Fraction of set bits (`count_ones / len`); zero for empty vectors.
    pub fn density(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.count_ones() as f64 / self.len as f64
        }
    }

    /// Number of set bits strictly before position `i` (rank query).
    ///
    /// # Panics
    ///
    /// Panics if `i > len`.
    pub fn rank(&self, i: usize) -> usize {
        assert!(i <= self.len, "rank index {i} out of range {}", self.len);
        let full_words = i / WORD_BITS;
        let mut r: usize = self.words[..full_words]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum();
        let rem = i % WORD_BITS;
        if rem != 0 {
            r += (self.words[full_words] & ((1u64 << rem) - 1)).count_ones() as usize;
        }
        r
    }

    /// Iterates over the positions of set bits in increasing order.
    pub fn iter_ones(&self) -> Ones<'_> {
        Ones {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Iterates over all bits as booleans.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Access to the raw word storage (read-only).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Reads raw word `i` (64 bits starting at bit `i * 64`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is past the word storage.
    #[inline]
    pub fn word(&self, i: usize) -> u64 {
        self.words[i]
    }

    /// ORs `mask` into raw word `i` — the word-parallel counterpart of
    /// [`Self::set`], used by the blocked AB to write a whole cell's
    /// probe bits in ≤ 2 stores.
    ///
    /// # Panics
    ///
    /// Panics if word `i` is not fully inside the vector; callers may
    /// only address whole words, so partial trailing words stay
    /// untouched and the trailing-zero invariant holds.
    #[inline]
    pub fn or_word(&mut self, i: usize, mask: u64) {
        assert!(
            (i + 1) * WORD_BITS <= self.len,
            "word {i} not fully within {} bits",
            self.len
        );
        self.words[i] |= mask;
    }

    /// In-place bitwise AND with `other`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn and_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "BitVec length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// In-place bitwise OR with `other`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn or_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "BitVec length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// In-place bitwise XOR with `other`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn xor_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "BitVec length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= *b;
        }
    }

    /// In-place bitwise AND-NOT (`self & !other`).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn andnot_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "BitVec length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !*b;
        }
    }

    /// In-place bitwise NOT.
    pub fn not_assign(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.clear_trailing();
    }

    /// Returns `self & other` as a new vector.
    pub fn and(&self, other: &BitVec) -> BitVec {
        let mut out = self.clone();
        out.and_assign(other);
        out
    }

    /// Returns `self | other` as a new vector.
    pub fn or(&self, other: &BitVec) -> BitVec {
        let mut out = self.clone();
        out.or_assign(other);
        out
    }

    /// Returns `self ^ other` as a new vector.
    pub fn xor(&self, other: &BitVec) -> BitVec {
        let mut out = self.clone();
        out.xor_assign(other);
        out
    }

    /// Returns `self & !other` as a new vector.
    pub fn andnot(&self, other: &BitVec) -> BitVec {
        let mut out = self.clone();
        out.andnot_assign(other);
        out
    }

    /// Returns `!self` as a new vector.
    pub fn not(&self) -> BitVec {
        let mut out = self.clone();
        out.not_assign();
        out
    }

    /// Zeroes the unused high bits of the last word, restoring the
    /// invariant after whole-word operations such as NOT.
    fn clear_trailing(&mut self) {
        let rem = self.len % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

/// Iterator over set-bit positions of a [`BitVec`]. Created by
/// [`BitVec::iter_ones`].
pub struct Ones<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let tz = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // drop lowest set bit
        Some(self.word_idx * WORD_BITS + tz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_no_ones() {
        let bv = BitVec::zeros(130);
        assert_eq!(bv.len(), 130);
        assert_eq!(bv.count_ones(), 0);
        assert!(bv.iter_ones().next().is_none());
    }

    #[test]
    fn ones_has_all_ones() {
        let bv = BitVec::ones(130);
        assert_eq!(bv.count_ones(), 130);
        assert!(bv.get(0));
        assert!(bv.get(129));
    }

    #[test]
    fn set_get_reset_roundtrip() {
        let mut bv = BitVec::zeros(200);
        for i in [0usize, 1, 63, 64, 65, 127, 128, 199] {
            bv.set(i);
            assert!(bv.get(i), "bit {i} should be set");
        }
        assert_eq!(bv.count_ones(), 8);
        bv.reset(64);
        assert!(!bv.get(64));
        assert_eq!(bv.count_ones(), 7);
    }

    #[test]
    fn assign_sets_and_clears() {
        let mut bv = BitVec::zeros(10);
        bv.assign(5, true);
        assert!(bv.get(5));
        bv.assign(5, false);
        assert!(!bv.get(5));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitVec::zeros(8).get(8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        BitVec::zeros(8).set(100);
    }

    #[test]
    fn from_ones_builds_expected_bits() {
        let bv = BitVec::from_ones(70, [1, 5, 69]);
        assert_eq!(bv.iter_ones().collect::<Vec<_>>(), vec![1, 5, 69]);
    }

    #[test]
    fn from_bools_matches() {
        let bits = [true, false, true, true, false];
        let bv = BitVec::from_bools(&bits);
        assert_eq!(bv.iter().collect::<Vec<_>>(), bits.to_vec());
    }

    #[test]
    fn rank_counts_prefix_ones() {
        let bv = BitVec::from_ones(200, [0, 10, 64, 65, 150]);
        assert_eq!(bv.rank(0), 0);
        assert_eq!(bv.rank(1), 1);
        assert_eq!(bv.rank(11), 2);
        assert_eq!(bv.rank(64), 2);
        assert_eq!(bv.rank(66), 4);
        assert_eq!(bv.rank(200), 5);
    }

    #[test]
    fn logical_ops_match_bools() {
        let a = BitVec::from_ones(100, [1, 2, 3, 50, 99]);
        let b = BitVec::from_ones(100, [2, 3, 4, 99]);
        assert_eq!(a.and(&b).iter_ones().collect::<Vec<_>>(), vec![2, 3, 99]);
        assert_eq!(
            a.or(&b).iter_ones().collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 50, 99]
        );
        assert_eq!(a.xor(&b).iter_ones().collect::<Vec<_>>(), vec![1, 4, 50]);
        assert_eq!(a.andnot(&b).iter_ones().collect::<Vec<_>>(), vec![1, 50]);
    }

    #[test]
    fn not_respects_trailing_bits() {
        let a = BitVec::from_ones(70, [0, 69]);
        let n = a.not();
        assert_eq!(n.len(), 70);
        assert_eq!(n.count_ones(), 68);
        assert!(!n.get(0));
        assert!(n.get(1));
        assert!(!n.get(69));
    }

    #[test]
    fn double_not_is_identity() {
        let a = BitVec::from_ones(77, [3, 20, 76]);
        assert_eq!(a.not().not(), a);
    }

    #[test]
    fn density_is_fraction_of_ones() {
        let a = BitVec::from_ones(100, 0..25);
        assert!((a.density() - 0.25).abs() < 1e-12);
        assert_eq!(BitVec::zeros(0).density(), 0.0);
    }

    #[test]
    fn iter_ones_across_word_boundaries() {
        let positions: Vec<usize> = (0..300).step_by(7).collect();
        let bv = BitVec::from_ones(300, positions.iter().copied());
        assert_eq!(bv.iter_ones().collect::<Vec<_>>(), positions);
    }

    #[test]
    fn size_bytes_reflects_words() {
        assert_eq!(BitVec::zeros(64).size_bytes(), 8);
        assert_eq!(BitVec::zeros(65).size_bytes(), 16);
        assert_eq!(BitVec::zeros(0).size_bytes(), 0);
    }
}
