//! Bitmap encoding schemes for one attribute.
//!
//! The paper's background (§2.2) lists the classic encodings: equality
//! [O'Neil & Quass], range [Chan & Ioannidis] and interval [Chan &
//! Ioannidis]. The AB itself approximates the *equality* encoded bitmap
//! table (one set bit per row per attribute), but a credible bitmap
//! library provides all three, and the exact index is used both as the
//! ground truth in experiments and as the pruning structure for the
//! exact second-step of query execution.

use crate::binning::BinnedColumn;
use crate::bitvec::BitVec;
use serde::{Deserialize, Serialize};

/// How an attribute's bins are mapped onto bitmap vectors.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Encoding {
    /// One bitmap per bin; `B_j[i] = 1` iff row `i` falls in bin `j`.
    /// `C` bitmaps for cardinality `C`; exactly one set bit per row.
    Equality,
    /// Cumulative bitmaps; `R_j[i] = 1` iff `bin(i) <= j`. The last
    /// bitmap is all ones and is not stored, giving `C - 1` bitmaps.
    /// Range queries touch at most two bitmaps.
    Range,
    /// Interval bitmaps of Chan & Ioannidis; `I_j[i] = 1` iff
    /// `j <= bin(i) < j + m` with `m = ceil(C / 2)`, for
    /// `j in 0..C - m + 1`. Any range query is answered with at most two
    /// bitmaps via union/intersection/complement combinations.
    Interval,
}

impl Encoding {
    /// Number of stored bitmap vectors for an attribute of cardinality
    /// `c` under this encoding.
    pub fn num_bitmaps(&self, c: u32) -> usize {
        let c = c as usize;
        match self {
            Encoding::Equality => c,
            Encoding::Range => c.saturating_sub(1).max(1),
            Encoding::Interval => {
                let m = c.div_ceil(2);
                c - m + 1
            }
        }
    }
}

/// The encoded bitmaps of a single attribute.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncodedAttribute {
    /// Attribute name.
    pub name: String,
    /// Number of bins.
    pub cardinality: u32,
    /// Encoding scheme used for `bitmaps`.
    pub encoding: Encoding,
    /// The stored bitmap vectors; interpretation depends on `encoding`.
    pub bitmaps: Vec<BitVec>,
    num_rows: usize,
}

impl EncodedAttribute {
    /// Encodes a binned column under `encoding`.
    pub fn encode(column: &BinnedColumn, encoding: Encoding) -> Self {
        let n = column.len();
        let c = column.cardinality;
        let bitmaps = match encoding {
            Encoding::Equality => {
                let mut maps = vec![BitVec::zeros(n); c as usize];
                for (row, &bin) in column.bins.iter().enumerate() {
                    maps[bin as usize].set(row);
                }
                maps
            }
            Encoding::Range => {
                // R_j = rows with bin <= j, for j in 0..c-1 (R_{c-1} is
                // all ones and implicit). Cardinality-1 attributes store
                // a single all-ones bitmap so the attribute is queryable.
                let stored = encoding.num_bitmaps(c);
                let mut maps = vec![BitVec::zeros(n); stored];
                for (row, &bin) in column.bins.iter().enumerate() {
                    for m in maps.iter_mut().skip(bin as usize) {
                        m.set(row);
                    }
                }
                if c == 1 {
                    maps[0] = BitVec::ones(n);
                }
                maps
            }
            Encoding::Interval => {
                let m = (c as usize).div_ceil(2);
                let stored = encoding.num_bitmaps(c);
                let mut maps = vec![BitVec::zeros(n); stored];
                for (row, &bin) in column.bins.iter().enumerate() {
                    let bin = bin as usize;
                    // I_j covers [j, j+m-1]; row is in I_j for
                    // j in [bin-m+1, bin] clamped to [0, stored-1].
                    let lo = bin.saturating_sub(m - 1);
                    let hi = bin.min(stored - 1);
                    for map in maps.iter_mut().take(hi + 1).skip(lo) {
                        map.set(row);
                    }
                }
                maps
            }
        };
        EncodedAttribute {
            name: column.name.clone(),
            cardinality: c,
            encoding,
            bitmaps,
            num_rows: n,
        }
    }

    /// Number of rows covered.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Total uncompressed size of the stored bitmaps in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bitmaps.iter().map(BitVec::size_bytes).sum()
    }

    /// Rows whose bin equals `bin` (point query).
    ///
    /// # Panics
    ///
    /// Panics if `bin >= cardinality`.
    pub fn point(&self, bin: u32) -> BitVec {
        assert!(bin < self.cardinality, "bin {bin} out of range");
        self.range(bin, bin)
    }

    /// Rows whose bin lies in `[lo, hi]` (inclusive range query).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `hi >= cardinality`.
    pub fn range(&self, lo: u32, hi: u32) -> BitVec {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        assert!(hi < self.cardinality, "bin {hi} out of range");
        let c = self.cardinality as usize;
        let (lo, hi) = (lo as usize, hi as usize);
        match self.encoding {
            Encoding::Equality => {
                let mut acc = self.bitmaps[lo].clone();
                for b in &self.bitmaps[lo + 1..=hi] {
                    acc.or_assign(b);
                }
                acc
            }
            Encoding::Range => {
                // rows in [lo, hi] = R_hi AND NOT R_{lo-1}; R_{c-1} = 1s.
                let upper = if hi == c - 1 {
                    BitVec::ones(self.num_rows)
                } else {
                    self.bitmaps[hi].clone()
                };
                if lo == 0 {
                    upper
                } else {
                    upper.andnot(&self.bitmaps[lo - 1])
                }
            }
            Encoding::Interval => self.interval_range(lo, hi),
        }
    }

    /// Range evaluation for the interval encoding.
    ///
    /// With `m = ceil(C/2)` and stored bitmaps `I_0..I_{C-m}` each
    /// covering `m` consecutive bins, any `[lo, hi]` decomposes into a
    /// combination of at most two stored bitmaps (Chan & Ioannidis); the
    /// fall-back below handles the general case exactly, using the
    /// identities
    ///   rows(bin <= j)  = I_0        minus I_{j+1} part, and
    ///   rows(bin >= j)  = I_{j}      extended by tail coverage,
    /// expressed through prefix/suffix helpers.
    fn interval_range(&self, lo: usize, hi: usize) -> BitVec {
        let c = self.cardinality as usize;
        let m = c.div_ceil(2);
        let last = c - m; // largest stored interval start
        let n = self.num_rows;

        // rows with bin >= j
        let ge = |j: usize| -> BitVec {
            if j == 0 {
                BitVec::ones(n)
            } else if j <= last {
                // [j, j+m-1] ∪ [j+m, c-1]; the tail equals
                // I_last \ [last, j+m-1] … simpler: I_j ∪ (bin >= j+m)
                // recursion depth <= 2 since j+m > last.
                let mut acc = self.bitmaps[j].clone();
                if j + m < c {
                    acc.or_assign(&self.ge_high(j + m));
                }
                acc
            } else {
                self.ge_high(j)
            }
        };
        // rows with bin <= j
        let le = |j: usize| -> BitVec {
            if j >= c - 1 {
                BitVec::ones(n)
            } else {
                ge(j + 1).not()
            }
        };

        if lo == 0 {
            le(hi)
        } else if hi == c - 1 {
            ge(lo)
        } else {
            le(hi).and(&ge(lo))
        }
    }

    /// rows with `bin >= j` for `j > last` (no stored interval starts at
    /// `j`): equals `I_last` minus the rows whose bin is in
    /// `[last, j-1]`, i.e. `I_last AND NOT (bin <= j-1)`. Because
    /// `j > last` implies every bin `< j` intersects `I_0..I_last`
    /// coverage, we compute it as `I_last \ (I_last ∩ complement)` using
    /// the equality relation: a row with bin `b >= j` lies in `I_last`
    /// (since `b >= j > last` and `b <= c-1 <= last+m-1`), and a row in
    /// `I_last` has `b >= last`. So
    /// `rows(bin >= j) = I_last AND NOT rows(bin < j)`, with
    /// `rows(bin < j) ∩ I_last = rows(last <= bin < j)`, which is the
    /// union of point differences `I_{b} \ I_{b+1}`-style terms; for
    /// simplicity and exactness we materialize it from the equality of
    /// interval memberships: bin == b (for last <= b < j) is
    /// `I_{b-m+1 .. } …` — in practice `b - m + 1 = b - m + 1 <= last`,
    /// so bin == b equals `I_{b-m+1} AND I_{min(b, last)} AND NOT
    /// neighbours`. To keep the code auditable we instead compute the
    /// complement prefix with the recursion below, which terminates
    /// because each step strictly decreases the bin span.
    fn ge_high(&self, j: usize) -> BitVec {
        let c = self.cardinality as usize;
        let m = c.div_ceil(2);
        let last = c - m;
        debug_assert!(j > last && j < c);
        // bin >= j  <=>  row ∈ I_last and row ∉ I_{j-m} … I covers
        // [j-m, j-1] ∌ bins >= j; and any bin in [last, j-1] IS in
        // I_{j-m} when j-m >= 0 and j-1 <= j-m+m-1 (always) and
        // last >= j-m (since j <= last+m). So:
        //   rows(bin >= j) = I_last AND NOT I_{j-m}
        // validity: bins b in [last, c-1] are exactly I_last's bins with
        // b >= last; I_{j-m} covers [j-m, j-1], and for b in
        // [last, j-1] we need b >= j-m, i.e. last >= j-m, i.e.
        // j <= last + m = c - m + m = c. Holds.
        let jm = j - m;
        self.bitmaps[last].andnot(&self.bitmaps[jm])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BinnedColumn {
        // bins: cardinality 5
        BinnedColumn::new("x", vec![0, 1, 2, 3, 4, 2, 2, 0, 4, 1], 5)
    }

    fn brute_range(col: &BinnedColumn, lo: u32, hi: u32) -> Vec<usize> {
        col.bins
            .iter()
            .enumerate()
            .filter(|(_, &b)| b >= lo && b <= hi)
            .map(|(i, _)| i)
            .collect()
    }

    fn check_all_ranges(encoding: Encoding) {
        let col = sample();
        let enc = EncodedAttribute::encode(&col, encoding);
        for lo in 0..5u32 {
            for hi in lo..5u32 {
                let got: Vec<usize> = enc.range(lo, hi).iter_ones().collect();
                assert_eq!(
                    got,
                    brute_range(&col, lo, hi),
                    "{encoding:?} range [{lo},{hi}]"
                );
            }
        }
    }

    #[test]
    fn equality_ranges_match_bruteforce() {
        check_all_ranges(Encoding::Equality);
    }

    #[test]
    fn range_encoding_matches_bruteforce() {
        check_all_ranges(Encoding::Range);
    }

    #[test]
    fn interval_encoding_matches_bruteforce() {
        check_all_ranges(Encoding::Interval);
    }

    #[test]
    fn interval_encoding_even_cardinality() {
        let col = BinnedColumn::new("x", vec![0, 1, 2, 3, 3, 0, 1, 2], 4);
        let enc = EncodedAttribute::encode(&col, Encoding::Interval);
        for lo in 0..4u32 {
            for hi in lo..4u32 {
                let got: Vec<usize> = enc.range(lo, hi).iter_ones().collect();
                assert_eq!(got, brute_range(&col, lo, hi), "range [{lo},{hi}]");
            }
        }
    }

    #[test]
    fn num_bitmaps_per_encoding() {
        assert_eq!(Encoding::Equality.num_bitmaps(5), 5);
        assert_eq!(Encoding::Range.num_bitmaps(5), 4);
        assert_eq!(Encoding::Interval.num_bitmaps(5), 3); // m=3, 5-3+1
        assert_eq!(Encoding::Interval.num_bitmaps(4), 3); // m=2, 4-2+1
        assert_eq!(Encoding::Range.num_bitmaps(1), 1);
    }

    #[test]
    fn equality_point_query() {
        let enc = EncodedAttribute::encode(&sample(), Encoding::Equality);
        assert_eq!(enc.point(2).iter_ones().collect::<Vec<_>>(), vec![2, 5, 6]);
    }

    #[test]
    fn cardinality_one_attribute() {
        let col = BinnedColumn::new("c", vec![0, 0, 0], 1);
        for e in [Encoding::Equality, Encoding::Range, Encoding::Interval] {
            let enc = EncodedAttribute::encode(&col, e);
            assert_eq!(
                enc.range(0, 0).iter_ones().collect::<Vec<_>>(),
                vec![0, 1, 2],
                "{e:?}"
            );
        }
    }

    #[test]
    fn equality_bitmaps_partition_rows() {
        let enc = EncodedAttribute::encode(&sample(), Encoding::Equality);
        let total: usize = enc.bitmaps.iter().map(BitVec::count_ones).sum();
        assert_eq!(total, 10); // one set bit per row
    }

    #[test]
    fn size_bytes_positive() {
        let enc = EncodedAttribute::encode(&sample(), Encoding::Equality);
        assert_eq!(enc.size_bytes(), 5 * 8); // 5 bitmaps, 10 bits -> 1 word
    }
}
