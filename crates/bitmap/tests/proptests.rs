//! Property-based tests for the bitmap substrate.

use bitmap::{BinnedColumn, Binner, BitVec, Column, EncodedAttribute, Encoding, EquiDepth};
use proptest::prelude::*;

/// Strategy: a set of distinct bit positions below `len`.
fn positions(len: usize) -> impl Strategy<Value = Vec<usize>> {
    prop::collection::btree_set(0..len, 0..len.min(64)).prop_map(|s| s.into_iter().collect())
}

proptest! {
    #[test]
    fn bitvec_from_ones_iter_roundtrip(ones in positions(500)) {
        let bv = BitVec::from_ones(500, ones.iter().copied());
        prop_assert_eq!(bv.iter_ones().collect::<Vec<_>>(), ones.clone());
        prop_assert_eq!(bv.count_ones(), ones.len());
    }

    #[test]
    fn bitvec_rank_matches_prefix_count(ones in positions(300), i in 0usize..=300) {
        let bv = BitVec::from_ones(300, ones.iter().copied());
        let expect = ones.iter().filter(|&&p| p < i).count();
        prop_assert_eq!(bv.rank(i), expect);
    }

    #[test]
    fn bitvec_ops_match_setwise(a in positions(256), b in positions(256)) {
        use std::collections::BTreeSet;
        let sa: BTreeSet<_> = a.iter().copied().collect();
        let sb: BTreeSet<_> = b.iter().copied().collect();
        let va = BitVec::from_ones(256, a.iter().copied());
        let vb = BitVec::from_ones(256, b.iter().copied());
        let and: Vec<usize> = sa.intersection(&sb).copied().collect();
        let or: Vec<usize> = sa.union(&sb).copied().collect();
        let xor: Vec<usize> = sa.symmetric_difference(&sb).copied().collect();
        let diff: Vec<usize> = sa.difference(&sb).copied().collect();
        prop_assert_eq!(va.and(&vb).iter_ones().collect::<Vec<_>>(), and);
        prop_assert_eq!(va.or(&vb).iter_ones().collect::<Vec<_>>(), or);
        prop_assert_eq!(va.xor(&vb).iter_ones().collect::<Vec<_>>(), xor);
        prop_assert_eq!(va.andnot(&vb).iter_ones().collect::<Vec<_>>(), diff);
    }

    #[test]
    fn bitvec_demorgan(a in positions(200), b in positions(200)) {
        let va = BitVec::from_ones(200, a);
        let vb = BitVec::from_ones(200, b);
        // !(a | b) == !a & !b
        prop_assert_eq!(va.or(&vb).not(), va.not().and(&vb.not()));
        // !(a & b) == !a | !b
        prop_assert_eq!(va.and(&vb).not(), va.not().or(&vb.not()));
    }

    #[test]
    fn equidepth_bins_are_balanced(values in prop::collection::vec(-1e6f64..1e6, 10..200),
                                   bins in 1u32..10) {
        let col = Column::new("v", values.clone());
        let binned = EquiDepth::new(bins).bin(&col);
        let counts = binned.bin_counts();
        let n = values.len();
        let lo = n / bins as usize;
        // Every bin holds floor(n/bins) or one more row.
        for c in counts {
            prop_assert!(c == lo || c == lo + 1, "unbalanced bin: {c} (n={n}, bins={bins})");
        }
    }

    #[test]
    fn all_encodings_agree_on_ranges(bins in prop::collection::vec(0u32..6, 1..120)) {
        let col = BinnedColumn::new("x", bins, 6);
        let eq = EncodedAttribute::encode(&col, Encoding::Equality);
        let rg = EncodedAttribute::encode(&col, Encoding::Range);
        let iv = EncodedAttribute::encode(&col, Encoding::Interval);
        for lo in 0..6u32 {
            for hi in lo..6u32 {
                let want = eq.range(lo, hi);
                prop_assert_eq!(&rg.range(lo, hi), &want, "range enc [{},{}]", lo, hi);
                prop_assert_eq!(&iv.range(lo, hi), &want, "interval enc [{},{}]", lo, hi);
            }
        }
    }
}
