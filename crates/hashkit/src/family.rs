//! Hash families: how a bitmap-table cell becomes k positions in an AB.
//!
//! The AB insertion/retrieval algorithms (paper Figures 3 and 5) factor
//! into two pieces:
//!
//! 1. a **cell mapper** `F(i, j)` building the hash string `x` from the
//!    row and column number (§3.2.1), and
//! 2. a **hash family** producing `k` bit positions in `[0, n)` from
//!    `x` (or, for the column-group hash, from the cell directly).
//!
//! Both are first-class values here so the experiments of Figure 10 can
//! swap them freely.

use crate::partow::{
    ap_hash, bkdr_hash, decimal_key_bytes, dek_hash, djb_hash, elf_hash, fnv_hash, js_hash,
    pjw_hash, rs_hash, sdbm_hash, splitmix64,
};
use crate::sha1::DigestStream;
use crate::simple::multiply_shift;
use serde::{Deserialize, Serialize};

/// The hash string mapping function `x = F(i, j)` (paper §3.2.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CellMapper {
    /// `x = (row << shift) | col` — used for one AB per data set or per
    /// attribute. `shift` (the paper's user-defined offset `w`) must be
    /// large enough to accommodate every column id, making `x` unique.
    Shifted {
        /// Bit offset for the row; column ids occupy the low `shift` bits.
        shift: u32,
    },
    /// `x = row` — used for one AB per column, where the column is
    /// already implied by which AB is addressed.
    RowOnly,
}

impl CellMapper {
    /// A `Shifted` mapper wide enough for `num_columns` global column
    /// ids.
    pub fn for_columns(num_columns: usize) -> Self {
        let shift = usize::BITS - num_columns.max(1).leading_zeros();
        CellMapper::Shifted { shift }
    }

    /// Computes the hash string for a cell.
    #[inline]
    pub fn map(&self, row: u64, col: u64) -> u64 {
        match *self {
            CellMapper::Shifted { shift } => {
                debug_assert!(
                    shift == 0 || col < (1 << shift),
                    "column id overflows shift"
                );
                (row << shift) | col
            }
            CellMapper::RowOnly => row,
        }
    }
}

/// One general-purpose hash function, dispatchable by value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum HashKind {
    /// Robert Sedgewick's hash.
    Rs,
    /// Justin Sobel's bitwise hash.
    Js,
    /// Peter J. Weinberger's hash (weak on short keys — see Fig 10a).
    Pjw,
    /// The Unix ELF-format hash (PJW variant).
    Elf,
    /// Kernighan & Ritchie's multiplicative hash.
    Bkdr,
    /// The sdbm library hash.
    Sdbm,
    /// Daniel J. Bernstein's times-33 hash.
    Djb,
    /// Donald Knuth's shift-xor hash.
    Dek,
    /// Arash Partow's alternating hash.
    Ap,
    /// FNV-1a (64-bit).
    Fnv,
    /// Multiply-shift over the full 64-bit key.
    MultiplyShift,
    /// Circular hash `x mod n` (paper §5.2.2).
    Circular,
}

impl HashKind {
    /// All string-style kinds, in the roster order used to assemble
    /// default independent families.
    pub const ROSTER: [HashKind; 10] = [
        HashKind::Bkdr,
        HashKind::Djb,
        HashKind::Sdbm,
        HashKind::Fnv,
        HashKind::Ap,
        HashKind::Rs,
        HashKind::Js,
        HashKind::Dek,
        HashKind::Elf,
        HashKind::Pjw,
    ];

    /// Hashes the integer key `x` to a full-width value (reduce mod the
    /// AB size afterwards). String-style kinds hash the decimal ASCII
    /// form of `x` — see [`decimal_key_bytes`] for why.
    #[inline]
    pub fn hash(&self, x: u64) -> u64 {
        let (bytes, len) = decimal_key_bytes(x);
        self.hash_bytes(&bytes[..len], x)
    }

    /// Hashes a pre-encoded key (`key` is the string form of `x`; the
    /// raw integer is still needed for the integer-native kinds).
    #[inline]
    pub fn hash_bytes(&self, key: &[u8], x: u64) -> u64 {
        match self {
            HashKind::Rs => rs_hash(key),
            HashKind::Js => js_hash(key),
            HashKind::Pjw => pjw_hash(key),
            HashKind::Elf => elf_hash(key),
            HashKind::Bkdr => bkdr_hash(key),
            HashKind::Sdbm => sdbm_hash(key),
            HashKind::Djb => djb_hash(key),
            HashKind::Dek => dek_hash(key),
            HashKind::Ap => ap_hash(key),
            HashKind::Fnv => fnv_hash(key),
            HashKind::MultiplyShift => multiply_shift(x, 64),
            HashKind::Circular => x,
        }
    }
}

/// A complete strategy turning a cell into `k` AB bit positions.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum HashFamily {
    /// `k` independent functions (paper §5.2.2): the t-th probe is
    /// `kinds[t % kinds.len()](x ⊕ seed_t) mod n`, where `seed_0 = 0`
    /// keeps the first probe equal to the raw library function and the
    /// later seeds decorrelate reused kinds when `k > kinds.len()`.
    Independent(
        /// The function roster to cycle through.
        Vec<HashKind>,
    ),
    /// Single SHA-1 digest split into `k` partial values (paper
    /// §5.2.1, Table 1).
    Sha1Split,
    /// Kirsch–Mitzenmacher double hashing: probe t is
    /// `h1(x) + t·h2(x) mod n`, with splitmix-derived h1/h2. Two mixes
    /// regardless of `k` — the cheap alternative the paper's "single
    /// hash function" motivation anticipates.
    DoubleHashing,
    /// Column-group hash (paper §5.2.2): the AB splits into one group
    /// per bitmap column; probe t perturbs the in-group offset by
    /// double hashing so `k > 1` stays within the cell's group. Only
    /// valid with [`CellMapper::Shifted`] levels (the column matters).
    ColumnGroup {
        /// Total number of bitmap columns covered by the AB.
        num_columns: u64,
    },
}

impl HashFamily {
    /// The default family used throughout the experiments: the
    /// independent Partow roster.
    pub fn default_independent() -> Self {
        HashFamily::Independent(HashKind::ROSTER.to_vec())
    }

    /// Computes the `k` bit positions of a cell in an AB of `n` bits
    /// and appends them to `out` (cleared first).
    ///
    /// `row`/`col` are the bitmap-table coordinates; `mapper` builds
    /// the hash string for string-based families.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `k == 0`.
    pub fn positions(
        &self,
        row: u64,
        col: u64,
        mapper: CellMapper,
        k: usize,
        n: u64,
        out: &mut Vec<u64>,
    ) {
        assert!(k > 0, "need at least one hash function");
        out.clear();
        let mut prober = self.prober(row, col, mapper, n);
        for _ in 0..k {
            out.push(prober.next_position());
        }
        debug_assert!(out.iter().all(|&p| p < n));
    }

    /// Prepares the incremental probe sequence for one cell: the
    /// per-cell work (mapping, key encoding, digest, stride derivation)
    /// happens once here, and [`Prober::next_position`] then yields the
    /// t-th position on demand. This is what lets the retrieval
    /// algorithm (paper Figure 5) break at the first zero bit without
    /// paying for the remaining k−1 hash functions.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` (and, for the column-group family, if the
    /// column is out of range).
    pub fn prober(&self, row: u64, col: u64, mapper: CellMapper, n: u64) -> Prober<'_> {
        let col_prober = self.col_prober(col, mapper, n);
        let row_probe = col_prober.begin(row);
        Prober {
            col: col_prober,
            row: row_probe,
        }
    }

    /// Hoists the row-independent half of the probe pipeline for one
    /// (column, AB) pair: family dispatch, the power-of-two reduction
    /// mask, the SHA-1 chunk width, and the column-group geometry are
    /// all resolved once here. The batched query kernel builds one
    /// `ColProber` per (attribute, bin) of a rect query and then derives
    /// per-row positions with only the cheap mixer via
    /// [`ColProber::begin`] / [`ColProber::next_position`].
    ///
    /// The position sequence is bit-identical to [`HashFamily::prober`]
    /// (which is now a thin wrapper over this type), so scalar and
    /// batched probes — and inserts vs retrievals — can never diverge.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` (and, for the column-group family, if the
    /// column is out of range).
    pub fn col_prober(&self, col: u64, mapper: CellMapper, n: u64) -> ColProber<'_> {
        assert!(n > 0, "AB size must be positive");
        let kind = match self {
            HashFamily::Independent(kinds) => {
                assert!(!kinds.is_empty(), "empty hash roster");
                ColKind::Independent { kinds }
            }
            HashFamily::Sha1Split => {
                // Chunk width: enough bits to cover n, as in Table 1
                // where a 2^16-bit AB uses 16-bit chunks.
                let m = (64 - (n - 1).leading_zeros().min(63)).max(1);
                ColKind::Sha1 { m }
            }
            HashFamily::DoubleHashing => ColKind::Double,
            HashFamily::ColumnGroup { num_columns } => {
                assert!(*num_columns > 0, "column count must be positive");
                assert!(
                    col < *num_columns,
                    "column {col} out of range {num_columns}"
                );
                let group_size = (n / num_columns).max(1);
                ColKind::ColumnGroup {
                    group_size,
                    group_start: (col * group_size).min(n - 1),
                }
            }
        };
        let pow2_mask = if n.is_power_of_two() { n - 1 } else { 0 };
        ColProber {
            kind,
            mapper,
            col,
            n,
            pow2_mask,
        }
    }
}

/// Row-independent probe state for one (column, AB) pair. See
/// [`HashFamily::col_prober`].
pub struct ColProber<'f> {
    kind: ColKind<'f>,
    mapper: CellMapper,
    col: u64,
    n: u64,
    /// `n − 1` when `n` is a power of two (the paper always rounds AB
    /// sizes up to powers of two, §4.2, so reduction is a mask, not a
    /// division), else 0 meaning "use modulo".
    pow2_mask: u64,
}

/// The hoisted, per-column half of [`ProbeState`]'s old contents.
enum ColKind<'f> {
    Independent { kinds: &'f [HashKind] },
    Sha1 { m: u32 },
    Double,
    ColumnGroup { group_size: u64, group_start: u64 },
}

/// Per-row probe state, valid only with the [`ColProber`] that created
/// it. Deliberately small and family-uniform so a query batch can keep
/// one in flight per row lane.
pub struct RowProbe {
    state: RowState,
    t: u64,
}

enum RowState {
    Independent { x: u64, bytes: [u8; 20], len: usize },
    Sha1 { stream: DigestStream },
    Double { h1: u64, h2: u64 },
    ColumnGroup { row: u64, h2: u64 },
}

impl RowProbe {
    /// How many positions have been taken from this probe so far.
    #[inline]
    pub fn probes(&self) -> u64 {
        self.t
    }
}

impl ColProber<'_> {
    /// The AB size this prober reduces into.
    #[inline]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Starts the probe sequence for one row: only the cheap per-row
    /// work (cell mapping, key encoding or mixer seeding) happens here.
    #[inline]
    pub fn begin(&self, row: u64) -> RowProbe {
        let state = match &self.kind {
            ColKind::Independent { .. } => {
                let x = self.mapper.map(row, self.col);
                // One key encoding covers every unseeded probe.
                let (bytes, len) = decimal_key_bytes(x);
                RowState::Independent { x, bytes, len }
            }
            ColKind::Sha1 { .. } => {
                let x = self.mapper.map(row, self.col);
                RowState::Sha1 {
                    stream: DigestStream::new(x),
                }
            }
            ColKind::Double => {
                let x = self.mapper.map(row, self.col);
                RowState::Double {
                    h1: splitmix64(x),
                    h2: splitmix64(x ^ 0x5851_F42D_4C95_7F2D) | 1, // odd stride
                }
            }
            ColKind::ColumnGroup { .. } => RowState::ColumnGroup {
                row,
                h2: splitmix64(row) | 1,
            },
        };
        RowProbe { state, t: 0 }
    }

    /// The next probe position for `probe`, in `[0, n)`. The sequence
    /// is unbounded; callers take the first `k`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `probe` came from a `ColProber` of a
    /// different family.
    #[inline]
    pub fn next_position(&self, probe: &mut RowProbe) -> u64 {
        let t = probe.t;
        probe.t += 1;
        match (&self.kind, &mut probe.state) {
            (ColKind::Independent { kinds }, RowState::Independent { x, bytes, len }) => {
                let h = if (t as usize) < kinds.len() {
                    kinds[t as usize].hash_bytes(&bytes[..*len], *x)
                } else {
                    // Roster exhausted: decorrelate the reused kind
                    // with a per-probe seed.
                    kinds[t as usize % kinds.len()].hash(*x ^ splitmix64(t))
                };
                self.reduce_hash(h)
            }
            (ColKind::Sha1 { m }, RowState::Sha1 { stream }) => {
                let h = stream.take(*m);
                self.reduce_hash(h)
            }
            (ColKind::Double, RowState::Double { h1, h2 }) => {
                let h = h1.wrapping_add(t.wrapping_mul(*h2));
                self.reduce_hash(h)
            }
            (
                ColKind::ColumnGroup {
                    group_size,
                    group_start,
                },
                RowState::ColumnGroup { row, h2 },
            ) => {
                let off = row.wrapping_add(t.wrapping_mul(*h2)) % *group_size;
                (*group_start + off).min(self.n - 1)
            }
            _ => unreachable!("RowProbe used with a ColProber of a different family"),
        }
    }

    /// Batch form of [`Self::next_position`]: advances every probe in
    /// `probes` by one step, writing the positions into
    /// `out[..probes.len()]`. The sequence per probe is bit-identical
    /// to calling `next_position` repeatedly — this is a *schedule*
    /// optimization, not a hash change: the family dispatch and the
    /// reduction-strategy branch are resolved once per batch instead of
    /// once per probe, so the mixer families (double hashing,
    /// column-group) compile to tight branch-free inner loops the
    /// autovectorizer can widen, and the SIMD query kernel gets all of
    /// a wave's first-probe positions from one call.
    ///
    /// The string families (independent roster, SHA-1 split) are
    /// inherently serial per probe — they fall back to the scalar path
    /// inside the hoisted dispatch.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than `probes` (and, in debug builds,
    /// if any probe came from a `ColProber` of a different family).
    pub fn next_positions(&self, probes: &mut [RowProbe], out: &mut [u64]) {
        assert!(
            out.len() >= probes.len(),
            "output buffer shorter than probe batch"
        );
        match &self.kind {
            ColKind::Independent { .. } | ColKind::Sha1 { .. } => {
                for (p, o) in probes.iter_mut().zip(out.iter_mut()) {
                    *o = self.next_position(p);
                }
            }
            ColKind::Double => {
                for (p, o) in probes.iter_mut().zip(out.iter_mut()) {
                    let t = p.t;
                    p.t += 1;
                    let RowState::Double { h1, h2 } = &p.state else {
                        unreachable!("RowProbe used with a ColProber of a different family")
                    };
                    *o = self.reduce_hash(h1.wrapping_add(t.wrapping_mul(*h2)));
                }
            }
            ColKind::ColumnGroup {
                group_size,
                group_start,
            } => {
                for (p, o) in probes.iter_mut().zip(out.iter_mut()) {
                    let t = p.t;
                    p.t += 1;
                    let RowState::ColumnGroup { row, h2 } = &p.state else {
                        unreachable!("RowProbe used with a ColProber of a different family")
                    };
                    let off = row.wrapping_add(t.wrapping_mul(*h2)) % *group_size;
                    *o = (*group_start + off).min(self.n - 1);
                }
            }
        }
    }

    /// Reduces a full-width hash into `[0, n)`.
    #[inline]
    fn reduce_hash(&self, h: u64) -> u64 {
        if self.pow2_mask != 0 {
            h & self.pow2_mask
        } else {
            h % self.n
        }
    }

    /// Flushes `calls` probe computations into this family's
    /// `hashkit.hash_calls.*` counter. Batched callers accumulate a
    /// plain integer across many rows and flush once per query so the
    /// probe loop stays atomics-free (`Prober` does the same on drop).
    pub fn record_hash_calls(&self, calls: u64) {
        #[cfg(feature = "obs-off")]
        let _ = calls;
        #[cfg(not(feature = "obs-off"))]
        {
            if calls == 0 {
                return;
            }
            let c = match self.kind {
                ColKind::Independent { .. } => obs::counter!("hashkit.hash_calls.independent"),
                ColKind::Sha1 { .. } => obs::counter!("hashkit.hash_calls.sha1_split"),
                ColKind::Double => obs::counter!("hashkit.hash_calls.double_hashing"),
                ColKind::ColumnGroup { .. } => obs::counter!("hashkit.hash_calls.column_group"),
            };
            c.add(calls);
        }
    }
}

/// Lazily yields the probe positions of one cell in increasing probe
/// order. Created by [`HashFamily::prober`]; a thin wrapper binding a
/// [`ColProber`] to one [`RowProbe`].
pub struct Prober<'f> {
    col: ColProber<'f>,
    row: RowProbe,
}

impl Prober<'_> {
    /// The next probe position, in `[0, n)`. The sequence is unbounded;
    /// callers take the first `k`.
    #[inline]
    pub fn next_position(&mut self) -> u64 {
        self.col.next_position(&mut self.row)
    }
}

impl Iterator for Prober<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        Some(self.next_position())
    }
}

/// Flushes the probe count into the per-family `hashkit.hash_calls.*`
/// counters exactly once per cell, when the prober dies — the probe
/// loop itself stays atomics-free.
#[cfg(not(feature = "obs-off"))]
impl Drop for Prober<'_> {
    fn drop(&mut self) {
        self.col.record_hash_calls(self.row.t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn positions(family: &HashFamily, row: u64, col: u64, k: usize, n: u64) -> Vec<u64> {
        let mut out = Vec::new();
        family.positions(row, col, CellMapper::for_columns(16), k, n, &mut out);
        out
    }

    #[test]
    fn cell_mapper_shifted_is_injective() {
        let m = CellMapper::for_columns(100); // shift = 7
        let mut seen = std::collections::HashSet::new();
        for row in 0..50u64 {
            for col in 0..100u64 {
                assert!(seen.insert(m.map(row, col)), "collision at ({row},{col})");
            }
        }
    }

    #[test]
    fn cell_mapper_row_only_ignores_column() {
        let m = CellMapper::RowOnly;
        assert_eq!(m.map(7, 0), m.map(7, 5));
        assert_eq!(m.map(7, 0), 7);
    }

    #[test]
    fn for_columns_shift_accommodates_ids() {
        // 100 columns need 7 bits.
        assert_eq!(
            CellMapper::for_columns(100),
            CellMapper::Shifted { shift: 7 }
        );
        assert_eq!(
            CellMapper::for_columns(128),
            CellMapper::Shifted { shift: 8 }
        );
        assert_eq!(CellMapper::for_columns(1), CellMapper::Shifted { shift: 1 });
    }

    #[test]
    fn independent_family_yields_k_positions() {
        let f = HashFamily::default_independent();
        for k in 1..=15 {
            let p = positions(&f, 3, 4, k, 1 << 16);
            assert_eq!(p.len(), k);
            assert!(p.iter().all(|&x| x < (1 << 16)));
        }
    }

    #[test]
    fn independent_family_deterministic() {
        let f = HashFamily::default_independent();
        assert_eq!(positions(&f, 3, 4, 5, 4096), positions(&f, 3, 4, 5, 4096));
        assert_ne!(positions(&f, 3, 4, 5, 4096), positions(&f, 3, 5, 5, 4096));
    }

    #[test]
    fn sha1_split_yields_k_positions() {
        let f = HashFamily::Sha1Split;
        let p = positions(&f, 10, 2, 10, 1 << 16);
        assert_eq!(p.len(), 10);
        assert!(p.iter().all(|&x| x < (1 << 16)));
        // k beyond the 160-bit digest still works via extension.
        assert_eq!(positions(&f, 10, 2, 30, 1 << 16).len(), 30);
    }

    #[test]
    fn double_hashing_probes_differ() {
        let f = HashFamily::DoubleHashing;
        let p = positions(&f, 10, 2, 8, 1 << 20);
        let distinct: std::collections::HashSet<_> = p.iter().collect();
        assert!(distinct.len() >= 7, "degenerate probe sequence: {p:?}");
    }

    #[test]
    fn column_group_stays_in_group() {
        let f = HashFamily::ColumnGroup { num_columns: 8 };
        let n = 8 * 64; // group size 64
        for col in 0..8u64 {
            for row in 0..200u64 {
                let p = positions(&f, row, col, 3, n);
                for &pos in &p {
                    assert!(
                        pos >= col * 64 && pos < (col + 1) * 64,
                        "({row},{col}) escaped its group: {pos}"
                    );
                }
            }
        }
    }

    #[test]
    fn column_group_k1_matches_simple_hash() {
        let f = HashFamily::ColumnGroup { num_columns: 4 };
        let p = positions(&f, 13, 2, 1, 40);
        assert_eq!(p, vec![crate::simple::column_group_hash(13, 2, 4, 40)]);
    }

    #[test]
    fn families_disagree_with_each_other() {
        // Sanity: different families genuinely hash differently.
        let a = positions(&HashFamily::default_independent(), 5, 1, 4, 1 << 14);
        let b = positions(&HashFamily::Sha1Split, 5, 1, 4, 1 << 14);
        let c = positions(&HashFamily::DoubleHashing, 5, 1, 4, 1 << 14);
        assert_ne!(a, b);
        assert_ne!(b, c);
    }

    #[test]
    #[should_panic(expected = "at least one hash")]
    fn zero_k_rejected() {
        positions(&HashFamily::DoubleHashing, 0, 0, 0, 16);
    }

    /// The hoisted `ColProber` path (used by the batched query kernel)
    /// must yield exactly the sequences the classic `Prober` path (used
    /// by inserts) yields — a divergence would manifest as false
    /// negatives, which the paper's encoding never allows.
    #[test]
    fn col_prober_matches_prober_for_all_families() {
        let families = [
            HashFamily::default_independent(),
            HashFamily::Independent(vec![HashKind::Fnv, HashKind::Djb]),
            HashFamily::Sha1Split,
            HashFamily::DoubleHashing,
            HashFamily::ColumnGroup { num_columns: 16 },
        ];
        for mapper in [CellMapper::for_columns(16), CellMapper::RowOnly] {
            for f in &families {
                if matches!(f, HashFamily::ColumnGroup { .. }) && mapper == CellMapper::RowOnly {
                    continue; // column-group needs real column ids
                }
                for n in [1 << 14, (1 << 14) - 123] {
                    for col in [0u64, 7] {
                        let cp = f.col_prober(col, mapper, n);
                        for row in [0u64, 1, 999, 123_456] {
                            let mut rp = cp.begin(row);
                            // k = 13 exercises the roster-reuse branch.
                            let via_col: Vec<u64> =
                                (0..13).map(|_| cp.next_position(&mut rp)).collect();
                            let via_prober: Vec<u64> =
                                f.prober(row, col, mapper, n).take(13).collect();
                            assert_eq!(via_col, via_prober, "{f:?} n={n} col={col} row={row}");
                            assert_eq!(rp.probes(), 13);
                        }
                    }
                }
            }
        }
    }

    /// The batch API must be a pure re-schedule of `next_position`:
    /// same positions, same `t` advancement, for every family —
    /// including mixed batch/scalar interleavings, which is exactly how
    /// the SIMD kernel consumes it (batched first probes, scalar
    /// continuations).
    #[test]
    fn next_positions_matches_next_position_for_all_families() {
        let families = [
            HashFamily::default_independent(),
            HashFamily::Sha1Split,
            HashFamily::DoubleHashing,
            HashFamily::ColumnGroup { num_columns: 16 },
        ];
        let mapper = CellMapper::for_columns(16);
        for f in &families {
            for n in [1u64 << 14, (1 << 14) - 123] {
                let cp = f.col_prober(3, mapper, n);
                let rows = [0u64, 1, 999, 123_456, 77, 31];
                // Reference: 4 sequential probes per row.
                let want: Vec<Vec<u64>> = rows
                    .iter()
                    .map(|&r| {
                        let mut p = cp.begin(r);
                        (0..4).map(|_| cp.next_position(&mut p)).collect()
                    })
                    .collect();
                // Batched: one wave per probe index across all rows.
                let mut probes: Vec<RowProbe> = rows.iter().map(|&r| cp.begin(r)).collect();
                let mut out = vec![0u64; rows.len()];
                #[allow(clippy::needless_range_loop)] // step indexes the 2-D reference table
                for step in 0..4 {
                    cp.next_positions(&mut probes, &mut out);
                    for (r, &got) in out.iter().enumerate() {
                        assert_eq!(got, want[r][step], "{f:?} n={n} row#{r} step {step}");
                    }
                }
                // Interleaved: batch one step, then scalar the rest.
                let mut probes: Vec<RowProbe> = rows.iter().map(|&r| cp.begin(r)).collect();
                cp.next_positions(&mut probes, &mut out);
                for (r, p) in probes.iter_mut().enumerate() {
                    assert_eq!(cp.next_position(p), want[r][1], "{f:?} interleaved row#{r}");
                    assert_eq!(p.probes(), 2);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "output buffer shorter")]
    fn next_positions_rejects_short_output() {
        let f = HashFamily::DoubleHashing;
        let cp = f.col_prober(0, CellMapper::RowOnly, 1 << 10);
        let mut probes = vec![cp.begin(1), cp.begin(2)];
        cp.next_positions(&mut probes, &mut [0u64; 1]);
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn prober_drop_flushes_hash_call_counter() {
        let c = obs::global().counter("hashkit.hash_calls.double_hashing");
        let before = c.get();
        positions(&HashFamily::DoubleHashing, 1, 0, 5, 1 << 10);
        assert!(c.get() >= before + 5, "drop did not flush probe count");
    }

    /// Empirical false-positive sanity: inserting `s` random keys into
    /// an AB of `n = 8s` bits with k=4 via the independent family must
    /// give an FP rate within 2x of theory ((1-e^{-k/8})^k ≈ 0.024).
    #[test]
    fn independent_family_fp_rate_close_to_theory() {
        let f = HashFamily::default_independent();
        let s = 2000u64;
        let n = 8 * s;
        let k = 4;
        let mut bits = vec![false; n as usize];
        let mut buf = Vec::new();
        for row in 0..s {
            f.positions(row, 0, CellMapper::RowOnly, k, n, &mut buf);
            for &p in &buf {
                bits[p as usize] = true;
            }
        }
        let mut fp = 0;
        let probes = 4000u64;
        for row in s..s + probes {
            f.positions(row, 0, CellMapper::RowOnly, k, n, &mut buf);
            if buf.iter().all(|&p| bits[p as usize]) {
                fp += 1;
            }
        }
        let rate = fp as f64 / probes as f64;
        let theory = (1.0 - (-(k as f64) / 8.0).exp()).powi(k as i32);
        assert!(
            rate < theory * 2.0 + 0.01,
            "measured FP {rate:.4} vs theory {theory:.4}"
        );
    }
}
