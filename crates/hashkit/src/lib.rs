//! Hash functions for Approximate Bitmap encoding.
//!
//! The AB inserts each set bit of a bitmap table into a Bloom-style bit
//! array via `k` hash functions of the mapping string `x = F(i, j)`
//! (paper §3). This crate supplies every piece of that machinery:
//!
//! * [`mod@sha1`] — SHA-1 from scratch, with digest splitting for the
//!   paper's *single hash function* approach (Table 1).
//! * [`partow`] — the General Purpose Hash Function Algorithms Library
//!   functions (RS, JS, PJW, ELF, BKDR, SDBM, DJB, DEK, AP) plus FNV,
//!   widened to 64 bits.
//! * [`simple`] — the paper's Circular and Column-Group hashes and a
//!   multiply-shift mixer.
//! * [`family`] — [`CellMapper`] (the `F(i, j)` mapping of §3.2.1) and
//!   [`HashFamily`] (independent / SHA-1-split / double-hashing /
//!   column-group strategies producing `k` AB positions per cell).
//!
//! # Example
//!
//! ```
//! use hashkit::{CellMapper, HashFamily};
//!
//! let family = HashFamily::default_independent();
//! let mapper = CellMapper::for_columns(100);
//! let mut positions = Vec::new();
//! family.positions(42, 7, mapper, 4, 1 << 16, &mut positions);
//! assert_eq!(positions.len(), 4);
//! assert!(positions.iter().all(|&p| p < (1 << 16)));
//! ```

#![warn(missing_docs)]

pub mod family;
pub mod partow;
pub mod sha1;
pub mod simple;

pub use family::{CellMapper, ColProber, HashFamily, HashKind, Prober, RowProbe};
pub use partow::{decimal_key_bytes, int_key_bytes, splitmix64};
pub use sha1::{sha1, split_digest, DigestStream};
pub use simple::{circular_hash, column_group_hash, multiply_shift};
