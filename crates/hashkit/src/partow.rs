//! General-purpose string hash functions.
//!
//! The paper's *independent hash functions* come "from the General
//! Purpose Hash Function Algorithms Library (Partow) with small
//! variations to account for the size of the AB" (§5.2.2). These are
//! the classic RS, JS, PJW, ELF, BKDR, SDBM, DJB, DEK and AP functions,
//! re-implemented here over byte strings, widened to 64-bit arithmetic
//! (the "small variation": more output bits to index large ABs), plus
//! FNV-1a.
//!
//! All functions are `fn(&[u8]) -> u64` and deterministic.

/// RS hash (Robert Sedgewick's *Algorithms in C*).
pub fn rs_hash(data: &[u8]) -> u64 {
    let b: u64 = 378551;
    let mut a: u64 = 63689;
    let mut hash: u64 = 0;
    for &c in data {
        hash = hash.wrapping_mul(a).wrapping_add(c as u64);
        a = a.wrapping_mul(b);
    }
    hash
}

/// JS hash (Justin Sobel's bitwise hash).
pub fn js_hash(data: &[u8]) -> u64 {
    let mut hash: u64 = 1315423911;
    for &c in data {
        hash ^= hash
            .wrapping_shl(5)
            .wrapping_add(c as u64)
            .wrapping_add(hash >> 2);
    }
    hash
}

/// PJW hash (Peter J. Weinberger, AT&T Bell Labs), 64-bit widened.
pub fn pjw_hash(data: &[u8]) -> u64 {
    const BITS: u32 = 64;
    const THREE_QUARTERS: u32 = BITS * 3 / 4;
    const ONE_EIGHTH: u32 = BITS / 8;
    const HIGH_BITS: u64 = !0u64 << (BITS - ONE_EIGHTH);
    let mut hash: u64 = 0;
    for &c in data {
        hash = (hash << ONE_EIGHTH).wrapping_add(c as u64);
        let test = hash & HIGH_BITS;
        if test != 0 {
            hash = (hash ^ (test >> THREE_QUARTERS)) & !HIGH_BITS;
        }
    }
    hash
}

/// ELF hash (the Unix ELF object-format hash; a PJW variant).
pub fn elf_hash(data: &[u8]) -> u64 {
    let mut hash: u64 = 0;
    for &c in data {
        hash = (hash << 4).wrapping_add(c as u64);
        let x = hash & 0xF000_0000_0000_0000;
        if x != 0 {
            hash ^= x >> 56;
        }
        hash &= !x;
    }
    hash
}

/// BKDR hash (Brian Kernighan & Dennis Ritchie, *The C Programming
/// Language*), seed 131.
pub fn bkdr_hash(data: &[u8]) -> u64 {
    let seed: u64 = 131;
    let mut hash: u64 = 0;
    for &c in data {
        hash = hash.wrapping_mul(seed).wrapping_add(c as u64);
    }
    hash
}

/// SDBM hash (from the sdbm database library).
pub fn sdbm_hash(data: &[u8]) -> u64 {
    let mut hash: u64 = 0;
    for &c in data {
        hash = (c as u64)
            .wrapping_add(hash << 6)
            .wrapping_add(hash << 16)
            .wrapping_sub(hash);
    }
    hash
}

/// DJB hash (Daniel J. Bernstein's times-33 hash).
pub fn djb_hash(data: &[u8]) -> u64 {
    let mut hash: u64 = 5381;
    for &c in data {
        hash = hash
            .wrapping_shl(5)
            .wrapping_add(hash)
            .wrapping_add(c as u64);
    }
    hash
}

/// DEK hash (Donald E. Knuth, *The Art of Computer Programming* vol. 3).
pub fn dek_hash(data: &[u8]) -> u64 {
    let mut hash: u64 = data.len() as u64;
    for &c in data {
        hash = hash.wrapping_shl(5) ^ (hash >> 27) ^ (c as u64);
    }
    hash
}

/// AP hash (Arash Partow's own alternating hash).
pub fn ap_hash(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xAAAA_AAAA_AAAA_AAAA;
    for (i, &c) in data.iter().enumerate() {
        if i & 1 == 0 {
            hash ^= hash.wrapping_shl(7) ^ (c as u64).wrapping_mul(hash >> 3);
        } else {
            hash ^= !(hash.wrapping_shl(11).wrapping_add((c as u64) ^ (hash >> 5)));
        }
    }
    hash
}

/// FNV-1a, 64-bit.
pub fn fnv_hash(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for &c in data {
        hash ^= c as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Encodes an integer hash string as its significant little-endian
/// bytes (at least one byte). Fixed-width encodings leave trailing zero
/// bytes that degenerate shift-based functions like PJW and ELF on
/// small keys; the variable-length form behaves like the character
/// strings the Partow functions were designed for.
///
/// Returns the backing array and the number of significant bytes; hash
/// `&bytes[..len]`.
#[inline]
pub fn int_key_bytes(x: u64) -> ([u8; 8], usize) {
    let bytes = x.to_le_bytes();
    let len = (8 - (x.leading_zeros() as usize) / 8).max(1);
    (bytes, len)
}

/// Encodes an integer hash string as its decimal ASCII digits — the
/// paper's `F(i, j) = concatenate(i, j)` forms literal number strings
/// (§3.1), and that choice matters: the Partow functions accumulate
/// roughly 4–8 bits of state per character, so the longer decimal
/// encoding (up to 20 chars vs 8 bytes) is what lets their outputs
/// cover a large AB uniformly ("small variations to account for the
/// size of the AB", §5.2.2).
///
/// Returns the backing array and the digit count; hash `&buf[..len]`.
#[inline]
pub fn decimal_key_bytes(x: u64) -> ([u8; 20], usize) {
    let mut buf = [0u8; 20];
    if x == 0 {
        buf[0] = b'0';
        return (buf, 1);
    }
    let mut tmp = x;
    let mut len = 0usize;
    while tmp > 0 {
        len += 1;
        tmp /= 10;
    }
    let mut i = len;
    let mut v = x;
    while v > 0 {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
    }
    (buf, len)
}

/// splitmix64 finalizer — a strong integer mixer used for seeding and
/// double hashing; not part of the Partow library but standard in
/// modern Bloom-filter practice.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    type HashFn = fn(&[u8]) -> u64;
    const ALL: &[(&str, HashFn)] = &[
        ("rs", rs_hash),
        ("js", js_hash),
        ("pjw", pjw_hash),
        ("elf", elf_hash),
        ("bkdr", bkdr_hash),
        ("sdbm", sdbm_hash),
        ("djb", djb_hash),
        ("dek", dek_hash),
        ("ap", ap_hash),
        ("fnv", fnv_hash),
    ];

    #[test]
    fn deterministic() {
        for (name, f) in ALL {
            assert_eq!(f(b"hello"), f(b"hello"), "{name}");
        }
    }

    #[test]
    fn distinguishes_nearby_keys() {
        for (name, f) in ALL {
            let a = f(&1u64.to_le_bytes());
            let b = f(&2u64.to_le_bytes());
            assert_ne!(a, b, "{name} collides on adjacent keys");
        }
    }

    #[test]
    fn functions_differ_from_each_other() {
        let key = 123456789u64.to_le_bytes();
        let values: Vec<u64> = ALL.iter().map(|(_, f)| f(&key)).collect();
        for i in 0..values.len() {
            for j in i + 1..values.len() {
                assert_ne!(
                    values[i], values[j],
                    "{} and {} agree on the probe key",
                    ALL[i].0, ALL[j].0
                );
            }
        }
    }

    #[test]
    fn djb_known_value() {
        // djb2 of "a": 5381*33 + 97 = 177670.
        assert_eq!(djb_hash(b"a"), 177670);
    }

    #[test]
    fn bkdr_known_value() {
        // "ab" = (97*131 + 98) = 12805.
        assert_eq!(bkdr_hash(b"ab"), 12805);
    }

    #[test]
    fn fnv_known_value() {
        // FNV-1a 64-bit of empty input is the offset basis.
        assert_eq!(fnv_hash(b""), 0xCBF2_9CE4_8422_2325);
        // Published vector: FNV-1a("a") = 0xaf63dc4c8601ec8c.
        assert_eq!(fnv_hash(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn splitmix_mixes_low_entropy_keys() {
        // Sequential keys must not produce sequential outputs.
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert!(a.abs_diff(b) > 1 << 32);
    }

    /// Rough avalanche check: over 4096 sequential integer keys encoded
    /// as significant bytes, each function must fill at least half of
    /// 256 buckets (mod 256).
    #[test]
    fn sequential_keys_spread_over_buckets() {
        for (name, f) in ALL {
            let mut seen = [false; 256];
            for x in 0..4096u64 {
                let (bytes, len) = int_key_bytes(x);
                seen[(f(&bytes[..len]) % 256) as usize] = true;
            }
            let filled = seen.iter().filter(|&&s| s).count();
            assert!(filled >= 128, "{name} fills only {filled}/256 buckets");
        }
    }

    #[test]
    fn int_key_bytes_strips_trailing_zeros() {
        assert_eq!(int_key_bytes(0).1, 1);
        assert_eq!(int_key_bytes(255).1, 1);
        assert_eq!(int_key_bytes(256).1, 2);
        assert_eq!(int_key_bytes(u64::MAX).1, 8);
        let (b, l) = int_key_bytes(0x0102);
        assert_eq!(&b[..l], &[0x02, 0x01]);
    }
}
