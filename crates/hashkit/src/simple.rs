//! The paper's purpose-built hash functions (§3.2.2, §5.2.2).
//!
//! Unlike the general-purpose string hashes, these two exploit the
//! structure of bitmap tables:
//!
//! * [`circular_hash`] — `H(x) = x mod n`: maps the hash string
//!   directly onto the AB. With one AB per column (where `x = row`)
//!   this is collision-free until the AB wraps, which is why Figure
//!   10(a) shows its precision jumping to 1 once `m` is large enough to
//!   "accommodate all rows".
//! * [`column_group_hash`] — splits the AB into one group per bitmap
//!   column; the group is selected by the column number and the offset
//!   within the group by `row mod group_size`. Only meaningful for the
//!   per-data-set and per-attribute AB levels.

/// Circular hash: `x mod n`.
///
/// # Panics
///
/// Panics if `n == 0`.
#[inline]
pub fn circular_hash(x: u64, n: u64) -> u64 {
    assert!(n > 0, "AB size must be positive");
    x % n
}

/// Column-group hash: the AB of `n` bits is split into `num_columns`
/// equal groups; cell `(row, col)` maps into group `col` at offset
/// `row mod group_size` (paper: `H(i, j) = j·n + (i mod n)` with `n`
/// the group size).
///
/// # Panics
///
/// Panics if `n == 0`, `num_columns == 0`, or `col >= num_columns`.
#[inline]
pub fn column_group_hash(row: u64, col: u64, num_columns: u64, n: u64) -> u64 {
    assert!(n > 0, "AB size must be positive");
    assert!(num_columns > 0, "column count must be positive");
    assert!(col < num_columns, "column {col} out of range {num_columns}");
    let group_size = (n / num_columns).max(1);
    let base = col * group_size;
    (base + row % group_size).min(n - 1)
}

/// Multiply-shift hash for power-of-two ranges: `(x * phi) >> (64 - m)`
/// where `phi` is the 64-bit golden-ratio constant. A fast single-
/// multiplication universal-style hash used as an additional
/// independent function.
#[inline]
pub fn multiply_shift(x: u64, m: u32) -> u64 {
    assert!((1..=64).contains(&m), "output width {m} out of range");
    x.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circular_wraps() {
        assert_eq!(circular_hash(0, 32), 0);
        assert_eq!(circular_hash(31, 32), 31);
        assert_eq!(circular_hash(32, 32), 0);
        assert_eq!(circular_hash(100, 32), 4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn circular_rejects_zero_n() {
        circular_hash(5, 0);
    }

    #[test]
    fn column_group_partitions_ab() {
        // 4 columns, AB of 40 bits -> group size 10.
        assert_eq!(column_group_hash(0, 0, 4, 40), 0);
        assert_eq!(column_group_hash(9, 0, 4, 40), 9);
        assert_eq!(column_group_hash(10, 0, 4, 40), 0); // wraps in group
        assert_eq!(column_group_hash(0, 1, 4, 40), 10);
        assert_eq!(column_group_hash(3, 3, 4, 40), 33);
    }

    #[test]
    fn column_group_never_exceeds_ab() {
        // More columns than bits: degenerate but must stay in range.
        for col in 0..10 {
            let h = column_group_hash(99, col, 10, 4);
            assert!(h < 4);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn column_group_rejects_bad_column() {
        column_group_hash(0, 5, 4, 40);
    }

    #[test]
    fn multiply_shift_stays_in_range() {
        for x in 0..1000u64 {
            assert!(multiply_shift(x, 10) < 1024);
        }
    }

    #[test]
    fn multiply_shift_spreads_sequential_keys() {
        let mut seen = std::collections::HashSet::new();
        for x in 0..512u64 {
            seen.insert(multiply_shift(x, 16));
        }
        // Sequential keys should not collapse into few slots.
        assert!(seen.len() > 450, "only {} distinct", seen.len());
    }
}
