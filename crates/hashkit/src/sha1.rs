//! SHA-1 (FIPS 180-1), implemented from scratch.
//!
//! The paper's *single hash function* approach (§3.2.2, §5.2.1) computes
//! one SHA-1 digest per hash string and splits the 160-bit output into
//! k partial values, each used as an index into the AB (Table 1).
//! Cryptographic strength is irrelevant here — the paper picks SHA-1
//! because its output is pattern-free — but the implementation is the
//! real algorithm, validated against the published FIPS test vectors.

/// Digest size in bytes.
pub const DIGEST_BYTES: usize = 20;

/// Computes the SHA-1 digest of `data`.
///
/// # Examples
///
/// ```
/// use hashkit::sha1::sha1;
///
/// // FIPS 180-1 Appendix A test vector.
/// let d = sha1(b"abc");
/// assert_eq!(hex(&d), "a9993e364706816aba3e25717850c26c9cd0d89d");
///
/// fn hex(bytes: &[u8]) -> String {
///     bytes.iter().map(|b| format!("{b:02x}")).collect()
/// }
/// ```
pub fn sha1(data: &[u8]) -> [u8; DIGEST_BYTES] {
    let mut state: [u32; 5] = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0];

    // Message padding: 0x80, zeros, 64-bit big-endian bit length.
    let bit_len = (data.len() as u64) * 8;
    let mut buf = Vec::with_capacity(data.len() + 72);
    buf.extend_from_slice(data);
    buf.push(0x80);
    while buf.len() % 64 != 56 {
        buf.push(0);
    }
    buf.extend_from_slice(&bit_len.to_be_bytes());

    for block in buf.chunks_exact(64) {
        process_block(&mut state, block);
    }

    let mut out = [0u8; DIGEST_BYTES];
    for (i, word) in state.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

fn process_block(state: &mut [u32; 5], block: &[u8]) {
    debug_assert_eq!(block.len(), 64);
    let mut w = [0u32; 80];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    for i in 16..80 {
        w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
    }

    let [mut a, mut b, mut c, mut d, mut e] = *state;
    for (i, &wi) in w.iter().enumerate() {
        let (f, k) = match i {
            0..=19 => ((b & c) | (!b & d), 0x5A827999),
            20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
            40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
            _ => (b ^ c ^ d, 0xCA62C1D6),
        };
        let tmp = a
            .rotate_left(5)
            .wrapping_add(f)
            .wrapping_add(e)
            .wrapping_add(k)
            .wrapping_add(wi);
        e = d;
        d = c;
        c = b.rotate_left(30);
        b = a;
        a = tmp;
    }

    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
}

/// Splits a SHA-1 digest stream into `k` values of `m` bits each —
/// Table 1 of the paper: "160-bit output split into 10 sets of 16 bits".
///
/// When `k * m > 160` the digest is extended by re-hashing it, so
/// arbitrarily many partial hashes are available.
pub fn split_digest(x: u64, k: usize, m: u32) -> Vec<u64> {
    assert!((1..=64).contains(&m), "chunk width {m} out of range");
    let mut bits = DigestStream::new(x);
    (0..k).map(|_| bits.take(m)).collect()
}

/// A bit reader over the (extended) SHA-1 digest of an integer key —
/// the incremental form of [`split_digest`], used by the lazy prober
/// so retrieval can stop at the first zero AB bit without computing
/// the remaining chunks.
#[derive(Clone, Debug)]
pub struct DigestStream {
    digest: [u8; DIGEST_BYTES],
    bit_pos: usize,
}

impl DigestStream {
    /// Starts the stream at the digest of `x`'s little-endian bytes.
    pub fn new(x: u64) -> Self {
        DigestStream {
            digest: sha1(&x.to_le_bytes()),
            bit_pos: 0,
        }
    }

    /// Reads `m` bits, most significant first, extending the digest by
    /// re-hashing when exhausted.
    pub fn take(&mut self, m: u32) -> u64 {
        let mut v = 0u64;
        for _ in 0..m {
            if self.bit_pos == DIGEST_BYTES * 8 {
                self.digest = sha1(&self.digest);
                self.bit_pos = 0;
            }
            let byte = self.digest[self.bit_pos / 8];
            let bit = (byte >> (7 - self.bit_pos % 8)) & 1;
            v = (v << 1) | bit as u64;
            self.bit_pos += 1;
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn fips_vector_abc() {
        assert_eq!(
            hex(&sha1(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn fips_vector_two_blocks() {
        assert_eq!(
            hex(&sha1(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn empty_message() {
        assert_eq!(hex(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha1(&data)),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn exact_block_boundary_lengths() {
        // 55, 56, 63, 64 byte messages exercise padding edge cases.
        for len in [55usize, 56, 63, 64, 119, 120] {
            let data = vec![0u8; len];
            let d = sha1(&data);
            assert_eq!(d.len(), DIGEST_BYTES, "len {len}");
            // Digest must differ from a one-byte-longer message.
            assert_ne!(d, sha1(&vec![0u8; len + 1]), "len {len}");
        }
    }

    #[test]
    fn split_digest_table1_shape() {
        // Table 1: k=10 chunks of 16 bits from the 160-bit digest.
        let parts = split_digest(42, 10, 16);
        assert_eq!(parts.len(), 10);
        assert!(parts.iter().all(|&p| p < (1 << 16)));
        // Concatenation must reproduce the digest prefix.
        let digest = sha1(&42u64.to_le_bytes());
        let first = u64::from(u16::from_be_bytes([digest[0], digest[1]]));
        assert_eq!(parts[0], first);
    }

    #[test]
    fn split_digest_extends_past_160_bits() {
        // 20 chunks × 16 bits = 320 bits > 160: requires extension.
        let parts = split_digest(7, 20, 16);
        assert_eq!(parts.len(), 20);
        // Extension chunks must not simply repeat the first 160 bits.
        assert_ne!(&parts[..10], &parts[10..]);
    }

    #[test]
    fn split_digest_deterministic() {
        assert_eq!(split_digest(123, 5, 20), split_digest(123, 5, 20));
        assert_ne!(split_digest(123, 5, 20), split_digest(124, 5, 20));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn split_digest_rejects_zero_width() {
        split_digest(1, 1, 0);
    }
}
