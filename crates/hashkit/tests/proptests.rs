//! Property tests for the hash machinery.

use hashkit::{decimal_key_bytes, CellMapper, HashFamily, HashKind};
use proptest::prelude::*;

fn any_family() -> impl Strategy<Value = HashFamily> {
    prop_oneof![
        Just(HashFamily::default_independent()),
        Just(HashFamily::Sha1Split),
        Just(HashFamily::DoubleHashing),
        Just(HashFamily::Independent(vec![HashKind::Bkdr])),
        (1u64..64).prop_map(|c| HashFamily::ColumnGroup { num_columns: c }),
    ]
}

proptest! {
    /// The lazy prober and the batch positions API are the same
    /// function — the membership fast path cannot drift from insertion.
    #[test]
    fn prober_equals_positions(family in any_family(), row in 0u64..1_000_000,
                               k in 1usize..16, npow in 6u32..24) {
        let n = 1u64 << npow;
        let col = match &family {
            HashFamily::ColumnGroup { num_columns } => row % num_columns,
            _ => row % 16,
        };
        let mapper = CellMapper::for_columns(64);
        let mut batch = Vec::new();
        family.positions(row, col, mapper, k, n, &mut batch);
        let lazy: Vec<u64> = family.prober(row, col, mapper, n).take(k).collect();
        prop_assert_eq!(batch, lazy);
    }

    /// Every probe position stays inside the AB, for power-of-two and
    /// odd sizes alike.
    #[test]
    fn positions_in_range(family in any_family(), row in 0u64..1_000_000,
                          k in 1usize..12, n in 1u64..5_000_000) {
        let col = match &family {
            HashFamily::ColumnGroup { num_columns } => row % num_columns,
            _ => 3,
        };
        let mut out = Vec::new();
        family.positions(row, col, CellMapper::for_columns(64), k, n, &mut out);
        prop_assert_eq!(out.len(), k);
        prop_assert!(out.iter().all(|&p| p < n), "{:?} escaped n={}", out, n);
    }

    /// Decimal key encoding round-trips through string parsing.
    #[test]
    fn decimal_key_roundtrip(x in any::<u64>()) {
        let (buf, len) = decimal_key_bytes(x);
        let s = std::str::from_utf8(&buf[..len]).unwrap();
        prop_assert_eq!(s.parse::<u64>().unwrap(), x);
        prop_assert_eq!(s, x.to_string());
    }

    /// The shifted cell mapper is injective within its width.
    #[test]
    fn shifted_mapper_injective(r1 in 0u64..10_000, c1 in 0u64..100,
                                r2 in 0u64..10_000, c2 in 0u64..100) {
        let m = CellMapper::for_columns(100);
        if (r1, c1) != (r2, c2) {
            prop_assert_ne!(m.map(r1, c1), m.map(r2, c2));
        }
    }

    /// SHA-1 digest splitting is prefix-stable: the first chunks do
    /// not change when more are requested.
    #[test]
    fn split_digest_prefix_stable(x in any::<u64>(), k1 in 1usize..10, extra in 1usize..10) {
        let a = hashkit::split_digest(x, k1, 16);
        let b = hashkit::split_digest(x, k1 + extra, 16);
        prop_assert_eq!(&a[..], &b[..k1]);
    }

    /// Different hash kinds rarely agree; check a weak non-collision
    /// property across the roster on random keys.
    #[test]
    fn roster_kinds_mostly_disagree(x in 1u64..u64::MAX) {
        let values: Vec<u64> = HashKind::ROSTER.iter().map(|k| k.hash(x)).collect();
        let distinct: std::collections::HashSet<_> = values.iter().collect();
        prop_assert!(distinct.len() >= HashKind::ROSTER.len() - 1,
            "too many collisions on {}: {:?}", x, values);
    }
}
