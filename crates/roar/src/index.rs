//! A Roaring-compressed equality bitmap index — the modern
//! counterpart of `wah::WahIndex`, used by the benches to place the
//! Approximate Bitmap against the structure the field adopted after
//! the run-length era.

use crate::RoaringBitmap;
use bitmap::{BinnedTable, RectQuery};
use serde::{Deserialize, Serialize};

/// One attribute's Roaring-compressed bin bitmaps.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RoaringAttribute {
    /// Attribute name.
    pub name: String,
    /// Number of bins.
    pub cardinality: u32,
    /// One bitmap of row ids per bin.
    pub bitmaps: Vec<RoaringBitmap>,
}

/// A Roaring equality-encoded bitmap index.
///
/// # Examples
///
/// ```
/// use bitmap::{AttrRange, BinnedColumn, BinnedTable, RectQuery};
/// use roar::RoaringIndex;
///
/// let table = BinnedTable::new(vec![
///     BinnedColumn::new("A", vec![0, 1, 2, 0, 1, 1, 0, 2], 3),
/// ]);
/// let index = RoaringIndex::build(&table);
/// let q = RectQuery::new(vec![AttrRange::new(0, 0, 1)], 3, 7);
/// assert_eq!(index.evaluate_rows(&q), vec![3, 4, 5, 6]);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RoaringIndex {
    attributes: Vec<RoaringAttribute>,
    num_rows: usize,
}

impl RoaringIndex {
    /// Builds the index from a binned table.
    pub fn build(table: &BinnedTable) -> Self {
        let attributes = table
            .columns()
            .iter()
            .map(|col| {
                let mut bitmaps = vec![RoaringBitmap::new(); col.cardinality as usize];
                for (row, &bin) in col.bins.iter().enumerate() {
                    bitmaps[bin as usize].insert(row as u32);
                }
                RoaringAttribute {
                    name: col.name.clone(),
                    cardinality: col.cardinality,
                    bitmaps,
                }
            })
            .collect();
        RoaringIndex {
            attributes,
            num_rows: table.num_rows(),
        }
    }

    /// Number of rows indexed.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Per-attribute bitmaps.
    pub fn attributes(&self) -> &[RoaringAttribute] {
        &self.attributes
    }

    /// Total compressed size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.attributes
            .iter()
            .flat_map(|a| a.bitmaps.iter())
            .map(RoaringBitmap::size_bytes)
            .sum()
    }

    /// Evaluates a rectangular query via the full-column plan (OR bins,
    /// AND attributes, intersect with the row range).
    pub fn evaluate(&self, query: &RectQuery) -> RoaringBitmap {
        assert!(
            query.row_hi < self.num_rows,
            "row {} out of range {}",
            query.row_hi,
            self.num_rows
        );
        obs::counter!("roar.queries").inc();
        let mut acc: Option<RoaringBitmap> = None;
        for r in &query.ranges {
            let attr = &self.attributes[r.attribute];
            assert!(r.hi < attr.cardinality, "bin {} out of range", r.hi);
            let mut ored = RoaringBitmap::new();
            for b in &attr.bitmaps[r.lo as usize..=r.hi as usize] {
                ored = ored.or(b);
            }
            acc = Some(match acc {
                None => ored,
                Some(a) => a.and(&ored),
            });
        }
        let mut mask = RoaringBitmap::new();
        mask.insert_range(query.row_lo as u32, query.row_hi as u32);
        match acc {
            Some(a) => a.and(&mask),
            None => mask,
        }
    }

    /// Evaluates a query via *direct access*: probes only the rows in
    /// the requested range — Roaring's answer to the AB's O(c) claim,
    /// exact but with per-probe binary searches.
    pub fn evaluate_direct(&self, query: &RectQuery) -> Vec<usize> {
        assert!(query.row_hi < self.num_rows, "row out of range");
        (query.row_lo..=query.row_hi)
            .filter(|&row| {
                query.ranges.iter().all(|r| {
                    let attr = &self.attributes[r.attribute];
                    (r.lo..=r.hi).any(|bin| attr.bitmaps[bin as usize].contains(row as u32))
                })
            })
            .collect()
    }

    /// Evaluates a query and decodes the matching row identifiers.
    pub fn evaluate_rows(&self, query: &RectQuery) -> Vec<usize> {
        self.evaluate(query).iter().map(|r| r as usize).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitmap::{AttrRange, BinnedColumn, BitmapIndex, Encoding};

    fn table() -> BinnedTable {
        BinnedTable::new(vec![
            BinnedColumn::new("A", vec![0, 1, 2, 0, 1, 1, 0, 2], 3),
            BinnedColumn::new("B", vec![2, 0, 1, 1, 0, 1, 0, 2], 3),
        ])
    }

    #[test]
    fn matches_exact_index() {
        let t = table();
        let roar = RoaringIndex::build(&t);
        let exact = BitmapIndex::build(&t, Encoding::Equality);
        for lo in 0..3u32 {
            for hi in lo..3u32 {
                let q = RectQuery::new(vec![AttrRange::new(0, lo, hi)], 1, 6);
                assert_eq!(roar.evaluate_rows(&q), exact.evaluate_rows(&q));
                assert_eq!(roar.evaluate_direct(&q), exact.evaluate_rows(&q));
            }
        }
    }

    #[test]
    fn multi_attribute_query() {
        let t = table();
        let roar = RoaringIndex::build(&t);
        let exact = BitmapIndex::build(&t, Encoding::Equality);
        let q = RectQuery::new(vec![AttrRange::new(0, 0, 1), AttrRange::new(1, 1, 2)], 0, 7);
        assert_eq!(roar.evaluate_rows(&q), exact.evaluate_rows(&q));
    }

    #[test]
    fn direct_and_plan_agree_on_larger_data() {
        let bins: Vec<u32> = (0..20_000u32).map(|i| (i * 7) % 10).collect();
        let t = BinnedTable::new(vec![BinnedColumn::new("x", bins, 10)]);
        let roar = RoaringIndex::build(&t);
        let q = RectQuery::new(vec![AttrRange::new(0, 3, 5)], 5_000, 6_000);
        assert_eq!(roar.evaluate_rows(&q), roar.evaluate_direct(&q));
    }

    #[test]
    fn size_smaller_than_verbatim_on_sparse_bins() {
        let n = 100_000usize;
        let bins: Vec<u32> = (0..n).map(|i| (i % 50) as u32).collect();
        let t = BinnedTable::new(vec![BinnedColumn::new("x", bins, 50)]);
        let roar = RoaringIndex::build(&t);
        let exact = BitmapIndex::build(&t, Encoding::Equality);
        // Each bin holds 2000 of 100k rows: array containers, 2 B/row.
        assert!(
            roar.size_bytes() < exact.size_bytes(),
            "roar {} vs exact {}",
            roar.size_bytes(),
            exact.size_bytes()
        );
    }
}
