//! A compact Roaring-style bitmap.
//!
//! Roaring (Chambi, Lemire, Kaser, Godin, 2014) is where the bitmap
//! field settled after the WAH/BBC era the paper competes in: values
//! are partitioned by their high 16 bits into 65536-value chunks, each
//! stored as a sorted array (sparse) or a verbatim bitset (dense).
//! Unlike run-length codes, Roaring *keeps* O(log) direct access — so
//! it is the natural modern baseline for the Approximate Bitmap's
//! direct-access claim, alongside the paper's WAH comparisons. The
//! `bench` crate races all three.
//!
//! This is a self-contained reimplementation of the core design —
//! array, bitmap, *and* run containers (the Lemire et al. 2016
//! refinement, via [`RoaringBitmap::optimize`]) plus a word-at-a-time
//! batch membership kernel ([`RoaringBitmap::contains_batch`]) and a
//! versioned, checksummed byte format ([`RoaringBitmap::to_bytes`]) —
//! enough both for honest size/speed comparisons and for serving as
//! the exact tier of the hybrid AB index (`ab::HybridAb`).
//!
//! # Examples
//!
//! ```
//! use roar::RoaringBitmap;
//!
//! let mut rb = RoaringBitmap::new();
//! rb.insert(3);
//! rb.insert(1_000_000);
//! assert!(rb.contains(3) && rb.contains(1_000_000));
//! assert_eq!(rb.iter().collect::<Vec<_>>(), vec![3, 1_000_000]);
//! ```

#![warn(missing_docs)]

pub mod bytes;
pub mod container;
pub mod index;

pub use bytes::RoarError;
pub use container::Container;
pub use index::RoaringIndex;

use serde::{Deserialize, Serialize};

/// A set of `u32` values with chunked array/bitmap storage.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoaringBitmap {
    /// `(high 16 bits, container)`, sorted by key.
    chunks: Vec<(u16, Container)>,
}

impl RoaringBitmap {
    /// An empty bitmap.
    pub fn new() -> Self {
        RoaringBitmap { chunks: Vec::new() }
    }

    /// Builds from an ascending iterator of values (duplicates allowed).
    pub fn from_sorted<I: IntoIterator<Item = u32>>(values: I) -> Self {
        let mut rb = Self::new();
        for v in values {
            rb.insert(v);
        }
        rb
    }

    #[inline]
    fn split(v: u32) -> (u16, u16) {
        ((v >> 16) as u16, (v & 0xFFFF) as u16)
    }

    fn chunk_index(&self, key: u16) -> Result<usize, usize> {
        self.chunks.binary_search_by_key(&key, |(k, _)| *k)
    }

    /// Inserts a value; returns `true` if newly added.
    pub fn insert(&mut self, v: u32) -> bool {
        let (key, low) = Self::split(v);
        match self.chunk_index(key) {
            Ok(i) => self.chunks[i].1.insert(low),
            Err(i) => {
                let mut c = Container::new();
                c.insert(low);
                self.chunks.insert(i, (key, c));
                true
            }
        }
    }

    /// Inserts every value in `lo..=hi` — container-level fills, far
    /// cheaper than per-value insertion for dense ranges (used for the
    /// §3.3 row-range masks).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn insert_range(&mut self, lo: u32, hi: u32) {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let (klo, khi) = ((lo >> 16) as u16, (hi >> 16) as u16);
        for key in klo..=khi {
            let from = if key == klo { (lo & 0xFFFF) as u16 } else { 0 };
            let to = if key == khi {
                (hi & 0xFFFF) as u16
            } else {
                0xFFFF
            };
            let i = match self.chunk_index(key) {
                Ok(i) => i,
                Err(i) => {
                    self.chunks.insert(i, (key, Container::new()));
                    i
                }
            };
            self.chunks[i].1.insert_range(from, to);
        }
    }

    /// Removes a value; returns `true` if it was present.
    pub fn remove(&mut self, v: u32) -> bool {
        let (key, low) = Self::split(v);
        if let Ok(i) = self.chunk_index(key) {
            let removed = self.chunks[i].1.remove(low);
            if self.chunks[i].1.is_empty() {
                self.chunks.remove(i);
            }
            removed
        } else {
            false
        }
    }

    /// Membership test: O(log chunks + log container) — direct access.
    pub fn contains(&self, v: u32) -> bool {
        let (key, low) = Self::split(v);
        match self.chunk_index(key) {
            Ok(i) => self.chunks[i].1.contains(low),
            Err(_) => false,
        }
    }

    /// Number of stored values.
    pub fn len(&self) -> usize {
        self.chunks.iter().map(|(_, c)| c.len()).sum()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Heap bytes used by containers (plus 2 bytes per chunk key).
    pub fn size_bytes(&self) -> usize {
        self.chunks.iter().map(|(_, c)| c.size_bytes() + 2).sum()
    }

    /// Iterates values in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.chunks.iter().flat_map(|(key, c)| {
            let base = (*key as u32) << 16;
            c.iter().map(move |low| base | low as u32)
        })
    }

    /// Converts each container to its smallest physical form — the
    /// `runOptimize` pass that turns clustered chunks into run
    /// containers. Returns how many containers ended up in run form.
    /// Deterministic, so two equal sets optimize to identical
    /// representations (and identical [`Self::to_bytes`] output).
    pub fn optimize(&mut self) -> usize {
        let mut runs = 0;
        for (_, c) in self.chunks.iter_mut() {
            if c.optimize() {
                runs += 1;
            }
        }
        runs
    }

    /// Batch membership over the row interval `lo..=hi`: returns a
    /// packed mask whose bit `i` is `self.contains(lo + i)`, computed
    /// word-at-a-time from the containers rather than value-at-a-time
    /// — the kernel the hybrid tier feeds hier-pruned rect intervals
    /// into. Bits past `hi − lo` in the last word are zero.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn contains_batch(&self, lo: u32, hi: u32) -> Vec<u64> {
        assert!(lo <= hi, "empty interval {lo}..={hi}");
        let n = (hi - lo) as usize + 1;
        let mut mask = vec![0u64; n.div_ceil(64)];
        let (klo, khi) = ((lo >> 16) as u16, (hi >> 16) as u16);
        let first = self.chunks.partition_point(|(k, _)| *k < klo);
        for (key, c) in &self.chunks[first..] {
            if *key > khi {
                break;
            }
            let base = (*key as u32) << 16;
            let from = lo.max(base) - base;
            let to = hi.min(base | 0xFFFF) - base;
            let offset = (base + from - lo) as usize;
            c.mask_range(from as u16, to as u16, offset, &mut mask);
        }
        let tail = n % 64;
        if tail != 0 {
            *mask.last_mut().expect("n >= 1") &= (1u64 << tail) - 1;
        }
        mask
    }

    /// Merging binary operation over chunk lists.
    fn merge<F>(&self, other: &RoaringBitmap, keep_left: bool, keep_right: bool, op: F) -> Self
    where
        F: Fn(&Container, &Container) -> Container,
    {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.chunks.len() && j < other.chunks.len() {
            let (ka, ca) = &self.chunks[i];
            let (kb, cb) = &other.chunks[j];
            match ka.cmp(kb) {
                std::cmp::Ordering::Less => {
                    if keep_left {
                        out.push((*ka, ca.clone()));
                    }
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    if keep_right {
                        out.push((*kb, cb.clone()));
                    }
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    let c = op(ca, cb);
                    if !c.is_empty() {
                        out.push((*ka, c));
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        if keep_left {
            out.extend_from_slice(&self.chunks[i..]);
        }
        if keep_right {
            out.extend_from_slice(&other.chunks[j..]);
        }
        RoaringBitmap { chunks: out }
    }

    /// Intersection.
    pub fn and(&self, other: &RoaringBitmap) -> RoaringBitmap {
        self.merge(other, false, false, Container::and)
    }

    /// Union.
    pub fn or(&self, other: &RoaringBitmap) -> RoaringBitmap {
        self.merge(other, true, true, Container::or)
    }

    /// Difference (`self \ other`).
    pub fn andnot(&self, other: &RoaringBitmap) -> RoaringBitmap {
        self.merge(other, true, false, Container::andnot)
    }
}

impl FromIterator<u32> for RoaringBitmap {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let mut rb = RoaringBitmap::new();
        for v in iter {
            rb.insert(v);
        }
        rb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_across_chunks() {
        let mut rb = RoaringBitmap::new();
        for v in [0u32, 65_535, 65_536, 1 << 20, u32::MAX] {
            assert!(rb.insert(v));
            assert!(!rb.insert(v));
        }
        assert_eq!(rb.len(), 5);
        assert!(rb.contains(65_536));
        assert!(!rb.contains(65_537));
    }

    #[test]
    fn remove_prunes_empty_chunks() {
        let mut rb = RoaringBitmap::from_sorted([1, 2, 100_000]);
        assert!(rb.remove(100_000));
        assert!(!rb.remove(100_000));
        assert_eq!(rb.len(), 2);
        // The chunk for key 1 must be gone entirely.
        assert_eq!(rb.chunks.len(), 1);
    }

    #[test]
    fn iter_is_sorted_across_chunks() {
        let vals = [5u32, 70_000, 3, 200_000, 70_001];
        let rb: RoaringBitmap = vals.iter().copied().collect();
        assert_eq!(
            rb.iter().collect::<Vec<_>>(),
            vec![3, 5, 70_000, 70_001, 200_000]
        );
    }

    #[test]
    fn set_ops_match_btreeset() {
        use std::collections::BTreeSet;
        let a: Vec<u32> = (0..2000).map(|i| i * 37).collect();
        let b: Vec<u32> = (0..2000).map(|i| i * 53 + 11).collect();
        let (sa, sb): (BTreeSet<u32>, BTreeSet<u32>) =
            (a.iter().copied().collect(), b.iter().copied().collect());
        let (ra, rb): (RoaringBitmap, RoaringBitmap) =
            (a.into_iter().collect(), b.into_iter().collect());
        assert_eq!(
            ra.and(&rb).iter().collect::<Vec<_>>(),
            sa.intersection(&sb).copied().collect::<Vec<_>>()
        );
        assert_eq!(
            ra.or(&rb).iter().collect::<Vec<_>>(),
            sa.union(&sb).copied().collect::<Vec<_>>()
        );
        assert_eq!(
            ra.andnot(&rb).iter().collect::<Vec<_>>(),
            sa.difference(&sb).copied().collect::<Vec<_>>()
        );
    }

    #[test]
    fn insert_range_matches_per_value() {
        for (lo, hi) in [(0u32, 10), (65_530, 65_540), (100, 200_000), (4_000, 8_200)] {
            let mut fast = RoaringBitmap::new();
            fast.insert_range(lo, hi);
            let slow: RoaringBitmap = (lo..=hi).collect();
            assert_eq!(fast, slow, "range {lo}..={hi}");
            assert_eq!(fast.len(), (hi - lo + 1) as usize);
        }
    }

    #[test]
    fn insert_range_merges_with_existing() {
        let mut rb: RoaringBitmap = [1u32, 5, 100].into_iter().collect();
        rb.insert_range(3, 6);
        assert_eq!(rb.iter().collect::<Vec<_>>(), vec![1, 3, 4, 5, 6, 100]);
    }

    #[test]
    fn sparse_data_stays_compact() {
        // 1000 values spread over 4G space: ~2 bytes each + keys.
        let rb: RoaringBitmap = (0..1000u32).map(|i| i * 4_000_000).collect();
        assert!(rb.size_bytes() < 8_192, "{} bytes", rb.size_bytes());
    }

    #[test]
    fn dense_chunk_uses_bitmap_container() {
        let rb: RoaringBitmap = (0..60_000u32).collect();
        assert_eq!(rb.size_bytes(), 8_192 + 2); // one bitmap container
        assert_eq!(rb.len(), 60_000);
    }

    #[test]
    fn optimize_compresses_clustered_chunks_without_changing_the_set() {
        let mut rb = RoaringBitmap::new();
        rb.insert_range(1000, 80_000); // clustered: spans two chunks
        rb.insert(500_000);
        let before: Vec<u32> = rb.iter().collect();
        let bytes_before = rb.size_bytes();
        let runs = rb.optimize();
        assert_eq!(runs, 2, "both dense chunks should go run");
        assert!(rb.size_bytes() < bytes_before / 100);
        assert_eq!(rb.iter().collect::<Vec<_>>(), before);
        assert_eq!(rb.len(), 79_002);
        assert!(rb.contains(1000) && rb.contains(80_000) && !rb.contains(999));
    }

    #[test]
    fn contains_batch_matches_contains() {
        let mut rb = RoaringBitmap::new();
        rb.insert_range(60_000, 70_000); // straddles the chunk boundary
        for v in (0..200_000u32).step_by(97) {
            rb.insert(v);
        }
        let mut run = rb.clone();
        run.optimize();
        for bm in [&rb, &run] {
            for (lo, hi) in [
                (0u32, 63),
                (59_990, 70_010),
                (65_530, 65_540),
                (100_000, 100_000),
                (0, 200_064),
            ] {
                let mask = bm.contains_batch(lo, hi);
                assert_eq!(mask.len(), ((hi - lo) as usize + 1).div_ceil(64));
                for v in lo..=hi {
                    let i = (v - lo) as usize;
                    assert_eq!(
                        mask[i / 64] >> (i % 64) & 1 == 1,
                        bm.contains(v),
                        "value {v} in {lo}..={hi}"
                    );
                }
                // Tail bits beyond the interval stay zero.
                let n = (hi - lo) as usize + 1;
                if !n.is_multiple_of(64) {
                    assert_eq!(mask.last().unwrap() >> (n % 64), 0);
                }
            }
        }
    }
}
