//! Roaring containers: the 2^16-bit chunks of a Roaring bitmap.
//!
//! Each container holds the low 16 bits of the values sharing one
//! 16-bit high prefix, in one of two physical forms:
//!
//! * [`Container::Array`] — a sorted `Vec<u16>` (≤ 4096 entries,
//!   2 bytes per value);
//! * [`Container::Bitmap`] — a verbatim 8 KiB bitset (for > 4096
//!   entries, where the array form would exceed the bitset's size).
//!
//! Containers convert between forms automatically at the 4096-element
//! threshold, the classic Roaring design point where both forms cost
//! the same space.

use serde::{Deserialize, Serialize};

/// Array/bitmap conversion threshold (elements).
pub const ARRAY_MAX: usize = 4096;
/// Words in a bitmap container.
const WORDS: usize = 1024;

/// One 65536-value chunk.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Container {
    /// Sorted list of low-16-bit values.
    Array(Vec<u16>),
    /// Verbatim 65536-bit set.
    Bitmap(Box<[u64]>),
}

impl Container {
    /// An empty array container.
    pub fn new() -> Self {
        Container::Array(Vec::new())
    }

    /// Number of values stored.
    pub fn len(&self) -> usize {
        match self {
            Container::Array(v) => v.len(),
            Container::Bitmap(w) => w.iter().map(|x| x.count_ones() as usize).sum(),
        }
    }

    /// `true` when no values are stored.
    pub fn is_empty(&self) -> bool {
        match self {
            Container::Array(v) => v.is_empty(),
            Container::Bitmap(w) => w.iter().all(|&x| x == 0),
        }
    }

    /// Heap bytes used.
    pub fn size_bytes(&self) -> usize {
        match self {
            Container::Array(v) => v.len() * 2,
            Container::Bitmap(_) => WORDS * 8,
        }
    }

    /// Inserts a value; returns `true` if it was newly added.
    pub fn insert(&mut self, v: u16) -> bool {
        match self {
            Container::Array(vals) => match vals.binary_search(&v) {
                Ok(_) => false,
                Err(pos) => {
                    vals.insert(pos, v);
                    if vals.len() > ARRAY_MAX {
                        *self = Self::array_to_bitmap(vals);
                    }
                    true
                }
            },
            Container::Bitmap(words) => {
                let (w, b) = (v as usize / 64, v as usize % 64);
                let was = words[w] >> b & 1 == 1;
                words[w] |= 1 << b;
                !was
            }
        }
    }

    /// Inserts every value in `lo..=hi` (inclusive), converting to a
    /// bitmap container when the result exceeds the array threshold.
    pub fn insert_range(&mut self, lo: u16, hi: u16) {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as usize + 1;
        if let Container::Array(vals) = self {
            if vals.len() + span > ARRAY_MAX {
                *self = Self::array_to_bitmap(vals);
            }
        }
        match self {
            Container::Array(vals) => {
                // Small range into a small array: merge.
                let mut merged = Vec::with_capacity(vals.len() + span);
                let mut it = vals.iter().copied().peekable();
                while let Some(&v) = it.peek() {
                    if v >= lo {
                        break;
                    }
                    merged.push(v);
                    it.next();
                }
                merged.extend(lo..=hi);
                for v in it {
                    if v > hi {
                        merged.push(v);
                    }
                }
                *vals = merged;
                if vals.len() > ARRAY_MAX {
                    *self = Self::array_to_bitmap(vals);
                }
            }
            Container::Bitmap(words) => {
                for w in lo as usize / 64..=hi as usize / 64 {
                    let from = (lo as usize).max(w * 64) - w * 64;
                    let to = (hi as usize).min(w * 64 + 63) - w * 64;
                    let mask = if to == 63 {
                        !0u64 << from
                    } else {
                        ((1u64 << (to + 1)) - 1) & (!0u64 << from)
                    };
                    words[w] |= mask;
                }
            }
        }
    }

    /// Removes a value; returns `true` if it was present. Bitmap
    /// containers demote back to arrays at the threshold.
    pub fn remove(&mut self, v: u16) -> bool {
        match self {
            Container::Array(vals) => match vals.binary_search(&v) {
                Ok(pos) => {
                    vals.remove(pos);
                    true
                }
                Err(_) => false,
            },
            Container::Bitmap(words) => {
                let (w, b) = (v as usize / 64, v as usize % 64);
                let was = words[w] >> b & 1 == 1;
                words[w] &= !(1u64 << b);
                if was && self.len() <= ARRAY_MAX {
                    *self = Container::Array(self.iter().collect());
                }
                was
            }
        }
    }

    /// Membership test — O(log n) for arrays, O(1) for bitmaps. This
    /// is the *direct access* run-length codes lack.
    pub fn contains(&self, v: u16) -> bool {
        match self {
            Container::Array(vals) => vals.binary_search(&v).is_ok(),
            Container::Bitmap(words) => words[v as usize / 64] >> (v as usize % 64) & 1 == 1,
        }
    }

    /// Iterates values in ascending order.
    pub fn iter(&self) -> Box<dyn Iterator<Item = u16> + '_> {
        match self {
            Container::Array(vals) => Box::new(vals.iter().copied()),
            Container::Bitmap(words) => {
                Box::new(words.iter().enumerate().flat_map(|(wi, &w)| BitIter {
                    word: w,
                    base: wi * 64,
                }))
            }
        }
    }

    fn array_to_bitmap(vals: &[u16]) -> Container {
        let mut words = vec![0u64; WORDS].into_boxed_slice();
        for &v in vals {
            words[v as usize / 64] |= 1 << (v as usize % 64);
        }
        Container::Bitmap(words)
    }

    /// Normalizes the physical form to match the element count (array
    /// iff ≤ 4096), used after bulk operations.
    fn normalize(self) -> Container {
        let n = self.len();
        match (&self, n) {
            (Container::Bitmap(_), n) if n <= ARRAY_MAX => Container::Array(self.iter().collect()),
            (Container::Array(vals), n) if n > ARRAY_MAX => Self::array_to_bitmap(vals),
            _ => self,
        }
    }

    /// Intersection.
    pub fn and(&self, other: &Container) -> Container {
        let out = match (self, other) {
            (Container::Array(a), Container::Array(b)) => Container::Array(intersect_sorted(a, b)),
            (Container::Array(a), bm @ Container::Bitmap(_))
            | (bm @ Container::Bitmap(_), Container::Array(a)) => {
                Container::Array(a.iter().copied().filter(|&v| bm.contains(v)).collect())
            }
            (Container::Bitmap(a), Container::Bitmap(b)) => {
                let words: Vec<u64> = a.iter().zip(b.iter()).map(|(x, y)| x & y).collect();
                Container::Bitmap(words.into_boxed_slice())
            }
        };
        out.normalize()
    }

    /// Union.
    pub fn or(&self, other: &Container) -> Container {
        let out = match (self, other) {
            (Container::Array(a), Container::Array(b)) => Container::Array(union_sorted(a, b)),
            (Container::Array(a), Container::Bitmap(bw))
            | (Container::Bitmap(bw), Container::Array(a)) => {
                let mut words = bw.clone();
                for &v in a {
                    words[v as usize / 64] |= 1 << (v as usize % 64);
                }
                Container::Bitmap(words)
            }
            (Container::Bitmap(a), Container::Bitmap(b)) => {
                let words: Vec<u64> = a.iter().zip(b.iter()).map(|(x, y)| x | y).collect();
                Container::Bitmap(words.into_boxed_slice())
            }
        };
        out.normalize()
    }

    /// Difference (`self \ other`).
    pub fn andnot(&self, other: &Container) -> Container {
        let out = match (self, other) {
            (Container::Array(a), _) => {
                Container::Array(a.iter().copied().filter(|&v| !other.contains(v)).collect())
            }
            (Container::Bitmap(aw), Container::Bitmap(bw)) => {
                let words: Vec<u64> = aw.iter().zip(bw.iter()).map(|(x, y)| x & !y).collect();
                Container::Bitmap(words.into_boxed_slice())
            }
            (Container::Bitmap(aw), Container::Array(b)) => {
                let mut words = aw.clone();
                for &v in b {
                    words[v as usize / 64] &= !(1u64 << (v as usize % 64));
                }
                Container::Bitmap(words)
            }
        };
        out.normalize()
    }
}

impl Default for Container {
    fn default() -> Self {
        Self::new()
    }
}

/// Set-bit iterator over one word.
struct BitIter {
    word: u64,
    base: usize,
}

impl Iterator for BitIter {
    type Item = u16;

    fn next(&mut self) -> Option<u16> {
        if self.word == 0 {
            return None;
        }
        let tz = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some((self.base + tz) as u16)
    }
}

fn intersect_sorted(a: &[u16], b: &[u16]) -> Vec<u16> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

fn union_sorted(a: &[u16], b: &[u16]) -> Vec<u16> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_array() {
        let mut c = Container::new();
        assert!(c.insert(5));
        assert!(!c.insert(5));
        assert!(c.insert(3));
        assert!(c.contains(3) && c.contains(5) && !c.contains(4));
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![3, 5]);
    }

    #[test]
    fn promotes_to_bitmap_past_threshold() {
        let mut c = Container::new();
        for v in 0..=ARRAY_MAX as u16 {
            c.insert(v * 10);
        }
        assert!(matches!(c, Container::Bitmap(_)));
        assert_eq!(c.len(), ARRAY_MAX + 1);
        assert!(c.contains(40960));
        assert!(!c.contains(5));
    }

    #[test]
    fn demotes_on_remove() {
        let mut c = Container::new();
        for v in 0..=(ARRAY_MAX as u16) {
            c.insert(v);
        }
        assert!(matches!(c, Container::Bitmap(_)));
        assert!(c.remove(0));
        assert!(matches!(c, Container::Array(_)));
        assert_eq!(c.len(), ARRAY_MAX);
    }

    #[test]
    fn remove_absent_is_noop() {
        let mut c = Container::new();
        c.insert(1);
        assert!(!c.remove(2));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn bitmap_iter_is_sorted() {
        let mut c = Container::new();
        let vals: Vec<u16> = (0..5000).map(|i| (i * 13) as u16).collect();
        for &v in &vals {
            c.insert(v);
        }
        let got: Vec<u16> = c.iter().collect();
        let mut want: Vec<u16> = vals.clone();
        want.sort_unstable();
        want.dedup();
        assert_eq!(got, want);
    }

    #[test]
    fn ops_across_forms() {
        // One array, one bitmap container.
        let mut a = Container::new();
        for v in (0..1000u16).step_by(2) {
            a.insert(v);
        }
        let mut b = Container::new();
        for v in 0..5000u16 {
            b.insert(v);
        }
        assert!(matches!(a, Container::Array(_)));
        assert!(matches!(b, Container::Bitmap(_)));
        assert_eq!(a.and(&b).len(), 500);
        assert_eq!(a.or(&b).len(), 5000);
        assert_eq!(a.andnot(&b).len(), 0);
        assert_eq!(b.andnot(&a).len(), 4500);
    }

    #[test]
    fn and_result_normalizes_to_array() {
        let mut a = Container::new();
        let mut b = Container::new();
        for v in 0..5000u16 {
            a.insert(v);
            b.insert(v + 4000);
        }
        let i = a.and(&b); // 1000 common values → array form
        assert!(matches!(i, Container::Array(_)));
        assert_eq!(i.len(), 1000);
    }

    #[test]
    fn size_accounting() {
        let mut c = Container::new();
        c.insert(1);
        c.insert(2);
        assert_eq!(c.size_bytes(), 4);
        for v in 0..5000u16 {
            c.insert(v);
        }
        assert_eq!(c.size_bytes(), 8192);
    }
}
