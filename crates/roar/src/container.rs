//! Roaring containers: the 2^16-bit chunks of a Roaring bitmap.
//!
//! Each container holds the low 16 bits of the values sharing one
//! 16-bit high prefix, in one of three physical forms:
//!
//! * [`Container::Array`] — a sorted `Vec<u16>` (≤ 4096 entries,
//!   2 bytes per value);
//! * [`Container::Bitmap`] — a verbatim 8 KiB bitset (for > 4096
//!   entries, where the array form would exceed the bitset's size);
//! * [`Container::Run`] — sorted disjoint `(start, end)` runs, the
//!   run-container refinement (Lemire, Ssi-Yan-Kai, Kaser, 2016) that
//!   makes clustered chunks nearly free.
//!
//! Containers convert between array and bitmap automatically at the
//! 4096-element threshold, the classic Roaring design point where both
//! forms cost the same space. Run form is produced only by an explicit
//! [`Container::optimize`] pass (mirroring `runOptimize`), which picks
//! whichever of the three serialized forms is smallest; mutating a run
//! container converts it back to the dense form first.

use serde::{Deserialize, Serialize};

/// Array/bitmap conversion threshold (elements).
pub const ARRAY_MAX: usize = 4096;
/// Words in a bitmap container.
const WORDS: usize = 1024;

/// One 65536-value chunk.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Container {
    /// Sorted list of low-16-bit values.
    Array(Vec<u16>),
    /// Verbatim 65536-bit set.
    Bitmap(Box<[u64]>),
    /// Sorted, disjoint, non-adjacent `(start, end)` runs (inclusive).
    Run(Vec<(u16, u16)>),
}

impl Container {
    /// An empty array container.
    pub fn new() -> Self {
        Container::Array(Vec::new())
    }

    /// Number of values stored.
    pub fn len(&self) -> usize {
        match self {
            Container::Array(v) => v.len(),
            Container::Bitmap(w) => w.iter().map(|x| x.count_ones() as usize).sum(),
            Container::Run(runs) => runs.iter().map(|&(s, e)| (e - s) as usize + 1).sum(),
        }
    }

    /// `true` when no values are stored.
    pub fn is_empty(&self) -> bool {
        match self {
            Container::Array(v) => v.is_empty(),
            Container::Bitmap(w) => w.iter().all(|&x| x == 0),
            Container::Run(runs) => runs.is_empty(),
        }
    }

    /// Heap bytes used.
    pub fn size_bytes(&self) -> usize {
        match self {
            Container::Array(v) => v.len() * 2,
            Container::Bitmap(_) => WORDS * 8,
            Container::Run(runs) => runs.len() * 4,
        }
    }

    /// Converts a run container back to its canonical dense form
    /// (array iff ≤ [`ARRAY_MAX`] values); array/bitmap pass through
    /// unchanged. Mutating entry points call this so run form never
    /// has to support in-place edits.
    fn densify(&mut self) {
        if let Container::Run(_) = self {
            let vals: Vec<u16> = self.iter().collect();
            *self = if vals.len() > ARRAY_MAX {
                Self::array_to_bitmap(&vals)
            } else {
                Container::Array(vals)
            };
        }
    }

    /// Picks the smallest physical form for the current value set, the
    /// `runOptimize` decision: serialized run form costs `2 + 4·runs`
    /// bytes versus `2·len` (array) or 8192 (bitmap); ties keep the
    /// non-run form. Returns `true` when the container ends up in run
    /// form.
    pub fn optimize(&mut self) -> bool {
        let runs = self.count_runs();
        let run_bytes = 2 + 4 * runs;
        let dense_bytes = 2 * self.len().min(WORDS * 4); // array capped by bitmap
        if run_bytes < dense_bytes {
            let mut out = Vec::with_capacity(runs);
            for v in self.iter() {
                match out.last_mut() {
                    Some((_, e)) if *e + 1 == v => *e = v,
                    _ => out.push((v, v)),
                }
            }
            *self = Container::Run(out);
            true
        } else {
            self.densify();
            false
        }
    }

    /// Number of maximal runs of consecutive values.
    fn count_runs(&self) -> usize {
        match self {
            Container::Run(runs) => runs.len(),
            Container::Array(vals) => {
                let mut runs = 0usize;
                let mut prev: Option<u16> = None;
                for &v in vals {
                    if prev.is_none() || prev != v.checked_sub(1) {
                        runs += 1;
                    }
                    prev = Some(v);
                }
                runs
            }
            Container::Bitmap(words) => {
                // Run starts = set bits whose predecessor bit is clear:
                // popcount(w & !(w << 1 | carry)) per word.
                let mut runs = 0usize;
                let mut carry = 0u64;
                for &w in words.iter() {
                    runs += (w & !((w << 1) | carry)).count_ones() as usize;
                    carry = w >> 63;
                }
                runs
            }
        }
    }

    /// Inserts a value; returns `true` if it was newly added.
    pub fn insert(&mut self, v: u16) -> bool {
        self.densify();
        match self {
            Container::Array(vals) => match vals.binary_search(&v) {
                Ok(_) => false,
                Err(pos) => {
                    vals.insert(pos, v);
                    if vals.len() > ARRAY_MAX {
                        *self = Self::array_to_bitmap(vals);
                    }
                    true
                }
            },
            Container::Bitmap(words) => {
                let (w, b) = (v as usize / 64, v as usize % 64);
                let was = words[w] >> b & 1 == 1;
                words[w] |= 1 << b;
                !was
            }
            Container::Run(_) => unreachable!("densify above"),
        }
    }

    /// Inserts every value in `lo..=hi` (inclusive), converting to a
    /// bitmap container when the result exceeds the array threshold.
    pub fn insert_range(&mut self, lo: u16, hi: u16) {
        debug_assert!(lo <= hi);
        self.densify();
        let span = (hi - lo) as usize + 1;
        if let Container::Array(vals) = self {
            if vals.len() + span > ARRAY_MAX {
                *self = Self::array_to_bitmap(vals);
            }
        }
        match self {
            Container::Array(vals) => {
                // Small range into a small array: merge.
                let mut merged = Vec::with_capacity(vals.len() + span);
                let mut it = vals.iter().copied().peekable();
                while let Some(&v) = it.peek() {
                    if v >= lo {
                        break;
                    }
                    merged.push(v);
                    it.next();
                }
                merged.extend(lo..=hi);
                for v in it {
                    if v > hi {
                        merged.push(v);
                    }
                }
                *vals = merged;
                if vals.len() > ARRAY_MAX {
                    *self = Self::array_to_bitmap(vals);
                }
            }
            Container::Bitmap(words) => {
                for w in lo as usize / 64..=hi as usize / 64 {
                    let from = (lo as usize).max(w * 64) - w * 64;
                    let to = (hi as usize).min(w * 64 + 63) - w * 64;
                    let mask = if to == 63 {
                        !0u64 << from
                    } else {
                        ((1u64 << (to + 1)) - 1) & (!0u64 << from)
                    };
                    words[w] |= mask;
                }
            }
            Container::Run(_) => unreachable!("densify above"),
        }
    }

    /// Removes a value; returns `true` if it was present. Bitmap
    /// containers demote back to arrays at the threshold.
    pub fn remove(&mut self, v: u16) -> bool {
        self.densify();
        match self {
            Container::Array(vals) => match vals.binary_search(&v) {
                Ok(pos) => {
                    vals.remove(pos);
                    true
                }
                Err(_) => false,
            },
            Container::Bitmap(words) => {
                let (w, b) = (v as usize / 64, v as usize % 64);
                let was = words[w] >> b & 1 == 1;
                words[w] &= !(1u64 << b);
                if was && self.len() <= ARRAY_MAX {
                    *self = Container::Array(self.iter().collect());
                }
                was
            }
            Container::Run(_) => unreachable!("densify above"),
        }
    }

    /// Membership test — O(log n) for arrays and runs, O(1) for
    /// bitmaps. This is the *direct access* run-length codes lack.
    pub fn contains(&self, v: u16) -> bool {
        match self {
            Container::Array(vals) => vals.binary_search(&v).is_ok(),
            Container::Bitmap(words) => words[v as usize / 64] >> (v as usize % 64) & 1 == 1,
            Container::Run(runs) => {
                let i = runs.partition_point(|&(s, _)| s <= v);
                i > 0 && runs[i - 1].1 >= v
            }
        }
    }

    /// Iterates values in ascending order.
    pub fn iter(&self) -> Box<dyn Iterator<Item = u16> + '_> {
        match self {
            Container::Array(vals) => Box::new(vals.iter().copied()),
            Container::Bitmap(words) => {
                Box::new(words.iter().enumerate().flat_map(|(wi, &w)| BitIter {
                    word: w,
                    base: wi * 64,
                }))
            }
            Container::Run(runs) => Box::new(runs.iter().flat_map(|&(s, e)| s..=e)),
        }
    }

    /// Sets `out` bit `offset + (v - from)` for every member `v` of
    /// `from..=hi` — the word-at-a-time membership kernel behind
    /// [`crate::RoaringBitmap::contains_batch`]. Bits beyond `out`'s
    /// length are silently dropped (the caller sizes `out` for its row
    /// interval).
    pub(crate) fn mask_range(&self, from: u16, hi: u16, offset: usize, out: &mut [u64]) {
        debug_assert!(from <= hi);
        match self {
            Container::Array(vals) => {
                let lo_i = vals.partition_point(|&v| v < from);
                for &v in &vals[lo_i..] {
                    if v > hi {
                        break;
                    }
                    set_bit(out, offset + (v - from) as usize);
                }
            }
            Container::Bitmap(words) => {
                let (wf, wt) = (from as usize / 64, hi as usize / 64);
                for wi in wf..=wt {
                    let mut w = words[wi];
                    if wi == wf {
                        w &= !0u64 << (from as usize % 64);
                    }
                    if wi == wt {
                        let t = hi as usize % 64;
                        if t < 63 {
                            w &= (1u64 << (t + 1)) - 1;
                        }
                    }
                    if w != 0 {
                        // Source bit j of w is container value wi·64+j,
                        // landing at out bit offset + wi·64 + j − from.
                        or_shifted(out, w, offset as i64 + wi as i64 * 64 - from as i64);
                    }
                }
            }
            Container::Run(runs) => {
                let start = runs.partition_point(|&(_, e)| e < from);
                for &(s, e) in &runs[start..] {
                    if s > hi {
                        break;
                    }
                    let a = s.max(from);
                    let b = e.min(hi);
                    set_bit_range(
                        out,
                        offset + (a - from) as usize,
                        offset + (b - from) as usize,
                    );
                }
            }
        }
    }

    fn array_to_bitmap(vals: &[u16]) -> Container {
        let mut words = vec![0u64; WORDS].into_boxed_slice();
        for &v in vals {
            words[v as usize / 64] |= 1 << (v as usize % 64);
        }
        Container::Bitmap(words)
    }

    /// Normalizes the physical form to match the element count (array
    /// iff ≤ 4096), used after bulk operations.
    fn normalize(self) -> Container {
        let n = self.len();
        match (&self, n) {
            (Container::Bitmap(_), n) if n <= ARRAY_MAX => Container::Array(self.iter().collect()),
            (Container::Array(vals), n) if n > ARRAY_MAX => Self::array_to_bitmap(vals),
            _ => self,
        }
    }

    /// A dense (array/bitmap) clone of a run container, so the binary
    /// ops below only pair array and bitmap forms.
    fn dense_clone(&self) -> Container {
        let mut d = self.clone();
        d.densify();
        d
    }

    /// Intersection.
    pub fn and(&self, other: &Container) -> Container {
        if matches!(self, Container::Run(_)) {
            return self.dense_clone().and(other);
        }
        if matches!(other, Container::Run(_)) {
            return self.and(&other.dense_clone());
        }
        let out = match (self, other) {
            (Container::Array(a), Container::Array(b)) => Container::Array(intersect_sorted(a, b)),
            (Container::Array(a), bm @ Container::Bitmap(_))
            | (bm @ Container::Bitmap(_), Container::Array(a)) => {
                Container::Array(a.iter().copied().filter(|&v| bm.contains(v)).collect())
            }
            (Container::Bitmap(a), Container::Bitmap(b)) => {
                let words: Vec<u64> = a.iter().zip(b.iter()).map(|(x, y)| x & y).collect();
                Container::Bitmap(words.into_boxed_slice())
            }
            _ => unreachable!("run operands densified above"),
        };
        out.normalize()
    }

    /// Union.
    pub fn or(&self, other: &Container) -> Container {
        if matches!(self, Container::Run(_)) {
            return self.dense_clone().or(other);
        }
        if matches!(other, Container::Run(_)) {
            return self.or(&other.dense_clone());
        }
        let out = match (self, other) {
            (Container::Array(a), Container::Array(b)) => Container::Array(union_sorted(a, b)),
            (Container::Array(a), Container::Bitmap(bw))
            | (Container::Bitmap(bw), Container::Array(a)) => {
                let mut words = bw.clone();
                for &v in a {
                    words[v as usize / 64] |= 1 << (v as usize % 64);
                }
                Container::Bitmap(words)
            }
            (Container::Bitmap(a), Container::Bitmap(b)) => {
                let words: Vec<u64> = a.iter().zip(b.iter()).map(|(x, y)| x | y).collect();
                Container::Bitmap(words.into_boxed_slice())
            }
            _ => unreachable!("run operands densified above"),
        };
        out.normalize()
    }

    /// Difference (`self \ other`).
    pub fn andnot(&self, other: &Container) -> Container {
        if matches!(self, Container::Run(_)) {
            return self.dense_clone().andnot(other);
        }
        if matches!(other, Container::Run(_)) {
            return self.andnot(&other.dense_clone());
        }
        let out = match (self, other) {
            (Container::Array(a), _) => {
                Container::Array(a.iter().copied().filter(|&v| !other.contains(v)).collect())
            }
            (Container::Bitmap(aw), Container::Bitmap(bw)) => {
                let words: Vec<u64> = aw.iter().zip(bw.iter()).map(|(x, y)| x & !y).collect();
                Container::Bitmap(words.into_boxed_slice())
            }
            (Container::Bitmap(aw), Container::Array(b)) => {
                let mut words = aw.clone();
                for &v in b {
                    words[v as usize / 64] &= !(1u64 << (v as usize % 64));
                }
                Container::Bitmap(words)
            }
            _ => unreachable!("run operands densified above"),
        };
        out.normalize()
    }
}

impl Default for Container {
    fn default() -> Self {
        Self::new()
    }
}

/// Set-bit iterator over one word.
struct BitIter {
    word: u64,
    base: usize,
}

impl Iterator for BitIter {
    type Item = u16;

    fn next(&mut self) -> Option<u16> {
        if self.word == 0 {
            return None;
        }
        let tz = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some((self.base + tz) as u16)
    }
}

fn intersect_sorted(a: &[u16], b: &[u16]) -> Vec<u16> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

fn union_sorted(a: &[u16], b: &[u16]) -> Vec<u16> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Sets bit `i` of `out` when it is in range.
#[inline]
fn set_bit(out: &mut [u64], i: usize) {
    if let Some(w) = out.get_mut(i / 64) {
        *w |= 1u64 << (i % 64);
    }
}

/// Sets bits `a..=b` of `out` (clipped to its length), word-at-a-time.
fn set_bit_range(out: &mut [u64], a: usize, b: usize) {
    debug_assert!(a <= b);
    for wi in a / 64..=b / 64 {
        let Some(w) = out.get_mut(wi) else { break };
        let from = a.max(wi * 64) - wi * 64;
        let to = b.min(wi * 64 + 63) - wi * 64;
        let mask = if to == 63 {
            !0u64 << from
        } else {
            ((1u64 << (to + 1)) - 1) & (!0u64 << from)
        };
        *w |= mask;
    }
}

/// ORs source word `w` into `out` with bit `j` of `w` landing at out
/// bit `shift + j`; bits that fall below zero or past the end are
/// dropped.
fn or_shifted(out: &mut [u64], w: u64, shift: i64) {
    if shift >= 0 {
        let word = (shift / 64) as usize;
        let bit = (shift % 64) as u32;
        if let Some(o) = out.get_mut(word) {
            *o |= w << bit;
        }
        if bit != 0 {
            if let Some(o) = out.get_mut(word + 1) {
                *o |= w >> (64 - bit);
            }
        }
    } else {
        let s = -shift as u32;
        if s < 64 {
            if let Some(o) = out.get_mut(0) {
                *o |= w >> s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_array() {
        let mut c = Container::new();
        assert!(c.insert(5));
        assert!(!c.insert(5));
        assert!(c.insert(3));
        assert!(c.contains(3) && c.contains(5) && !c.contains(4));
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![3, 5]);
    }

    #[test]
    fn promotes_to_bitmap_past_threshold() {
        let mut c = Container::new();
        for v in 0..=ARRAY_MAX as u16 {
            c.insert(v * 10);
        }
        assert!(matches!(c, Container::Bitmap(_)));
        assert_eq!(c.len(), ARRAY_MAX + 1);
        assert!(c.contains(40960));
        assert!(!c.contains(5));
    }

    #[test]
    fn demotes_on_remove() {
        let mut c = Container::new();
        for v in 0..=(ARRAY_MAX as u16) {
            c.insert(v);
        }
        assert!(matches!(c, Container::Bitmap(_)));
        assert!(c.remove(0));
        assert!(matches!(c, Container::Array(_)));
        assert_eq!(c.len(), ARRAY_MAX);
    }

    #[test]
    fn remove_absent_is_noop() {
        let mut c = Container::new();
        c.insert(1);
        assert!(!c.remove(2));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn bitmap_iter_is_sorted() {
        let mut c = Container::new();
        let vals: Vec<u16> = (0..5000).map(|i| (i * 13) as u16).collect();
        for &v in &vals {
            c.insert(v);
        }
        let got: Vec<u16> = c.iter().collect();
        let mut want: Vec<u16> = vals.clone();
        want.sort_unstable();
        want.dedup();
        assert_eq!(got, want);
    }

    #[test]
    fn ops_across_forms() {
        // One array, one bitmap container.
        let mut a = Container::new();
        for v in (0..1000u16).step_by(2) {
            a.insert(v);
        }
        let mut b = Container::new();
        for v in 0..5000u16 {
            b.insert(v);
        }
        assert!(matches!(a, Container::Array(_)));
        assert!(matches!(b, Container::Bitmap(_)));
        assert_eq!(a.and(&b).len(), 500);
        assert_eq!(a.or(&b).len(), 5000);
        assert_eq!(a.andnot(&b).len(), 0);
        assert_eq!(b.andnot(&a).len(), 4500);
    }

    #[test]
    fn and_result_normalizes_to_array() {
        let mut a = Container::new();
        let mut b = Container::new();
        for v in 0..5000u16 {
            a.insert(v);
            b.insert(v + 4000);
        }
        let i = a.and(&b); // 1000 common values → array form
        assert!(matches!(i, Container::Array(_)));
        assert_eq!(i.len(), 1000);
    }

    #[test]
    fn size_accounting() {
        let mut c = Container::new();
        c.insert(1);
        c.insert(2);
        assert_eq!(c.size_bytes(), 4);
        for v in 0..5000u16 {
            c.insert(v);
        }
        assert_eq!(c.size_bytes(), 8192);
    }

    #[test]
    fn array_boundary_is_exactly_4096() {
        let mut c = Container::new();
        for v in 0..ARRAY_MAX as u16 {
            c.insert(v * 2);
        }
        assert!(matches!(c, Container::Array(_)), "4096 values stay array");
        c.insert(60_000);
        assert!(matches!(c, Container::Bitmap(_)), "4097th promotes");
        assert!(c.remove(60_000));
        assert!(matches!(c, Container::Array(_)), "back at 4096 demotes");
        assert_eq!(c.len(), ARRAY_MAX);
    }

    #[test]
    fn optimize_picks_run_for_clustered_values() {
        // One solid run of 5000 values: 1 run (6 B) vs bitmap (8 KiB).
        let mut c = Container::new();
        c.insert_range(100, 5099);
        assert!(c.optimize());
        assert_eq!(c, Container::Run(vec![(100, 5099)]));
        assert_eq!(c.len(), 5000);
        assert_eq!(c.size_bytes(), 4);
        assert!(c.contains(100) && c.contains(5099) && !c.contains(5100));
        assert_eq!(c.iter().count(), 5000);
    }

    #[test]
    fn optimize_keeps_sparse_arrays() {
        // Alternating values have no runs worth keeping: 2·len < 2+4·runs.
        let mut c = Container::new();
        for v in (0..2000u16).step_by(2) {
            c.insert(v);
        }
        assert!(!c.optimize());
        assert!(matches!(c, Container::Array(_)));
    }

    #[test]
    fn optimize_run_threshold_matches_serialized_cost() {
        // 10 values in 2 runs: run form 2+8 = 10 B < array 20 B → run.
        let mut c = Container::new();
        c.insert_range(0, 4);
        c.insert_range(100, 104);
        assert!(c.optimize());
        // 4 values in 2 runs: run form 10 B > array 8 B → array.
        let mut c = Container::new();
        c.insert_range(0, 1);
        c.insert_range(100, 101);
        assert!(!c.optimize());
        assert!(matches!(c, Container::Array(_)));
    }

    #[test]
    fn run_mutation_falls_back_densify() {
        let mut c = Container::new();
        c.insert_range(0, 4999);
        c.optimize();
        assert!(matches!(c, Container::Run(_)));
        assert!(c.insert(60_000));
        assert!(
            matches!(c, Container::Bitmap(_)),
            "mutating a run container densifies (5001 values → bitmap)"
        );
        assert!(c.contains(2500) && c.contains(60_000));

        let mut small = Container::Run(vec![(10, 12)]);
        assert!(small.remove(11));
        assert!(matches!(small, Container::Array(_)));
        assert_eq!(small.iter().collect::<Vec<_>>(), vec![10, 12]);
    }

    #[test]
    fn run_ops_match_dense_ops() {
        let mut a = Container::new();
        a.insert_range(0, 4999);
        let dense = a.clone();
        a.optimize();
        let mut b = Container::new();
        for v in (0..10_000u16).step_by(3) {
            b.insert(v);
        }
        assert_eq!(a.and(&b), dense.and(&b));
        assert_eq!(a.or(&b), dense.or(&b));
        assert_eq!(a.andnot(&b), dense.andnot(&b));
        assert_eq!(b.andnot(&a), b.andnot(&dense));
    }

    #[test]
    fn count_runs_agrees_across_forms() {
        let mut arr = Container::new();
        for &(s, e) in &[(0u16, 5), (7, 7), (64, 200), (511, 513)] {
            arr.insert_range(s, e);
        }
        let mut bm = arr.clone();
        for v in 1000..6000u16 {
            bm.insert(v);
        }
        assert_eq!(arr.count_runs(), 4);
        assert!(matches!(bm, Container::Bitmap(_)));
        assert_eq!(bm.count_runs(), 5);
    }

    #[test]
    fn mask_range_matches_contains_per_form() {
        let mut dense = Container::new();
        for &(s, e) in &[(0u16, 3), (60, 80), (127, 129), (1000, 5200)] {
            dense.insert_range(s, e);
        }
        let mut run = dense.clone();
        run.optimize();
        let array = Container::Array(dense.iter().filter(|v| v % 7 == 0).collect());
        for c in [&dense, &run, &array] {
            for (from, hi) in [(0u16, 63), (1, 200), (70, 70), (900, 6000), (120, 1100)] {
                let n = (hi - from) as usize + 1;
                let mut mask = vec![0u64; n.div_ceil(64)];
                c.mask_range(from, hi, 0, &mut mask);
                for v in from..=hi {
                    let i = (v - from) as usize;
                    assert_eq!(
                        mask[i / 64] >> (i % 64) & 1 == 1,
                        c.contains(v),
                        "form {c:?} value {v} over {from}..={hi}"
                    );
                }
            }
        }
    }

    #[test]
    fn mask_range_honors_offset_across_words() {
        let mut c = Container::new();
        c.insert_range(10, 200);
        for offset in [0usize, 1, 63, 64, 65, 130] {
            let mut mask = vec![0u64; 8];
            c.mask_range(5, 250, offset, &mut mask);
            for v in 5u16..=250 {
                let i = offset + (v - 5) as usize;
                if i < 512 {
                    assert_eq!(
                        mask[i / 64] >> (i % 64) & 1 == 1,
                        (10..=200).contains(&v),
                        "offset {offset} value {v}"
                    );
                }
            }
        }
    }
}
