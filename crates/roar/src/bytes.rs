//! Versioned byte serialization for [`RoaringBitmap`] with a CRC-32
//! integrity check.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic  "ROAR"                      4 bytes
//! version u16                        2 bytes   (currently 1)
//! crc32   u32 over bytes[10..]       4 bytes
//! chunks  u32                        4 bytes
//! per chunk, ascending by key:
//!   key   u16
//!   kind  u8    0 = array, 1 = bitmap, 2 = run
//!   count u32   elements (array), set bits (bitmap), runs (run)
//!   payload     array: count × u16 ascending
//!               bitmap: 1024 × u64 verbatim
//!               run:    count × (start u16, end u16), ascending,
//!                       disjoint, non-adjacent
//! ```
//!
//! The physical container forms are preserved exactly, so
//! `from_bytes(to_bytes(x)).to_bytes() == to_bytes(x)` — the
//! round-trip byte identity the hybrid tier's scrub/repair path
//! relies on. Decoding validates the checksum, the canonical chunk
//! ordering, and every container's invariants before any container is
//! materialized.

use crate::container::Container;
use crate::RoaringBitmap;

/// Current serialization format version.
pub const VERSION: u16 = 1;
/// Oldest version [`RoaringBitmap::from_bytes`] still decodes.
pub const MIN_VERSION: u16 = 1;

const MAGIC: &[u8; 4] = b"ROAR";
/// Offset where the CRC-covered region starts (magic, version, and the
/// checksum itself are excluded).
const CRC_START: usize = 10;
const WORDS: usize = 1024;

/// Decode failures for the `ROAR` byte format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RoarError {
    /// The buffer does not start with `ROAR`.
    BadMagic,
    /// The format version is newer than this build understands (or
    /// predates [`MIN_VERSION`]).
    UnsupportedVersion(
        /// The version found in the header.
        u16,
    ),
    /// The payload does not match its stored checksum.
    ChecksumMismatch {
        /// CRC stored in the header.
        expected: u32,
        /// CRC computed over the payload.
        actual: u32,
    },
    /// The buffer ended before the declared content.
    Truncated,
    /// A structural invariant failed (unordered chunks, a bad
    /// container kind, an unsorted array, overlapping runs, …).
    Malformed(
        /// Which invariant failed.
        &'static str,
    ),
}

impl std::fmt::Display for RoarError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoarError::BadMagic => write!(f, "not a ROAR byte stream"),
            RoarError::UnsupportedVersion(v) => write!(f, "unsupported ROAR version {v}"),
            RoarError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "ROAR checksum mismatch: stored {expected:#010x}, computed {actual:#010x}"
                )
            }
            RoarError::Truncated => write!(f, "ROAR byte stream truncated"),
            RoarError::Malformed(what) => write!(f, "malformed ROAR stream: {what}"),
        }
    }
}

impl std::error::Error for RoarError {}

/// CRC-32 (IEEE 802.3, reflected) with a compile-time table — the
/// same polynomial the `ab` index formats use.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut bit = 0;
            while bit < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                bit += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut crc = !0u32;
    for &b in data {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

impl RoaringBitmap {
    /// Serializes to the versioned, checksummed `ROAR` byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(CRC_START + 4 + self.size_bytes());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&[0u8; 4]); // crc placeholder
        out.extend_from_slice(&(self.chunks.len() as u32).to_le_bytes());
        for (key, c) in &self.chunks {
            out.extend_from_slice(&key.to_le_bytes());
            match c {
                Container::Array(vals) => {
                    out.push(0);
                    out.extend_from_slice(&(vals.len() as u32).to_le_bytes());
                    for v in vals {
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                }
                Container::Bitmap(words) => {
                    out.push(1);
                    out.extend_from_slice(&(c.len() as u32).to_le_bytes());
                    for w in words.iter() {
                        out.extend_from_slice(&w.to_le_bytes());
                    }
                }
                Container::Run(runs) => {
                    out.push(2);
                    out.extend_from_slice(&(runs.len() as u32).to_le_bytes());
                    for (s, e) in runs {
                        out.extend_from_slice(&s.to_le_bytes());
                        out.extend_from_slice(&e.to_le_bytes());
                    }
                }
            }
        }
        let crc = crc32(&out[CRC_START..]);
        out[6..10].copy_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes [`Self::to_bytes`] output, verifying the checksum and
    /// every structural invariant.
    pub fn from_bytes(data: &[u8]) -> Result<Self, RoarError> {
        if data.len() < CRC_START + 4 {
            return Err(
                if data.starts_with(MAGIC) || MAGIC.starts_with(&data[..data.len().min(4)]) {
                    RoarError::Truncated
                } else {
                    RoarError::BadMagic
                },
            );
        }
        if &data[..4] != MAGIC {
            return Err(RoarError::BadMagic);
        }
        let version = u16::from_le_bytes(data[4..6].try_into().expect("2 bytes"));
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(RoarError::UnsupportedVersion(version));
        }
        let expected = u32::from_le_bytes(data[6..10].try_into().expect("4 bytes"));
        let actual = crc32(&data[CRC_START..]);
        if expected != actual {
            return Err(RoarError::ChecksumMismatch { expected, actual });
        }
        let mut r = Reader {
            data,
            pos: CRC_START,
        };
        let num_chunks = r.u32()? as usize;
        let mut chunks: Vec<(u16, Container)> = Vec::with_capacity(num_chunks.min(1 << 16));
        for _ in 0..num_chunks {
            let key = r.u16()?;
            if let Some((prev, _)) = chunks.last() {
                if *prev >= key {
                    return Err(RoarError::Malformed("chunk keys not strictly ascending"));
                }
            }
            let kind = r.u8()?;
            let count = r.u32()? as usize;
            let container = match kind {
                0 => {
                    let mut vals = Vec::with_capacity(count.min(1 << 16));
                    let mut prev: Option<u16> = None;
                    for _ in 0..count {
                        let v = r.u16()?;
                        if prev.is_some_and(|p| p >= v) {
                            return Err(RoarError::Malformed("array not strictly ascending"));
                        }
                        prev = Some(v);
                        vals.push(v);
                    }
                    Container::Array(vals)
                }
                1 => {
                    let mut words = vec![0u64; WORDS].into_boxed_slice();
                    for w in words.iter_mut() {
                        *w = r.u64()?;
                    }
                    let c = Container::Bitmap(words);
                    if c.len() != count {
                        return Err(RoarError::Malformed("bitmap cardinality mismatch"));
                    }
                    c
                }
                2 => {
                    let mut runs = Vec::with_capacity(count.min(1 << 15));
                    let mut prev_end: Option<u16> = None;
                    for _ in 0..count {
                        let s = r.u16()?;
                        let e = r.u16()?;
                        if s > e {
                            return Err(RoarError::Malformed("run start past end"));
                        }
                        // Adjacent runs must be merged, so require a gap.
                        if prev_end.is_some_and(|p| p == u16::MAX || p + 1 >= s) {
                            return Err(RoarError::Malformed("runs overlap or touch"));
                        }
                        prev_end = Some(e);
                        runs.push((s, e));
                    }
                    Container::Run(runs)
                }
                _ => return Err(RoarError::Malformed("unknown container kind")),
            };
            if container.is_empty() {
                return Err(RoarError::Malformed("empty container"));
            }
            chunks.push((key, container));
        }
        Ok(RoaringBitmap { chunks })
    }
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], RoarError> {
        if self.pos + n > self.data.len() {
            return Err(RoarError::Truncated);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, RoarError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, RoarError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, RoarError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, RoarError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RoaringBitmap {
        let mut rb = RoaringBitmap::new();
        rb.insert_range(1000, 70_000); // bitmap + partial chunk
        for v in (0..500_000u32).step_by(977) {
            rb.insert(v);
        }
        rb
    }

    #[test]
    fn roundtrip_preserves_set_and_forms() {
        for optimized in [false, true] {
            let mut rb = sample();
            if optimized {
                rb.optimize();
            }
            let bytes = rb.to_bytes();
            let back = RoaringBitmap::from_bytes(&bytes).expect("decodes");
            assert_eq!(back, rb, "optimized={optimized}");
            assert_eq!(back.to_bytes(), bytes, "re-serialization byte identity");
        }
    }

    #[test]
    fn empty_bitmap_roundtrips() {
        let rb = RoaringBitmap::new();
        let bytes = rb.to_bytes();
        assert_eq!(bytes.len(), 14);
        assert_eq!(RoaringBitmap::from_bytes(&bytes).unwrap(), rb);
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert_eq!(RoaringBitmap::from_bytes(&bytes), Err(RoarError::BadMagic));
        let mut bytes = sample().to_bytes();
        bytes[4..6].copy_from_slice(&99u16.to_le_bytes());
        assert_eq!(
            RoaringBitmap::from_bytes(&bytes),
            Err(RoarError::UnsupportedVersion(99))
        );
    }

    #[test]
    fn corruption_is_caught_by_the_checksum() {
        let bytes = sample().to_bytes();
        for pos in (CRC_START..bytes.len()).step_by(61) {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x20;
            assert!(
                matches!(
                    RoaringBitmap::from_bytes(&bad),
                    Err(RoarError::ChecksumMismatch { .. })
                ),
                "flip at {pos} undetected"
            );
        }
    }

    #[test]
    fn truncation_never_panics() {
        let bytes = sample().to_bytes();
        for n in 0..bytes.len().min(64) {
            assert!(RoaringBitmap::from_bytes(&bytes[..n]).is_err());
        }
        for n in (0..bytes.len()).step_by(997) {
            assert!(RoaringBitmap::from_bytes(&bytes[..n]).is_err());
        }
    }

    #[test]
    fn structural_invariants_are_validated() {
        // Hand-build a stream with out-of-order array values and a
        // valid checksum: the structural check must still reject it.
        let mut body = Vec::new();
        body.extend_from_slice(&1u32.to_le_bytes()); // one chunk
        body.extend_from_slice(&0u16.to_le_bytes()); // key 0
        body.push(0); // array
        body.extend_from_slice(&2u32.to_le_bytes());
        body.extend_from_slice(&5u16.to_le_bytes());
        body.extend_from_slice(&3u16.to_le_bytes()); // descends!
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"ROAR");
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&crc32(&body).to_le_bytes());
        bytes.extend_from_slice(&body);
        assert_eq!(
            RoaringBitmap::from_bytes(&bytes),
            Err(RoarError::Malformed("array not strictly ascending"))
        );
    }

    #[test]
    fn crc_is_stable() {
        // Known-answer check so the polynomial can't silently drift.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
