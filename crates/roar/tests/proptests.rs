//! Property tests: the Roaring-style bitmap is semantically a set of
//! u32, across container promotions/demotions and chunk boundaries.

use proptest::prelude::*;
use roar::RoaringBitmap;
use std::collections::BTreeSet;

/// Values clustered near chunk boundaries plus random spread —
/// exercises both container forms and chunk splits.
fn values() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(
        prop_oneof![
            0u32..200_000,
            Just(65_535u32),
            Just(65_536u32),
            (0u32..5).prop_map(|i| u32::MAX - i),
        ],
        0..300,
    )
}

proptest! {
    #[test]
    fn insert_matches_btreeset(vals in values()) {
        let set: BTreeSet<u32> = vals.iter().copied().collect();
        let rb: RoaringBitmap = vals.iter().copied().collect();
        prop_assert_eq!(rb.len(), set.len());
        prop_assert_eq!(rb.iter().collect::<Vec<_>>(),
                        set.iter().copied().collect::<Vec<_>>());
        for &v in set.iter().take(50) {
            prop_assert!(rb.contains(v));
        }
    }

    #[test]
    fn remove_matches_btreeset(vals in values(), removals in values()) {
        let mut set: BTreeSet<u32> = vals.iter().copied().collect();
        let mut rb: RoaringBitmap = vals.iter().copied().collect();
        for &v in &removals {
            prop_assert_eq!(rb.remove(v), set.remove(&v), "value {}", v);
        }
        prop_assert_eq!(rb.iter().collect::<Vec<_>>(),
                        set.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn ops_match_setwise(a in values(), b in values()) {
        let sa: BTreeSet<u32> = a.iter().copied().collect();
        let sb: BTreeSet<u32> = b.iter().copied().collect();
        let ra: RoaringBitmap = a.iter().copied().collect();
        let rb: RoaringBitmap = b.iter().copied().collect();
        prop_assert_eq!(ra.and(&rb).iter().collect::<Vec<_>>(),
                        sa.intersection(&sb).copied().collect::<Vec<_>>());
        prop_assert_eq!(ra.or(&rb).iter().collect::<Vec<_>>(),
                        sa.union(&sb).copied().collect::<Vec<_>>());
        prop_assert_eq!(ra.andnot(&rb).iter().collect::<Vec<_>>(),
                        sa.difference(&sb).copied().collect::<Vec<_>>());
    }

    /// Dense chunks must round-trip through bitmap-container promotion.
    #[test]
    fn dense_chunk_roundtrip(start in 0u32..10_000, len in 4_000u32..9_000) {
        let vals: Vec<u32> = (start..start + len).collect();
        let rb: RoaringBitmap = vals.iter().copied().collect();
        prop_assert_eq!(rb.len(), len as usize);
        prop_assert_eq!(rb.iter().collect::<Vec<_>>(), vals);
    }
}
