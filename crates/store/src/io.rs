//! The fault-injectable syscall boundary for the write path.
//!
//! Every syscall the crash-safe writer issues goes through
//! [`SegmentIo`], so a chaos implementation (see `svc::chaos`'s
//! `ChaosSegmentIo`) can simulate `EIO`, short writes, bit flips, and
//! crashes at each point — the substrate of the crash-matrix test.
//! Production code uses [`RealIo`], which forwards to `std::fs`.
//!
//! The read path does not go through this trait: reads are served from
//! an mmap or pread (see [`crate::sys`]), and read-side damage is
//! modelled by corrupting the file itself — which is also what real
//! bit-rot looks like.

use std::fs::File;
use std::io;
use std::path::Path;

/// Write-path syscalls, one method per injection point. Methods map
/// 1:1 onto the chaos points `store.create`, `store.write`,
/// `store.sync_file`, `store.rename`, and `store.sync_dir`.
pub trait SegmentIo: Send + Sync {
    /// Creates (truncating) the temp file.
    fn create(&self, path: &Path) -> io::Result<File>;
    /// Writes the full image to the temp file.
    fn write_all(&self, file: &mut File, buf: &[u8]) -> io::Result<()>;
    /// Flushes the temp file's data and metadata to stable storage.
    fn sync_file(&self, file: &File) -> io::Result<()>;
    /// Atomically renames the temp file over the destination.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Flushes the directory entry (makes the rename durable).
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
}

/// The production [`SegmentIo`]: plain `std::fs` syscalls.
#[derive(Clone, Copy, Debug, Default)]
pub struct RealIo;

impl SegmentIo for RealIo {
    fn create(&self, path: &Path) -> io::Result<File> {
        File::create(path)
    }

    fn write_all(&self, file: &mut File, buf: &[u8]) -> io::Result<()> {
        use io::Write;
        file.write_all(buf)
    }

    fn sync_file(&self, file: &File) -> io::Result<()> {
        file.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // On Unix a directory opens like a file and fsyncs its
        // entries; elsewhere the rename is as durable as it gets.
        #[cfg(unix)]
        {
            File::open(dir)?.sync_all()
        }
        #[cfg(not(unix))]
        {
            let _ = dir;
            Ok(())
        }
    }
}
