//! Opening, verifying, and scrubbing segment stores.
//!
//! [`Store::open`] is strict: header, page-CRC table, every payload
//! page, and the payload envelope must all verify before any caller
//! sees a byte — a torn or rotted file is a typed [`StoreError`],
//! never a wrong answer. Once open, the payload is served zero-copy
//! from the mapping ([`Store::payload`]).
//!
//! [`Store::scrub`] is the online re-verification pass: it re-reads
//! every page **from the file** (positioned reads, not the possibly
//! page-cache-served mapping buffer) and reports pages whose CRC no
//! longer matches the table captured at open, mapped back to the
//! shards whose payload bytes they cover. [`Store::audit`] is the
//! offline flavour for `abq store verify`: same sweep, but against a
//! file nobody has open.

use crate::format::{self, StoreHeader};
use crate::sys::{read_exact_at, SegmentMap};
use crate::StoreError;
use ab::SegmentExtent;
use std::fs::File;
use std::path::{Path, PathBuf};

/// Rejects a meta page whose padding (bytes past the checksummed
/// header) is nonzero — the one region no CRC covers, so it must hold
/// its written-as-zero value exactly.
fn check_meta_padding(meta: &[u8]) -> Result<(), StoreError> {
    if meta[format::HEADER_LEN..].iter().any(|&b| b != 0) {
        obs::counter!("store.page_crc_failures").inc();
        return Err(StoreError::PageCrc {
            page: 0,
            stored: 0,
            computed: ab::crc32(&meta[format::HEADER_LEN..]),
        });
    }
    Ok(())
}

/// Outcome of one full page sweep ([`Store::scrub`] / [`Store::audit`]).
#[derive(Clone, Debug)]
pub struct ScrubReport {
    /// Pages examined (meta + table + payload).
    pub pages_scanned: u64,
    /// Zero-based file page indexes that failed verification.
    pub bad_pages: Vec<u64>,
    /// Shards whose serialized bytes intersect a bad page. Damage to
    /// the meta or table pages cannot be attributed, so it implicates
    /// **every** shard (conservative, like the rest of the repo).
    pub bad_shards: Vec<usize>,
}

impl ScrubReport {
    /// Whether every page verified.
    pub fn clean(&self) -> bool {
        self.bad_pages.is_empty()
    }
}

/// An open, fully-verified segment store.
pub struct Store {
    file: File,
    map: SegmentMap,
    header: StoreHeader,
    /// Per-payload-page CRCs captured (and verified) at open.
    crcs: Vec<u32>,
    /// Meta + table pages as read at open — scrub compares against
    /// this trusted copy, so rot in *any* page region is caught.
    meta_image: Vec<u8>,
    extents: Vec<SegmentExtent>,
    path: PathBuf,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("path", &self.path)
            .field("backend", &self.map.backend())
            .field("header", &self.header)
            .field("shards", &self.extents.len())
            .finish_non_exhaustive()
    }
}

impl Store {
    /// Opens and fully verifies the store, preferring mmap.
    pub fn open(path: impl AsRef<Path>) -> Result<Store, StoreError> {
        Store::open_with(path, false)
    }

    /// [`Store::open`] with backend selection: `force_pread` skips
    /// mmap and reads the file into a heap buffer (the portable
    /// fallback), mirroring `net`'s `force_poll`.
    pub fn open_with(path: impl AsRef<Path>, force_pread: bool) -> Result<Store, StoreError> {
        let path = path.as_ref().to_path_buf();
        let file = File::open(&path)?;
        let file_len = file.metadata()?.len();
        let mut head = vec![0u8; format::HEADER_LEN.min(file_len as usize)];
        read_exact_at(&file, &mut head, 0)?;
        let header = format::decode_header(&head, Some(file_len))?;

        let map = SegmentMap::map(&file, file_len as usize, force_pread)?;
        let bytes = map.bytes();
        let ps = header.page_size as usize;
        let payload_off = header.payload_offset() as usize;
        let payload_len = header.payload_len as usize;

        // Nothing in a store file may rot silently: the meta page's
        // padding (the only region no checksum covers) must stay zero.
        check_meta_padding(&bytes[..ps])?;

        // Verify the page-CRC table against the header, then every
        // payload page against the table, then the whole payload.
        let table = &bytes[ps..payload_off];
        let computed = ab::crc32(table);
        if computed != header.table_crc {
            obs::counter!("store.page_crc_failures").inc();
            return Err(StoreError::TableCrc {
                stored: header.table_crc,
                computed,
            });
        }
        let crcs: Vec<u32> = (0..header.payload_pages() as usize)
            .map(|i| u32::from_le_bytes(table[4 * i..4 * i + 4].try_into().unwrap()))
            .collect();
        for (i, page) in bytes[payload_off..].chunks(ps).enumerate() {
            let computed = ab::crc32(page);
            if computed != crcs[i] {
                obs::counter!("store.page_crc_failures").inc();
                return Err(StoreError::PageCrc {
                    page: header.first_payload_page() + i as u64,
                    stored: crcs[i],
                    computed,
                });
            }
        }
        let payload = &bytes[payload_off..payload_off + payload_len];
        let computed = ab::crc32(payload);
        if computed != header.payload_crc {
            obs::counter!("store.page_crc_failures").inc();
            return Err(StoreError::PageCrc {
                page: header.first_payload_page(),
                stored: header.payload_crc,
                computed,
            });
        }
        let extents = ab::segment_extents(payload)?;
        if extents.len() != header.shard_count as usize {
            return Err(StoreError::Payload(ab::IoError::BadShardLayout));
        }
        let meta_image = bytes[..payload_off].to_vec();
        obs::counter!("store.opens").inc();
        Ok(Store {
            file,
            map,
            header,
            crcs,
            meta_image,
            extents,
            path,
        })
    }

    /// The verified `ABSH` payload, served from the mapping.
    pub fn payload(&self) -> &[u8] {
        let off = self.header.payload_offset() as usize;
        &self.map.bytes()[off..off + self.header.payload_len as usize]
    }

    /// The decoded header.
    pub fn header(&self) -> &StoreHeader {
        &self.header
    }

    /// Shard count recorded in the envelope.
    pub fn num_shards(&self) -> usize {
        self.extents.len()
    }

    /// Per-shard byte extents within the payload.
    pub fn extents(&self) -> &[SegmentExtent] {
        &self.extents
    }

    /// Which backend serves [`Store::payload`]: `"mmap"` or `"pread"`.
    pub fn backend(&self) -> &'static str {
        self.map.backend()
    }

    /// The path this store was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Re-verifies every page by re-reading the **file** (positioned
    /// reads): meta and table pages must still equal the trusted copy
    /// captured at open, payload pages must still hash to their table
    /// entries. Runs under live traffic — the mapping and the query
    /// path are untouched.
    pub fn scrub(&self) -> std::io::Result<ScrubReport> {
        let ps = self.header.page_size as usize;
        let payload_first = self.header.first_payload_page();
        let mut buf = vec![0u8; ps];
        let mut bad_pages = Vec::new();
        for page in 0..self.header.total_pages() {
            if read_exact_at(&self.file, &mut buf, page * ps as u64).is_err() {
                // Shrunk or unreadable page: damaged by definition.
                bad_pages.push(page);
                continue;
            }
            let ok = if page < payload_first {
                let off = page as usize * ps;
                buf[..] == self.meta_image[off..off + ps]
            } else {
                ab::crc32(&buf) == self.crcs[(page - payload_first) as usize]
            };
            if !ok {
                bad_pages.push(page);
            }
        }
        if !bad_pages.is_empty() {
            obs::counter!("store.scrub.crc_errors").add(bad_pages.len() as u64);
        }
        obs::counter!("store.scrub.pages").add(self.header.total_pages());
        Ok(self.report(bad_pages))
    }

    /// Maps bad file pages to implicated shards and packages a report.
    fn report(&self, bad_pages: Vec<u64>) -> ScrubReport {
        let ps = self.header.page_size as u64;
        let payload_first = self.header.first_payload_page();
        let mut bad_shards = Vec::new();
        for &page in &bad_pages {
            if page < payload_first {
                // Meta/table damage implicates everything.
                bad_shards = (0..self.extents.len()).collect();
                break;
            }
            let lo = (page - payload_first) * ps;
            let hi = lo + ps;
            for e in &self.extents {
                let (elo, ehi) = (e.offset as u64, (e.offset + e.len) as u64);
                if elo < hi && lo < ehi && !bad_shards.contains(&e.shard) {
                    bad_shards.push(e.shard);
                }
            }
        }
        bad_shards.sort_unstable();
        ScrubReport {
            pages_scanned: self.header.total_pages(),
            bad_pages,
            bad_shards,
        }
    }

    /// Offline page sweep for `abq store verify`: like [`Store::scrub`]
    /// but without requiring a clean open — only the header itself and
    /// the page-CRC table must verify; every damaged payload page is
    /// reported rather than failing fast.
    pub fn audit(path: impl AsRef<Path>) -> Result<(StoreHeader, ScrubReport), StoreError> {
        let file = File::open(path.as_ref())?;
        let file_len = file.metadata()?.len();
        let mut head = vec![0u8; format::HEADER_LEN.min(file_len as usize)];
        read_exact_at(&file, &mut head, 0)?;
        let header = format::decode_header(&head, Some(file_len))?;
        let ps = header.page_size as usize;

        let mut meta = vec![0u8; ps];
        read_exact_at(&file, &mut meta, 0)?;
        check_meta_padding(&meta)?;

        let mut table = vec![0u8; header.table_pages() as usize * ps];
        read_exact_at(&file, &mut table, ps as u64)?;
        let computed = ab::crc32(&table);
        if computed != header.table_crc {
            return Err(StoreError::TableCrc {
                stored: header.table_crc,
                computed,
            });
        }
        let crcs: Vec<u32> = (0..header.payload_pages() as usize)
            .map(|i| u32::from_le_bytes(table[4 * i..4 * i + 4].try_into().unwrap()))
            .collect();
        let payload_first = header.first_payload_page();
        let mut payload = vec![0u8; header.payload_pages() as usize * ps];
        read_exact_at(&file, &mut payload, payload_first * ps as u64)?;
        let mut bad_pages = Vec::new();
        for (i, page) in payload.chunks(ps).enumerate() {
            if ab::crc32(page) != crcs[i] {
                bad_pages.push(payload_first + i as u64);
            }
        }
        // Attribute damage to shards where the envelope still walks;
        // implicate every shard when it doesn't.
        let extents = ab::segment_extents(&payload[..header.payload_len as usize]).ok();
        let mut bad_shards = Vec::new();
        for &page in &bad_pages {
            let lo = (page - payload_first) * ps as u64;
            let hi = lo + ps as u64;
            match &extents {
                None => {
                    bad_shards = (0..header.shard_count as usize).collect();
                    break;
                }
                Some(extents) => {
                    for e in extents {
                        let (elo, ehi) = (e.offset as u64, (e.offset + e.len) as u64);
                        if elo < hi && lo < ehi && !bad_shards.contains(&e.shard) {
                            bad_shards.push(e.shard);
                        }
                    }
                }
            }
        }
        bad_shards.sort_unstable();
        Ok((
            header,
            ScrubReport {
                pages_scanned: header.total_pages(),
                bad_pages,
                bad_shards,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::RealIo;
    use crate::tests::{sample_payload, tmpdir};
    use crate::writer::write;
    use std::io::{Seek, SeekFrom, Write};

    fn flip_byte(path: &Path, offset: u64, xor: u8) {
        let mut f = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .unwrap();
        let mut b = [0u8; 1];
        crate::sys::read_exact_at(&f, &mut b, offset).unwrap();
        f.seek(SeekFrom::Start(offset)).unwrap();
        f.write_all(&[b[0] ^ xor]).unwrap();
        f.sync_all().unwrap();
    }

    #[test]
    fn open_verifies_and_serves_both_backends() {
        let dir = tmpdir("reader");
        let path = dir.join("idx.seg");
        let payload = sample_payload(500, 4);
        write(&path, &payload, 256, &RealIo).unwrap();
        for force_pread in [false, true] {
            let st = Store::open_with(&path, force_pread).unwrap();
            assert_eq!(st.payload(), &payload[..]);
            assert_eq!(st.num_shards(), 4);
            assert_eq!(st.extents().len(), 4);
            assert!(st.scrub().unwrap().clean());
            if force_pread {
                assert_eq!(st.backend(), "pread");
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn payload_flip_fails_open_with_page_error() {
        let dir = tmpdir("reader-flip");
        let path = dir.join("idx.seg");
        let payload = sample_payload(400, 3);
        write(&path, &payload, 128, &RealIo).unwrap();
        let st = Store::open(&path).unwrap();
        let victim = st.header().payload_offset() + st.header().payload_len / 2;
        drop(st);
        flip_byte(&path, victim, 0x40);
        match Store::open(&path) {
            Err(StoreError::PageCrc { page, .. }) => {
                assert!(page >= 2, "payload pages start after meta+table");
            }
            Err(other) => panic!("expected PageCrc, got {other:?}"),
            Ok(_) => panic!("open must fail on a flipped payload byte"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scrub_detects_rot_under_a_live_store_and_names_the_shard() {
        let dir = tmpdir("reader-scrub");
        let path = dir.join("idx.seg");
        let payload = sample_payload(600, 4);
        write(&path, &payload, 128, &RealIo).unwrap();
        let st = Store::open(&path).unwrap();
        assert!(st.scrub().unwrap().clean());

        // Rot one byte in the middle of shard 2's extent.
        let e = st.extents()[2];
        let victim = st.header().payload_offset() + (e.offset + e.len / 2) as u64;
        flip_byte(&path, victim, 0x01);
        let report = st.scrub().unwrap();
        assert_eq!(report.bad_pages.len(), 1);
        assert!(report.bad_shards.contains(&2), "{report:?}");
        assert!(report.bad_shards.len() <= 2, "one page spans ≤ 2 shards");

        // Meta-page rot implicates every shard.
        flip_byte(&path, victim, 0x01); // restore payload
        assert!(st.scrub().unwrap().clean());
        flip_byte(&path, 40, 0xFF); // inside meta page padding
        let report = st.scrub().unwrap();
        assert_eq!(report.bad_pages, vec![0]);
        assert_eq!(report.bad_shards, vec![0, 1, 2, 3]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn audit_reports_damage_without_a_clean_open() {
        let dir = tmpdir("reader-audit");
        let path = dir.join("idx.seg");
        let payload = sample_payload(500, 4);
        write(&path, &payload, 128, &RealIo).unwrap();
        let (h, report) = Store::audit(&path).unwrap();
        assert!(report.clean());
        assert_eq!(h.shard_count, 4);

        let victim = h.payload_offset() + h.payload_len - 2;
        flip_byte(&path, victim, 0x80);
        let (_, report) = Store::audit(&path).unwrap();
        assert_eq!(report.bad_pages.len(), 1);
        assert_eq!(report.bad_shards, vec![3], "last bytes = last shard");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncation_is_typed() {
        let dir = tmpdir("reader-trunc");
        let path = dir.join("idx.seg");
        write(&path, &sample_payload(300, 2), 128, &RealIo).unwrap();
        let len = std::fs::metadata(&path).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 128).unwrap();
        drop(f);
        assert!(matches!(
            Store::open(&path),
            Err(StoreError::Truncated { .. })
        ));
        assert!(matches!(
            Store::audit(&path),
            Err(StoreError::Truncated { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
