//! The crash-safe write protocol.
//!
//! A store file is never modified in place. [`write()`] builds the full
//! page image in memory and then runs the classic atomic-replace
//! sequence, every step through the caller's [`SegmentIo`]:
//!
//! 1. create `<name>.tmp` in the destination directory (same
//!    filesystem, so the rename is atomic);
//! 2. write the complete image;
//! 3. `fsync` the temp file — its bytes are durable before any name
//!    points at them;
//! 4. `rename(2)` it over the destination — atomic: every observer
//!    sees either the old complete file or the new complete file;
//! 5. `fsync` the directory — makes the rename itself durable.
//!
//! A crash (real or injected) at any point leaves the destination
//! either untouched (steps 1–4 incomplete) or fully replaced (rename
//! landed); the only residue is a stale `.tmp`, which the next write
//! clobbers. This is the invariant the crash-matrix test drives.

use crate::format;
use crate::io::SegmentIo;
use crate::StoreError;
use std::path::Path;

/// Suffix of the scratch file used for atomic replacement.
pub const TMP_SUFFIX: &str = ".tmp";

fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(TMP_SUFFIX);
    path.with_file_name(name)
}

/// Atomically (re)writes the store at `path` with `payload` (a
/// well-formed `ABSH` envelope) paged at `page_size`. On error the
/// destination is untouched unless the rename already landed — in
/// which case the new file is complete and valid.
pub fn write(
    path: &Path,
    payload: &[u8],
    page_size: u32,
    io: &dyn SegmentIo,
) -> Result<(), StoreError> {
    let started = std::time::Instant::now();
    let (image, header) = format::encode(payload, page_size)?;
    let tmp = tmp_path(path);
    // A stale temp from an earlier crashed write is dead weight;
    // create() truncates, but remove it explicitly so a *failed*
    // create can't be confused with older bytes.
    let _ = std::fs::remove_file(&tmp);

    let mut file = io.create(&tmp)?;
    io.write_all(&mut file, &image)?;
    io.sync_file(&file)?;
    drop(file);
    io.rename(&tmp, path)?;
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        io.sync_dir(dir)?;
    }

    obs::counter!("store.writes").inc();
    obs::counter!("store.pages_written").add(header.total_pages());
    obs::histogram!("store.write_us").record(started.elapsed().as_micros() as u64);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::RealIo;
    use crate::tests::{sample_payload, tmpdir};
    use crate::Store;

    #[test]
    fn write_then_open_roundtrips() {
        let dir = tmpdir("writer");
        let path = dir.join("idx.seg");
        let payload = sample_payload(300, 4);
        write(&path, &payload, 128, &RealIo).unwrap();
        let st = Store::open(&path).unwrap();
        assert_eq!(st.payload(), &payload[..]);
        assert_eq!(st.num_shards(), 4);
        // No temp residue after a clean write.
        assert!(!tmp_path(&path).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rewrite_replaces_atomically_and_clears_stale_tmp() {
        let dir = tmpdir("writer-replace");
        let path = dir.join("idx.seg");
        let old = sample_payload(200, 2);
        let new = sample_payload(400, 4);
        write(&path, &old, 128, &RealIo).unwrap();
        // Plant a stale temp as if a previous writer died post-create.
        std::fs::write(tmp_path(&path), b"stale garbage").unwrap();
        write(&path, &new, 128, &RealIo).unwrap();
        let st = Store::open(&path).unwrap();
        assert_eq!(st.payload(), &new[..]);
        assert!(!tmp_path(&path).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_payload_never_touches_the_destination() {
        let dir = tmpdir("writer-garbage");
        let path = dir.join("idx.seg");
        let good = sample_payload(100, 2);
        write(&path, &good, 128, &RealIo).unwrap();
        assert!(matches!(
            write(&path, b"not an envelope", 128, &RealIo),
            Err(StoreError::Payload(_))
        ));
        assert_eq!(Store::open(&path).unwrap().payload(), &good[..]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
