//! # Crash-safe page-aligned segment store
//!
//! The AB layout is deterministic and directly addressable (see the
//! `ab` crate), which makes it servable straight from disk — but a
//! bare `ABSH` file has one checksum granularity (the shard) and no
//! crash story: a torn write mid-file destroys everything. This crate
//! wraps an `ABSH` payload in an `ABPG` **segment file**:
//!
//! * the payload is split into fixed-size pages, each with its own
//!   CRC-32 in a dedicated table, so damage is localised to a page and
//!   mapped back to the shard(s) whose bytes it covers ([`Store::scrub`]);
//! * the write path ([`write()`]) is crash-safe *by construction*: the
//!   full image is written to a sibling temp file, fsynced, atomically
//!   renamed over the destination, and the directory fsynced — a crash
//!   at any point leaves either the complete old file or the complete
//!   new file, never a torn state;
//! * every write-path syscall goes through the [`SegmentIo`] trait, so
//!   a fault-injecting implementation (see `svc::chaos`) can simulate
//!   `EIO`, short writes, bit flips, and crashes at each point;
//! * the read path ([`Store::open`]) serves the payload from a
//!   read-only `mmap(2)` via hand-rolled FFI (zero-copy decode), with
//!   a portable `pread`-style fallback selectable like the net
//!   crate's `force_poll` ([`Store::open_with`]).
//!
//! Module map: [`mod@format`] (on-disk layout), [`io`] ([`SegmentIo`] and
//! the real-syscall [`RealIo`]), [`sys`] (mmap FFI + fallback),
//! [`writer`] (crash-safe write protocol), [`reader`] ([`Store`],
//! scrubbing, audit).
//!
//! ## Quick start
//!
//! ```
//! use ab::{AbConfig, AbIndex, Level};
//! use bitmap::{BinnedColumn, BinnedTable};
//!
//! let dir = std::env::temp_dir().join(format!("store-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! let table = BinnedTable::new(vec![BinnedColumn::new(
//!     "temp",
//!     (0..256).map(|i| (i % 8) as u32).collect(),
//!     8,
//! )]);
//! let index = AbIndex::build(&table, &AbConfig::new(Level::PerAttribute).with_alpha(8));
//! let payload = ab::shards_to_bytes(&[(0, &index)]);
//!
//! let path = dir.join("doc.seg");
//! store::write(&path, &payload, store::DEFAULT_PAGE_SIZE, &store::RealIo).unwrap();
//! let st = store::Store::open(&path).unwrap();
//! assert_eq!(st.payload(), &payload[..]);      // bit-identical round trip
//! assert!(st.scrub().unwrap().clean());        // every page CRC verifies
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![warn(missing_docs)]

pub mod format;
pub mod io;
pub mod reader;
pub mod sys;
pub mod writer;

pub use format::{StoreHeader, DEFAULT_PAGE_SIZE, MAX_PAGE_SIZE, MIN_PAGE_SIZE};
pub use io::{RealIo, SegmentIo};
pub use reader::{ScrubReport, Store};
pub use sys::SegmentMap;
pub use writer::write;

/// Why a segment-store operation failed. I/O faults (including
/// injected ones) surface as [`StoreError::Io`]; every structural
/// problem has its own typed variant so callers can distinguish "the
/// file is not a store" from "the file is a store with bit-rot".
#[derive(Debug)]
pub enum StoreError {
    /// A syscall failed (or a fault-injection rule simulated one).
    Io(std::io::Error),
    /// Input does not start with the `ABPG` magic.
    BadMagic,
    /// Store format version not understood by this build.
    UnsupportedVersion(u16),
    /// Declared page size is not a power of two in
    /// [`MIN_PAGE_SIZE`]`..=`[`MAX_PAGE_SIZE`].
    BadPageSize(u32),
    /// The file is shorter (or longer) than the header demands.
    Truncated {
        /// Byte length the header implies.
        expected: u64,
        /// Byte length actually present.
        actual: u64,
    },
    /// The meta page's own CRC-32 does not verify.
    HeaderCrc {
        /// Checksum recorded at write time.
        stored: u32,
        /// Checksum recomputed over the received header.
        computed: u32,
    },
    /// The page-CRC table does not hash to the checksum recorded in
    /// the header — the table itself rotted.
    TableCrc {
        /// Checksum recorded at write time.
        stored: u32,
        /// Checksum recomputed over the received table.
        computed: u32,
    },
    /// One payload page does not hash to its table entry.
    PageCrc {
        /// Zero-based page index within the file.
        page: u64,
        /// Checksum recorded at write time.
        stored: u32,
        /// Checksum recomputed over the received page.
        computed: u32,
    },
    /// The payload itself is not a well-formed `ABSH` envelope.
    Payload(ab::IoError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io: {e}"),
            StoreError::BadMagic => write!(f, "not a segment store (bad magic)"),
            StoreError::UnsupportedVersion(v) => write!(f, "unsupported store version {v}"),
            StoreError::BadPageSize(p) => write!(f, "invalid page size {p}"),
            StoreError::Truncated { expected, actual } => {
                write!(
                    f,
                    "store truncated: expected {expected} bytes, got {actual}"
                )
            }
            StoreError::HeaderCrc { stored, computed } => write!(
                f,
                "header checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            StoreError::TableCrc { stored, computed } => write!(
                f,
                "page-CRC table checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            StoreError::PageCrc {
                page,
                stored,
                computed,
            } => write!(
                f,
                "page {page} checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            StoreError::Payload(e) => write!(f, "payload: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Payload(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<ab::IoError> for StoreError {
    fn from(e: ab::IoError) -> Self {
        StoreError::Payload(e)
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use ab::{AbConfig, AbIndex, Level};
    use bitmap::{BinnedColumn, BinnedTable};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A deterministic table whose content depends on `rows`, so two
    /// differently-sized payloads are never byte-identical.
    pub fn sample_table(rows: usize) -> BinnedTable {
        BinnedTable::new(vec![
            BinnedColumn::new("a", (0..rows).map(|i| (i % 5) as u32).collect(), 5),
            BinnedColumn::new("b", (0..rows).map(|i| ((i * 7) % 3) as u32).collect(), 3),
        ])
    }

    /// A sharded `ABSH` payload over [`sample_table`].
    pub fn sample_payload(rows: usize, shards: usize) -> Vec<u8> {
        let table = sample_table(rows);
        let cfg = AbConfig::new(Level::PerAttribute).with_alpha(8);
        let segments: Vec<(u64, AbIndex)> = ab::shard_ranges(rows, shards)
            .into_iter()
            .map(|r| (r.start as u64, AbIndex::build_row_range(&table, &cfg, r)))
            .collect();
        let refs: Vec<(u64, &AbIndex)> = segments.iter().map(|(s, i)| (*s, i)).collect();
        ab::shards_to_bytes(&refs)
    }

    /// A fresh per-test scratch directory (unique per process + call).
    pub fn tmpdir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ab-store-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }
}
