//! Read-only file mapping: `mmap(2)` on Unix via hand-rolled
//! `extern "C"` declarations (the same zero-dependency approach as
//! `net::sys`), with a portable heap-buffer fallback that reads the
//! file with positioned reads — selectable everywhere via
//! `force_pread`, exactly like the net crate's `force_poll`, so both
//! backends stay honest on Unix CI.
//!
//! The mapping is `PROT_READ` + `MAP_SHARED`: the store never writes
//! through it, and a shared mapping observes subsequent file writes —
//! which is what lets the scrubber (and tests that rot bytes on disk)
//! see damage appear under a live mapping.

use std::fs::File;
use std::io;

/// A read-only view of an open file: either a real memory mapping or
/// a heap buffer filled by positioned reads.
pub enum SegmentMap {
    /// `mmap(2)` (Unix only) — zero-copy, shares the page cache.
    #[cfg(unix)]
    Mmap(mmap::Mapping),
    /// Portable fallback: the file read into a heap buffer.
    Buf(Vec<u8>),
}

impl SegmentMap {
    /// Maps `len` bytes of `file` from offset 0. `force_pread` selects
    /// the heap-buffer backend even where mmap is available.
    pub fn map(file: &File, len: usize, force_pread: bool) -> io::Result<SegmentMap> {
        #[cfg(unix)]
        {
            if !force_pread && len > 0 {
                return Ok(SegmentMap::Mmap(mmap::Mapping::new(file, len)?));
            }
        }
        let _ = force_pread;
        let mut buf = vec![0u8; len];
        read_exact_at(file, &mut buf, 0)?;
        Ok(SegmentMap::Buf(buf))
    }

    /// Backend name, for logs and tests.
    pub fn backend(&self) -> &'static str {
        match self {
            #[cfg(unix)]
            SegmentMap::Mmap(_) => "mmap",
            SegmentMap::Buf(_) => "pread",
        }
    }

    /// The mapped bytes.
    pub fn bytes(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            SegmentMap::Mmap(m) => m.bytes(),
            SegmentMap::Buf(b) => b,
        }
    }
}

/// Positioned read of `buf.len()` bytes at `offset` — `pread(2)` on
/// Unix (no seek, safe under concurrent readers), seek + read
/// elsewhere.
pub fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        file.read_exact_at(buf, offset)
    }
    #[cfg(not(unix))]
    {
        use std::io::{Read, Seek, SeekFrom};
        let mut f = file.try_clone()?;
        f.seek(SeekFrom::Start(offset))?;
        f.read_exact(buf)
    }
}

/// The Unix mmap backend.
#[cfg(unix)]
pub mod mmap {
    use std::fs::File;
    use std::io;
    use std::os::fd::AsRawFd;
    use std::os::raw::{c_int, c_void};

    const PROT_READ: c_int = 0x1;
    const MAP_SHARED: c_int = 0x01;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    /// An owned read-only `MAP_SHARED` mapping, unmapped on drop.
    pub struct Mapping {
        ptr: *mut c_void,
        len: usize,
    }

    // The mapping is immutable from this process and the pointer is
    // exclusively owned: sharing &Mapping across threads is reading
    // `&[u8]`.
    unsafe impl Send for Mapping {}
    unsafe impl Sync for Mapping {}

    impl Mapping {
        pub(super) fn new(file: &File, len: usize) -> io::Result<Mapping> {
            debug_assert!(len > 0, "mmap of zero bytes is an error by spec");
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_SHARED,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Mapping { ptr, len })
        }

        /// The mapped bytes.
        pub fn bytes(&self) -> &[u8] {
            // SAFETY: ptr..ptr+len is a live PROT_READ mapping for
            // the lifetime of self.
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            unsafe { munmap(self.ptr, self.len) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::tmpdir;

    #[test]
    fn both_backends_see_identical_bytes() {
        let dir = tmpdir("sys");
        let path = dir.join("raw.bin");
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        std::fs::write(&path, &data).unwrap();
        let file = File::open(&path).unwrap();

        let pread = SegmentMap::map(&file, data.len(), true).unwrap();
        assert_eq!(pread.backend(), "pread");
        assert_eq!(pread.bytes(), &data[..]);

        #[cfg(unix)]
        {
            let mapped = SegmentMap::map(&file, data.len(), false).unwrap();
            assert_eq!(mapped.backend(), "mmap");
            assert_eq!(mapped.bytes(), pread.bytes());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn shared_mapping_observes_file_writes() {
        let dir = tmpdir("sys-shared");
        let path = dir.join("mut.bin");
        std::fs::write(&path, vec![0u8; 4096]).unwrap();
        let file = File::open(&path).unwrap();
        let map = SegmentMap::map(&file, 4096, false).unwrap();
        assert_eq!(map.bytes()[100], 0);

        // Rot a byte through a separate writable handle: a MAP_SHARED
        // mapping must observe it (this is what lets the scrubber
        // detect on-disk damage under a live mapping).
        use std::io::{Seek, SeekFrom, Write};
        let mut w = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        w.seek(SeekFrom::Start(100)).unwrap();
        w.write_all(&[0xAB]).unwrap();
        w.sync_all().unwrap();
        assert_eq!(map.bytes()[100], 0xAB);
        drop(map);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_exact_at_reads_the_middle() {
        let dir = tmpdir("sys-pread");
        let path = dir.join("mid.bin");
        std::fs::write(&path, (0u8..=255).collect::<Vec<u8>>()).unwrap();
        let file = File::open(&path).unwrap();
        let mut buf = [0u8; 4];
        read_exact_at(&file, &mut buf, 100).unwrap();
        assert_eq!(buf, [100, 101, 102, 103]);
        // Past-EOF reads fail instead of short-reading.
        assert!(read_exact_at(&file, &mut buf, 254).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
