//! The `ABPG` on-disk layout (see DESIGN §17 for the rationale).
//!
//! A segment file is a whole number of fixed-size pages:
//!
//! ```text
//! page 0                meta page:
//!   off  0  magic "ABPG"
//!   off  4  version      u16  (= 3; 1 and 2 accepted on read)
//!   off  6  page_size    u32  (power of two, 64..=1 MiB)
//!   off 10  payload_len  u64  (exact ABSH byte length)
//!   off 18  payload_crc  u32  (CRC-32 of the whole payload)
//!   off 22  table_crc    u32  (CRC-32 of the page-CRC table bytes)
//!   off 26  shard_count  u32  (cached from the ABSH envelope)
//!   off 30  header_crc   u32  (CRC-32 of bytes [0..30))
//!   ...zero padding to page_size
//! pages 1 .. 1+T        page-CRC table: one little-endian u32 per
//!                       payload page, zero-padded to page boundary
//! pages 1+T ..          payload pages: the raw ABSH bytes, final
//!                       page zero-padded
//! ```
//!
//! Payload pages carry **no** inline metadata — the payload is stored
//! byte-identical and page-aligned, so an mmap of the file yields the
//! `ABSH` envelope as one contiguous slice (`Store::payload`) with
//! zero copies, and any page can be re-verified independently against
//! its table entry. All integers are little-endian, CRC-32 is
//! [`ab::crc32`] (IEEE), matching the rest of the repo's formats.

use crate::StoreError;

/// Store magic: **A**pproximate **B**itmap **P**a**G**ed.
pub const MAGIC: &[u8; 4] = b"ABPG";
/// Current store format version. Version 3 segments may carry `ABIX`
/// v4 payloads whose pages include the hybrid exact tier's Roaring
/// containers (each a self-checking `ROAR` stream, so the scrubber
/// can quarantine one damaged container and the service rebuild it
/// bit-identically). Version 2 (pyramid-era) and version 1
/// (pre-pyramid) files are still readable — missing tiers are rebuilt
/// at open when requested.
pub const VERSION: u16 = 3;
/// Oldest version this reader still accepts.
pub const MIN_VERSION: u16 = 1;
/// Fixed byte length of the meaningful meta-page prefix.
pub const HEADER_LEN: usize = 34;

/// Default page size: one common 4 KiB filesystem block.
pub const DEFAULT_PAGE_SIZE: u32 = 4096;
/// Smallest accepted page size (tests use small pages to exercise
/// many-page files on tiny datasets).
pub const MIN_PAGE_SIZE: u32 = 64;
/// Largest accepted page size.
pub const MAX_PAGE_SIZE: u32 = 1 << 20;

/// Whether `page_size` is acceptable for [`encode`]/decode.
pub fn valid_page_size(page_size: u32) -> bool {
    page_size.is_power_of_two() && (MIN_PAGE_SIZE..=MAX_PAGE_SIZE).contains(&page_size)
}

/// The decoded meta page plus the derived page geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreHeader {
    /// Store format version.
    pub version: u16,
    /// Page size in bytes.
    pub page_size: u32,
    /// Exact payload (`ABSH`) byte length.
    pub payload_len: u64,
    /// CRC-32 over the whole payload.
    pub payload_crc: u32,
    /// CRC-32 over the page-CRC table bytes.
    pub table_crc: u32,
    /// Shard count cached from the envelope.
    pub shard_count: u32,
}

impl StoreHeader {
    /// Number of payload pages.
    pub fn payload_pages(&self) -> u64 {
        let ps = self.page_size as u64;
        self.payload_len.div_ceil(ps)
    }

    /// Number of pages holding the page-CRC table.
    pub fn table_pages(&self) -> u64 {
        let ps = self.page_size as u64;
        (self.payload_pages() * 4).div_ceil(ps).max(1)
    }

    /// Zero-based index of the first payload page.
    pub fn first_payload_page(&self) -> u64 {
        1 + self.table_pages()
    }

    /// Total pages in the file: meta + table + payload.
    pub fn total_pages(&self) -> u64 {
        self.first_payload_page() + self.payload_pages()
    }

    /// Exact file length in bytes.
    pub fn file_len(&self) -> u64 {
        self.total_pages() * self.page_size as u64
    }

    /// Byte offset of the first payload byte.
    pub fn payload_offset(&self) -> u64 {
        self.first_payload_page() * self.page_size as u64
    }
}

/// Encodes a complete store image for `payload` in memory. The
/// payload must be a well-formed `ABSH` envelope (the writer refuses
/// to persist garbage) and `page_size` must satisfy
/// [`valid_page_size`]. Returns the image and its header.
pub fn encode(payload: &[u8], page_size: u32) -> Result<(Vec<u8>, StoreHeader), StoreError> {
    if !valid_page_size(page_size) {
        return Err(StoreError::BadPageSize(page_size));
    }
    let extents = ab::segment_extents(payload)?;
    let header = StoreHeader {
        version: VERSION,
        page_size,
        payload_len: payload.len() as u64,
        payload_crc: ab::crc32(payload),
        table_crc: 0, // patched below
        shard_count: extents.len() as u32,
    };
    let ps = page_size as usize;
    let mut image = vec![0u8; header.file_len() as usize];

    // Payload pages (zero padding already in place).
    let payload_off = header.payload_offset() as usize;
    image[payload_off..payload_off + payload.len()].copy_from_slice(payload);

    // Page-CRC table: the CRC of each payload page *including* its
    // zero padding, so verification never needs the exact tail length.
    let table_off = ps;
    let (head, payload_pages) = image.split_at_mut(payload_off);
    for (i, page) in payload_pages.chunks(ps).enumerate() {
        let crc = ab::crc32(page);
        head[table_off + 4 * i..table_off + 4 * i + 4].copy_from_slice(&crc.to_le_bytes());
    }
    let table_len = header.table_pages() as usize * ps;
    let table_crc = ab::crc32(&image[table_off..table_off + table_len]);
    let header = StoreHeader {
        table_crc,
        ..header
    };

    // Meta page last, once every checksum is known.
    image[0..4].copy_from_slice(MAGIC);
    image[4..6].copy_from_slice(&header.version.to_le_bytes());
    image[6..10].copy_from_slice(&header.page_size.to_le_bytes());
    image[10..18].copy_from_slice(&header.payload_len.to_le_bytes());
    image[18..22].copy_from_slice(&header.payload_crc.to_le_bytes());
    image[22..26].copy_from_slice(&header.table_crc.to_le_bytes());
    image[26..30].copy_from_slice(&header.shard_count.to_le_bytes());
    let header_crc = ab::crc32(&image[0..30]);
    image[30..34].copy_from_slice(&header_crc.to_le_bytes());

    Ok((image, header))
}

/// Decodes and validates a meta page. `file_len`, when known, is
/// checked against the length the header implies — a truncated or
/// grown file is typed damage, not a decode surprise.
pub fn decode_header(meta: &[u8], file_len: Option<u64>) -> Result<StoreHeader, StoreError> {
    if meta.len() < HEADER_LEN {
        return Err(StoreError::Truncated {
            expected: HEADER_LEN as u64,
            actual: meta.len() as u64,
        });
    }
    if &meta[0..4] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = u16::from_le_bytes([meta[4], meta[5]]);
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(StoreError::UnsupportedVersion(version));
    }
    let stored = u32::from_le_bytes(meta[30..34].try_into().unwrap());
    let computed = ab::crc32(&meta[0..30]);
    if stored != computed {
        obs::counter!("store.header_crc_failures").inc();
        return Err(StoreError::HeaderCrc { stored, computed });
    }
    let page_size = u32::from_le_bytes(meta[6..10].try_into().unwrap());
    if !valid_page_size(page_size) {
        return Err(StoreError::BadPageSize(page_size));
    }
    let header = StoreHeader {
        version,
        page_size,
        payload_len: u64::from_le_bytes(meta[10..18].try_into().unwrap()),
        payload_crc: u32::from_le_bytes(meta[18..22].try_into().unwrap()),
        table_crc: u32::from_le_bytes(meta[22..26].try_into().unwrap()),
        shard_count: u32::from_le_bytes(meta[26..30].try_into().unwrap()),
    };
    if meta.len() < page_size as usize && file_len.is_none() {
        return Err(StoreError::Truncated {
            expected: page_size as u64,
            actual: meta.len() as u64,
        });
    }
    if let Some(actual) = file_len {
        let expected = header.file_len();
        if actual != expected {
            return Err(StoreError::Truncated { expected, actual });
        }
    }
    Ok(header)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::sample_payload;

    #[test]
    fn geometry_is_consistent() {
        let payload = sample_payload(200, 3);
        let (image, h) = encode(&payload, 128).unwrap();
        assert_eq!(image.len() as u64, h.file_len());
        assert_eq!(image.len() % 128, 0);
        assert_eq!(h.payload_len as usize, payload.len());
        assert_eq!(h.payload_pages(), (payload.len() as u64).div_ceil(128));
        assert_eq!(
            h.table_pages(),
            (h.payload_pages() * 4).div_ceil(128).max(1)
        );
        assert_eq!(
            &image[h.payload_offset() as usize..h.payload_offset() as usize + payload.len()],
            &payload[..]
        );
        // The decoded header round-trips.
        let back = decode_header(&image[..h.page_size as usize], Some(image.len() as u64)).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn page_sizes_are_validated() {
        let payload = sample_payload(64, 2);
        assert!(matches!(
            encode(&payload, 100),
            Err(StoreError::BadPageSize(100))
        ));
        assert!(matches!(
            encode(&payload, 32),
            Err(StoreError::BadPageSize(32))
        ));
        assert!(encode(&payload, MIN_PAGE_SIZE).is_ok());
        assert!(encode(&payload, DEFAULT_PAGE_SIZE).is_ok());
    }

    #[test]
    fn garbage_payload_refused() {
        assert!(matches!(
            encode(b"this is not an ABSH envelope....", 64),
            Err(StoreError::Payload(_))
        ));
    }

    #[test]
    fn old_version_headers_still_decode() {
        let payload = sample_payload(100, 2);
        let (image, h) = encode(&payload, 64).unwrap();
        // Rewrite the meta page as a v1 (pre-pyramid) and v2
        // (pre-hybrid) header and reseal the header CRC: readers must
        // keep accepting both.
        for old in [1u16, 2] {
            let mut meta = image[..64].to_vec();
            meta[4..6].copy_from_slice(&old.to_le_bytes());
            let crc = ab::crc32(&meta[0..30]);
            meta[30..34].copy_from_slice(&crc.to_le_bytes());
            let back = decode_header(&meta, Some(image.len() as u64)).unwrap();
            assert_eq!(back.version, old);
            assert_eq!(back.payload_len, h.payload_len);
        }
        // Version 0 and future versions stay typed errors.
        for v in [0u16, VERSION + 1] {
            let mut bad = image[..64].to_vec();
            bad[4..6].copy_from_slice(&v.to_le_bytes());
            let crc = ab::crc32(&bad[0..30]);
            bad[30..34].copy_from_slice(&crc.to_le_bytes());
            assert!(matches!(
                decode_header(&bad, Some(image.len() as u64)),
                Err(StoreError::UnsupportedVersion(got)) if got == v
            ));
        }
    }

    #[test]
    fn header_damage_is_typed() {
        let payload = sample_payload(100, 2);
        let (image, h) = encode(&payload, 64).unwrap();
        let meta = &image[..64];
        let flen = Some(image.len() as u64);

        let mut bad = meta.to_vec();
        bad[0] ^= 0xFF;
        assert!(matches!(
            decode_header(&bad, flen),
            Err(StoreError::BadMagic)
        ));

        let mut bad = meta.to_vec();
        bad[4] = 0x7F;
        assert!(matches!(
            decode_header(&bad, flen),
            Err(StoreError::UnsupportedVersion(_))
        ));

        // Any flip in the covered prefix trips the header CRC.
        for pos in 6..30 {
            let mut bad = meta.to_vec();
            bad[pos] ^= 0x01;
            assert!(
                matches!(decode_header(&bad, flen), Err(StoreError::HeaderCrc { .. })),
                "flip at {pos} not caught"
            );
        }

        // Wrong file length is truncation, even with a clean header.
        assert!(matches!(
            decode_header(meta, Some(image.len() as u64 - 64)),
            Err(StoreError::Truncated { .. })
        ));
        let _ = h;
    }
}
