//! On-disk hardening sweep: truncate and bit-flip a real store file at
//! every offset stride and prove the contract — `Store::open` either
//! succeeds with the bit-identical payload or fails with a typed
//! [`StoreError`]; it never panics and never serves wrong bytes. This
//! mirrors `crates/net/tests/corruption.rs` for the wire format, and
//! the `corruption_sweep` test in `ab::io` for the bare envelope.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use store::{RealIo, Store, StoreError};

/// Small page size so a small payload still spans many pages and the
/// sweep exercises header, table, payload, and padding regions alike.
const PAGE: u32 = 64;

fn sample_payload(rows: usize, shards: usize) -> Vec<u8> {
    use ab::{AbConfig, AbIndex, Level};
    use bitmap::{BinnedColumn, BinnedTable};
    let table = BinnedTable::new(vec![
        BinnedColumn::new("a", (0..rows).map(|i| (i % 5) as u32).collect(), 5),
        BinnedColumn::new("b", (0..rows).map(|i| ((i * 7) % 3) as u32).collect(), 3),
    ]);
    let cfg = AbConfig::new(Level::PerAttribute).with_alpha(8);
    let segments: Vec<(u64, AbIndex)> = ab::shard_ranges(rows, shards)
        .into_iter()
        .map(|r| (r.start as u64, AbIndex::build_row_range(&table, &cfg, r)))
        .collect();
    let refs: Vec<(u64, &AbIndex)> = segments.iter().map(|(s, i)| (*s, i)).collect();
    ab::shards_to_bytes(&refs)
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("store-corrupt-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Opens a (possibly damaged) image written to `path` and asserts the
/// contract: `Ok` only with the exact original payload, `Err` only a
/// typed error, never a panic. Returns whether it opened.
fn open_must_behave(path: &Path, image: &[u8], original_payload: &[u8], what: &str) -> bool {
    std::fs::write(path, image).unwrap();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        // Sweep both backends: the buffer fallback must be exactly as
        // strict as the mapping.
        for force_pread in [false, true] {
            match Store::open_with(path, force_pread) {
                Ok(st) => {
                    assert_eq!(
                        st.payload(),
                        original_payload,
                        "{what}: opened but served different bytes"
                    );
                }
                Err(
                    StoreError::Io(_)
                    | StoreError::BadMagic
                    | StoreError::UnsupportedVersion(_)
                    | StoreError::BadPageSize(_)
                    | StoreError::Truncated { .. }
                    | StoreError::HeaderCrc { .. }
                    | StoreError::TableCrc { .. }
                    | StoreError::PageCrc { .. }
                    | StoreError::Payload(_),
                ) => return false,
            }
        }
        true
    }));
    match outcome {
        Ok(opened) => opened,
        Err(_) => panic!("{what}: Store::open panicked"),
    }
}

#[test]
fn truncation_sweep_never_panics_or_lies() {
    let dir = tmpdir("trunc");
    let path = dir.join("idx.seg");
    let payload = sample_payload(400, 3);
    store::write(&path, &payload, PAGE, &RealIo).unwrap();
    let image = std::fs::read(&path).unwrap();

    // Every prefix at a 13-byte stride (plus the empty file and the
    // one-byte-short file): none may open.
    let mut lens: Vec<usize> = (0..image.len()).step_by(13).collect();
    lens.push(image.len() - 1);
    for len in lens {
        let opened = open_must_behave(
            &path,
            &image[..len],
            &payload,
            &format!("truncate to {len}"),
        );
        assert!(!opened, "truncated file ({len} bytes) must not open");
    }
    // Trailing garbage is damage too: the format demands exact length.
    let mut long = image.clone();
    long.extend_from_slice(&[0xEE; 7]);
    assert!(!open_must_behave(&path, &long, &payload, "over-long file"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bit_flip_sweep_never_panics_or_lies() {
    let dir = tmpdir("flip");
    let path = dir.join("idx.seg");
    let payload = sample_payload(300, 2);
    store::write(&path, &payload, PAGE, &RealIo).unwrap();
    let image = std::fs::read(&path).unwrap();

    // Flip one byte at a time across the whole file (3-byte stride,
    // three patterns hitting high bit, low bit, and full invert).
    let mut survivors = 0u32;
    for offset in (0..image.len()).step_by(3) {
        for pattern in [0x80u8, 0x01, 0xFF] {
            let mut bad = image.clone();
            bad[offset] ^= pattern;
            if open_must_behave(
                &path,
                &bad,
                &payload,
                &format!("flip {pattern:#04x}@{offset}"),
            ) {
                survivors += 1;
            }
        }
    }
    // A flip inside payload-page padding (zeros not covered by
    // payload_len) is still caught by the page CRCs — nothing in a
    // store file is allowed to rot silently, so no flip may survive.
    assert_eq!(survivors, 0, "every single-byte flip must be detected");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn random_damage_storms_are_typed() {
    let dir = tmpdir("storm");
    let path = dir.join("idx.seg");
    let payload = sample_payload(500, 4);
    store::write(&path, &payload, PAGE, &RealIo).unwrap();
    let image = std::fs::read(&path).unwrap();

    // Deterministic xorshift so failures replay.
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..200 {
        let mut bad = image.clone();
        // 1–8 random flips, then maybe a truncation.
        for _ in 0..(next() % 8 + 1) {
            let off = (next() % bad.len() as u64) as usize;
            bad[off] ^= (next() % 255 + 1) as u8;
        }
        if next() % 4 == 0 {
            bad.truncate((next() % bad.len() as u64) as usize);
        }
        open_must_behave(&path, &bad, &payload, "storm");
    }
    // And the pristine image still opens clean afterwards.
    assert!(open_must_behave(&path, &image, &payload, "pristine"));
    std::fs::remove_dir_all(&dir).unwrap();
}
