//! A sharded, updatable cell store behind the service API.
//!
//! Wraps one [`CountingAb`] per row-range shard behind an `RwLock`, so
//! concurrent writers touching different shards never contend and
//! readers on one shard proceed in parallel. Rows route to shards the
//! same way [`crate::ShardedIndex`] routes them (contiguous ranges,
//! shard-local renumbering), and cell probes batch per shard exactly
//! like [`crate::Service::retrieve_cells`].
//!
//! Deletions inherit the counting-Bloom guarantee: a removed cell may
//! still read as present (stuck-high counters), but a cell that was
//! inserted and **not** removed never reads as absent — the
//! no-false-negative contract survives concurrent updates because
//! every mutation holds the shard's write lock.
//!
//! A writer that panics while holding a shard lock *poisons* it; this
//! store recovers the lock ([`std::sync::PoisonError::into_inner`])
//! instead of propagating the poison. That is sound here because every
//! mutation is a sequence of saturating counter increments/decrements:
//! an interrupted insert can only leave counters *lower* than a
//! completed one (fewer increments applied), which reads as a missed
//! insert — never as a false negative for any *completed* insert.

use crate::chaos::{self, points};
use crate::error::SvcError;
use crate::pool::WorkerPool;
use ab::{optimal_k, Cell, CountingAb, QueryError};
use hashkit::{CellMapper, HashFamily};
use std::sync::{mpsc, Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

struct CountingShard {
    start: usize,
    end: usize,
    ab: RwLock<CountingAb>,
}

impl CountingShard {
    /// Write-locks the shard, recovering (and counting) a poisoned
    /// lock — see the module docs for why recovery is sound.
    fn write(&self) -> RwLockWriteGuard<'_, CountingAb> {
        self.ab.write().unwrap_or_else(|poison| {
            obs::counter!("svc.counting.lock_poisoned").inc();
            poison.into_inner()
        })
    }

    /// Read-locks the shard, recovering a poisoned lock.
    fn read(&self) -> RwLockReadGuard<'_, CountingAb> {
        self.ab.read().unwrap_or_else(|poison| {
            obs::counter!("svc.counting.lock_poisoned").inc();
            poison.into_inner()
        })
    }
}

/// A concurrent, updatable AB over `(row, attribute, bin)` cells.
pub struct CountingService {
    shards: Arc<Vec<CountingShard>>,
    cardinalities: Vec<u32>,
    offsets: Vec<u32>,
    num_rows: usize,
    chaos: Option<Arc<chaos::FaultPlan>>,
}

impl CountingService {
    /// Creates an empty store for `num_rows` rows over attributes with
    /// the given bin `cardinalities`, sized at `alpha` AB bits per
    /// expected set cell (one cell per row per attribute), split into
    /// `num_shards` row ranges.
    ///
    /// # Panics
    ///
    /// Panics if `cardinalities` is empty, `alpha == 0`, or the shard
    /// count is not in `1..=num_rows`.
    pub fn new(num_rows: usize, cardinalities: &[u32], alpha: u64, num_shards: usize) -> Self {
        assert!(!cardinalities.is_empty(), "need at least one attribute");
        assert!(alpha > 0, "alpha must be positive");
        let mut offsets = Vec::with_capacity(cardinalities.len());
        let mut total_cols = 0u32;
        for &c in cardinalities {
            assert!(c > 0, "attribute cardinality must be positive");
            offsets.push(total_cols);
            total_cols += c;
        }
        let k = optimal_k(alpha as f64);
        let mapper = CellMapper::for_columns(total_cols as usize);
        let shards = ab::shard_ranges(num_rows, num_shards)
            .into_iter()
            .map(|r| {
                let expected = (r.len() * cardinalities.len()) as u64;
                CountingShard {
                    start: r.start,
                    end: r.end,
                    ab: RwLock::new(CountingAb::new(
                        (alpha * expected).max(64),
                        k,
                        HashFamily::default_independent(),
                        mapper,
                    )),
                }
            })
            .collect();
        CountingService {
            shards: Arc::new(shards),
            cardinalities: cardinalities.to_vec(),
            offsets,
            num_rows,
            chaos: None,
        }
    }

    /// Attaches a fault plan driving the [`points::COUNTING_WRITE`]
    /// injection point (tests and chaos drills only).
    pub fn with_fault_plan(mut self, plan: Arc<chaos::FaultPlan>) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// Total rows covered.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of row-range shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn locate(&self, cell: Cell) -> Result<(usize, u64, u64), SvcError> {
        if cell.row >= self.num_rows {
            return Err(QueryError::RowOutOfRange {
                row: cell.row,
                num_rows: self.num_rows,
            }
            .into());
        }
        let card = self.cardinalities.get(cell.attribute).copied().unwrap_or(0);
        if cell.bin >= card {
            return Err(QueryError::BinOutOfRange {
                attribute: cell.attribute,
                bin: cell.bin,
                cardinality: card,
            }
            .into());
        }
        let sid = self.shards.partition_point(|s| s.end <= cell.row);
        let local = (cell.row - self.shards[sid].start) as u64;
        let col = (self.offsets[cell.attribute] + cell.bin) as u64;
        Ok((sid, local, col))
    }

    /// Inserts a cell (write-locks only its shard).
    pub fn insert(&self, cell: Cell) -> Result<(), SvcError> {
        let (sid, row, col) = self.locate(cell)?;
        let mut ab = self.shards[sid].write();
        chaos::inject(self.chaos.as_deref(), points::COUNTING_WRITE, Some(sid))?;
        ab.insert(row, col);
        obs::counter!("svc.counting.inserts").inc();
        Ok(())
    }

    /// Removes a cell; counting semantics — the cell may still read as
    /// present afterwards, but never the other way around.
    pub fn remove(&self, cell: Cell) -> Result<(), SvcError> {
        let (sid, row, col) = self.locate(cell)?;
        let mut ab = self.shards[sid].write();
        chaos::inject(self.chaos.as_deref(), points::COUNTING_WRITE, Some(sid))?;
        ab.remove(row, col);
        obs::counter!("svc.counting.removes").inc();
        Ok(())
    }

    /// Tests one cell (read-locks only its shard).
    pub fn contains(&self, cell: Cell) -> Result<bool, SvcError> {
        let (sid, row, col) = self.locate(cell)?;
        Ok(self.shards[sid].read().contains(row, col))
    }

    /// Batched cell retrieval on `pool`: probes group by owning shard,
    /// one job per shard touched, answers in request order. Jobs are
    /// submitted blocking (retrieval here is foreground work; use
    /// [`crate::Service`] for admission-controlled serving).
    pub fn query_cells(&self, pool: &WorkerPool, cells: &[Cell]) -> Result<Vec<bool>, SvcError> {
        // Validate and translate everything upfront.
        let mut groups: Vec<Vec<(usize, u64, u64)>> = vec![Vec::new(); self.shards.len()];
        for (pos, &cell) in cells.iter().enumerate() {
            let (sid, row, col) = self.locate(cell)?;
            groups[sid].push((pos, row, col));
        }
        let (tx, rx) = mpsc::channel();
        let mut expected = 0usize;
        for (sid, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            expected += 1;
            let shards = Arc::clone(&self.shards);
            let tx = tx.clone();
            pool.execute_blocking(move || {
                let ab = shards[sid].read();
                let answers: Vec<(usize, bool)> = group
                    .into_iter()
                    .map(|(pos, row, col)| (pos, ab.contains(row, col)))
                    .collect();
                let _ = tx.send(answers);
            })?;
        }
        drop(tx);
        let mut out = vec![false; cells.len()];
        for _ in 0..expected {
            for (pos, hit) in rx.recv().map_err(|_| SvcError::Shutdown)? {
                out[pos] = hit;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains_roundtrip() {
        let svc = CountingService::new(100, &[4, 6], 16, 4);
        let cell = Cell::new(42, 1, 5);
        assert!(!svc.contains(cell).unwrap());
        svc.insert(cell).unwrap();
        assert!(svc.contains(cell).unwrap());
        svc.remove(cell).unwrap();
        assert!(!svc.contains(cell).unwrap());
    }

    #[test]
    fn rejects_out_of_range_cells() {
        let svc = CountingService::new(10, &[4], 16, 2);
        assert!(matches!(
            svc.insert(Cell::new(10, 0, 0)),
            Err(SvcError::Query(QueryError::RowOutOfRange { .. }))
        ));
        assert!(matches!(
            svc.contains(Cell::new(0, 1, 0)),
            Err(SvcError::Query(QueryError::BinOutOfRange { .. }))
        ));
        assert!(matches!(
            svc.remove(Cell::new(0, 0, 4)),
            Err(SvcError::Query(QueryError::BinOutOfRange { bin: 4, .. }))
        ));
    }

    #[test]
    fn batched_query_answers_in_order() {
        let svc = CountingService::new(60, &[3], 16, 3);
        let pool = WorkerPool::new(2, 16);
        for r in (0..60).step_by(2) {
            svc.insert(Cell::new(r, 0, (r % 3) as u32)).unwrap();
        }
        let cells: Vec<Cell> = (0..60).map(|r| Cell::new(r, 0, (r % 3) as u32)).collect();
        let got = svc.query_cells(&pool, &cells).unwrap();
        for (r, &hit) in got.iter().enumerate() {
            if r % 2 == 0 {
                assert!(hit, "false negative at inserted row {r}");
            }
        }
    }

    #[cfg(not(feature = "chaos-off"))]
    #[test]
    fn poisoned_lock_recovers_without_false_negatives() {
        use crate::chaos::{Fault, FaultPlan, FaultRule};
        let plan = Arc::new(
            FaultPlan::new(7)
                .with_rule(FaultRule::new(points::COUNTING_WRITE, Fault::Panic).max_fires(1)),
        );
        let svc = CountingService::new(40, &[4], 16, 2).with_fault_plan(Arc::clone(&plan));
        let keeper = Cell::new(3, 0, 1);
        // First write panics while holding shard 0's lock, poisoning it.
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            svc.insert(Cell::new(0, 0, 0))
        }));
        assert!(boom.is_err(), "injected panic must fire");
        assert_eq!(plan.fires(points::COUNTING_WRITE), 1);
        // The store recovers the poisoned lock and keeps its contract.
        svc.insert(keeper).unwrap();
        assert!(svc.contains(keeper).unwrap(), "false negative after poison");
        assert!(!svc.contains(Cell::new(0, 0, 0)).unwrap());
    }

    #[test]
    fn shards_split_the_row_space() {
        let svc = CountingService::new(103, &[2, 2], 8, 7);
        assert_eq!(svc.num_shards(), 7);
        assert_eq!(svc.num_rows(), 103);
        let covered: usize = svc.shards.iter().map(|s| s.end - s.start).sum();
        assert_eq!(covered, 103);
    }
}
