//! Typed errors for the query service.

use ab::QueryError;

/// Why the service declined or abandoned a request.
///
/// The admission-control variant [`SvcError::Overloaded`] is the
/// load-shedding contract: a full submission queue rejects new work
/// immediately instead of queueing unboundedly, so callers can back
/// off or retry against another replica.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SvcError {
    /// The bounded submission queue is full; the request was shed
    /// without executing any part of it.
    Overloaded {
        /// Queue depth observed at rejection time.
        depth: usize,
        /// Configured queue capacity.
        capacity: usize,
    },
    /// The request's deadline passed before every shard finished.
    /// Partial results are discarded — the AB's no-false-negative
    /// guarantee only holds for complete merges.
    DeadlineExceeded,
    /// The request was cancelled via its [`crate::CancelToken`].
    Cancelled,
    /// The query itself is invalid for the served index.
    Query(QueryError),
    /// The service is shutting down or lost its worker threads.
    Shutdown,
    /// An exact (WAH) answer was requested but the service was built
    /// without per-shard WAH indexes.
    WahUnavailable,
    /// A retry loop ([`crate::retry()`]) exhausted its attempt or
    /// wall-clock budget without a success.
    RetriesExhausted {
        /// Attempts made, including the first.
        attempts: usize,
    },
    /// An exact (WAH) answer touches a quarantined shard. Exact
    /// semantics cannot be answered conservatively, so the request
    /// fails instead of degrading.
    ShardQuarantined {
        /// The quarantined shard the query needed.
        shard: usize,
    },
}

impl SvcError {
    /// Whether a retry could plausibly succeed. Only load shedding
    /// ([`SvcError::Overloaded`]) is transient: the queue drains.
    /// Everything else — invalid queries, expired deadlines,
    /// cancellation, shutdown, quarantine — will fail identically on
    /// the next attempt.
    pub fn is_transient(&self) -> bool {
        matches!(self, SvcError::Overloaded { .. })
    }
}

impl std::fmt::Display for SvcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SvcError::Overloaded { depth, capacity } => {
                write!(f, "overloaded: submission queue {depth}/{capacity} full")
            }
            SvcError::DeadlineExceeded => write!(f, "deadline exceeded"),
            SvcError::Cancelled => write!(f, "request cancelled"),
            SvcError::Query(e) => write!(f, "invalid query: {e}"),
            SvcError::Shutdown => write!(f, "service shutting down"),
            SvcError::WahUnavailable => {
                write!(f, "no per-shard WAH index (build with with_wah)")
            }
            SvcError::RetriesExhausted { attempts } => {
                write!(f, "retries exhausted after {attempts} attempts")
            }
            SvcError::ShardQuarantined { shard } => {
                write!(f, "shard {shard} is quarantined; exact answer unavailable")
            }
        }
    }
}

impl std::error::Error for SvcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SvcError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QueryError> for SvcError {
    fn from(e: QueryError) -> Self {
        SvcError::Query(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        assert!(SvcError::Overloaded {
            depth: 8,
            capacity: 8
        }
        .to_string()
        .contains("8/8"));
        assert!(SvcError::DeadlineExceeded.to_string().contains("deadline"));
        let q: SvcError = QueryError::RowOutOfRange {
            row: 9,
            num_rows: 4,
        }
        .into();
        assert!(q.to_string().contains("out of range"));
        use std::error::Error;
        assert!(q.source().is_some());
        assert!(SvcError::Cancelled.source().is_none());
        assert!(SvcError::RetriesExhausted { attempts: 3 }
            .to_string()
            .contains("3 attempts"));
        assert!(SvcError::ShardQuarantined { shard: 2 }
            .to_string()
            .contains("shard 2"));
    }

    #[test]
    fn only_overload_is_transient() {
        assert!(SvcError::Overloaded {
            depth: 1,
            capacity: 1
        }
        .is_transient());
        for e in [
            SvcError::DeadlineExceeded,
            SvcError::Cancelled,
            SvcError::Shutdown,
            SvcError::WahUnavailable,
            SvcError::RetriesExhausted { attempts: 2 },
            SvcError::ShardQuarantined { shard: 0 },
        ] {
            assert!(!e.is_transient(), "{e} must not be transient");
        }
    }
}
