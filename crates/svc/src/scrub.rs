//! Online segment-store scrubbing with quarantine and bit-identical
//! repair.
//!
//! A [`Scrubber`] owns an open [`store::Store`] and re-verifies every
//! page on a fixed cadence ([`store::Store::scrub`] — positioned
//! re-reads, so damage written to the file *after* open is caught even
//! though the query path decoded the payload long ago). The detect →
//! degrade → repair → healthy lifecycle:
//!
//! 1. **detect** — a page's CRC no longer matches the table captured
//!    at open; the pass maps the page back to the shard(s) whose
//!    serialized bytes it covers;
//! 2. **degrade** — those shards are quarantined in the shared
//!    [`ShardHealth`], so answers stay conservative (*maybe present*,
//!    never a false negative) while the durable copy is untrusted;
//! 3. **repair** — with a [`RepairSource`] (the original table and
//!    build config), damaged segments are rebuilt deterministically
//!    (`ShardedIndex::from_bytes_with_repair`; whole-index rebuild
//!    when even the envelope walk is broken), re-serialized —
//!    bit-identical, because AB builds are deterministic — and written
//!    back through the crash-safe [`store::write`] protocol (temp +
//!    fsync + rename), then the store is reopened and verified;
//! 4. **healthy** — quarantine is lifted only after the rewritten file
//!    passes a full open-time verification.
//!
//! [`StoreStatus`] mirrors the lifecycle as atomics for `/healthz`
//! (see [`crate::telemetry`]).

use crate::degrade::ShardHealth;
use crate::shard::ShardedIndex;
use ab::AbConfig;
use bitmap::BinnedTable;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What the scrubber needs to rebuild damaged segments: the source
/// table and the exact build configuration. AB builds are
/// deterministic, so a rebuild from the same inputs is bit-identical
/// to the original — which is what lets repair promise "the file is
/// exactly what it was".
#[derive(Clone)]
pub struct RepairSource {
    /// The binned source table the index was built from.
    pub table: BinnedTable,
    /// The build configuration (level, alpha, hashing) used originally.
    pub config: AbConfig,
}

/// Store lifecycle state, as exposed on `/healthz`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreState {
    /// Every page verified on the last pass.
    Healthy,
    /// Damage detected; affected shards are quarantined and no repair
    /// has succeeded yet.
    Degraded,
    /// A repair (rebuild + crash-safe rewrite) is in flight.
    Repairing,
}

impl StoreState {
    fn as_str(self) -> &'static str {
        match self {
            StoreState::Healthy => "healthy",
            StoreState::Degraded => "degraded",
            StoreState::Repairing => "repairing",
        }
    }
}

/// Shared, lock-free view of the scrubber's progress for telemetry.
#[derive(Debug)]
pub struct StoreStatus {
    state: AtomicU8,
    passes: AtomicU64,
    pages_scanned: AtomicU64,
    crc_errors: AtomicU64,
    repairs: AtomicU64,
    repair_failures: AtomicU64,
    backend: &'static str,
}

impl StoreStatus {
    /// A fresh status (healthy, zero counters) for the given serving
    /// backend. [`Scrubber::spawn`] creates one per store; standalone
    /// construction is for tests and custom scrub drivers.
    pub fn new(backend: &'static str) -> Self {
        StoreStatus {
            state: AtomicU8::new(0),
            passes: AtomicU64::new(0),
            pages_scanned: AtomicU64::new(0),
            crc_errors: AtomicU64::new(0),
            repairs: AtomicU64::new(0),
            repair_failures: AtomicU64::new(0),
            backend,
        }
    }

    fn set_state(&self, s: StoreState) {
        self.state.store(s as u8, Ordering::Release);
    }

    /// Current lifecycle state.
    pub fn state(&self) -> StoreState {
        match self.state.load(Ordering::Acquire) {
            0 => StoreState::Healthy,
            1 => StoreState::Degraded,
            _ => StoreState::Repairing,
        }
    }

    /// Completed scrub passes.
    pub fn passes(&self) -> u64 {
        self.passes.load(Ordering::Relaxed)
    }

    /// Cumulative pages verified across all passes.
    pub fn pages_scanned(&self) -> u64 {
        self.pages_scanned.load(Ordering::Relaxed)
    }

    /// Cumulative pages that failed verification.
    pub fn crc_errors(&self) -> u64 {
        self.crc_errors.load(Ordering::Relaxed)
    }

    /// Successful repairs (rewrite + verified reopen).
    pub fn repairs(&self) -> u64 {
        self.repairs.load(Ordering::Relaxed)
    }

    /// Repair attempts that failed (store stays degraded, retried on
    /// the next pass).
    pub fn repair_failures(&self) -> u64 {
        self.repair_failures.load(Ordering::Relaxed)
    }

    /// Which backend serves the payload: `"mmap"` or `"pread"`.
    pub fn backend(&self) -> &'static str {
        self.backend
    }

    /// The `"store"` object for the `/healthz` JSON body.
    pub fn healthz_fragment(&self) -> String {
        format!(
            "{{\"state\":\"{}\",\"backend\":\"{}\",\"passes\":{},\
             \"pages_scanned\":{},\"crc_errors\":{},\"repairs\":{},\
             \"repair_failures\":{}}}",
            self.state().as_str(),
            self.backend,
            self.passes(),
            self.pages_scanned(),
            self.crc_errors(),
            self.repairs(),
            self.repair_failures(),
        )
    }
}

/// Outcome of one [`scrub_pass`].
#[derive(Debug, PartialEq, Eq)]
pub enum PassOutcome {
    /// Every page verified.
    Clean,
    /// Damage found and repaired (store rewritten, reopened, verified;
    /// quarantine lifted). Carries the shards that were implicated.
    Repaired(Vec<usize>),
    /// Damage found and no repair possible (no [`RepairSource`], or
    /// the repair itself failed); implicated shards stay quarantined.
    Degraded(Vec<usize>),
}

/// Runs one detect → degrade → repair cycle synchronously. The
/// [`Scrubber`] thread calls this on its cadence; tests call it
/// directly for determinism. On successful repair `store` is replaced
/// by the freshly-verified reopen of the rewritten file.
pub fn scrub_pass(
    store: &mut store::Store,
    health: &ShardHealth,
    repair: Option<&RepairSource>,
    status: &StoreStatus,
    io: &dyn store::SegmentIo,
) -> std::io::Result<PassOutcome> {
    let report = store.scrub()?;
    status.passes.fetch_add(1, Ordering::Relaxed);
    status
        .pages_scanned
        .fetch_add(report.pages_scanned, Ordering::Relaxed);
    if report.clean() {
        // Healthy is only re-entered via a verified repair; a clean
        // pass on an already-healthy store just confirms it.
        if status.state() == StoreState::Healthy {
            return Ok(PassOutcome::Clean);
        }
        // Clean pass while degraded means the damage was external and
        // has gone away (e.g. an operator restored the file): lift the
        // quarantine.
        for &s in &report.bad_shards {
            health.clear(s);
        }
        status.set_state(StoreState::Healthy);
        return Ok(PassOutcome::Clean);
    }

    status
        .crc_errors
        .fetch_add(report.bad_pages.len() as u64, Ordering::Relaxed);
    obs::counter!("svc.scrub.detected").add(report.bad_pages.len() as u64);
    for &s in &report.bad_shards {
        health.quarantine(s);
    }
    status.set_state(StoreState::Degraded);

    let Some(src) = repair else {
        return Ok(PassOutcome::Degraded(report.bad_shards));
    };
    status.set_state(StoreState::Repairing);
    match try_repair(store, src, io) {
        Ok(()) => {
            obs::counter!("svc.scrub.repairs").inc();
            status.repairs.fetch_add(1, Ordering::Relaxed);
            for &s in &report.bad_shards {
                health.clear(s);
            }
            status.set_state(StoreState::Healthy);
            Ok(PassOutcome::Repaired(report.bad_shards))
        }
        Err(_) => {
            obs::counter!("svc.scrub.repair_failures").inc();
            status.repair_failures.fetch_add(1, Ordering::Relaxed);
            status.set_state(StoreState::Degraded);
            Ok(PassOutcome::Degraded(report.bad_shards))
        }
    }
}

/// Rebuilds the index from the (possibly damaged) on-disk payload,
/// rewrites the store crash-safely, reopens, and swaps the handle.
/// The deterministic build makes the rewritten payload bit-identical
/// to the original.
fn try_repair(
    store: &mut store::Store,
    src: &RepairSource,
    io: &dyn store::SegmentIo,
) -> Result<(), store::StoreError> {
    let num_shards = store.num_shards();
    // Segment-level repair first: intact shards are decoded (cheap),
    // damaged ones rebuilt. When even the envelope walk is broken —
    // or the mapped payload no longer matches this table at all —
    // fall back to a full deterministic rebuild from source.
    let rebuilt =
        match ShardedIndex::from_bytes_with_repair(store.payload(), &src.table, &src.config) {
            Ok((index, _repaired)) => index,
            Err(_) => ShardedIndex::build(&src.table, &src.config, num_shards, false),
        };
    let payload = rebuilt.to_bytes();
    store::write(store.path(), &payload, store.header().page_size, io)?;
    let reopened = store::Store::open_with(store.path(), store.backend() == "pread")?;
    *store = reopened;
    Ok(())
}

/// A background scrub loop: one thread, one pass every `interval`,
/// sharing its [`StoreStatus`] with telemetry. Dropping joins the
/// thread.
pub struct Scrubber {
    stop: Arc<AtomicBool>,
    status: Arc<StoreStatus>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Scrubber {
    /// Takes ownership of the store and starts scrubbing every
    /// `interval`. `health` is the service's shard-health registry
    /// (quarantine target); `repair` enables online rebuild; `io` is
    /// the syscall boundary for repair rewrites (fault-injectable in
    /// tests, [`store::RealIo`] in production).
    pub fn spawn(
        store: store::Store,
        health: Arc<ShardHealth>,
        repair: Option<RepairSource>,
        interval: Duration,
        io: Arc<dyn store::SegmentIo>,
    ) -> std::io::Result<Scrubber> {
        let stop = Arc::new(AtomicBool::new(false));
        let status = Arc::new(StoreStatus::new(store.backend()));
        let (stop2, status2) = (Arc::clone(&stop), Arc::clone(&status));
        let handle = std::thread::Builder::new()
            .name("abq-scrub".into())
            .spawn(move || {
                let mut store = store;
                while !stop2.load(Ordering::Acquire) {
                    if scrub_pass(&mut store, &health, repair.as_ref(), &status2, io.as_ref())
                        .is_err()
                    {
                        obs::counter!("svc.scrub.pass_errors").inc();
                    }
                    // Sleep in small slices so stop() never waits a
                    // full interval.
                    let mut left = interval;
                    while !stop2.load(Ordering::Acquire) && left > Duration::ZERO {
                        let nap = left.min(Duration::from_millis(20));
                        std::thread::sleep(nap);
                        left = left.saturating_sub(nap);
                    }
                }
            })?;
        Ok(Scrubber {
            stop,
            status,
            handle: Some(handle),
        })
    }

    /// The live status shared with `/healthz`.
    pub fn status(&self) -> Arc<StoreStatus> {
        Arc::clone(&self.status)
    }

    /// Stops the loop and joins the thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Scrubber {
    fn drop(&mut self) {
        self.shutdown();
    }
}
