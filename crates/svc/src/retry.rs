//! Bounded retry with decorrelated-jitter backoff.
//!
//! Load shedding ([`SvcError::Overloaded`]) is the service telling the
//! client "not now" — the correct client response is to back off and
//! try again, with **jitter** so a thundering herd doesn't re-arrive
//! in lockstep. This module implements the decorrelated-jitter scheme
//! (each sleep drawn uniformly from `[base, 3 × previous sleep]`,
//! capped) on top of a seeded `splitmix64` stream — deterministic for
//! tests, no `rand` dependency — with two hard bounds: a maximum
//! attempt count and a maximum total wall-clock budget. Exhausting
//! either yields a typed [`SvcError::RetriesExhausted`].
//!
//! Only *transient* errors ([`SvcError::is_transient`]) are retried;
//! anything else (invalid query, deadline, cancellation, shutdown)
//! propagates immediately.

use crate::error::SvcError;
use std::time::{Duration, Instant};

/// Bounds and shape of a retry loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Minimum (and first) backoff sleep.
    pub base: Duration,
    /// Ceiling on any single sleep.
    pub cap: Duration,
    /// Total tries, including the first (≥ 1).
    pub max_attempts: usize,
    /// Total wall-clock budget across all attempts and sleeps.
    pub max_elapsed: Duration,
}

impl Default for RetryPolicy {
    /// Up to 4 tries within 1 s, sleeping between 0.5 ms and 50 ms.
    fn default() -> Self {
        RetryPolicy {
            base: Duration::from_micros(500),
            cap: Duration::from_millis(50),
            max_attempts: 4,
            max_elapsed: Duration::from_secs(1),
        }
    }
}

/// Runs `op` under `policy`, retrying transient failures with
/// decorrelated-jitter backoff seeded by `seed`. `op` receives the
/// 0-based attempt number. Non-transient errors propagate untouched;
/// running out of attempts or wall-clock yields
/// [`SvcError::RetriesExhausted`].
///
/// # Panics
///
/// Panics if `policy.max_attempts` is zero.
pub fn retry<T>(
    policy: &RetryPolicy,
    seed: u64,
    op: impl FnMut(usize) -> Result<T, SvcError>,
) -> Result<T, SvcError> {
    retry_traced(policy, seed, &obs::TraceCtx::disabled(), op)
}

/// [`retry`] recording its backoff decisions into `trace`: each sleep
/// becomes a `svc.retry.backoff` event annotated with the attempt
/// number and sleep microseconds, and exhaustion becomes a
/// `svc.retry.exhausted` event. Combine with
/// [`crate::RequestCtx::traced`] so every attempt's `svc.request`
/// span and the sleeps between them land in one trace.
///
/// # Panics
///
/// Panics if `policy.max_attempts` is zero.
pub fn retry_traced<T>(
    policy: &RetryPolicy,
    seed: u64,
    trace: &obs::TraceCtx,
    mut op: impl FnMut(usize) -> Result<T, SvcError>,
) -> Result<T, SvcError> {
    assert!(policy.max_attempts >= 1, "need at least one attempt");
    let started = Instant::now();
    let mut rng = hashkit::splitmix64(seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut prev_sleep = policy.base;
    let mut attempts = 0usize;
    loop {
        attempts += 1;
        match op(attempts - 1) {
            Ok(v) => return Ok(v),
            Err(e) if !e.is_transient() => return Err(e),
            Err(_) => {}
        }
        if attempts >= policy.max_attempts {
            trace.event("svc.retry.exhausted", "attempts", attempts);
            return Err(SvcError::RetriesExhausted { attempts });
        }
        // Decorrelated jitter: uniform in [base, 3 × previous sleep],
        // capped — spreads retry arrivals instead of synchronizing
        // them on exponential boundaries.
        rng = hashkit::splitmix64(rng);
        let lo = policy.base.as_micros() as u64;
        let hi = (prev_sleep.as_micros() as u64).saturating_mul(3).max(lo) + 1;
        let sleep = Duration::from_micros(lo + rng % (hi - lo)).min(policy.cap);
        if started.elapsed() + sleep > policy.max_elapsed {
            trace.event("svc.retry.exhausted", "attempts", attempts);
            return Err(SvcError::RetriesExhausted { attempts });
        }
        obs::counter!("svc.retries").inc();
        if trace.enabled() {
            let mut e = trace.span_under(0, "svc.retry.backoff");
            e.annotate("attempt", attempts);
            e.annotate("sleep_us", sleep.as_micros() as u64);
        }
        std::thread::sleep(sleep);
        prev_sleep = sleep;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    fn fast_policy() -> RetryPolicy {
        RetryPolicy {
            base: Duration::from_micros(1),
            cap: Duration::from_micros(50),
            max_attempts: 5,
            max_elapsed: Duration::from_secs(5),
        }
    }

    #[test]
    fn first_success_needs_no_retry() {
        let calls = Cell::new(0usize);
        let out = retry(&fast_policy(), 1, |attempt| {
            calls.set(calls.get() + 1);
            assert_eq!(attempt, 0);
            Ok::<_, SvcError>(42)
        });
        assert_eq!(out, Ok(42));
        assert_eq!(calls.get(), 1);
    }

    #[test]
    fn transient_errors_retry_until_success() {
        let calls = Cell::new(0usize);
        let out = retry(&fast_policy(), 2, |attempt| {
            calls.set(calls.get() + 1);
            if attempt < 3 {
                Err(SvcError::Overloaded {
                    depth: 8,
                    capacity: 8,
                })
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(out, Ok(3));
        assert_eq!(calls.get(), 4);
    }

    #[test]
    fn attempts_cap_yields_typed_exhaustion() {
        let calls = Cell::new(0usize);
        let out: Result<(), _> = retry(&fast_policy(), 3, |_| {
            calls.set(calls.get() + 1);
            Err(SvcError::Overloaded {
                depth: 1,
                capacity: 1,
            })
        });
        assert_eq!(out, Err(SvcError::RetriesExhausted { attempts: 5 }));
        assert_eq!(calls.get(), 5);
    }

    #[test]
    fn wall_clock_cap_stops_early() {
        let policy = RetryPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(10),
            max_attempts: 1_000_000,
            max_elapsed: Duration::from_millis(25),
        };
        let start = Instant::now();
        let out: Result<(), _> = retry(&policy, 4, |_| {
            Err(SvcError::Overloaded {
                depth: 1,
                capacity: 1,
            })
        });
        assert!(matches!(out, Err(SvcError::RetriesExhausted { .. })));
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn non_transient_errors_propagate_immediately() {
        let calls = Cell::new(0usize);
        let out: Result<(), _> = retry(&fast_policy(), 5, |_| {
            calls.set(calls.get() + 1);
            Err(SvcError::DeadlineExceeded)
        });
        assert_eq!(out, Err(SvcError::DeadlineExceeded));
        assert_eq!(calls.get(), 1);
    }

    #[test]
    fn sleeps_stay_within_bounds_and_are_seeded() {
        // Reconstruct the jitter stream exactly as retry() draws it
        // and check every sleep lands in [base, cap].
        let policy = fast_policy();
        let mut rng = hashkit::splitmix64(77 ^ 0x9E37_79B9_7F4A_7C15);
        let mut prev = policy.base;
        for _ in 0..32 {
            rng = hashkit::splitmix64(rng);
            let lo = policy.base.as_micros() as u64;
            let hi = (prev.as_micros() as u64).saturating_mul(3).max(lo) + 1;
            let sleep = Duration::from_micros(lo + rng % (hi - lo)).min(policy.cap);
            assert!(sleep >= Duration::from_micros(1).min(policy.cap));
            assert!(sleep <= policy.cap);
            prev = sleep;
        }
    }
}
