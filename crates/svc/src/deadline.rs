//! Deadlines and cooperative cancellation.
//!
//! A request carries a [`RequestCtx`]: an absolute [`Deadline`] plus a
//! shared [`CancelToken`]. Shard tasks call [`RequestCtx::check`]
//! between row chunks (see [`crate::service::CHUNK_ROWS`]), so an
//! expired or cancelled request stops burning worker time within one
//! chunk instead of running to completion.

use crate::error::SvcError;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// An absolute expiry time; `Deadline::none()` never expires.
#[derive(Clone, Copy, Debug)]
pub struct Deadline {
    expires_at: Option<Instant>,
}

impl Deadline {
    /// A deadline that never expires.
    pub fn none() -> Self {
        Deadline { expires_at: None }
    }

    /// Expires `budget` from now.
    pub fn within(budget: Duration) -> Self {
        Deadline {
            expires_at: Some(Instant::now() + budget),
        }
    }

    /// Expires at the given instant.
    pub fn at(instant: Instant) -> Self {
        Deadline {
            expires_at: Some(instant),
        }
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        self.expires_at.is_some_and(|t| Instant::now() >= t)
    }

    /// Time left, or `None` for an unbounded deadline. A passed
    /// deadline reports `Some(Duration::ZERO)`.
    pub fn remaining(&self) -> Option<Duration> {
        self.expires_at
            .map(|t| t.saturating_duration_since(Instant::now()))
    }
}

/// A shared cancellation flag; cloning shares the flag.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raises the flag; every clone observes it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether [`Self::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Everything a shard task needs to decide whether to keep working.
/// Cloning shares the cancellation flag and the trace (the deadline is
/// `Copy`).
#[derive(Clone, Debug)]
pub struct RequestCtx {
    /// The request's absolute deadline.
    pub deadline: Deadline,
    cancel: CancelToken,
    trace: obs::TraceCtx,
}

impl RequestCtx {
    /// A context with the given deadline and a fresh cancel flag.
    pub fn new(deadline: Deadline) -> Self {
        RequestCtx {
            deadline,
            cancel: CancelToken::new(),
            trace: obs::TraceCtx::disabled(),
        }
    }

    /// A context carrying a caller-owned trace: the service records
    /// request spans into it but does **not** finish it — the caller
    /// decides when the trace is complete (e.g. after retries) and
    /// calls [`crate::Service::finish_trace`]. Without this, the
    /// service starts and finishes one trace per request by itself.
    pub fn traced(deadline: Deadline, trace: obs::TraceCtx) -> Self {
        RequestCtx {
            deadline,
            cancel: CancelToken::new(),
            trace,
        }
    }

    /// The trace this request records into (disabled by default).
    pub fn trace(&self) -> &obs::TraceCtx {
        &self.trace
    }

    /// Cancels every task sharing this context.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Whether the context was cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.is_cancelled()
    }

    /// The between-chunks liveness check: `Err(Cancelled)` once the
    /// flag is raised, `Err(DeadlineExceeded)` once the deadline
    /// passes, `Ok(())` otherwise.
    pub fn check(&self) -> Result<(), SvcError> {
        if self.is_cancelled() {
            return Err(SvcError::Cancelled);
        }
        if self.deadline.expired() {
            return Err(SvcError::DeadlineExceeded);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_deadline_never_expires() {
        let d = Deadline::none();
        assert!(!d.expired());
        assert_eq!(d.remaining(), None);
    }

    #[test]
    fn elapsed_deadline_expires() {
        let d = Deadline::at(Instant::now() - Duration::from_millis(1));
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
        let ctx = RequestCtx::new(d);
        assert_eq!(ctx.check(), Err(SvcError::DeadlineExceeded));
    }

    #[test]
    fn future_deadline_counts_down() {
        let d = Deadline::within(Duration::from_secs(3600));
        assert!(!d.expired());
        assert!(d.remaining().unwrap() > Duration::from_secs(3000));
        assert_eq!(RequestCtx::new(d).check(), Ok(()));
    }

    #[test]
    fn cancellation_is_shared_and_wins_over_deadline() {
        let ctx = RequestCtx::new(Deadline::at(Instant::now() - Duration::from_millis(1)));
        let clone = ctx.clone();
        clone.cancel();
        assert!(ctx.is_cancelled());
        // Cancelled reported even though the deadline also passed.
        assert_eq!(ctx.check(), Err(SvcError::Cancelled));
    }
}
