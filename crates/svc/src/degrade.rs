//! Graceful degradation: shard quarantine and the `Degraded` marker.
//!
//! The AB's contract is *no false negatives*. When a shard panics
//! mid-query, the service cannot produce that shard's candidate rows —
//! but it **can** stay on the right side of the contract by answering
//! the shard's slice of the query conservatively: every row the query
//! touches in that shard is reported as *maybe present*. Recall stays
//! at 100% (the false-positive rate degrades to 1.0 for those rows,
//! which the AB's semantics already permit), the request succeeds, and
//! the response carries a typed [`Degraded`] marker naming the shards
//! answered conservatively so callers can decide whether that
//! precision is acceptable.
//!
//! [`ShardHealth`] is the quarantine ledger: a shard that panics is
//! marked unhealthy, later requests skip dispatching to it (answering
//! conservatively up front instead of panicking again), and a repair —
//! [`crate::ShardedIndex::from_bytes_with_repair`] for persisted
//! corruption, or [`ShardHealth::clear`] after an operator intervenes
//! on a transient fault — returns it to service.

use std::sync::atomic::{AtomicBool, Ordering};

/// Typed marker on a response whose listed shards were answered
/// conservatively (every queried row reported *maybe present*) instead
/// of from their index.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Degraded {
    /// Quarantined shards that contributed conservative answers, in
    /// ascending order, deduplicated.
    pub shards: Vec<usize>,
}

/// A service answer plus its degradation status.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response<T> {
    /// The merged answer (conservative where degraded — never missing
    /// a true match).
    pub value: T,
    /// Present when at least one shard was answered conservatively.
    pub degraded: Option<Degraded>,
}

impl<T> Response<T> {
    /// A fully healthy response.
    pub fn healthy(value: T) -> Self {
        Response {
            value,
            degraded: None,
        }
    }

    /// Whether any shard was answered conservatively.
    pub fn is_degraded(&self) -> bool {
        self.degraded.is_some()
    }

    /// Unwraps the answer, discarding the degradation marker.
    pub fn into_value(self) -> T {
        self.value
    }
}

/// Builds the [`Degraded`] marker from collected shard ids (sorted,
/// deduplicated); `None` when the list is empty.
pub(crate) fn degraded_marker(mut shards: Vec<usize>) -> Option<Degraded> {
    if shards.is_empty() {
        return None;
    }
    shards.sort_unstable();
    shards.dedup();
    obs::counter!("svc.degraded_responses").inc();
    Some(Degraded { shards })
}

/// Lock-free per-shard quarantine flags (true = quarantined).
#[derive(Debug, Default)]
pub struct ShardHealth {
    quarantined: Vec<AtomicBool>,
}

impl ShardHealth {
    /// All-healthy ledger for `num_shards` shards.
    pub fn new(num_shards: usize) -> Self {
        ShardHealth {
            quarantined: (0..num_shards).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    /// Shards tracked.
    pub fn len(&self) -> usize {
        self.quarantined.len()
    }

    /// Whether the ledger tracks zero shards.
    pub fn is_empty(&self) -> bool {
        self.quarantined.is_empty()
    }

    /// Marks a shard unhealthy; returns `true` if it was healthy
    /// before (i.e. this call is the one that quarantined it).
    pub fn quarantine(&self, shard: usize) -> bool {
        let newly = !self.quarantined[shard].swap(true, Ordering::Relaxed);
        if newly {
            obs::counter!("svc.shard_quarantines").inc();
        }
        newly
    }

    /// Returns a repaired shard to service.
    pub fn clear(&self, shard: usize) {
        self.quarantined[shard].store(false, Ordering::Relaxed);
    }

    /// Whether the shard is quarantined.
    pub fn is_quarantined(&self, shard: usize) -> bool {
        self.quarantined[shard].load(Ordering::Relaxed)
    }

    /// Currently quarantined shard ids, ascending.
    pub fn quarantined(&self) -> Vec<usize> {
        self.quarantined
            .iter()
            .enumerate()
            .filter(|(_, q)| q.load(Ordering::Relaxed))
            .map(|(i, _)| i)
            .collect()
    }

    /// Whether every shard is healthy.
    pub fn all_healthy(&self) -> bool {
        self.quarantined.iter().all(|q| !q.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quarantine_lifecycle() {
        let h = ShardHealth::new(4);
        assert!(h.all_healthy());
        assert_eq!(h.len(), 4);
        assert!(h.quarantine(2), "first quarantine is new");
        assert!(!h.quarantine(2), "second is idempotent");
        assert!(h.is_quarantined(2));
        assert!(!h.is_quarantined(0));
        assert_eq!(h.quarantined(), vec![2]);
        h.quarantine(0);
        assert_eq!(h.quarantined(), vec![0, 2]);
        h.clear(2);
        assert_eq!(h.quarantined(), vec![0]);
        h.clear(0);
        assert!(h.all_healthy());
    }

    #[test]
    fn degraded_marker_sorts_and_dedups() {
        assert_eq!(degraded_marker(vec![]), None);
        assert_eq!(
            degraded_marker(vec![3, 1, 3, 0]),
            Some(Degraded {
                shards: vec![0, 1, 3]
            })
        );
    }

    #[test]
    fn response_accessors() {
        let r = Response::healthy(vec![1usize, 2]);
        assert!(!r.is_degraded());
        assert_eq!(r.into_value(), vec![1, 2]);
        let d = Response {
            value: 7usize,
            degraded: degraded_marker(vec![1]),
        };
        assert!(d.is_degraded());
    }
}
