//! Deterministic fault injection for the query service.
//!
//! A [`FaultPlan`] is a seeded registry of [`FaultRule`]s keyed by
//! **named injection points** ([`points`]) that the service evaluates
//! at well-defined moments: before a shard job runs, at pool
//! submission, inside a `CountingService` mutation (while the write
//! lock is held — the nastiest place to die), and over serialized
//! index bytes before decode. Firing decisions come from a
//! `splitmix64` stream over `(seed, point, hit index)`, so a plan with
//! a fixed seed injects a reproducible *sequence* of faults without
//! any `rand` dependency — the substrate of the chaos test suite and
//! CI's `chaos-smoke` job.
//!
//! Everything here is compiled out under the `chaos-off` feature:
//! [`inject`] and [`corrupt`] become empty inline functions, so
//! production builds that opt out carry zero branches at the
//! injection points.
//!
//! Faults on offer:
//!
//! * [`Fault::Panic`] — `panic!` at the point (exercises quarantine
//!   and lock-poison recovery);
//! * [`Fault::Latency`] — sleep, for deadline/cancellation races;
//! * [`Fault::Overloaded`] — spurious load-shed, for retry/backoff;
//! * [`Fault::FlipByte`] — flip one deterministic byte of a byte
//!   stream (decode-time corruption; only [`corrupt`] applies it).

use crate::error::SvcError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Named injection points wired into the service.
pub mod points {
    /// Runs at the start of every shard query job, on the worker
    /// thread — a [`super::Fault::Panic`] here simulates a shard
    /// panicking mid-query.
    pub const SHARD_QUERY: &str = "shard.query";
    /// Runs at request fan-out, before each pool submission — a
    /// [`super::Fault::Overloaded`] here simulates spurious shedding.
    pub const POOL_SUBMIT: &str = "pool.submit";
    /// Runs inside `CountingService` mutations while the shard's
    /// write lock is held — a [`super::Fault::Panic`] here poisons
    /// the `RwLock`.
    pub const COUNTING_WRITE: &str = "counting.write";
    /// Applied by [`super::corrupt`] to serialized index bytes before
    /// decode — simulates bit-rot on the persistence path.
    pub const IO_DECODE: &str = "io.decode";
    /// Segment-store write path, step 1: creating the temp file
    /// ([`store::SegmentIo::create`]).
    pub const STORE_CREATE: &str = "store.create";
    /// Segment-store write path, step 2: writing the page image
    /// ([`store::SegmentIo::write_all`]). A [`super::Fault::ShortWrite`]
    /// here leaves a torn temp file; a [`super::Fault::FlipByte`]
    /// writes a silently-corrupted image that must fail CRC at open.
    pub const STORE_WRITE: &str = "store.write";
    /// Segment-store write path, step 3: fsync of the temp file
    /// ([`store::SegmentIo::sync_file`]).
    pub const STORE_SYNC_FILE: &str = "store.sync_file";
    /// Segment-store write path, step 4: the atomic rename
    /// ([`store::SegmentIo::rename`]).
    pub const STORE_RENAME: &str = "store.rename";
    /// Segment-store write path, step 5: fsync of the directory
    /// ([`store::SegmentIo::sync_dir`]).
    pub const STORE_SYNC_DIR: &str = "store.sync_dir";
}

/// What happens when a rule fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// `panic!` at the injection point.
    Panic,
    /// Sleep for the given duration before proceeding.
    Latency(Duration),
    /// Return a spurious [`SvcError::Overloaded`] (depth/capacity 0
    /// mark it as injected rather than a real queue observation).
    Overloaded,
    /// XOR one deterministically-chosen byte of the stream with the
    /// given mask (only meaningful at byte-stream points; see
    /// [`corrupt`]).
    FlipByte {
        /// Mask XORed into the chosen byte (must be non-zero to have
        /// any effect).
        xor: u8,
    },
    /// Fail the syscall with a simulated `EIO` (only meaningful at the
    /// `store.*` points, where [`ChaosSegmentIo`] applies it — a
    /// crashed writer is indistinguishable from one whose syscall
    /// errored and aborted, which is exactly what the crash-matrix
    /// test leans on).
    Eio,
    /// Write only the first half of the buffer, then fail — a torn
    /// write (only meaningful at [`points::STORE_WRITE`]).
    ShortWrite,
}

/// One injection rule: where, what, how often, and for how long.
#[derive(Clone, Copy, Debug)]
#[cfg_attr(feature = "chaos-off", allow(dead_code))]
pub struct FaultRule {
    point: &'static str,
    fault: Fault,
    one_in: u64,
    shard: Option<usize>,
    max_fires: u64,
}

impl FaultRule {
    /// A rule that fires on **every** hit of `point` until capped.
    pub fn new(point: &'static str, fault: Fault) -> Self {
        FaultRule {
            point,
            fault,
            one_in: 1,
            shard: None,
            max_fires: 0,
        }
    }

    /// Fire on (deterministically) one in `n` hits instead of every
    /// hit.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn one_in(mut self, n: u64) -> Self {
        assert!(n >= 1, "one_in needs n >= 1");
        self.one_in = n;
        self
    }

    /// Restrict the rule to hits tagged with this shard id.
    pub fn on_shard(mut self, shard: usize) -> Self {
        self.shard = Some(shard);
        self
    }

    /// Stop firing after `n` fires (0 = unlimited).
    pub fn max_fires(mut self, n: u64) -> Self {
        self.max_fires = n;
        self
    }
}

#[derive(Debug)]
struct RuleState {
    rule: FaultRule,
    hits: AtomicU64,
    fires: AtomicU64,
}

/// A seeded registry of fault rules. Shared (via `Arc`) with the
/// services whose injection points it should drive; absent a plan,
/// every injection point is a no-op.
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<RuleState>,
}

impl FaultPlan {
    /// An empty plan with the given PRNG seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Adds a rule (builder style).
    pub fn with_rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(RuleState {
            rule,
            hits: AtomicU64::new(0),
            fires: AtomicU64::new(0),
        });
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Total times any rule at `point` has fired.
    pub fn fires(&self, point: &str) -> u64 {
        self.rules
            .iter()
            .filter(|r| r.rule.point == point)
            .map(|r| r.fires.load(Ordering::Relaxed))
            .sum()
    }

    /// Total times `point` has been evaluated (fired or not).
    pub fn hits(&self, point: &str) -> u64 {
        self.rules
            .iter()
            .filter(|r| r.rule.point == point)
            .map(|r| r.hits.load(Ordering::Relaxed))
            .sum()
    }

    /// Evaluates every matching rule at a point; first rule to fire
    /// wins. Deterministic in the seed and per-rule hit index.
    #[cfg_attr(feature = "chaos-off", allow(dead_code))]
    fn decide(&self, point: &str, shard: Option<usize>) -> Option<Fault> {
        for rs in &self.rules {
            if rs.rule.point != point {
                continue;
            }
            if rs.rule.shard.is_some() && rs.rule.shard != shard {
                continue;
            }
            let hit = rs.hits.fetch_add(1, Ordering::Relaxed);
            let fire = rs.rule.one_in <= 1
                || hashkit::splitmix64(self.seed ^ mix_str(point) ^ hit)
                    .is_multiple_of(rs.rule.one_in);
            if !fire {
                continue;
            }
            if rs.rule.max_fires > 0 {
                let admitted = rs
                    .fires
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |f| {
                        (f < rs.rule.max_fires).then_some(f + 1)
                    })
                    .is_ok();
                if !admitted {
                    continue;
                }
            } else {
                rs.fires.fetch_add(1, Ordering::Relaxed);
            }
            obs::counter!("svc.chaos.injected").inc();
            return Some(rs.rule.fault);
        }
        None
    }
}

/// FNV-1a over the point name, to decorrelate per-point streams.
#[cfg_attr(feature = "chaos-off", allow(dead_code))]
fn mix_str(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Evaluates an injection point: may panic, sleep, or return a
/// spurious typed error according to the plan. `None` plan — and any
/// byte-flip fault, which only [`corrupt`] applies — is a no-op.
#[cfg(not(feature = "chaos-off"))]
pub fn inject(
    plan: Option<&FaultPlan>,
    point: &'static str,
    shard: Option<usize>,
) -> Result<(), SvcError> {
    let Some(plan) = plan else { return Ok(()) };
    match plan.decide(point, shard) {
        // Byte-stream and syscall faults are applied by `corrupt` and
        // `ChaosSegmentIo` respectively, not here.
        None | Some(Fault::FlipByte { .. } | Fault::Eio | Fault::ShortWrite) => Ok(()),
        Some(Fault::Panic) => panic!("chaos: injected panic at {point} (shard {shard:?})"),
        Some(Fault::Latency(d)) => {
            std::thread::sleep(d);
            Ok(())
        }
        Some(Fault::Overloaded) => Err(SvcError::Overloaded {
            depth: 0,
            capacity: 0,
        }),
    }
}

/// No-op injection point (`chaos-off` build).
#[cfg(feature = "chaos-off")]
#[inline(always)]
pub fn inject(
    _plan: Option<&FaultPlan>,
    _point: &'static str,
    _shard: Option<usize>,
) -> Result<(), SvcError> {
    Ok(())
}

/// Applies a byte-flip fault to a serialized byte stream: when a
/// [`Fault::FlipByte`] rule at `point` fires, one deterministically
/// chosen byte is XORed with the rule's mask. Returns the flipped
/// offset, `None` when nothing fired (or under `chaos-off`).
#[cfg(not(feature = "chaos-off"))]
pub fn corrupt(plan: Option<&FaultPlan>, point: &'static str, bytes: &mut [u8]) -> Option<usize> {
    let plan = plan?;
    if bytes.is_empty() {
        return None;
    }
    match plan.decide(point, None) {
        Some(Fault::FlipByte { xor }) => {
            let hit = plan.hits(point);
            let off = (hashkit::splitmix64(plan.seed ^ mix_str(point) ^ hit) % bytes.len() as u64)
                as usize;
            bytes[off] ^= xor;
            Some(off)
        }
        _ => None,
    }
}

/// No-op corruption (`chaos-off` build).
#[cfg(feature = "chaos-off")]
#[inline(always)]
pub fn corrupt(
    _plan: Option<&FaultPlan>,
    _point: &'static str,
    _bytes: &mut [u8],
) -> Option<usize> {
    None
}

/// A fault-injecting [`store::SegmentIo`]: forwards every syscall to
/// [`store::RealIo`] unless a rule at the matching `store.*` point
/// fires first. [`Fault::Eio`] fails the call before it runs (after
/// the rename for [`points::STORE_SYNC_DIR`] — by then the new file
/// has already landed, which is the point: durability of the *name*
/// is the last thing to become crash-safe). [`Fault::ShortWrite`]
/// tears the image write half-way; [`Fault::FlipByte`] silently
/// corrupts one byte of the written image, which must then fail CRC
/// verification at open. [`Fault::Panic`] and [`Fault::Latency`] act
/// as at any other point. Under `chaos-off` every method is a plain
/// delegation.
#[derive(Debug)]
pub struct ChaosSegmentIo {
    plan: std::sync::Arc<FaultPlan>,
}

impl ChaosSegmentIo {
    /// Wraps the real syscalls with this plan's `store.*` rules.
    pub fn new(plan: std::sync::Arc<FaultPlan>) -> Self {
        ChaosSegmentIo { plan }
    }

    #[cfg(not(feature = "chaos-off"))]
    fn decide(&self, point: &'static str) -> Option<Fault> {
        match self.plan.decide(point, None) {
            Some(Fault::Panic) => panic!("chaos: injected panic at {point}"),
            Some(Fault::Latency(d)) => {
                std::thread::sleep(d);
                None
            }
            decision => decision,
        }
    }

    #[cfg(feature = "chaos-off")]
    #[inline(always)]
    fn decide(&self, _point: &'static str) -> Option<Fault> {
        None
    }
}

/// The simulated-syscall-failure error every injected store fault
/// surfaces as.
fn injected_eio(point: &'static str) -> std::io::Error {
    std::io::Error::other(format!("chaos: injected EIO at {point}"))
}

impl store::SegmentIo for ChaosSegmentIo {
    fn create(&self, path: &std::path::Path) -> std::io::Result<std::fs::File> {
        if self.decide(points::STORE_CREATE).is_some() {
            return Err(injected_eio(points::STORE_CREATE));
        }
        store::RealIo.create(path)
    }

    fn write_all(&self, file: &mut std::fs::File, buf: &[u8]) -> std::io::Result<()> {
        match self.decide(points::STORE_WRITE) {
            Some(Fault::ShortWrite) => {
                store::RealIo.write_all(file, &buf[..buf.len() / 2])?;
                Err(injected_eio(points::STORE_WRITE))
            }
            Some(Fault::FlipByte { xor }) => {
                let mut torn = buf.to_vec();
                if !torn.is_empty() {
                    let hit = self.plan.hits(points::STORE_WRITE);
                    let off =
                        hashkit::splitmix64(self.plan.seed ^ mix_str(points::STORE_WRITE) ^ hit)
                            % torn.len() as u64;
                    torn[off as usize] ^= xor;
                }
                store::RealIo.write_all(file, &torn)
            }
            Some(_) => Err(injected_eio(points::STORE_WRITE)),
            None => store::RealIo.write_all(file, buf),
        }
    }

    fn sync_file(&self, file: &std::fs::File) -> std::io::Result<()> {
        if self.decide(points::STORE_SYNC_FILE).is_some() {
            return Err(injected_eio(points::STORE_SYNC_FILE));
        }
        store::RealIo.sync_file(file)
    }

    fn rename(&self, from: &std::path::Path, to: &std::path::Path) -> std::io::Result<()> {
        if self.decide(points::STORE_RENAME).is_some() {
            return Err(injected_eio(points::STORE_RENAME));
        }
        store::RealIo.rename(from, to)
    }

    fn sync_dir(&self, dir: &std::path::Path) -> std::io::Result<()> {
        // Real syscall first: an injected failure here models a crash
        // *after* the rename landed — new state, durability pending.
        store::RealIo.sync_dir(dir)?;
        if self.decide(points::STORE_SYNC_DIR).is_some() {
            return Err(injected_eio(points::STORE_SYNC_DIR));
        }
        Ok(())
    }
}

#[cfg(all(test, not(feature = "chaos-off")))]
mod tests {
    use super::*;

    #[test]
    fn always_rule_fires_every_hit() {
        let plan =
            FaultPlan::new(7).with_rule(FaultRule::new(points::POOL_SUBMIT, Fault::Overloaded));
        for _ in 0..5 {
            assert_eq!(
                inject(Some(&plan), points::POOL_SUBMIT, None),
                Err(SvcError::Overloaded {
                    depth: 0,
                    capacity: 0
                })
            );
        }
        assert_eq!(plan.fires(points::POOL_SUBMIT), 5);
        // Other points are untouched.
        assert_eq!(inject(Some(&plan), points::SHARD_QUERY, None), Ok(()));
        assert_eq!(inject(None, points::POOL_SUBMIT, None), Ok(()));
    }

    #[test]
    fn one_in_n_is_deterministic_for_a_seed() {
        let run = |seed: u64| {
            let plan = FaultPlan::new(seed)
                .with_rule(FaultRule::new(points::POOL_SUBMIT, Fault::Overloaded).one_in(4));
            (0..64)
                .map(|_| inject(Some(&plan), points::POOL_SUBMIT, None).is_err())
                .collect::<Vec<bool>>()
        };
        let a = run(42);
        assert_eq!(a, run(42), "same seed, same firing sequence");
        assert_ne!(a, run(43), "different seed, different sequence");
        let fired = a.iter().filter(|&&f| f).count();
        assert!(fired > 0 && fired < 64, "1-in-4 fired {fired}/64");
    }

    #[test]
    fn shard_filter_and_fire_cap_apply() {
        let plan = FaultPlan::new(1).with_rule(
            FaultRule::new(points::SHARD_QUERY, Fault::Overloaded)
                .on_shard(2)
                .max_fires(3),
        );
        for _ in 0..10 {
            assert_eq!(inject(Some(&plan), points::SHARD_QUERY, Some(1)), Ok(()));
        }
        let mut fired = 0;
        for _ in 0..10 {
            if inject(Some(&plan), points::SHARD_QUERY, Some(2)).is_err() {
                fired += 1;
            }
        }
        assert_eq!(fired, 3, "max_fires cap");
        assert_eq!(plan.fires(points::SHARD_QUERY), 3);
    }

    #[test]
    #[should_panic(expected = "chaos: injected panic")]
    fn panic_fault_panics() {
        let plan = FaultPlan::new(0).with_rule(FaultRule::new(points::SHARD_QUERY, Fault::Panic));
        let _ = inject(Some(&plan), points::SHARD_QUERY, Some(0));
    }

    #[test]
    fn latency_fault_sleeps_and_continues() {
        let plan = FaultPlan::new(0).with_rule(FaultRule::new(
            points::SHARD_QUERY,
            Fault::Latency(Duration::from_millis(5)),
        ));
        let start = std::time::Instant::now();
        assert_eq!(inject(Some(&plan), points::SHARD_QUERY, None), Ok(()));
        assert!(start.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn corrupt_flips_exactly_one_byte_deterministically() {
        let original: Vec<u8> = (0..=255u8).collect();
        let flip = |seed: u64| {
            let plan = FaultPlan::new(seed).with_rule(FaultRule::new(
                points::IO_DECODE,
                Fault::FlipByte { xor: 0xFF },
            ));
            let mut bytes = original.clone();
            let off = corrupt(Some(&plan), points::IO_DECODE, &mut bytes);
            (off, bytes)
        };
        let (off_a, bytes_a) = flip(9);
        let (off_b, bytes_b) = flip(9);
        assert_eq!(off_a, off_b);
        assert_eq!(bytes_a, bytes_b);
        let diffs = original
            .iter()
            .zip(&bytes_a)
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(diffs, 1);
        assert_eq!(
            off_a.unwrap(),
            original
                .iter()
                .zip(&bytes_a)
                .position(|(a, b)| a != b)
                .unwrap()
        );
        // Panic/latency rules never touch bytes.
        let plan = FaultPlan::new(0).with_rule(FaultRule::new(points::IO_DECODE, Fault::Panic));
        let mut bytes = original.clone();
        assert_eq!(corrupt(Some(&plan), points::IO_DECODE, &mut bytes), None);
        assert_eq!(bytes, original);
        assert_eq!(corrupt(None, points::IO_DECODE, &mut bytes), None);
    }
}
