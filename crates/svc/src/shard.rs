//! Row-range sharding of an AB index.
//!
//! Roaring-style partitioning applied to the AB: the row space is
//! split into `S` contiguous ranges (via [`ab::shard_ranges`]), and
//! each shard holds its own [`AbIndex`] over its rows (renumbered from
//! 0), optionally alongside a WAH index for exact second-step answers.
//! Shards share nothing, so they build and query independently — the
//! unit of parallelism for the [`crate::Service`].
//!
//! Row-range (not hash) partitioning keeps the paper's query shapes
//! cheap: a rectangular query's row interval intersects only the
//! shards it overlaps, and merged results come back globally sorted
//! because shards are ordered.

use crate::pool::WorkerPool;
use ab::{AbConfig, AbIndex, AttributeMeta, HierConfig, QueryError};
use bitmap::{BinnedTable, RectQuery};
use std::sync::mpsc;

/// One row-range shard: `[start, end)` of the global row space plus
/// the indexes over those rows.
#[derive(Clone, Debug)]
pub struct Shard {
    start: usize,
    end: usize,
    index: AbIndex,
    wah: Option<wah::WahIndex>,
}

impl Shard {
    /// First global row covered (inclusive).
    pub fn start(&self) -> usize {
        self.start
    }

    /// One past the last global row covered.
    pub fn end(&self) -> usize {
        self.end
    }

    /// Number of rows in the shard.
    pub fn rows(&self) -> usize {
        self.end - self.start
    }

    /// The shard's AB index (rows numbered from 0).
    pub fn index(&self) -> &AbIndex {
        &self.index
    }

    /// The shard's WAH index, when built with `with_wah`.
    pub fn wah(&self) -> Option<&wah::WahIndex> {
        self.wah.as_ref()
    }
}

/// A complete row-range-sharded index.
#[derive(Clone, Debug)]
pub struct ShardedIndex {
    shards: Vec<Shard>,
    num_rows: usize,
    attributes: Vec<AttributeMeta>,
}

impl ShardedIndex {
    /// Builds `num_shards` shards sequentially on the calling thread.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` is zero or exceeds the row count, plus
    /// the [`AbIndex::build`] panics.
    pub fn build(
        table: &BinnedTable,
        config: &AbConfig,
        num_shards: usize,
        with_wah: bool,
    ) -> Self {
        let shards = ab::shard_ranges(table.num_rows(), num_shards)
            .into_iter()
            .map(|r| {
                let sub = table.slice_rows(r.clone());
                Shard {
                    start: r.start,
                    end: r.end,
                    index: AbIndex::build(&sub, config),
                    wah: with_wah.then(|| wah::WahIndex::build(&sub)),
                }
            })
            .collect();
        Self::assemble(shards, table.num_rows())
    }

    /// Builds the shards in parallel on `pool`, one job per shard.
    /// Bit-identical to [`Self::build`]; submission blocks (rather
    /// than sheds) when the pool queue is full, since an index build
    /// is foreground work.
    ///
    /// # Panics
    ///
    /// Panics as [`Self::build`] does, or if the pool shuts down
    /// mid-build.
    pub fn build_parallel(
        table: &BinnedTable,
        config: &AbConfig,
        num_shards: usize,
        with_wah: bool,
        pool: &WorkerPool,
    ) -> Self {
        let ranges = ab::shard_ranges(table.num_rows(), num_shards);
        let (tx, rx) = mpsc::channel();
        for (i, r) in ranges.iter().enumerate() {
            // Slice on the caller thread (cheap copy of the bin
            // vectors) so the job owns everything it touches.
            let sub = table.slice_rows(r.clone());
            let config = config.clone();
            let tx = tx.clone();
            pool.execute_blocking(move || {
                let index = AbIndex::build(&sub, &config);
                let wah = with_wah.then(|| wah::WahIndex::build(&sub));
                let _ = tx.send((i, index, wah));
            })
            .expect("worker pool shut down during build");
        }
        drop(tx);
        let mut built: Vec<Option<(AbIndex, Option<wah::WahIndex>)>> =
            (0..ranges.len()).map(|_| None).collect();
        for (i, index, wah) in rx {
            built[i] = Some((index, wah));
        }
        let shards = ranges
            .into_iter()
            .zip(built)
            .map(|(r, b)| {
                let (index, wah) = b.expect("a shard build job was lost");
                Shard {
                    start: r.start,
                    end: r.end,
                    index,
                    wah,
                }
            })
            .collect();
        Self::assemble(shards, table.num_rows())
    }

    fn assemble(shards: Vec<Shard>, num_rows: usize) -> Self {
        let attributes = shards[0].index.attributes().to_vec();
        ShardedIndex {
            shards,
            num_rows,
            attributes,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total rows covered.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Attribute metadata (identical across shards).
    pub fn attributes(&self) -> &[AttributeMeta] {
        &self.attributes
    }

    /// The shards, in row order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Total AB storage across shards, in bytes.
    pub fn size_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.index.size_bytes()).sum()
    }

    /// Attaches a hierarchical pruning pyramid to every shard that
    /// lacks one (see [`AbIndex::ensure_hier`]). The probe-sweep build
    /// is deterministic per shard, so calling this after a
    /// [`Self::from_bytes`] of a pre-pyramid envelope produces the
    /// same pyramids a build-time attach would have.
    pub fn ensure_hier(&mut self, config: &HierConfig) {
        for shard in &mut self.shards {
            shard.index.ensure_hier(config);
        }
    }

    /// Attaches a hybrid exact tier to every shard that lacks one (see
    /// [`AbIndex::ensure_hybrid`]), each built over its own row slice
    /// of `table`. Deterministic per shard, so attaching after a
    /// [`Self::from_bytes`] of a pre-hybrid envelope produces the same
    /// containers a build-time attach would have.
    ///
    /// # Panics
    ///
    /// Panics if `table` does not cover this index's rows.
    pub fn ensure_hybrid(&mut self, table: &BinnedTable, config: &ab::HybridConfig) {
        assert_eq!(
            table.num_rows(),
            self.num_rows,
            "table/index row count mismatch"
        );
        for shard in &mut self.shards {
            let slice = table.slice_rows(shard.start..shard.end);
            shard.index.ensure_hybrid(&slice, config);
        }
    }

    /// Replays every shard tier's split decisions into the
    /// `planner.split.{exact,ab}` counters — used when serving
    /// pre-built tiers loaded from storage, where no in-process build
    /// recorded them (see [`ab::HybridAb::record_split_counters`]).
    pub fn record_hybrid_split_counters(&self) {
        for shard in &self.shards {
            if let Some(hy) = shard.index.hybrid() {
                hy.record_split_counters();
            }
        }
    }

    /// Per-shard exact-tier split statistics for telemetry:
    /// `(backed bins, total bins, container bytes)` per shard, `None`
    /// for shards without a tier.
    pub fn hybrid_split_stats(&self) -> Vec<Option<(usize, u32, usize)>> {
        self.shards
            .iter()
            .map(|s| {
                s.index
                    .hybrid()
                    .map(|hy| (hy.bins().len(), hy.total_bins(), hy.size_bytes()))
            })
            .collect()
    }

    /// Which shard covers the given global row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn shard_of_row(&self, row: usize) -> usize {
        assert!(
            row < self.num_rows,
            "row {row} out of range {}",
            self.num_rows
        );
        self.shards.partition_point(|s| s.end <= row)
    }

    /// Splits a rectangular query into `(shard id, shard-local
    /// query)` parts, one per shard its row interval overlaps. Local
    /// row `r` of shard `i` is global row `shards()[i].start() + r`.
    pub fn split_rect(&self, query: &RectQuery) -> Vec<(usize, RectQuery)> {
        let first = self.shard_of_row(query.row_lo.min(self.num_rows - 1));
        self.shards[first..]
            .iter()
            .enumerate()
            .take_while(|(_, s)| s.start <= query.row_hi)
            .map(|(off, s)| {
                let lo = query.row_lo.max(s.start) - s.start;
                let hi = query.row_hi.min(s.end - 1) - s.start;
                (first + off, RectQuery::new(query.ranges.clone(), lo, hi))
            })
            .collect()
    }

    /// Validates a query against the global row count and attribute
    /// cardinalities — the same checks [`AbIndex::try_execute_rect`]
    /// performs, hoisted so they run once per request instead of once
    /// per shard.
    pub fn validate_rect(&self, query: &RectQuery) -> Result<(), QueryError> {
        if query.row_hi >= self.num_rows {
            return Err(QueryError::RowOutOfRange {
                row: query.row_hi,
                num_rows: self.num_rows,
            });
        }
        for r in &query.ranges {
            let card = self
                .attributes
                .get(r.attribute)
                .map(|a| a.cardinality)
                .unwrap_or(0);
            if r.hi >= card {
                return Err(QueryError::BinOutOfRange {
                    attribute: r.attribute,
                    bin: r.hi,
                    cardinality: card,
                });
            }
        }
        Ok(())
    }

    /// Single-threaded reference execution: runs every shard part in
    /// row order on the calling thread and concatenates. The merge
    /// correctness contract is that [`crate::Service::query_rect`]
    /// returns exactly this, bit for bit, for any worker count.
    pub fn execute_rect_sequential(&self, query: &RectQuery) -> Result<Vec<usize>, QueryError> {
        self.validate_rect(query)?;
        let mut out = Vec::new();
        for (sid, local) in self.split_rect(query) {
            let shard = &self.shards[sid];
            out.extend(
                shard
                    .index
                    .try_execute_rect(&local)?
                    .into_iter()
                    .map(|r| r + shard.start),
            );
        }
        Ok(out)
    }

    /// Serializes the shard layout as an `ABSH` envelope (WAH indexes
    /// are rebuildable from data and are not persisted).
    pub fn to_bytes(&self) -> Vec<u8> {
        let segments: Vec<(u64, &AbIndex)> = self
            .shards
            .iter()
            .map(|s| (s.start as u64, &s.index))
            .collect();
        ab::shards_to_bytes(&segments)
    }

    /// Reassembles a sharded index from [`Self::to_bytes`] output.
    pub fn from_bytes(data: &[u8]) -> Result<Self, ab::IoError> {
        let segments = ab::shards_from_bytes(data)?;
        let mut shards = Vec::with_capacity(segments.len());
        let mut num_rows = 0usize;
        for (start, index) in segments {
            let start = start as usize;
            num_rows = start + index.num_rows();
            shards.push(Shard {
                start,
                end: num_rows,
                index,
                wah: None,
            });
        }
        Ok(Self::assemble(shards, num_rows))
    }

    /// Loads an `ABSH` envelope, rebuilding — **only** — the shards
    /// whose segments fail their checksum or decode, from the source
    /// `table` with the original build `config`. Because AB builds are
    /// deterministic, a repaired shard is bit-identical to the one
    /// originally persisted. Returns the index plus the ids of the
    /// shards that were rebuilt (empty when the envelope was clean).
    ///
    /// Envelope-level damage (bad magic/version, truncation, segment
    /// count, out-of-order starts) is not repairable segment by
    /// segment and stays a hard error, as does a clean envelope whose
    /// layout disagrees with `table` (wrong row count or shard
    /// boundaries) — that is the wrong source data, not corruption.
    pub fn from_bytes_with_repair(
        data: &[u8],
        table: &BinnedTable,
        config: &AbConfig,
    ) -> Result<(Self, Vec<usize>), ab::IoError> {
        let segments = ab::shards_from_bytes_checked(data)?;
        let ranges = ab::shard_ranges(table.num_rows(), segments.len());
        let mut shards = Vec::with_capacity(segments.len());
        let mut repaired = Vec::new();
        for (sid, ((start, seg), r)) in segments.into_iter().zip(&ranges).enumerate() {
            let index = match seg {
                Ok(index) if start as usize == r.start && index.num_rows() == r.len() => index,
                Ok(_) => {
                    // Decoded fine but covers the wrong rows: the
                    // envelope does not belong to this table.
                    return Err(ab::IoError::BadShardLayout);
                }
                Err(_) => {
                    obs::counter!("svc.shard_repairs").inc();
                    repaired.push(sid);
                    AbIndex::build(&table.slice_rows(r.clone()), config)
                }
            };
            shards.push(Shard {
                start: r.start,
                end: r.end,
                index,
                wah: None,
            });
        }
        // A rebuilt shard lacks the hierarchical pyramid and hybrid
        // exact tier its persisted sibling shards carry. Both
        // constructions are deterministic (probe-sweep over the base
        // AB, plus the table slice for exact containers), so
        // rebuilding them with a clean sibling's configuration
        // restores the repaired segment byte-identically.
        if !repaired.is_empty() {
            let sibling_config = shards
                .iter()
                .enumerate()
                .filter(|(sid, _)| !repaired.contains(sid))
                .find_map(|(_, s)| s.index.hier().map(|h| h.config()));
            if let Some(config) = sibling_config {
                for &sid in &repaired {
                    shards[sid].index.ensure_hier(&config);
                }
            }
            let sibling_hybrid = shards
                .iter()
                .enumerate()
                .filter(|(sid, _)| !repaired.contains(sid))
                .find_map(|(_, s)| s.index.hybrid().map(|h| h.config()));
            if let Some(config) = sibling_hybrid {
                for &sid in &repaired {
                    let slice = table.slice_rows(ranges[sid].clone());
                    shards[sid].index.ensure_hybrid(&slice, &config);
                }
            }
        }
        Ok((Self::assemble(shards, table.num_rows()), repaired))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ab::Level;
    use bitmap::{AttrRange, BinnedColumn};

    fn table(n: usize) -> BinnedTable {
        BinnedTable::new(vec![
            BinnedColumn::new(
                "a",
                (0..n)
                    .map(|i| (hashkit::splitmix64(i as u64) % 5) as u32)
                    .collect(),
                5,
            ),
            BinnedColumn::new(
                "b",
                (0..n)
                    .map(|i| (hashkit::splitmix64(i as u64 ^ 0xF00) % 7) as u32)
                    .collect(),
                7,
            ),
        ])
    }

    fn cfg() -> AbConfig {
        AbConfig::new(Level::PerAttribute).with_alpha(8)
    }

    #[test]
    fn shard_of_row_matches_ranges() {
        let idx = ShardedIndex::build(&table(103), &cfg(), 7, false);
        for (i, s) in idx.shards().iter().enumerate() {
            assert_eq!(idx.shard_of_row(s.start()), i);
            assert_eq!(idx.shard_of_row(s.end() - 1), i);
        }
    }

    #[test]
    fn split_rect_covers_interval_exactly() {
        let idx = ShardedIndex::build(&table(100), &cfg(), 4, false);
        let q = RectQuery::new(vec![AttrRange::new(0, 0, 4)], 10, 80);
        let parts = idx.split_rect(&q);
        assert_eq!(parts.len(), 4); // shards are 25 rows each
        let mut covered = 0usize;
        for (sid, local) in &parts {
            let s = &idx.shards()[*sid];
            covered += local.num_rows();
            assert!(s.start() + local.row_hi < s.end());
        }
        assert_eq!(covered, 71);
        // A query inside one shard fans out to exactly one part.
        let q1 = RectQuery::new(vec![], 26, 49);
        assert_eq!(idx.split_rect(&q1).len(), 1);
    }

    #[test]
    fn sequential_execution_has_no_false_negatives() {
        let t = table(200);
        let idx = ShardedIndex::build(&t, &cfg(), 5, false);
        let exact = bitmap::BitmapIndex::build(&t, bitmap::Encoding::Equality);
        let q = RectQuery::new(
            vec![AttrRange::new(0, 1, 3), AttrRange::new(1, 0, 4)],
            20,
            180,
        );
        let got = idx.execute_rect_sequential(&q).unwrap();
        for r in exact.evaluate_rows(&q) {
            assert!(got.contains(&r), "shard layout missed row {r}");
        }
        // Globally sorted merge.
        assert!(got.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn one_shard_is_bit_identical_to_monolithic() {
        let t = table(64);
        let idx = ShardedIndex::build(&t, &cfg(), 1, false);
        let mono = AbIndex::build(&t, &cfg());
        let q = RectQuery::new(vec![AttrRange::new(1, 2, 5)], 0, 63);
        assert_eq!(
            idx.execute_rect_sequential(&q).unwrap(),
            mono.execute_rect(&q)
        );
        for (a, b) in idx.shards()[0].index().abs().iter().zip(mono.abs()) {
            assert_eq!(a.bits(), b.bits());
        }
    }

    #[test]
    fn parallel_build_is_bit_identical() {
        let t = table(150);
        let pool = WorkerPool::new(4, 16);
        let seq = ShardedIndex::build(&t, &cfg(), 6, false);
        let par = ShardedIndex::build_parallel(&t, &cfg(), 6, false, &pool);
        assert_eq!(par.num_shards(), seq.num_shards());
        for (a, b) in par.shards().iter().zip(seq.shards()) {
            assert_eq!(a.start(), b.start());
            for (x, y) in a.index().abs().iter().zip(b.index().abs()) {
                assert_eq!(x.bits(), y.bits());
            }
        }
    }

    #[test]
    fn wah_shards_give_exact_answers() {
        let t = table(120);
        let idx = ShardedIndex::build(&t, &cfg(), 3, true);
        let exact = bitmap::BitmapIndex::build(&t, bitmap::Encoding::Equality);
        let q = RectQuery::new(vec![AttrRange::new(0, 0, 2)], 0, 119);
        let mut got = Vec::new();
        for (sid, local) in idx.split_rect(&q) {
            let s = &idx.shards()[sid];
            got.extend(
                s.wah()
                    .unwrap()
                    .evaluate_rows(&local)
                    .into_iter()
                    .map(|r| r + s.start()),
            );
        }
        assert_eq!(got, exact.evaluate_rows(&q));
    }

    #[test]
    fn absh_roundtrip_preserves_results() {
        let t = table(90);
        let idx = ShardedIndex::build(&t, &cfg(), 4, true);
        let back = ShardedIndex::from_bytes(&idx.to_bytes()).unwrap();
        assert_eq!(back.num_rows(), idx.num_rows());
        assert_eq!(back.num_shards(), idx.num_shards());
        assert!(back.shards()[0].wah().is_none());
        let q = RectQuery::new(vec![AttrRange::new(0, 2, 4)], 5, 85);
        assert_eq!(
            back.execute_rect_sequential(&q).unwrap(),
            idx.execute_rect_sequential(&q).unwrap()
        );
    }

    #[test]
    fn repair_rebuilds_only_the_corrupt_shard_bit_identically() {
        let t = table(120);
        let idx = ShardedIndex::build(&t, &cfg(), 4, false);
        let mut bytes = idx.to_bytes();
        // Flip a byte in the middle of segment 0's blob (envelope
        // header is 10 bytes, segment header 20) so exactly that
        // segment's checksum breaks.
        let seg0_len = u64::from_le_bytes(bytes[18..26].try_into().unwrap()) as usize;
        bytes[30 + seg0_len / 2] ^= 0x40;
        assert!(matches!(
            ShardedIndex::from_bytes(&bytes),
            Err(ab::IoError::ChecksumMismatch { .. })
        ));
        let (repaired_idx, repaired) =
            ShardedIndex::from_bytes_with_repair(&bytes, &t, &cfg()).unwrap();
        assert_eq!(repaired.len(), 1, "one segment was corrupted");
        for (a, b) in repaired_idx.shards().iter().zip(idx.shards()) {
            assert_eq!(a.start(), b.start());
            for (x, y) in a.index().abs().iter().zip(b.index().abs()) {
                assert_eq!(x.bits(), y.bits(), "repair was not bit-identical");
            }
        }
        let q = RectQuery::new(vec![AttrRange::new(0, 1, 3)], 0, 119);
        assert_eq!(
            repaired_idx.execute_rect_sequential(&q).unwrap(),
            idx.execute_rect_sequential(&q).unwrap()
        );
    }

    #[test]
    fn repair_restores_hier_pyramids_byte_identically() {
        use ab::{HierConfig, HierLevelSpec};
        let t = table(120);
        let mut idx = ShardedIndex::build(&t, &cfg(), 4, false);
        idx.ensure_hier(&HierConfig {
            levels: vec![HierLevelSpec {
                row_span: 8,
                bin_group: 2,
            }],
        });
        let pristine = idx.to_bytes();
        let mut bytes = pristine.clone();
        let seg0_len = u64::from_le_bytes(bytes[18..26].try_into().unwrap()) as usize;
        bytes[30 + seg0_len / 2] ^= 0x40;
        let (repaired_idx, repaired) =
            ShardedIndex::from_bytes_with_repair(&bytes, &t, &cfg()).unwrap();
        assert_eq!(repaired.len(), 1);
        // The rebuilt shard picked up its siblings' pyramid geometry,
        // so re-serializing reproduces the pristine envelope exactly.
        assert_eq!(repaired_idx.to_bytes(), pristine);
    }

    #[test]
    fn repair_restores_hybrid_tier_byte_identically() {
        let t = table(120);
        let mut idx = ShardedIndex::build(&t, &cfg(), 4, false);
        idx.ensure_hybrid(
            &t,
            &ab::HybridConfig {
                min_density: 0.0,
                ..Default::default()
            },
        );
        assert!(idx
            .shards()
            .iter()
            .all(|s| !s.index().hybrid().unwrap().bins().is_empty()));
        let pristine = idx.to_bytes();
        let mut bytes = pristine.clone();
        let seg0_len = u64::from_le_bytes(bytes[18..26].try_into().unwrap()) as usize;
        bytes[30 + seg0_len / 2] ^= 0x40;
        let (repaired_idx, repaired) =
            ShardedIndex::from_bytes_with_repair(&bytes, &t, &cfg()).unwrap();
        assert_eq!(repaired.len(), 1);
        // The rebuilt shard picked up its siblings' split calibration
        // and rebuilt exact + fp containers from its table slice and
        // deterministic probe sweep: the envelope is pristine again.
        assert_eq!(repaired_idx.to_bytes(), pristine);
    }

    #[test]
    fn ensure_hybrid_covers_every_shard_and_survives_roundtrip() {
        let t = table(100);
        let mut idx = ShardedIndex::build(&t, &cfg(), 4, false);
        assert!(idx.shards().iter().all(|s| s.index().hybrid().is_none()));
        idx.ensure_hybrid(
            &t,
            &ab::HybridConfig {
                min_density: 0.0,
                ..Default::default()
            },
        );
        assert!(idx.shards().iter().all(|s| s.index().hybrid().is_some()));
        let back = ShardedIndex::from_bytes(&idx.to_bytes()).unwrap();
        assert!(back.shards().iter().all(|s| s.index().hybrid().is_some()));
        let stats = back.hybrid_split_stats();
        assert!(stats.iter().all(|s| s.is_some()));
        // Shard-local queries agree with the original whole-table
        // assignment: exact containers were built on the row slices.
        let q = RectQuery::new(vec![AttrRange::new(0, 1, 3)], 0, 99);
        assert_eq!(
            back.execute_rect_sequential(&q).unwrap(),
            idx.execute_rect_sequential(&q).unwrap()
        );
    }

    #[test]
    fn ensure_hier_covers_every_shard_and_survives_roundtrip() {
        let t = table(100);
        let mut idx = ShardedIndex::build(&t, &cfg(), 4, false);
        assert!(idx.shards().iter().all(|s| s.index().hier().is_none()));
        idx.ensure_hier(&ab::HierConfig {
            levels: vec![ab::HierLevelSpec {
                row_span: 8,
                bin_group: 2,
            }],
        });
        assert!(idx.shards().iter().all(|s| s.index().hier().is_some()));
        let back = ShardedIndex::from_bytes(&idx.to_bytes()).unwrap();
        assert!(back.shards().iter().all(|s| s.index().hier().is_some()));
    }

    #[test]
    fn repair_passes_clean_envelopes_through() {
        let t = table(80);
        let idx = ShardedIndex::build(&t, &cfg(), 3, false);
        let (back, repaired) =
            ShardedIndex::from_bytes_with_repair(&idx.to_bytes(), &t, &cfg()).unwrap();
        assert!(repaired.is_empty());
        assert_eq!(back.num_rows(), idx.num_rows());
        assert_eq!(back.num_shards(), idx.num_shards());
    }

    #[test]
    fn repair_rejects_wrong_source_table() {
        let t = table(100);
        let idx = ShardedIndex::build(&t, &cfg(), 4, false);
        let other = table(90); // different row count → different layout
        assert!(matches!(
            ShardedIndex::from_bytes_with_repair(&idx.to_bytes(), &other, &cfg()),
            Err(ab::IoError::BadShardLayout)
        ));
    }

    #[test]
    fn validate_rejects_unknown_attribute() {
        let idx = ShardedIndex::build(&table(40), &cfg(), 2, false);
        let q = RectQuery::new(vec![AttrRange::new(9, 0, 1)], 0, 10);
        assert!(matches!(
            idx.validate_rect(&q),
            Err(QueryError::BinOutOfRange { attribute: 9, .. })
        ));
        let q2 = RectQuery::new(vec![], 0, 40);
        assert!(matches!(
            idx.validate_rect(&q2),
            Err(QueryError::RowOutOfRange { row: 40, .. })
        ));
    }
}
