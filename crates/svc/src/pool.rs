//! Own-rolled worker pool with a bounded submission queue.
//!
//! `std`-only: a `Mutex<VecDeque>` of boxed jobs, two condvars (one
//! waking idle workers, one waking blocked submitters), and explicit
//! admission control — [`WorkerPool::try_execute`] *sheds* work with
//! [`SvcError::Overloaded`] when the queue is full, so latency under
//! overload stays bounded instead of growing with an unbounded queue.
//! Foreground work that must not be shed (index builds) uses
//! [`WorkerPool::execute_blocking`], which waits for space instead.
//!
//! A job that panics is caught and counted (`svc.pool.job_panics`);
//! the worker thread survives.

use crate::error::SvcError;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct State {
    queue: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    jobs_available: Condvar,
    space_available: Condvar,
    capacity: usize,
    job_panics: AtomicU64,
}

/// A fixed-size thread pool over a bounded job queue.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `threads` workers over a queue of `queue_capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `threads` or `queue_capacity` is zero, or if the OS
    /// refuses to spawn a thread.
    pub fn new(threads: usize, queue_capacity: usize) -> Self {
        assert!(threads >= 1, "need at least one worker thread");
        assert!(queue_capacity >= 1, "need at least one queue slot");
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::with_capacity(queue_capacity),
                shutdown: false,
            }),
            jobs_available: Condvar::new(),
            space_available: Condvar::new(),
            capacity: queue_capacity,
            job_panics: AtomicU64::new(0),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("svc-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("failed to spawn svc worker")
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Configured queue capacity.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Jobs currently queued (not yet picked up by a worker).
    pub fn queue_depth(&self) -> usize {
        self.shared.state.lock().unwrap().queue.len()
    }

    /// Jobs that panicked since the pool started (the workers
    /// survive; see `worker_loop`'s `catch_unwind`).
    pub fn job_panics(&self) -> u64 {
        self.shared.job_panics.load(Ordering::Relaxed)
    }

    /// Submits a job, shedding it with [`SvcError::Overloaded`] when
    /// the queue is full — the admission-control entry point for
    /// query traffic.
    pub fn try_execute<F: FnOnce() + Send + 'static>(&self, job: F) -> Result<(), SvcError> {
        let mut st = self.shared.state.lock().unwrap();
        if st.shutdown {
            return Err(SvcError::Shutdown);
        }
        let depth = st.queue.len();
        if depth >= self.shared.capacity {
            obs::counter!("svc.pool.shed").inc();
            return Err(SvcError::Overloaded {
                depth,
                capacity: self.shared.capacity,
            });
        }
        st.queue.push_back(Box::new(job));
        obs::histogram!("svc.pool.queue_depth").record(st.queue.len() as u64);
        drop(st);
        self.shared.jobs_available.notify_one();
        Ok(())
    }

    /// Submits a job, blocking until a queue slot frees up — for
    /// foreground work (parallel index builds) where shedding makes
    /// no sense. Returns [`SvcError::Shutdown`] if the pool shuts
    /// down while waiting.
    pub fn execute_blocking<F: FnOnce() + Send + 'static>(&self, job: F) -> Result<(), SvcError> {
        let mut st = self.shared.state.lock().unwrap();
        loop {
            if st.shutdown {
                return Err(SvcError::Shutdown);
            }
            if st.queue.len() < self.shared.capacity {
                break;
            }
            st = self.shared.space_available.wait(st).unwrap();
        }
        st.queue.push_back(Box::new(job));
        obs::histogram!("svc.pool.queue_depth").record(st.queue.len() as u64);
        drop(st);
        self.shared.jobs_available.notify_one();
        Ok(())
    }
}

impl Drop for WorkerPool {
    /// Graceful shutdown: already-queued jobs still run, then the
    /// workers exit and are joined.
    fn drop(&mut self) {
        self.shared.state.lock().unwrap().shutdown = true;
        self.shared.jobs_available.notify_all();
        self.shared.space_available.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if let Some(job) = st.queue.pop_front() {
                    break job;
                }
                if st.shutdown {
                    return;
                }
                st = shared.jobs_available.wait(st).unwrap();
            }
        };
        shared.space_available.notify_one();
        obs::counter!("svc.pool.jobs").inc();
        if std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)).is_err() {
            shared.job_panics.fetch_add(1, Ordering::Relaxed);
            obs::counter!("svc.pool.job_panics").inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn executes_submitted_jobs() {
        let pool = WorkerPool::new(4, 64);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel();
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            let tx = tx.clone();
            pool.execute_blocking(move || {
                c.fetch_add(1, Ordering::Relaxed);
                let _ = tx.send(());
            })
            .unwrap();
        }
        for _ in 0..100 {
            rx.recv_timeout(Duration::from_secs(10)).unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn full_queue_sheds_with_overloaded() {
        let pool = WorkerPool::new(1, 2);
        let (block_tx, block_rx) = mpsc::channel::<()>();
        // Occupy the single worker...
        pool.try_execute(move || {
            let _ = block_rx.recv();
        })
        .unwrap();
        // ...then fill the queue; eventually a submit must shed.
        let mut shed = None;
        for _ in 0..8 {
            if let Err(e) = pool.try_execute(|| {}) {
                shed = Some(e);
                break;
            }
        }
        match shed {
            Some(SvcError::Overloaded { depth, capacity }) => {
                assert_eq!(capacity, 2);
                assert!(depth >= 2);
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        drop(block_tx);
    }

    #[test]
    fn drop_runs_queued_jobs_before_exit() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(1, 64);
            for _ in 0..20 {
                let c = Arc::clone(&counter);
                pool.execute_blocking(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                })
                .unwrap();
            }
            // Drop joins after draining.
        }
        assert_eq!(counter.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let pool = WorkerPool::new(1, 8);
        assert_eq!(pool.job_panics(), 0);
        pool.execute_blocking(|| panic!("job boom")).unwrap();
        let (tx, rx) = mpsc::channel();
        pool.execute_blocking(move || {
            let _ = tx.send(42);
        })
        .unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)).unwrap(), 42);
        assert_eq!(pool.job_panics(), 1);
    }

    #[test]
    fn blocking_submit_waits_for_space() {
        let pool = WorkerPool::new(1, 1);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        pool.execute_blocking(move || {
            let _ = gate_rx.recv();
        })
        .unwrap();
        let done = Arc::new(AtomicUsize::new(0));
        // Fill the queue's single slot, then a second blocking submit
        // must wait until the gate opens.
        let d1 = Arc::clone(&done);
        pool.execute_blocking(move || {
            d1.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        gate_tx.send(()).unwrap();
        let d2 = Arc::clone(&done);
        pool.execute_blocking(move || {
            d2.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        drop(pool); // join → both ran
        assert_eq!(done.load(Ordering::Relaxed), 2);
    }
}
