//! Request batching: grouping probes by shard.
//!
//! The service amortises pool dispatch by submitting **one job per
//! shard**, not one per probe. These helpers partition a request's
//! cells (or a batch of rectangular queries) by the shard that owns
//! each row, translating global rows to shard-local ones and
//! remembering the original position so answers can be scattered back
//! into request order after the per-shard results return.

use crate::shard::ShardedIndex;
use ab::Cell;
use bitmap::RectQuery;

/// The cells of one shard's batch: `(position in the original request,
/// cell with a shard-local row)`.
#[derive(Clone, Debug)]
pub struct ShardCells {
    /// Shard index into [`ShardedIndex::shards`].
    pub shard: usize,
    /// Probes for this shard, rows already translated to local.
    pub cells: Vec<(usize, Cell)>,
}

/// The rectangular queries of one shard's batch: `(query index in the
/// original batch, query with shard-local rows)`.
#[derive(Clone, Debug)]
pub struct ShardRects {
    /// Shard index into [`ShardedIndex::shards`].
    pub shard: usize,
    /// Query parts for this shard, row intervals already local.
    pub queries: Vec<(usize, RectQuery)>,
}

/// Partitions a cell-subset query by owning shard. Cells arrive in
/// request order, so each shard's list stays sorted by original
/// position. Shards with no cells produce no entry.
///
/// # Panics
///
/// Panics if any cell's row is out of range (validate first).
pub fn group_cells_by_shard(index: &ShardedIndex, cells: &[Cell]) -> Vec<ShardCells> {
    let mut groups: Vec<Option<ShardCells>> = vec![None; index.num_shards()];
    for (pos, cell) in cells.iter().enumerate() {
        let sid = index.shard_of_row(cell.row);
        let start = index.shards()[sid].start();
        let local = Cell::new(cell.row - start, cell.attribute, cell.bin);
        groups[sid]
            .get_or_insert_with(|| ShardCells {
                shard: sid,
                cells: Vec::new(),
            })
            .cells
            .push((pos, local));
    }
    let batch: Vec<ShardCells> = groups.into_iter().flatten().collect();
    obs::histogram!("svc.batch.shards").record(batch.len() as u64);
    batch
}

/// Partitions a batch of rectangular queries by shard: each query is
/// split with [`ShardedIndex::split_rect`] and its parts are appended
/// to the owning shards' lists. One pool job then serves every part
/// that landed on its shard.
pub fn group_rects_by_shard(index: &ShardedIndex, queries: &[RectQuery]) -> Vec<ShardRects> {
    let mut groups: Vec<Option<ShardRects>> = vec![None; index.num_shards()];
    for (qidx, q) in queries.iter().enumerate() {
        for (sid, local) in index.split_rect(q) {
            groups[sid]
                .get_or_insert_with(|| ShardRects {
                    shard: sid,
                    queries: Vec::new(),
                })
                .queries
                .push((qidx, local));
        }
    }
    let batch: Vec<ShardRects> = groups.into_iter().flatten().collect();
    obs::histogram!("svc.batch.shards").record(batch.len() as u64);
    batch
}

#[cfg(test)]
mod tests {
    use super::*;
    use ab::{AbConfig, Level};
    use bitmap::{AttrRange, BinnedColumn, BinnedTable};

    fn index() -> ShardedIndex {
        let t = BinnedTable::new(vec![BinnedColumn::new(
            "a",
            (0..100).map(|i| (i % 4) as u32).collect(),
            4,
        )]);
        ShardedIndex::build(
            &t,
            &AbConfig::new(Level::PerAttribute).with_alpha(8),
            4,
            false,
        )
    }

    #[test]
    fn cells_group_to_owning_shards_with_local_rows() {
        let idx = index();
        let cells = vec![
            Cell::new(99, 0, 3), // shard 3
            Cell::new(0, 0, 0),  // shard 0
            Cell::new(26, 0, 2), // shard 1
            Cell::new(1, 0, 1),  // shard 0
        ];
        let groups = group_cells_by_shard(&idx, &cells);
        assert_eq!(groups.len(), 3);
        let shard0 = groups.iter().find(|g| g.shard == 0).unwrap();
        assert_eq!(
            shard0.cells,
            vec![(1, Cell::new(0, 0, 0)), (3, Cell::new(1, 0, 1))]
        );
        let shard1 = groups.iter().find(|g| g.shard == 1).unwrap();
        assert_eq!(shard1.cells, vec![(2, Cell::new(1, 0, 2))]);
        let shard3 = groups.iter().find(|g| g.shard == 3).unwrap();
        assert_eq!(shard3.cells, vec![(0, Cell::new(24, 0, 3))]);
    }

    #[test]
    fn rect_batch_splits_and_groups() {
        let idx = index();
        let qs = vec![
            RectQuery::new(vec![AttrRange::new(0, 0, 1)], 0, 99), // all 4 shards
            RectQuery::new(vec![AttrRange::new(0, 2, 3)], 30, 40), // shard 1 only
        ];
        let groups = group_rects_by_shard(&idx, &qs);
        assert_eq!(groups.len(), 4);
        let shard1 = groups.iter().find(|g| g.shard == 1).unwrap();
        assert_eq!(shard1.queries.len(), 2);
        assert_eq!(shard1.queries[0].0, 0);
        assert_eq!(
            shard1.queries[1],
            (1, RectQuery::new(vec![AttrRange::new(0, 2, 3)], 5, 15))
        );
        let shard2 = groups.iter().find(|g| g.shard == 2).unwrap();
        assert_eq!(
            shard2.queries,
            vec![(0, RectQuery::new(vec![AttrRange::new(0, 0, 1)], 0, 24))]
        );
    }

    #[test]
    fn empty_batches_produce_no_groups() {
        let idx = index();
        assert!(group_cells_by_shard(&idx, &[]).is_empty());
        assert!(group_rects_by_shard(&idx, &[]).is_empty());
    }
}
