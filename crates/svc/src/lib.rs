//! # Sharded concurrent query service
//!
//! Serving layer over the AB index (see the `ab` crate): the row space
//! is partitioned into contiguous **shards**, each with its own
//! [`AbIndex`](ab::AbIndex) (and optionally a WAH index for exact
//! answers), and queries are fanned out across a fixed worker pool and
//! merged — bit-identical to single-threaded execution.
//!
//! Everything is `std`-only:
//!
//! * [`pool`] — own-rolled worker pool with a bounded queue; full
//!   queues **shed** requests with [`SvcError::Overloaded`]
//!   (admission control) instead of queueing unboundedly;
//! * [`shard`] — row-range partitioning, per-shard builds (parallel or
//!   sequential), query splitting, and the `ABSH` persistence envelope;
//! * [`batch`] — grouping a request's probes by owning shard so each
//!   shard gets one pool job, not one per probe;
//! * [`deadline`] — per-request deadlines and cooperative cancellation,
//!   checked between [`CHUNK_ROWS`]-row chunks;
//! * [`service`] — the [`Service`] façade tying the above together;
//! * [`counting`] — a sharded, lock-per-shard [`CountingService`] for
//!   concurrent inserts/deletes with the no-false-negative guarantee;
//! * [`chaos`] — seeded, deterministic fault injection behind named
//!   points (compiled out under the `chaos-off` feature);
//! * [`degrade`] — shard quarantine and the typed [`Degraded`] response
//!   marker for conservative (*maybe present*) answers;
//! * [`mod@retry`] — bounded retry with decorrelated-jitter backoff for
//!   transient [`SvcError::Overloaded`] rejections;
//! * [`mod@scrub`] — the online segment-store scrubber: periodic page
//!   re-verification over a [`store::Store`], quarantine of shards
//!   whose durable bytes rotted, and bit-identical online repair
//!   through the crash-safe write protocol;
//! * [`telemetry`] — a zero-dependency HTTP endpoint serving
//!   `/metrics` (Prometheus), `/healthz`, and `/debug/traces` (the
//!   request-trace flight recorder).
//!
//! Every request is traced end-to-end by default (see
//! [`SvcConfig::trace_requests`]): one span tree per request — request
//! root, admission, per-shard jobs (across worker threads), kernel
//! stages, merge — lands in the global [`obs::recorder`] flight
//! recorder, with requests slower than [`SvcConfig::slow_query`]
//! pinned as a slow-query log.
//!
//! ## Quick start
//!
//! ```
//! use ab::{AbConfig, Level};
//! use bitmap::{AttrRange, BinnedColumn, BinnedTable, RectQuery};
//! use svc::{Service, SvcConfig};
//!
//! let table = BinnedTable::new(vec![BinnedColumn::new(
//!     "temp",
//!     (0..1000).map(|i| (i % 8) as u32).collect(),
//!     8,
//! )]);
//! let svc = Service::build(
//!     &table,
//!     &AbConfig::new(Level::PerAttribute).with_alpha(16),
//!     &SvcConfig { threads: 2, shards: 4, ..SvcConfig::default() },
//! );
//! let rows = svc
//!     .query_rect(&RectQuery::new(vec![AttrRange::new(0, 6, 7)], 0, 999))
//!     .unwrap();
//! assert!(rows.iter().all(|r| r % 8 >= 6 || true)); // superset, 100% recall
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod chaos;
pub mod counting;
pub mod deadline;
pub mod degrade;
pub mod error;
pub mod pool;
pub mod retry;
pub mod scrub;
pub mod service;
pub mod shard;
pub mod telemetry;

pub use batch::{group_cells_by_shard, group_rects_by_shard, ShardCells, ShardRects};
pub use chaos::{ChaosSegmentIo, Fault, FaultPlan, FaultRule};
pub use counting::CountingService;
pub use deadline::{CancelToken, Deadline, RequestCtx};
pub use degrade::{Degraded, Response, ShardHealth};
pub use error::SvcError;
pub use pool::WorkerPool;
pub use retry::{retry, retry_traced, RetryPolicy};
pub use scrub::{scrub_pass, PassOutcome, RepairSource, Scrubber, StoreState, StoreStatus};
pub use service::{Service, SvcConfig, CHUNK_ROWS};
pub use shard::{Shard, ShardedIndex};
pub use telemetry::{HybridStatus, TelemetryServer};
