//! The concurrent query service.
//!
//! A [`Service`] owns a [`ShardedIndex`] (behind an `Arc`) and a
//! [`WorkerPool`]. Each request is validated once against the global
//! schema, split into per-shard parts, and fanned out as **one pool
//! job per shard** (batching — see [`crate::batch`]). Shard jobs
//! execute their rows in [`CHUNK_ROWS`]-sized chunks, calling
//! [`RequestCtx::check`] between chunks so deadlines and cancellation
//! take effect mid-query. The collector waits with the request's
//! remaining deadline budget; a miss cancels the in-flight shard work
//! and discards partial results (a partial merge would break the AB's
//! no-false-negative contract).
//!
//! Admission control happens at submission: a full pool queue sheds
//! the whole request with [`SvcError::Overloaded`] before any shard
//! runs.

use crate::batch::{group_cells_by_shard, group_rects_by_shard};
use crate::deadline::{Deadline, RequestCtx};
use crate::error::SvcError;
use crate::pool::WorkerPool;
use crate::shard::{Shard, ShardedIndex};
use ab::{AbConfig, Cell, QueryError};
use bitmap::{BinnedTable, RectQuery};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// Rows a shard job processes between two [`RequestCtx::check`]
/// calls. Small enough that cancellation latency stays in the tens of
/// microseconds, large enough that the atomic load is noise.
pub const CHUNK_ROWS: usize = 512;

/// Service construction parameters.
#[derive(Clone, Debug)]
pub struct SvcConfig {
    /// Worker threads; `0` means `std::thread::available_parallelism()`.
    pub threads: usize,
    /// Shard count; `0` derives it from the thread count (clamped to
    /// the row count either way).
    pub shards: usize,
    /// Bounded submission-queue capacity; admission control sheds
    /// beyond this depth.
    pub queue_capacity: usize,
    /// Deadline applied to requests that don't carry their own.
    pub default_deadline: Option<Duration>,
    /// Also build a WAH index per shard for exact answers.
    pub with_wah: bool,
}

impl Default for SvcConfig {
    fn default() -> Self {
        SvcConfig {
            threads: 0,
            shards: 0,
            queue_capacity: 256,
            default_deadline: None,
            with_wah: false,
        }
    }
}

impl SvcConfig {
    /// The thread count after resolving `0` to the machine's
    /// available parallelism.
    pub fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    /// The shard count for a table of `num_rows` rows: explicit, or
    /// derived from the thread count; always clamped to `1..=num_rows`.
    pub fn resolved_shards(&self, num_rows: usize) -> usize {
        let want = if self.shards > 0 {
            self.shards
        } else {
            self.resolved_threads()
        };
        want.clamp(1, num_rows.max(1))
    }
}

/// A sharded, concurrent query service over an AB index.
pub struct Service {
    index: Arc<ShardedIndex>,
    pool: WorkerPool,
    default_deadline: Option<Duration>,
}

impl Service {
    /// Builds the sharded index (in parallel, on the service's own
    /// pool) and starts the workers.
    pub fn build(table: &BinnedTable, ab: &AbConfig, cfg: &SvcConfig) -> Self {
        let pool = WorkerPool::new(cfg.resolved_threads(), cfg.queue_capacity);
        let shards = cfg.resolved_shards(table.num_rows());
        let index = ShardedIndex::build_parallel(table, ab, shards, cfg.with_wah, &pool);
        Service {
            index: Arc::new(index),
            pool,
            default_deadline: cfg.default_deadline,
        }
    }

    /// Wraps an already-built index (e.g. one loaded with
    /// [`ShardedIndex::from_bytes`]); `cfg.shards` is ignored.
    pub fn from_index(index: ShardedIndex, cfg: &SvcConfig) -> Self {
        Service {
            index: Arc::new(index),
            pool: WorkerPool::new(cfg.resolved_threads(), cfg.queue_capacity),
            default_deadline: cfg.default_deadline,
        }
    }

    /// The served index.
    pub fn index(&self) -> &ShardedIndex {
        &self.index
    }

    /// Worker threads serving requests.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Jobs currently queued for admission.
    pub fn queue_depth(&self) -> usize {
        self.pool.queue_depth()
    }

    fn ctx_with_default(&self) -> RequestCtx {
        RequestCtx::new(match self.default_deadline {
            Some(budget) => Deadline::within(budget),
            None => Deadline::none(),
        })
    }

    /// Rectangular AB query under the service's default deadline.
    /// Returns globally sorted row ids, bit-identical to
    /// [`ShardedIndex::execute_rect_sequential`].
    pub fn query_rect(&self, query: &RectQuery) -> Result<Vec<usize>, SvcError> {
        self.query_rect_ctx(query, &self.ctx_with_default())
    }

    /// Rectangular query with an explicit per-request deadline.
    pub fn query_rect_within(
        &self,
        query: &RectQuery,
        budget: Duration,
    ) -> Result<Vec<usize>, SvcError> {
        self.query_rect_ctx(query, &RequestCtx::new(Deadline::within(budget)))
    }

    /// Rectangular query under a caller-owned [`RequestCtx`] — the
    /// caller keeps a clone and may cancel mid-flight.
    pub fn query_rect_ctx(
        &self,
        query: &RectQuery,
        ctx: &RequestCtx,
    ) -> Result<Vec<usize>, SvcError> {
        let _timer = obs::span("svc.request_us");
        obs::counter!("svc.requests").inc();
        self.index.validate_rect(query)?;
        ctx.check()?;
        let parts = self.index.split_rect(query);
        obs::histogram!("svc.fanout").record(parts.len() as u64);
        let (tx, rx) = mpsc::channel();
        let expected = parts.len();
        for (slot, (sid, local)) in parts.into_iter().enumerate() {
            let index = Arc::clone(&self.index);
            let job_ctx = ctx.clone();
            let tx = tx.clone();
            if let Err(e) = self.pool.try_execute(move || {
                let res = run_shard_chunked(&index.shards()[sid], &local, &job_ctx);
                let _ = tx.send((slot, res));
            }) {
                // Shed: abandon the whole request and stop any parts
                // already admitted.
                ctx.cancel();
                obs::counter!("svc.shed").inc();
                return Err(e);
            }
        }
        drop(tx);
        let mut merged: Vec<Option<Vec<usize>>> = (0..expected).map(|_| None).collect();
        for _ in 0..expected {
            let (slot, res) = self.collect(&rx, ctx)?;
            merged[slot] = Some(res?);
        }
        // Shard parts were issued in row order, so flattening by slot
        // yields globally sorted rows.
        Ok(merged.into_iter().flatten().flatten().collect())
    }

    /// Exact rectangular query over the per-shard WAH indexes (the
    /// paper's verbatim/compressed baseline). Requires
    /// [`SvcConfig::with_wah`] at build time.
    pub fn query_rect_wah(&self, query: &RectQuery) -> Result<Vec<usize>, SvcError> {
        let _timer = obs::span("svc.request_us");
        obs::counter!("svc.requests").inc();
        self.index.validate_rect(query)?;
        if self.index.shards().iter().any(|s| s.wah().is_none()) {
            return Err(SvcError::WahUnavailable);
        }
        let ctx = self.ctx_with_default();
        ctx.check()?;
        let parts = self.index.split_rect(query);
        obs::histogram!("svc.fanout").record(parts.len() as u64);
        let (tx, rx) = mpsc::channel();
        let expected = parts.len();
        for (slot, (sid, local)) in parts.into_iter().enumerate() {
            let index = Arc::clone(&self.index);
            let job_ctx = ctx.clone();
            let tx = tx.clone();
            if let Err(e) = self.pool.try_execute(move || {
                let res = job_ctx.check().map(|()| {
                    let shard = &index.shards()[sid];
                    shard
                        .wah()
                        .expect("checked above")
                        .evaluate_rows(&local)
                        .into_iter()
                        .map(|r| r + shard.start())
                        .collect::<Vec<usize>>()
                });
                let _ = tx.send((slot, res));
            }) {
                ctx.cancel();
                obs::counter!("svc.shed").inc();
                return Err(e);
            }
        }
        drop(tx);
        let mut merged: Vec<Option<Vec<usize>>> = (0..expected).map(|_| None).collect();
        for _ in 0..expected {
            let (slot, res) = self.collect(&rx, &ctx)?;
            merged[slot] = Some(res?);
        }
        Ok(merged.into_iter().flatten().flatten().collect())
    }

    /// Cell-subset retrieval (paper Figure 5) under the default
    /// deadline: one boolean per cell, in request order. Probes are
    /// batched per owning shard — one pool job per shard touched.
    pub fn retrieve_cells(&self, cells: &[Cell]) -> Result<Vec<bool>, SvcError> {
        let _timer = obs::span("svc.request_us");
        obs::counter!("svc.requests").inc();
        obs::histogram!("svc.batch.size").record(cells.len() as u64);
        self.validate_cells(cells)?;
        if cells.is_empty() {
            return Ok(Vec::new());
        }
        let ctx = self.ctx_with_default();
        ctx.check()?;
        let groups = group_cells_by_shard(&self.index, cells);
        obs::histogram!("svc.fanout").record(groups.len() as u64);
        let (tx, rx) = mpsc::channel();
        let expected = groups.len();
        for (slot, group) in groups.into_iter().enumerate() {
            let index = Arc::clone(&self.index);
            let job_ctx = ctx.clone();
            let tx = tx.clone();
            if let Err(e) = self.pool.try_execute(move || {
                let shard = &index.shards()[group.shard];
                let mut out = Vec::with_capacity(group.cells.len());
                let mut res = Ok(());
                for chunk in group.cells.chunks(CHUNK_ROWS) {
                    if let Err(e) = job_ctx.check() {
                        res = Err(e);
                        break;
                    }
                    out.extend(chunk.iter().map(|&(pos, c)| {
                        (pos, shard.index().test_cell(c.row, c.attribute, c.bin))
                    }));
                }
                let _ = tx.send((slot, res.map(|()| out)));
            }) {
                ctx.cancel();
                obs::counter!("svc.shed").inc();
                return Err(e);
            }
        }
        drop(tx);
        let mut answers = vec![false; cells.len()];
        for _ in 0..expected {
            let (_, res) = self.collect(&rx, &ctx)?;
            for (pos, hit) in res? {
                answers[pos] = hit;
            }
        }
        Ok(answers)
    }

    /// A batch of rectangular queries under one deadline: all shard
    /// parts of all queries are grouped so each touched shard gets a
    /// single pool job. Returns one (globally sorted) row list per
    /// query, each bit-identical to running the query alone.
    pub fn query_batch(&self, queries: &[RectQuery]) -> Result<Vec<Vec<usize>>, SvcError> {
        let _timer = obs::span("svc.request_us");
        obs::counter!("svc.requests").inc();
        obs::histogram!("svc.batch.size").record(queries.len() as u64);
        for q in queries {
            self.index.validate_rect(q)?;
        }
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        let ctx = self.ctx_with_default();
        ctx.check()?;
        let groups = group_rects_by_shard(&self.index, queries);
        obs::histogram!("svc.fanout").record(groups.len() as u64);
        let (tx, rx) = mpsc::channel();
        let expected = groups.len();
        for group in groups {
            let index = Arc::clone(&self.index);
            let job_ctx = ctx.clone();
            let tx = tx.clone();
            if let Err(e) = self.pool.try_execute(move || {
                let shard = &index.shards()[group.shard];
                let mut out = Vec::with_capacity(group.queries.len());
                let mut res = Ok(());
                for (qidx, local) in &group.queries {
                    match run_shard_chunked(shard, local, &job_ctx) {
                        Ok(rows) => out.push((*qidx, rows)),
                        Err(e) => {
                            res = Err(e);
                            break;
                        }
                    }
                }
                let _ = tx.send((group.shard, res.map(|()| out)));
            }) {
                ctx.cancel();
                obs::counter!("svc.shed").inc();
                return Err(e);
            }
        }
        drop(tx);
        // Parts arrive in shard-completion order; tag each with its
        // shard id and sort per query so the merge stays row-ordered.
        let mut per_query: Vec<Vec<(usize, Vec<usize>)>> = vec![Vec::new(); queries.len()];
        for _ in 0..expected {
            let (sid, res) = self.collect(&rx, &ctx)?;
            for (qidx, rows) in res? {
                per_query[qidx].push((sid, rows));
            }
        }
        Ok(per_query
            .into_iter()
            .map(|mut parts| {
                parts.sort_unstable_by_key(|(sid, _)| *sid);
                parts.into_iter().flat_map(|(_, rows)| rows).collect()
            })
            .collect())
    }

    /// Waits for one shard result, charging the wait against the
    /// request's deadline. A timeout cancels the remaining shard work.
    fn collect<T>(
        &self,
        rx: &mpsc::Receiver<(usize, Result<T, SvcError>)>,
        ctx: &RequestCtx,
    ) -> Result<(usize, Result<T, SvcError>), SvcError> {
        let received = match ctx.deadline.remaining() {
            None => rx.recv().map_err(|_| SvcError::Shutdown),
            Some(budget) => rx.recv_timeout(budget).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => SvcError::DeadlineExceeded,
                mpsc::RecvTimeoutError::Disconnected => SvcError::Shutdown,
            }),
        };
        match received {
            Ok(pair) => {
                if let Err(e) = &pair.1 {
                    ctx.cancel();
                    if *e == SvcError::DeadlineExceeded {
                        obs::counter!("svc.deadline_missed").inc();
                    }
                }
                Ok(pair)
            }
            Err(e) => {
                ctx.cancel();
                if e == SvcError::DeadlineExceeded {
                    obs::counter!("svc.deadline_missed").inc();
                }
                Err(e)
            }
        }
    }
}

/// Runs one shard's part of a rectangular query in [`CHUNK_ROWS`]
/// chunks, translating matches back to global row ids.
fn run_shard_chunked(
    shard: &Shard,
    local: &RectQuery,
    ctx: &RequestCtx,
) -> Result<Vec<usize>, SvcError> {
    let mut out = Vec::new();
    let mut lo = local.row_lo;
    loop {
        ctx.check()?;
        let hi = local.row_hi.min(lo + CHUNK_ROWS - 1);
        let chunk = RectQuery::new(local.ranges.clone(), lo, hi);
        out.extend(
            shard
                .index()
                .try_execute_rect(&chunk)?
                .into_iter()
                .map(|r| r + shard.start()),
        );
        if hi == local.row_hi {
            return Ok(out);
        }
        lo = hi + 1;
    }
}

impl Service {
    fn validate_cells(&self, cells: &[Cell]) -> Result<(), QueryError> {
        let attrs = self.index.attributes();
        for c in cells {
            if c.row >= self.index.num_rows() {
                return Err(QueryError::RowOutOfRange {
                    row: c.row,
                    num_rows: self.index.num_rows(),
                });
            }
            let card = attrs.get(c.attribute).map(|a| a.cardinality).unwrap_or(0);
            if c.bin >= card {
                return Err(QueryError::BinOutOfRange {
                    attribute: c.attribute,
                    bin: c.bin,
                    cardinality: card,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ab::Level;
    use bitmap::{AttrRange, BinnedColumn};

    fn table(n: usize) -> BinnedTable {
        BinnedTable::new(vec![
            BinnedColumn::new(
                "a",
                (0..n)
                    .map(|i| (hashkit::splitmix64(i as u64) % 6) as u32)
                    .collect(),
                6,
            ),
            BinnedColumn::new(
                "b",
                (0..n)
                    .map(|i| (hashkit::splitmix64(!(i as u64)) % 4) as u32)
                    .collect(),
                4,
            ),
        ])
    }

    fn service(n: usize, cfg: SvcConfig) -> Service {
        Service::build(
            &table(n),
            &AbConfig::new(Level::PerAttribute).with_alpha(8),
            &cfg,
        )
    }

    fn small_cfg() -> SvcConfig {
        SvcConfig {
            threads: 2,
            shards: 4,
            ..SvcConfig::default()
        }
    }

    #[test]
    fn concurrent_result_matches_sequential_reference() {
        let svc = service(500, small_cfg());
        for (lo, hi) in [(0, 499), (13, 400), (250, 260)] {
            let q = RectQuery::new(
                vec![AttrRange::new(0, 1, 4), AttrRange::new(1, 0, 2)],
                lo,
                hi,
            );
            assert_eq!(
                svc.query_rect(&q).unwrap(),
                svc.index().execute_rect_sequential(&q).unwrap()
            );
        }
    }

    #[test]
    fn invalid_queries_get_typed_errors() {
        let svc = service(100, small_cfg());
        let bad_row = RectQuery::new(vec![], 0, 100);
        assert!(matches!(
            svc.query_rect(&bad_row),
            Err(SvcError::Query(QueryError::RowOutOfRange { .. }))
        ));
        let bad_bin = RectQuery::new(vec![AttrRange::new(1, 0, 9)], 0, 50);
        assert!(matches!(
            svc.query_rect(&bad_bin),
            Err(SvcError::Query(QueryError::BinOutOfRange { .. }))
        ));
    }

    #[test]
    fn expired_deadline_rejects_before_dispatch() {
        let svc = service(200, small_cfg());
        let q = RectQuery::new(vec![AttrRange::new(0, 0, 5)], 0, 199);
        assert_eq!(
            svc.query_rect_within(&q, Duration::ZERO),
            Err(SvcError::DeadlineExceeded)
        );
    }

    #[test]
    fn cancelled_context_stops_the_request() {
        let svc = service(200, small_cfg());
        let ctx = RequestCtx::new(Deadline::none());
        ctx.cancel();
        let q = RectQuery::new(vec![], 0, 199);
        assert_eq!(svc.query_rect_ctx(&q, &ctx), Err(SvcError::Cancelled));
    }

    #[test]
    fn retrieve_cells_answers_in_request_order() {
        let n = 300;
        let t = table(n);
        let svc = Service::build(
            &t,
            &AbConfig::new(Level::PerAttribute).with_alpha(8),
            &small_cfg(),
        );
        // Query every row's true bin in attribute 0, shuffled across
        // shards: all must come back true (no false negatives).
        let cells: Vec<Cell> = (0..n)
            .map(|i| (i * 7919) % n) // visit rows out of order
            .map(|r| Cell::new(r, 0, t.column(0).bins[r]))
            .collect();
        let got = svc.retrieve_cells(&cells).unwrap();
        assert_eq!(got.len(), n);
        assert!(got.iter().all(|&b| b), "false negative via service");
    }

    #[test]
    fn retrieve_cells_validates_input() {
        let svc = service(50, small_cfg());
        assert!(matches!(
            svc.retrieve_cells(&[Cell::new(50, 0, 0)]),
            Err(SvcError::Query(QueryError::RowOutOfRange { .. }))
        ));
        assert!(matches!(
            svc.retrieve_cells(&[Cell::new(0, 7, 0)]),
            Err(SvcError::Query(QueryError::BinOutOfRange {
                attribute: 7,
                ..
            }))
        ));
        assert_eq!(svc.retrieve_cells(&[]).unwrap(), Vec::<bool>::new());
    }

    #[test]
    fn batch_matches_individual_queries() {
        let svc = service(400, small_cfg());
        let qs = vec![
            RectQuery::new(vec![AttrRange::new(0, 0, 2)], 0, 399),
            RectQuery::new(vec![AttrRange::new(1, 1, 3)], 100, 250),
            RectQuery::new(vec![], 395, 399),
        ];
        let batched = svc.query_batch(&qs).unwrap();
        assert_eq!(batched.len(), 3);
        for (q, rows) in qs.iter().zip(&batched) {
            assert_eq!(rows, &svc.query_rect(q).unwrap());
        }
        assert!(svc.query_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn wah_path_gives_exact_subset_of_ab_answer() {
        let t = table(300);
        let cfg = SvcConfig {
            with_wah: true,
            ..small_cfg()
        };
        let svc = Service::build(&t, &AbConfig::new(Level::PerAttribute).with_alpha(8), &cfg);
        let q = RectQuery::new(vec![AttrRange::new(0, 2, 4)], 10, 290);
        let exact = svc.query_rect_wah(&q).unwrap();
        let approx = svc.query_rect(&q).unwrap();
        for r in &exact {
            assert!(approx.contains(r), "AB missed exact row {r}");
        }
        let reference = bitmap::BitmapIndex::build(&t, bitmap::Encoding::Equality);
        assert_eq!(exact, reference.evaluate_rows(&q));
    }

    #[test]
    fn wah_unavailable_without_build_flag() {
        let svc = service(100, small_cfg());
        let q = RectQuery::new(vec![], 0, 99);
        assert_eq!(svc.query_rect_wah(&q), Err(SvcError::WahUnavailable));
    }

    #[test]
    fn config_resolution_clamps_shards() {
        let cfg = SvcConfig {
            threads: 4,
            shards: 0,
            ..SvcConfig::default()
        };
        assert_eq!(cfg.resolved_threads(), 4);
        assert_eq!(cfg.resolved_shards(1000), 4);
        assert_eq!(cfg.resolved_shards(2), 2); // clamped to rows
        let auto = SvcConfig::default();
        assert!(auto.resolved_threads() >= 1);
    }

    #[test]
    fn from_index_serves_deserialized_shards() {
        let t = table(120);
        let idx = crate::ShardedIndex::build(
            &t,
            &AbConfig::new(Level::PerAttribute).with_alpha(8),
            3,
            false,
        );
        let bytes = idx.to_bytes();
        let svc = Service::from_index(
            crate::ShardedIndex::from_bytes(&bytes).unwrap(),
            &small_cfg(),
        );
        let q = RectQuery::new(vec![AttrRange::new(0, 0, 3)], 0, 119);
        assert_eq!(
            svc.query_rect(&q).unwrap(),
            idx.execute_rect_sequential(&q).unwrap()
        );
    }
}
