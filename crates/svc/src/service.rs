//! The concurrent query service.
//!
//! A [`Service`] owns a [`ShardedIndex`] (behind an `Arc`) and a
//! [`WorkerPool`]. Each request is validated once against the global
//! schema, split into per-shard parts, and fanned out as **one pool
//! job per shard** (batching — see [`crate::batch`]). Shard jobs
//! execute their rows in [`CHUNK_ROWS`]-sized chunks, calling
//! [`RequestCtx::check`] between chunks so deadlines and cancellation
//! take effect mid-query. The collector waits with the request's
//! remaining deadline budget; a miss cancels the in-flight shard work
//! and discards partial results (a partial merge would break the AB's
//! no-false-negative contract).
//!
//! Admission control happens at submission: a full pool queue sheds
//! the whole request with [`SvcError::Overloaded`] before any shard
//! runs.
//!
//! ## Graceful degradation
//!
//! A shard job that **panics** (a bug, bit-rot, or an injected
//! [`crate::chaos`] fault) does not fail the request: the shard is
//! quarantined in a [`ShardHealth`] ledger and its slice of the query
//! is answered *conservatively* — every row it covers is reported as
//! a candidate. The AB's contract is no false negatives with a
//! controlled false-positive rate, so a conservative slice (FP rate
//! 1.0 for those rows) stays inside the contract; the response
//! carries a typed [`crate::Degraded`] marker naming the shards involved so
//! callers can decide whether the lost precision matters. Later
//! requests skip quarantined shards up front instead of panicking
//! again. Exact (WAH) answers cannot be conservative, so that path
//! fails with [`SvcError::ShardQuarantined`] instead.

use crate::batch::{group_cells_by_shard, group_rects_by_shard};
use crate::chaos::{self, points};
use crate::deadline::{Deadline, RequestCtx};
use crate::degrade::{degraded_marker, Response, ShardHealth};
use crate::error::SvcError;
use crate::pool::WorkerPool;
use crate::shard::{Shard, ShardedIndex};
use ab::{
    AbConfig, BatchRows, Cell, HierConfig, HierMode, HybridConfig, HybridMode, KernelKind,
    KernelOpts, QueryError,
};
use bitmap::{BinnedTable, RectQuery};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// Rows a shard job processes between two [`RequestCtx::check`]
/// calls. Small enough that cancellation latency stays in the tens of
/// microseconds, large enough that the atomic load is noise.
pub const CHUNK_ROWS: usize = 512;

/// Service construction parameters.
#[derive(Clone, Debug)]
pub struct SvcConfig {
    /// Worker threads; `0` means `std::thread::available_parallelism()`.
    pub threads: usize,
    /// Shard count; `0` derives it from the thread count (clamped to
    /// the row count either way).
    pub shards: usize,
    /// Bounded submission-queue capacity; admission control sheds
    /// beyond this depth.
    pub queue_capacity: usize,
    /// Deadline applied to requests that don't carry their own.
    pub default_deadline: Option<Duration>,
    /// Also build a WAH index per shard for exact answers.
    pub with_wah: bool,
    /// Probe engine shard jobs run on (results are identical either
    /// way; see [`ab::KernelKind`]).
    pub kernel: KernelKind,
    /// Batch-depth policy for the batched/simd kernels
    /// ([`ab::BatchRows::Adaptive`] sizes per query from the cache
    /// hierarchy).
    pub batch_rows: BatchRows,
    /// Start a request-scoped trace for every request that doesn't
    /// carry its own (see [`RequestCtx::traced`]); completed traces
    /// land in the global [`obs::recorder`]. Tracing costs one small
    /// allocation per span, so latency benchmarks may turn it off.
    pub trace_requests: bool,
    /// Requests at least this slow are **pinned** in the flight
    /// recorder (the slow-query log) instead of rotating out of the
    /// ring, and counted in `svc.slow_queries`.
    pub slow_query: Option<Duration>,
    /// Hierarchical pruning policy for rect queries
    /// ([`ab::HierMode::Off`] by default). Anything other than `Off`
    /// attaches a [`ab::HierAb`] pyramid to every shard at build (or
    /// load) time; shard jobs then prune whole row spans before the
    /// chunked kernel runs. Results stay bit-identical either way.
    pub hier: HierMode,
    /// Pyramid geometry used when [`Self::hier`] is not `Off`.
    pub hier_config: HierConfig,
    /// Exact-tier policy for rect and cell queries
    /// ([`ab::HybridMode::Off`] by default). Anything other than `Off`
    /// builds a [`ab::HybridAb`] per shard at build time (loaded
    /// segments that already carry a tier serve it as-is); exact-backed
    /// bins then answer straight from Roaring containers — zero hash
    /// probes, zero false positives for those bins.
    pub hybrid: HybridMode,
    /// Split-decision calibration used when [`Self::hybrid`] is not
    /// `Off`.
    pub hybrid_config: HybridConfig,
}

impl Default for SvcConfig {
    fn default() -> Self {
        SvcConfig {
            threads: 0,
            shards: 0,
            queue_capacity: 256,
            default_deadline: None,
            with_wah: false,
            kernel: KernelKind::default(),
            batch_rows: BatchRows::default(),
            trace_requests: true,
            slow_query: None,
            hier: HierMode::Off,
            hier_config: HierConfig::default(),
            hybrid: HybridMode::Off,
            hybrid_config: HybridConfig::default(),
        }
    }
}

impl SvcConfig {
    /// The thread count after resolving `0` to the machine's
    /// available parallelism.
    pub fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    /// The shard count for a table of `num_rows` rows: explicit, or
    /// derived from the thread count; always clamped to `1..=num_rows`.
    pub fn resolved_shards(&self, num_rows: usize) -> usize {
        let want = if self.shards > 0 {
            self.shards
        } else {
            self.resolved_threads()
        };
        want.clamp(1, num_rows.max(1))
    }
}

/// What one shard job reports back to the request's collector.
enum ShardOutcome<T> {
    /// The job ran to completion (successfully or with a typed error).
    Done(Result<T, SvcError>),
    /// The job panicked; the shard must be quarantined and its slice
    /// answered conservatively.
    Panicked,
}

/// Runs a shard job body, converting a panic into
/// [`ShardOutcome::Panicked`] so the collector hears about it instead
/// of waiting on a message that will never arrive.
fn shard_outcome<T>(body: impl FnOnce() -> Result<T, SvcError>) -> ShardOutcome<T> {
    match catch_unwind(AssertUnwindSafe(body)) {
        Ok(res) => ShardOutcome::Done(res),
        Err(_) => ShardOutcome::Panicked,
    }
}

/// Stamps a shard job's trace span with how the job ended.
fn annotate_shard_outcome<T>(span: &mut obs::TraceSpan, outcome: &ShardOutcome<T>) {
    if !span.enabled() {
        return;
    }
    match outcome {
        ShardOutcome::Done(Ok(_)) => span.annotate("outcome", "ok"),
        ShardOutcome::Done(Err(e)) => {
            span.annotate("outcome", "error");
            span.annotate("error", error_code(e));
        }
        ShardOutcome::Panicked => span.annotate("outcome", "panicked"),
    }
}

/// Every global row a shard-local query part covers — the
/// conservative ("maybe present") answer for a quarantined shard.
fn conservative_rows(shard_start: usize, local: &RectQuery) -> Vec<usize> {
    (shard_start + local.row_lo..=shard_start + local.row_hi).collect()
}

/// A sharded, concurrent query service over an AB index.
pub struct Service {
    index: Arc<ShardedIndex>,
    pool: WorkerPool,
    default_deadline: Option<Duration>,
    health: Arc<ShardHealth>,
    chaos: Option<Arc<chaos::FaultPlan>>,
    kernel: KernelOpts,
    trace_requests: bool,
    slow_query: Option<Duration>,
}

/// The per-kind request-latency sketch (`svc.latency_us.<kind>`) —
/// accurate p50/p95/p99 where the pow2 `svc.request_us` histogram
/// buckets are ~2× wide.
fn latency_sketch(kind: &'static str) -> &'static obs::QuantileSketch {
    match kind {
        "rect" => obs::sketch!("svc.latency_us.rect"),
        "rect_wah" => obs::sketch!("svc.latency_us.rect_wah"),
        "cells" => obs::sketch!("svc.latency_us.cells"),
        "batch" => obs::sketch!("svc.latency_us.batch"),
        _ => obs::sketch!("svc.latency_us.other"),
    }
}

/// Short stable code for trace annotations.
fn error_code(e: &SvcError) -> &'static str {
    match e {
        SvcError::Overloaded { .. } => "overloaded",
        SvcError::DeadlineExceeded => "deadline_exceeded",
        SvcError::Cancelled => "cancelled",
        SvcError::Query(_) => "invalid_query",
        SvcError::Shutdown => "shutdown",
        SvcError::WahUnavailable => "wah_unavailable",
        SvcError::RetriesExhausted { .. } => "retries_exhausted",
        SvcError::ShardQuarantined { .. } => "shard_quarantined",
    }
}

impl Service {
    /// Builds the sharded index (in parallel, on the service's own
    /// pool) and starts the workers.
    pub fn build(table: &BinnedTable, ab: &AbConfig, cfg: &SvcConfig) -> Self {
        let pool = WorkerPool::new(cfg.resolved_threads(), cfg.queue_capacity);
        let shards = cfg.resolved_shards(table.num_rows());
        let mut index = ShardedIndex::build_parallel(table, ab, shards, cfg.with_wah, &pool);
        if cfg.hier != HierMode::Off {
            index.ensure_hier(&cfg.hier_config);
        }
        if cfg.hybrid != HybridMode::Off {
            index.ensure_hybrid(table, &cfg.hybrid_config);
        }
        let health = Arc::new(ShardHealth::new(index.num_shards()));
        Service {
            index: Arc::new(index),
            pool,
            default_deadline: cfg.default_deadline,
            health,
            chaos: None,
            kernel: KernelOpts::new(cfg.kernel)
                .with_batch_rows(cfg.batch_rows)
                .with_hier(cfg.hier)
                .with_hybrid(cfg.hybrid),
            trace_requests: cfg.trace_requests,
            slow_query: cfg.slow_query,
        }
    }

    /// Wraps an already-built index (e.g. one loaded with
    /// [`ShardedIndex::from_bytes`]); `cfg.shards` is ignored.
    pub fn from_index(mut index: ShardedIndex, cfg: &SvcConfig) -> Self {
        if cfg.hier != HierMode::Off {
            // Old segments carry no pyramid; rebuild one so loaded
            // and freshly built services behave identically.
            index.ensure_hier(&cfg.hier_config);
        }
        if cfg.hybrid != HybridMode::Off {
            // The exact tier cannot be rebuilt here — it holds the
            // truth, which needs the source table (`Service::build`
            // or `abq store build --hybrid`). Loaded v4 segments that
            // carry one are served as-is; replay their split decisions
            // into the planner counters so `/metrics` reports the
            // exact/ab split even though no build ran in-process.
            index.record_hybrid_split_counters();
        }
        let health = Arc::new(ShardHealth::new(index.num_shards()));
        Service {
            index: Arc::new(index),
            pool: WorkerPool::new(cfg.resolved_threads(), cfg.queue_capacity),
            default_deadline: cfg.default_deadline,
            health,
            chaos: None,
            kernel: KernelOpts::new(cfg.kernel)
                .with_batch_rows(cfg.batch_rows)
                .with_hier(cfg.hier)
                .with_hybrid(cfg.hybrid),
            trace_requests: cfg.trace_requests,
            slow_query: cfg.slow_query,
        }
    }

    /// Attaches a fault plan driving this service's injection points
    /// ([`points::POOL_SUBMIT`], [`points::SHARD_QUERY`]) — tests and
    /// chaos drills only.
    pub fn with_fault_plan(mut self, plan: Arc<chaos::FaultPlan>) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// The served index.
    pub fn index(&self) -> &ShardedIndex {
        &self.index
    }

    /// The quarantine ledger (shards currently answered
    /// conservatively). [`ShardHealth::clear`] returns a repaired
    /// shard to service.
    pub fn health(&self) -> &ShardHealth {
        &self.health
    }

    /// The probe engine this service's shard jobs run on.
    pub fn kernel(&self) -> KernelKind {
        self.kernel.kernel
    }

    /// The full kernel options (engine + batch-depth policy).
    pub fn kernel_opts(&self) -> KernelOpts {
        self.kernel
    }

    /// Worker threads serving requests.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Whether this service starts a request-scoped trace for
    /// requests that don't carry their own (see
    /// [`SvcConfig::trace_requests`]). Front ends that open
    /// caller-owned traces check this so tracing stays a single knob.
    pub fn tracing_enabled(&self) -> bool {
        self.trace_requests
    }

    /// Jobs currently queued for admission.
    pub fn queue_depth(&self) -> usize {
        self.pool.queue_depth()
    }

    /// The quarantine ledger behind its `Arc` — for telemetry servers
    /// that outlive borrows of the service.
    pub fn health_arc(&self) -> Arc<ShardHealth> {
        Arc::clone(&self.health)
    }

    fn ctx_with_default(&self) -> RequestCtx {
        RequestCtx::new(match self.default_deadline {
            Some(budget) => Deadline::within(budget),
            None => Deadline::none(),
        })
    }

    /// Wraps one request: opens its `svc.request` root span (on the
    /// caller's trace if the ctx carries one, on a fresh service-owned
    /// trace otherwise), annotates the outcome, records the per-kind
    /// latency sketch, and — for service-owned traces — finishes the
    /// trace into the global flight recorder.
    fn traced_request<T>(
        &self,
        kind: &'static str,
        ctx: &RequestCtx,
        run: impl FnOnce(&obs::TraceCtx, u64) -> Result<T, SvcError>,
    ) -> Result<T, SvcError> {
        let _timer = obs::span("svc.request_us");
        obs::counter!("svc.requests").inc();
        let start = std::time::Instant::now();
        let (trace, owned) = if ctx.trace().enabled() {
            (ctx.trace().clone(), false)
        } else if self.trace_requests {
            (obs::TraceCtx::start(kind), true)
        } else {
            (obs::TraceCtx::disabled(), false)
        };
        let mut root = trace.span_under(0, "svc.request");
        root.annotate("kind", kind);
        let root_id = root.id();
        let result = run(&trace, root_id);
        match &result {
            Ok(_) => root.annotate("outcome", "ok"),
            Err(e) => {
                root.annotate("outcome", "error");
                root.annotate("error", error_code(e));
            }
        }
        drop(root);
        latency_sketch(kind).record(start.elapsed().as_micros() as u64);
        if owned {
            self.record_trace(&trace);
        }
        result
    }

    /// Finishes a trace and files it in the global [`obs::recorder`],
    /// pinning it as a slow query when it crossed
    /// [`SvcConfig::slow_query`].
    fn record_trace(&self, trace: &obs::TraceCtx) {
        if let Some(t) = trace.finish() {
            let pin = self
                .slow_query
                .is_some_and(|thr| u128::from(t.duration_us) >= thr.as_micros());
            if pin {
                obs::counter!("svc.slow_queries").inc();
            }
            obs::recorder().record(t, pin);
        }
    }

    /// Finishes a **caller-owned** trace (see [`RequestCtx::traced`])
    /// and files it in the global flight recorder, applying the
    /// service's slow-query pinning policy. Call once, after the last
    /// request (e.g. the last retry attempt) recorded into it; each
    /// attempt appears as its own `svc.request` root span.
    pub fn finish_trace(&self, trace: &obs::TraceCtx) {
        self.record_trace(trace);
    }

    /// Rectangular AB query under the service's default deadline.
    /// Returns globally sorted row ids, bit-identical to
    /// [`ShardedIndex::execute_rect_sequential`] while every shard is
    /// healthy. The degradation marker is discarded; use
    /// [`Self::try_query_rect`] to observe it.
    pub fn query_rect(&self, query: &RectQuery) -> Result<Vec<usize>, SvcError> {
        self.try_query_rect(query).map(Response::into_value)
    }

    /// Rectangular query returning the answer together with its
    /// [`crate::Degraded`] status.
    pub fn try_query_rect(&self, query: &RectQuery) -> Result<Response<Vec<usize>>, SvcError> {
        self.try_query_rect_ctx(query, &self.ctx_with_default())
    }

    /// Rectangular query with an explicit per-request deadline.
    pub fn query_rect_within(
        &self,
        query: &RectQuery,
        budget: Duration,
    ) -> Result<Vec<usize>, SvcError> {
        self.query_rect_ctx(query, &RequestCtx::new(Deadline::within(budget)))
    }

    /// Rectangular query under a caller-owned [`RequestCtx`] — the
    /// caller keeps a clone and may cancel mid-flight. The degradation
    /// marker is discarded; use [`Self::try_query_rect_ctx`] to
    /// observe it.
    pub fn query_rect_ctx(
        &self,
        query: &RectQuery,
        ctx: &RequestCtx,
    ) -> Result<Vec<usize>, SvcError> {
        self.try_query_rect_ctx(query, ctx)
            .map(Response::into_value)
    }

    /// Rectangular query under a caller-owned [`RequestCtx`],
    /// reporting degradation: quarantined (or newly panicking) shards
    /// contribute every row of their slice as a candidate instead of
    /// failing the request, and the response's `degraded` marker
    /// names them.
    pub fn try_query_rect_ctx(
        &self,
        query: &RectQuery,
        ctx: &RequestCtx,
    ) -> Result<Response<Vec<usize>>, SvcError> {
        self.traced_request("rect", ctx, |trace, root_id| {
            self.rect_ctx_traced(query, ctx, trace, root_id)
        })
    }

    fn rect_ctx_traced(
        &self,
        query: &RectQuery,
        ctx: &RequestCtx,
        trace: &obs::TraceCtx,
        root_id: u64,
    ) -> Result<Response<Vec<usize>>, SvcError> {
        let mut admit = trace.span_under(root_id, "svc.admit");
        self.index.validate_rect(query)?;
        ctx.check()?;
        let parts = self.index.split_rect(query);
        obs::histogram!("svc.fanout").record(parts.len() as u64);
        admit.annotate("fanout", parts.len());
        // Remember each slot's row interval so a panicking shard's
        // slice can be re-answered conservatively after the fact.
        let slot_spans: Vec<(usize, RectQuery)> = parts.clone();
        let (tx, rx) = mpsc::channel();
        let mut merged: Vec<Option<Vec<usize>>> = (0..parts.len()).map(|_| None).collect();
        let mut degraded = Vec::new();
        let mut expected = 0usize;
        for (slot, (sid, local)) in parts.into_iter().enumerate() {
            let start = self.index.shards()[sid].start();
            if self.health.is_quarantined(sid) {
                trace
                    .span_under(root_id, "svc.quarantined")
                    .annotate("shard", sid);
                merged[slot] = Some(conservative_rows(start, &local));
                degraded.push(sid);
                continue;
            }
            if let Err(e) = chaos::inject(self.chaos.as_deref(), points::POOL_SUBMIT, Some(sid)) {
                ctx.cancel();
                obs::counter!("svc.shed").inc();
                return Err(e);
            }
            let index = Arc::clone(&self.index);
            let job_ctx = ctx.clone();
            let plan = self.chaos.clone();
            let kernel = self.kernel;
            let tx = tx.clone();
            let job_trace = trace.clone();
            if let Err(e) = self.pool.try_execute(move || {
                let mut tspan = job_trace.span_under(root_id, "svc.shard");
                tspan.annotate("shard", sid);
                let enter = tspan.enter();
                let outcome = shard_outcome(|| {
                    chaos::inject(plan.as_deref(), points::SHARD_QUERY, Some(sid))?;
                    run_shard_chunked(&index.shards()[sid], &local, &job_ctx, kernel)
                });
                drop(enter);
                annotate_shard_outcome(&mut tspan, &outcome);
                drop(tspan);
                let _ = tx.send((slot, sid, outcome));
            }) {
                // Shed: abandon the whole request and stop any parts
                // already admitted.
                ctx.cancel();
                obs::counter!("svc.shed").inc();
                return Err(e);
            }
            expected += 1;
        }
        drop(tx);
        drop(admit);
        let mut merge = trace.span_under(root_id, "svc.merge");
        for _ in 0..expected {
            match self.collect(&rx, ctx)? {
                (slot, _, ShardOutcome::Done(Ok(rows))) => merged[slot] = Some(rows),
                (_, _, ShardOutcome::Done(Err(e))) => return Err(self.abandon(ctx, e)),
                (slot, sid, ShardOutcome::Panicked) => {
                    self.health.quarantine(sid);
                    degraded.push(sid);
                    let (_, local) = &slot_spans[slot];
                    let start = self.index.shards()[sid].start();
                    merged[slot] = Some(conservative_rows(start, local));
                }
            }
        }
        if !degraded.is_empty() {
            merge.annotate("degraded_shards", degraded.len());
        }
        // Shard parts were issued in row order, so flattening by slot
        // yields globally sorted rows.
        Ok(Response {
            value: merged.into_iter().flatten().flatten().collect(),
            degraded: degraded_marker(degraded),
        })
    }

    /// Exact rectangular query over the per-shard WAH indexes (the
    /// paper's verbatim/compressed baseline). Requires
    /// [`SvcConfig::with_wah`] at build time. Exact answers cannot be
    /// conservative, so a quarantined (or newly panicking) shard
    /// fails the request with [`SvcError::ShardQuarantined`].
    pub fn query_rect_wah(&self, query: &RectQuery) -> Result<Vec<usize>, SvcError> {
        self.query_rect_wah_ctx(query, &self.ctx_with_default())
    }

    /// [`Self::query_rect_wah`] under a caller-owned [`RequestCtx`]
    /// (deadline, cancellation, and optionally a caller-owned trace —
    /// see [`RequestCtx::traced`]).
    pub fn query_rect_wah_ctx(
        &self,
        query: &RectQuery,
        ctx: &RequestCtx,
    ) -> Result<Vec<usize>, SvcError> {
        self.traced_request("rect_wah", ctx, |trace, root_id| {
            self.rect_wah_traced(query, ctx, trace, root_id)
        })
    }

    fn rect_wah_traced(
        &self,
        query: &RectQuery,
        ctx: &RequestCtx,
        trace: &obs::TraceCtx,
        root_id: u64,
    ) -> Result<Vec<usize>, SvcError> {
        let mut admit = trace.span_under(root_id, "svc.admit");
        self.index.validate_rect(query)?;
        if self.index.shards().iter().any(|s| s.wah().is_none()) {
            return Err(SvcError::WahUnavailable);
        }
        ctx.check()?;
        let parts = self.index.split_rect(query);
        obs::histogram!("svc.fanout").record(parts.len() as u64);
        admit.annotate("fanout", parts.len());
        if let Some(&(sid, _)) = parts
            .iter()
            .find(|(sid, _)| self.health.is_quarantined(*sid))
        {
            trace
                .span_under(root_id, "svc.quarantined")
                .annotate("shard", sid);
            return Err(SvcError::ShardQuarantined { shard: sid });
        }
        let (tx, rx) = mpsc::channel();
        let expected = parts.len();
        for (slot, (sid, local)) in parts.into_iter().enumerate() {
            let index = Arc::clone(&self.index);
            let job_ctx = ctx.clone();
            let plan = self.chaos.clone();
            let tx = tx.clone();
            let job_trace = trace.clone();
            if let Err(e) = self.pool.try_execute(move || {
                let mut tspan = job_trace.span_under(root_id, "svc.shard");
                tspan.annotate("shard", sid);
                let enter = tspan.enter();
                let outcome = shard_outcome(|| {
                    job_ctx.check()?;
                    chaos::inject(plan.as_deref(), points::SHARD_QUERY, Some(sid))?;
                    let shard = &index.shards()[sid];
                    Ok(shard
                        .wah()
                        .expect("checked above")
                        .evaluate_rows(&local)
                        .into_iter()
                        .map(|r| r + shard.start())
                        .collect::<Vec<usize>>())
                });
                drop(enter);
                annotate_shard_outcome(&mut tspan, &outcome);
                drop(tspan);
                let _ = tx.send((slot, sid, outcome));
            }) {
                ctx.cancel();
                obs::counter!("svc.shed").inc();
                return Err(e);
            }
        }
        drop(tx);
        drop(admit);
        let _merge = trace.span_under(root_id, "svc.merge");
        let mut merged: Vec<Option<Vec<usize>>> = (0..expected).map(|_| None).collect();
        for _ in 0..expected {
            match self.collect(&rx, ctx)? {
                (slot, _, ShardOutcome::Done(Ok(rows))) => merged[slot] = Some(rows),
                (_, _, ShardOutcome::Done(Err(e))) => return Err(self.abandon(ctx, e)),
                (_, sid, ShardOutcome::Panicked) => {
                    self.health.quarantine(sid);
                    return Err(self.abandon(ctx, SvcError::ShardQuarantined { shard: sid }));
                }
            }
        }
        Ok(merged.into_iter().flatten().flatten().collect())
    }

    /// Cell-subset retrieval (paper Figure 5) under the default
    /// deadline: one boolean per cell, in request order. Probes are
    /// batched per owning shard — one pool job per shard touched. The
    /// degradation marker is discarded; use
    /// [`Self::try_retrieve_cells`] to observe it.
    pub fn retrieve_cells(&self, cells: &[Cell]) -> Result<Vec<bool>, SvcError> {
        self.try_retrieve_cells(cells).map(Response::into_value)
    }

    /// Cell-subset retrieval reporting degradation: cells owned by a
    /// quarantined (or newly panicking) shard answer `true` — *maybe
    /// present*, the conservative AB answer — and the response's
    /// `degraded` marker names those shards.
    pub fn try_retrieve_cells(&self, cells: &[Cell]) -> Result<Response<Vec<bool>>, SvcError> {
        self.try_retrieve_cells_ctx(cells, &self.ctx_with_default())
    }

    /// [`Self::try_retrieve_cells`] under a caller-owned
    /// [`RequestCtx`] (deadline, cancellation, and optionally a
    /// caller-owned trace — see [`RequestCtx::traced`]).
    pub fn try_retrieve_cells_ctx(
        &self,
        cells: &[Cell],
        ctx: &RequestCtx,
    ) -> Result<Response<Vec<bool>>, SvcError> {
        self.traced_request("cells", ctx, |trace, root_id| {
            self.retrieve_cells_traced(cells, ctx, trace, root_id)
        })
    }

    fn retrieve_cells_traced(
        &self,
        cells: &[Cell],
        ctx: &RequestCtx,
        trace: &obs::TraceCtx,
        root_id: u64,
    ) -> Result<Response<Vec<bool>>, SvcError> {
        let mut admit = trace.span_under(root_id, "svc.admit");
        obs::histogram!("svc.batch.size").record(cells.len() as u64);
        self.validate_cells(cells)?;
        if cells.is_empty() {
            return Ok(Response::healthy(Vec::new()));
        }
        ctx.check()?;
        let groups = group_cells_by_shard(&self.index, cells);
        obs::histogram!("svc.fanout").record(groups.len() as u64);
        admit.annotate("fanout", groups.len());
        admit.annotate("cells", cells.len());
        // Remember each slot's probe positions so a panicking shard's
        // probes can be re-answered conservatively after the fact.
        let slot_positions: Vec<Vec<usize>> = groups
            .iter()
            .map(|g| g.cells.iter().map(|&(pos, _)| pos).collect())
            .collect();
        let mut answers = vec![false; cells.len()];
        let mut degraded = Vec::new();
        let (tx, rx) = mpsc::channel();
        let mut expected = 0usize;
        for (slot, group) in groups.into_iter().enumerate() {
            let sid = group.shard;
            if self.health.is_quarantined(sid) {
                trace
                    .span_under(root_id, "svc.quarantined")
                    .annotate("shard", sid);
                for &pos in &slot_positions[slot] {
                    answers[pos] = true;
                }
                degraded.push(sid);
                continue;
            }
            if let Err(e) = chaos::inject(self.chaos.as_deref(), points::POOL_SUBMIT, Some(sid)) {
                ctx.cancel();
                obs::counter!("svc.shed").inc();
                return Err(e);
            }
            let index = Arc::clone(&self.index);
            let job_ctx = ctx.clone();
            let plan = self.chaos.clone();
            let kernel = self.kernel;
            let tx = tx.clone();
            let job_trace = trace.clone();
            if let Err(e) = self.pool.try_execute(move || {
                let mut tspan = job_trace.span_under(root_id, "svc.shard");
                tspan.annotate("shard", sid);
                let enter = tspan.enter();
                let outcome = shard_outcome(|| {
                    chaos::inject(plan.as_deref(), points::SHARD_QUERY, Some(sid))?;
                    let shard = &index.shards()[sid];
                    let mut out = Vec::with_capacity(group.cells.len());
                    let mut probe = Vec::with_capacity(CHUNK_ROWS);
                    for chunk in group.cells.chunks(CHUNK_ROWS) {
                        job_ctx.check()?;
                        probe.clear();
                        probe.extend(chunk.iter().map(|&(_, c)| c));
                        let hits = shard.index().retrieve_cells_with_opts(&probe, kernel);
                        out.extend(chunk.iter().zip(hits).map(|(&(pos, _), hit)| (pos, hit)));
                    }
                    Ok(out)
                });
                drop(enter);
                annotate_shard_outcome(&mut tspan, &outcome);
                drop(tspan);
                let _ = tx.send((slot, sid, outcome));
            }) {
                ctx.cancel();
                obs::counter!("svc.shed").inc();
                return Err(e);
            }
            expected += 1;
        }
        drop(tx);
        drop(admit);
        let mut merge = trace.span_under(root_id, "svc.merge");
        for _ in 0..expected {
            match self.collect(&rx, ctx)? {
                (_, _, ShardOutcome::Done(Ok(hits))) => {
                    for (pos, hit) in hits {
                        answers[pos] = hit;
                    }
                }
                (_, _, ShardOutcome::Done(Err(e))) => return Err(self.abandon(ctx, e)),
                (slot, sid, ShardOutcome::Panicked) => {
                    self.health.quarantine(sid);
                    degraded.push(sid);
                    for &pos in &slot_positions[slot] {
                        answers[pos] = true;
                    }
                }
            }
        }
        if !degraded.is_empty() {
            merge.annotate("degraded_shards", degraded.len());
        }
        Ok(Response {
            value: answers,
            degraded: degraded_marker(degraded),
        })
    }

    /// A batch of rectangular queries under one deadline: all shard
    /// parts of all queries are grouped so each touched shard gets a
    /// single pool job. Returns one (globally sorted) row list per
    /// query, each bit-identical to running the query alone while
    /// every shard is healthy. The degradation marker is discarded;
    /// use [`Self::try_query_batch`] to observe it.
    pub fn query_batch(&self, queries: &[RectQuery]) -> Result<Vec<Vec<usize>>, SvcError> {
        self.try_query_batch(queries).map(Response::into_value)
    }

    /// Batched rectangular queries reporting degradation: quarantined
    /// (or newly panicking) shards contribute every covered row to
    /// each affected query, and the response's `degraded` marker names
    /// them.
    pub fn try_query_batch(
        &self,
        queries: &[RectQuery],
    ) -> Result<Response<Vec<Vec<usize>>>, SvcError> {
        self.try_query_batch_ctx(queries, &self.ctx_with_default())
    }

    /// [`Self::try_query_batch`] under a caller-owned [`RequestCtx`]
    /// (deadline, cancellation, and optionally a caller-owned trace —
    /// see [`RequestCtx::traced`]).
    pub fn try_query_batch_ctx(
        &self,
        queries: &[RectQuery],
        ctx: &RequestCtx,
    ) -> Result<Response<Vec<Vec<usize>>>, SvcError> {
        self.traced_request("batch", ctx, |trace, root_id| {
            self.query_batch_traced(queries, ctx, trace, root_id)
        })
    }

    fn query_batch_traced(
        &self,
        queries: &[RectQuery],
        ctx: &RequestCtx,
        trace: &obs::TraceCtx,
        root_id: u64,
    ) -> Result<Response<Vec<Vec<usize>>>, SvcError> {
        let mut admit = trace.span_under(root_id, "svc.admit");
        obs::histogram!("svc.batch.size").record(queries.len() as u64);
        for q in queries {
            self.index.validate_rect(q)?;
        }
        if queries.is_empty() {
            return Ok(Response::healthy(Vec::new()));
        }
        ctx.check()?;
        let groups = group_rects_by_shard(&self.index, queries);
        obs::histogram!("svc.fanout").record(groups.len() as u64);
        admit.annotate("fanout", groups.len());
        admit.annotate("queries", queries.len());
        // Remember each group's parts so a panicking shard's slices
        // can be re-answered conservatively after the fact.
        let group_parts: Vec<Vec<(usize, RectQuery)>> =
            groups.iter().map(|g| g.queries.clone()).collect();
        let mut per_query: Vec<Vec<(usize, Vec<usize>)>> = vec![Vec::new(); queries.len()];
        let mut degraded = Vec::new();
        let conservative_group =
            |per_query: &mut Vec<Vec<(usize, Vec<usize>)>>, slot: usize, sid: usize| {
                let start = self.index.shards()[sid].start();
                for (qidx, local) in &group_parts[slot] {
                    per_query[*qidx].push((sid, conservative_rows(start, local)));
                }
            };
        let (tx, rx) = mpsc::channel();
        let mut expected = 0usize;
        for (slot, group) in groups.into_iter().enumerate() {
            let sid = group.shard;
            if self.health.is_quarantined(sid) {
                trace
                    .span_under(root_id, "svc.quarantined")
                    .annotate("shard", sid);
                conservative_group(&mut per_query, slot, sid);
                degraded.push(sid);
                continue;
            }
            if let Err(e) = chaos::inject(self.chaos.as_deref(), points::POOL_SUBMIT, Some(sid)) {
                ctx.cancel();
                obs::counter!("svc.shed").inc();
                return Err(e);
            }
            let index = Arc::clone(&self.index);
            let job_ctx = ctx.clone();
            let plan = self.chaos.clone();
            let kernel = self.kernel;
            let tx = tx.clone();
            let job_trace = trace.clone();
            if let Err(e) = self.pool.try_execute(move || {
                let mut tspan = job_trace.span_under(root_id, "svc.shard");
                tspan.annotate("shard", sid);
                let enter = tspan.enter();
                let outcome = shard_outcome(|| {
                    chaos::inject(plan.as_deref(), points::SHARD_QUERY, Some(sid))?;
                    let shard = &index.shards()[sid];
                    let mut out = Vec::with_capacity(group.queries.len());
                    for (qidx, local) in &group.queries {
                        out.push((*qidx, run_shard_chunked(shard, local, &job_ctx, kernel)?));
                    }
                    Ok(out)
                });
                drop(enter);
                annotate_shard_outcome(&mut tspan, &outcome);
                drop(tspan);
                let _ = tx.send((slot, sid, outcome));
            }) {
                ctx.cancel();
                obs::counter!("svc.shed").inc();
                return Err(e);
            }
            expected += 1;
        }
        drop(tx);
        drop(admit);
        let mut merge = trace.span_under(root_id, "svc.merge");
        // Parts arrive in shard-completion order; tag each with its
        // shard id and sort per query so the merge stays row-ordered.
        for _ in 0..expected {
            match self.collect(&rx, ctx)? {
                (_, sid, ShardOutcome::Done(Ok(parts))) => {
                    for (qidx, rows) in parts {
                        per_query[qidx].push((sid, rows));
                    }
                }
                (_, _, ShardOutcome::Done(Err(e))) => return Err(self.abandon(ctx, e)),
                (slot, sid, ShardOutcome::Panicked) => {
                    self.health.quarantine(sid);
                    degraded.push(sid);
                    conservative_group(&mut per_query, slot, sid);
                }
            }
        }
        if !degraded.is_empty() {
            merge.annotate("degraded_shards", degraded.len());
        }
        Ok(Response {
            value: per_query
                .into_iter()
                .map(|mut parts| {
                    parts.sort_unstable_by_key(|(sid, _)| *sid);
                    parts.into_iter().flat_map(|(_, rows)| rows).collect()
                })
                .collect(),
            degraded: degraded_marker(degraded),
        })
    }

    /// Waits for one shard message, charging the wait against the
    /// request's deadline. A timeout cancels the remaining shard work.
    fn collect<M>(&self, rx: &mpsc::Receiver<M>, ctx: &RequestCtx) -> Result<M, SvcError> {
        let received = match ctx.deadline.remaining() {
            None => rx.recv().map_err(|_| SvcError::Shutdown),
            Some(budget) => rx.recv_timeout(budget).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => SvcError::DeadlineExceeded,
                mpsc::RecvTimeoutError::Disconnected => SvcError::Shutdown,
            }),
        };
        received.map_err(|e| self.abandon(ctx, e))
    }

    /// Abandons a request: cancels in-flight shard work (partial
    /// results must be discarded — a partial merge would break the no
    /// false-negative contract) and counts deadline misses.
    fn abandon(&self, ctx: &RequestCtx, e: SvcError) -> SvcError {
        ctx.cancel();
        if e == SvcError::DeadlineExceeded {
            obs::counter!("svc.deadline_missed").inc();
        }
        e
    }
}

/// Runs one shard's part of a rectangular query in [`CHUNK_ROWS`]
/// chunks on the configured probe kernel, translating matches back to
/// global row ids.
///
/// Hierarchical pruning (when enabled and the shard carries a
/// pyramid) runs over the *whole* shard part first — pruning inside a
/// 512-row chunk would never see a span-sized region — and only the
/// surviving row intervals are chunked. The per-chunk kernel runs
/// with hier forced off so the core path neither re-prunes nor
/// double-counts the `hier.*` stats emitted here.
fn run_shard_chunked(
    shard: &Shard,
    local: &RectQuery,
    ctx: &RequestCtx,
    kernel: KernelOpts,
) -> Result<Vec<usize>, SvcError> {
    let flat = kernel.with_hier(HierMode::Off);
    let mut out = Vec::new();
    if kernel.hier != HierMode::Off && !local.ranges.is_empty() && local.row_lo <= local.row_hi {
        if let Some(hier) = shard.index().hier() {
            if kernel.hier == HierMode::Force || ab::plan_descent(hier, local) {
                let prune = hier.prune(local);
                obs::counter!("hier.regions_pruned").add(prune.regions_pruned);
                obs::counter!("hier.rows_skipped").add(prune.rows_skipped);
                for (lo, hi) in prune.intervals {
                    let part = RectQuery::new(local.ranges.clone(), lo, hi);
                    run_shard_chunked_flat(shard, &part, ctx, flat, &mut out)?;
                }
                return Ok(out);
            }
        }
    }
    run_shard_chunked_flat(shard, local, ctx, flat, &mut out)?;
    Ok(out)
}

/// The chunked scan itself: [`CHUNK_ROWS`] rows per kernel call with
/// a [`RequestCtx::check`] between chunks.
fn run_shard_chunked_flat(
    shard: &Shard,
    local: &RectQuery,
    ctx: &RequestCtx,
    kernel: KernelOpts,
    out: &mut Vec<usize>,
) -> Result<(), SvcError> {
    let mut lo = local.row_lo;
    loop {
        ctx.check()?;
        let hi = local.row_hi.min(lo + CHUNK_ROWS - 1);
        let chunk = RectQuery::new(local.ranges.clone(), lo, hi);
        out.extend(
            shard
                .index()
                .try_execute_rect_with_opts(&chunk, kernel)?
                .into_iter()
                .map(|r| r + shard.start()),
        );
        if hi == local.row_hi {
            return Ok(());
        }
        lo = hi + 1;
    }
}

impl Service {
    fn validate_cells(&self, cells: &[Cell]) -> Result<(), QueryError> {
        let attrs = self.index.attributes();
        for c in cells {
            if c.row >= self.index.num_rows() {
                return Err(QueryError::RowOutOfRange {
                    row: c.row,
                    num_rows: self.index.num_rows(),
                });
            }
            let card = attrs.get(c.attribute).map(|a| a.cardinality).unwrap_or(0);
            if c.bin >= card {
                return Err(QueryError::BinOutOfRange {
                    attribute: c.attribute,
                    bin: c.bin,
                    cardinality: card,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ab::Level;
    use bitmap::{AttrRange, BinnedColumn};

    fn table(n: usize) -> BinnedTable {
        BinnedTable::new(vec![
            BinnedColumn::new(
                "a",
                (0..n)
                    .map(|i| (hashkit::splitmix64(i as u64) % 6) as u32)
                    .collect(),
                6,
            ),
            BinnedColumn::new(
                "b",
                (0..n)
                    .map(|i| (hashkit::splitmix64(!(i as u64)) % 4) as u32)
                    .collect(),
                4,
            ),
        ])
    }

    fn service(n: usize, cfg: SvcConfig) -> Service {
        Service::build(
            &table(n),
            &AbConfig::new(Level::PerAttribute).with_alpha(8),
            &cfg,
        )
    }

    fn small_cfg() -> SvcConfig {
        SvcConfig {
            threads: 2,
            shards: 4,
            ..SvcConfig::default()
        }
    }

    #[test]
    fn concurrent_result_matches_sequential_reference() {
        let svc = service(500, small_cfg());
        for (lo, hi) in [(0, 499), (13, 400), (250, 260)] {
            let q = RectQuery::new(
                vec![AttrRange::new(0, 1, 4), AttrRange::new(1, 0, 2)],
                lo,
                hi,
            );
            assert_eq!(
                svc.query_rect(&q).unwrap(),
                svc.index().execute_rect_sequential(&q).unwrap()
            );
        }
    }

    #[test]
    fn invalid_queries_get_typed_errors() {
        let svc = service(100, small_cfg());
        let bad_row = RectQuery::new(vec![], 0, 100);
        assert!(matches!(
            svc.query_rect(&bad_row),
            Err(SvcError::Query(QueryError::RowOutOfRange { .. }))
        ));
        let bad_bin = RectQuery::new(vec![AttrRange::new(1, 0, 9)], 0, 50);
        assert!(matches!(
            svc.query_rect(&bad_bin),
            Err(SvcError::Query(QueryError::BinOutOfRange { .. }))
        ));
    }

    #[test]
    fn expired_deadline_rejects_before_dispatch() {
        let svc = service(200, small_cfg());
        let q = RectQuery::new(vec![AttrRange::new(0, 0, 5)], 0, 199);
        assert_eq!(
            svc.query_rect_within(&q, Duration::ZERO),
            Err(SvcError::DeadlineExceeded)
        );
    }

    #[test]
    fn cancelled_context_stops_the_request() {
        let svc = service(200, small_cfg());
        let ctx = RequestCtx::new(Deadline::none());
        ctx.cancel();
        let q = RectQuery::new(vec![], 0, 199);
        assert_eq!(svc.query_rect_ctx(&q, &ctx), Err(SvcError::Cancelled));
    }

    #[test]
    fn retrieve_cells_answers_in_request_order() {
        let n = 300;
        let t = table(n);
        let svc = Service::build(
            &t,
            &AbConfig::new(Level::PerAttribute).with_alpha(8),
            &small_cfg(),
        );
        // Query every row's true bin in attribute 0, shuffled across
        // shards: all must come back true (no false negatives).
        let cells: Vec<Cell> = (0..n)
            .map(|i| (i * 7919) % n) // visit rows out of order
            .map(|r| Cell::new(r, 0, t.column(0).bins[r]))
            .collect();
        let got = svc.retrieve_cells(&cells).unwrap();
        assert_eq!(got.len(), n);
        assert!(got.iter().all(|&b| b), "false negative via service");
    }

    #[test]
    fn retrieve_cells_validates_input() {
        let svc = service(50, small_cfg());
        assert!(matches!(
            svc.retrieve_cells(&[Cell::new(50, 0, 0)]),
            Err(SvcError::Query(QueryError::RowOutOfRange { .. }))
        ));
        assert!(matches!(
            svc.retrieve_cells(&[Cell::new(0, 7, 0)]),
            Err(SvcError::Query(QueryError::BinOutOfRange {
                attribute: 7,
                ..
            }))
        ));
        assert_eq!(svc.retrieve_cells(&[]).unwrap(), Vec::<bool>::new());
    }

    #[test]
    fn batch_matches_individual_queries() {
        let svc = service(400, small_cfg());
        let qs = vec![
            RectQuery::new(vec![AttrRange::new(0, 0, 2)], 0, 399),
            RectQuery::new(vec![AttrRange::new(1, 1, 3)], 100, 250),
            RectQuery::new(vec![], 395, 399),
        ];
        let batched = svc.query_batch(&qs).unwrap();
        assert_eq!(batched.len(), 3);
        for (q, rows) in qs.iter().zip(&batched) {
            assert_eq!(rows, &svc.query_rect(q).unwrap());
        }
        assert!(svc.query_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn wah_path_gives_exact_subset_of_ab_answer() {
        let t = table(300);
        let cfg = SvcConfig {
            with_wah: true,
            ..small_cfg()
        };
        let svc = Service::build(&t, &AbConfig::new(Level::PerAttribute).with_alpha(8), &cfg);
        let q = RectQuery::new(vec![AttrRange::new(0, 2, 4)], 10, 290);
        let exact = svc.query_rect_wah(&q).unwrap();
        let approx = svc.query_rect(&q).unwrap();
        for r in &exact {
            assert!(approx.contains(r), "AB missed exact row {r}");
        }
        let reference = bitmap::BitmapIndex::build(&t, bitmap::Encoding::Equality);
        assert_eq!(exact, reference.evaluate_rows(&q));
    }

    #[test]
    fn wah_unavailable_without_build_flag() {
        let svc = service(100, small_cfg());
        let q = RectQuery::new(vec![], 0, 99);
        assert_eq!(svc.query_rect_wah(&q), Err(SvcError::WahUnavailable));
    }

    #[test]
    fn config_resolution_clamps_shards() {
        let cfg = SvcConfig {
            threads: 4,
            shards: 0,
            ..SvcConfig::default()
        };
        assert_eq!(cfg.resolved_threads(), 4);
        assert_eq!(cfg.resolved_shards(1000), 4);
        assert_eq!(cfg.resolved_shards(2), 2); // clamped to rows
        let auto = SvcConfig::default();
        assert!(auto.resolved_threads() >= 1);
    }

    #[cfg(not(feature = "chaos-off"))]
    #[test]
    fn panicking_shard_degrades_conservatively_not_fatally() {
        use crate::chaos::{Fault, FaultPlan, FaultRule};
        let plan = Arc::new(
            FaultPlan::new(11).with_rule(
                FaultRule::new(points::SHARD_QUERY, Fault::Panic)
                    .on_shard(1)
                    .max_fires(1),
            ),
        );
        let svc = service(400, small_cfg()).with_fault_plan(Arc::clone(&plan));
        let q = RectQuery::new(vec![AttrRange::new(0, 1, 4)], 0, 399);
        let healthy_rows = svc.index().execute_rect_sequential(&q).unwrap();

        let r = svc.try_query_rect(&q).unwrap();
        assert_eq!(
            r.degraded.as_ref().map(|d| d.shards.clone()),
            Some(vec![1]),
            "shard 1's panic must surface as a Degraded marker"
        );
        // No false negatives: every healthy answer survives, and the
        // quarantined shard's whole slice (rows 100..200 of 4×100-row
        // shards) is present.
        for row in &healthy_rows {
            assert!(r.value.contains(row), "degraded answer lost row {row}");
        }
        let s1 = &svc.index().shards()[1];
        for row in s1.start()..s1.end() {
            assert!(r.value.contains(&row));
        }
        assert!(r.value.windows(2).all(|w| w[0] < w[1]), "merge unsorted");

        // The shard stays quarantined: the next request degrades up
        // front without firing the (spent) fault again.
        assert!(svc.health().is_quarantined(1));
        let again = svc.try_query_rect(&q).unwrap();
        assert!(again.is_degraded());
        assert_eq!(plan.fires(points::SHARD_QUERY), 1);

        // Clearing the quarantine restores bit-identical answers.
        svc.health().clear(1);
        assert_eq!(svc.query_rect(&q).unwrap(), healthy_rows);
    }

    #[cfg(not(feature = "chaos-off"))]
    #[test]
    fn quarantined_cells_answer_maybe_present() {
        use crate::chaos::{Fault, FaultPlan, FaultRule};
        let plan = Arc::new(
            FaultPlan::new(3).with_rule(
                FaultRule::new(points::SHARD_QUERY, Fault::Panic)
                    .on_shard(0)
                    .max_fires(1),
            ),
        );
        let n = 200;
        let t = table(n);
        let svc = Service::build(
            &t,
            &AbConfig::new(Level::PerAttribute).with_alpha(8),
            &small_cfg(),
        )
        .with_fault_plan(plan);
        let cells: Vec<Cell> = (0..n)
            .map(|r| Cell::new(r, 0, t.column(0).bins[r]))
            .collect();
        let r = svc.try_retrieve_cells(&cells).unwrap();
        assert_eq!(r.degraded.as_ref().map(|d| d.shards.clone()), Some(vec![0]));
        assert!(
            r.value.iter().all(|&b| b),
            "true cells must stay true under degradation"
        );
        // Probing a cell that is certainly absent in the quarantined
        // shard still answers true — maybe present, never a false
        // negative elsewhere.
        let absent = Cell::new(0, 0, (t.column(0).bins[0] + 1) % 6);
        let r2 = svc.try_retrieve_cells(&[absent]).unwrap();
        assert!(r2.value[0] && r2.is_degraded());
    }

    #[cfg(not(feature = "chaos-off"))]
    #[test]
    fn wah_path_fails_typed_on_quarantine() {
        use crate::chaos::{Fault, FaultPlan, FaultRule};
        let plan = Arc::new(
            FaultPlan::new(5).with_rule(
                FaultRule::new(points::SHARD_QUERY, Fault::Panic)
                    .on_shard(2)
                    .max_fires(1),
            ),
        );
        let cfg = SvcConfig {
            with_wah: true,
            ..small_cfg()
        };
        let t = table(200);
        let svc = Service::build(&t, &AbConfig::new(Level::PerAttribute).with_alpha(8), &cfg)
            .with_fault_plan(plan);
        let q = RectQuery::new(vec![AttrRange::new(0, 0, 3)], 0, 199);
        assert_eq!(
            svc.query_rect_wah(&q),
            Err(SvcError::ShardQuarantined { shard: 2 })
        );
        // Approximate path still serves (degraded), exact path keeps
        // refusing until the shard is cleared.
        assert!(svc.try_query_rect(&q).unwrap().is_degraded());
        assert_eq!(
            svc.query_rect_wah(&q),
            Err(SvcError::ShardQuarantined { shard: 2 })
        );
        svc.health().clear(2);
        assert!(svc.query_rect_wah(&q).is_ok());
    }

    #[cfg(not(feature = "chaos-off"))]
    #[test]
    fn injected_overload_at_submit_sheds_the_request() {
        use crate::chaos::{Fault, FaultPlan, FaultRule};
        let plan = Arc::new(
            FaultPlan::new(9)
                .with_rule(FaultRule::new(points::POOL_SUBMIT, Fault::Overloaded).max_fires(1)),
        );
        let svc = service(100, small_cfg()).with_fault_plan(plan);
        let q = RectQuery::new(vec![AttrRange::new(0, 0, 3)], 0, 99);
        assert!(matches!(
            svc.query_rect(&q),
            Err(SvcError::Overloaded { .. })
        ));
        // One-shot fault: the next request goes through healthily.
        let r = svc.try_query_rect(&q).unwrap();
        assert!(!r.is_degraded());
    }

    #[test]
    fn hier_service_matches_flat_service_and_prunes() {
        use ab::{HierLevelSpec, KernelKind};
        // Clustered single-attribute table: each 512-row segment holds
        // one bin, so whole 64-row spans miss most bins. α=32 keeps
        // the base AB clean enough for coarse misses to be definite.
        let n = 4096;
        let t = BinnedTable::new(vec![BinnedColumn::new(
            "v",
            (0..n).map(|i| (i / 512) as u32).collect(),
            8,
        )]);
        let ab = AbConfig::new(Level::PerAttribute).with_alpha(32);
        let flat = Service::build(&t, &ab, &small_cfg());
        for kernel in [KernelKind::Scalar, KernelKind::Batched, KernelKind::Simd] {
            let cfg = SvcConfig {
                kernel,
                hier: HierMode::Force,
                hier_config: HierConfig {
                    levels: vec![HierLevelSpec {
                        row_span: 64,
                        bin_group: 2,
                    }],
                },
                ..small_cfg()
            };
            let hier = Service::build(&t, &ab, &cfg);
            assert!(hier
                .index()
                .shards()
                .iter()
                .all(|s| s.index().hier().is_some()));
            #[cfg(not(feature = "obs-off"))]
            let pruned_before = obs::counter!("hier.regions_pruned").get();
            #[cfg(not(feature = "obs-off"))]
            let skipped_before = obs::counter!("hier.rows_skipped").get();
            for q in [
                RectQuery::new(vec![AttrRange::new(0, 2, 2)], 0, n - 1),
                RectQuery::new(vec![AttrRange::new(0, 0, 1)], 100, 3000),
                RectQuery::new(vec![AttrRange::new(0, 7, 7)], 0, 511),
                RectQuery::new(vec![], 0, n - 1),
            ] {
                assert_eq!(
                    hier.query_rect(&q).unwrap(),
                    flat.query_rect(&q).unwrap(),
                    "hier and flat services must answer bit-identically"
                );
            }
            // Counter mutations compile to no-ops under obs-off; the
            // bit-identity loop above is the load-bearing assertion.
            #[cfg(not(feature = "obs-off"))]
            {
                assert!(
                    obs::counter!("hier.regions_pruned").get() > pruned_before,
                    "single-bin rects over clustered data must prune regions"
                );
                assert!(obs::counter!("hier.rows_skipped").get() > skipped_before);
            }
        }
    }

    #[test]
    fn from_index_attaches_pyramid_when_hier_enabled() {
        let t = table(120);
        let idx = crate::ShardedIndex::build(
            &t,
            &AbConfig::new(Level::PerAttribute).with_alpha(8),
            3,
            false,
        );
        let bytes = idx.to_bytes();
        // The serialized index carries no pyramid; a hier-enabled
        // service rebuilds one per shard at load time.
        let cfg = SvcConfig {
            hier: HierMode::Auto,
            hier_config: HierConfig {
                levels: vec![ab::HierLevelSpec {
                    row_span: 8,
                    bin_group: 2,
                }],
            },
            ..small_cfg()
        };
        let svc = Service::from_index(crate::ShardedIndex::from_bytes(&bytes).unwrap(), &cfg);
        assert!(svc
            .index()
            .shards()
            .iter()
            .all(|s| s.index().hier().is_some()));
        let q = RectQuery::new(vec![AttrRange::new(0, 0, 3)], 0, 119);
        assert_eq!(
            svc.query_rect(&q).unwrap(),
            idx.execute_rect_sequential(&q).unwrap()
        );
    }

    #[test]
    fn from_index_serves_deserialized_shards() {
        let t = table(120);
        let idx = crate::ShardedIndex::build(
            &t,
            &AbConfig::new(Level::PerAttribute).with_alpha(8),
            3,
            false,
        );
        let bytes = idx.to_bytes();
        let svc = Service::from_index(
            crate::ShardedIndex::from_bytes(&bytes).unwrap(),
            &small_cfg(),
        );
        let q = RectQuery::new(vec![AttrRange::new(0, 0, 3)], 0, 119);
        assert_eq!(
            svc.query_rect(&q).unwrap(),
            idx.execute_rect_sequential(&q).unwrap()
        );
    }
}
