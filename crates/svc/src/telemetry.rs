//! Live telemetry endpoint: a zero-dependency blocking-TCP HTTP
//! server exposing the process's observability state.
//!
//! Three routes, all `GET`, all `Connection: close`:
//!
//! * `/metrics` — the global [`obs`] registry in Prometheus text
//!   exposition format (counters, histograms, latency-quantile
//!   summaries);
//! * `/healthz` — JSON health: `200` with `"status":"ok"` while every
//!   shard is healthy, `200` with `"status":"degraded"` plus the
//!   quarantined shard ids once any shard is answering conservatively
//!   (degraded service still serves — a `5xx` would make load
//!   balancers evict a replica that is up by design);
//! * `/debug/traces` — the flight recorder as JSON (see
//!   [`obs::FlightRecorder::to_json`]): the last N request traces plus
//!   pinned slow queries, parseable by [`obs::parse_dump`] and the
//!   `abq trace` subcommand.
//!
//! The server is deliberately primitive — one blocking accept loop on
//! its own thread, one thread per connection is *not* used; requests
//! are handled serially. Telemetry scrapes are rare (seconds apart)
//! and responses are small; serial handling keeps the footprint at one
//! thread and zero dependencies. It never touches the query path:
//! scraping contends only on registry snapshots and recorder slot
//! `try_lock`s, both of which the hot path survives (writers drop
//! rather than wait).

use crate::degrade::ShardHealth;
use crate::scrub::StoreStatus;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A running telemetry HTTP server; see the module docs for routes.
/// Dropping it stops the accept loop.
pub struct TelemetryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl TelemetryServer {
    /// Binds `addr` (e.g. `127.0.0.1:9171`, or port `0` for an
    /// OS-assigned port in tests) and starts serving on a background
    /// thread. `health` drives `/healthz`.
    pub fn bind(addr: impl ToSocketAddrs, health: Arc<ShardHealth>) -> std::io::Result<Self> {
        Self::bind_with_store(addr, health, None)
    }

    /// [`TelemetryServer::bind`] plus a segment-store status: when
    /// `store` is given, `/healthz` carries a `"store"` object with
    /// the scrubber's state (`healthy`/`degraded`/`repairing`), pass
    /// and CRC-error counts, and the serving backend.
    pub fn bind_with_store(
        addr: impl ToSocketAddrs,
        health: Arc<ShardHealth>,
        store: Option<Arc<StoreStatus>>,
    ) -> std::io::Result<Self> {
        Self::bind_with_status(addr, health, store, None)
    }

    /// [`TelemetryServer::bind_with_store`] plus the hybrid exact
    /// tier's per-shard split summary: when `hybrid` is given,
    /// `/healthz` carries a `"hybrid"` object with the
    /// planner-calibrated exact/ab split per shard (see
    /// [`HybridStatus`]).
    pub fn bind_with_status(
        addr: impl ToSocketAddrs,
        health: Arc<ShardHealth>,
        store: Option<Arc<StoreStatus>>,
        hybrid: Option<Arc<HybridStatus>>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("abq-telemetry".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop2.load(Ordering::Acquire) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        // A hung client must not wedge the serial
                        // accept loop.
                        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
                        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
                        let _ =
                            handle_connection(stream, &health, store.as_deref(), hybrid.as_deref());
                    }
                }
            })?;
        Ok(TelemetryServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if self.handle.is_none() {
            return;
        }
        self.stop.store(true, Ordering::Release);
        // The accept loop only observes the flag on its next
        // connection; poke it awake.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Immutable per-shard summary of the hybrid exact tier for
/// `/healthz`. The tier is built (or loaded) before serving starts and
/// never changes while the process serves, so a plain snapshot — no
/// atomics — is enough. Build one from
/// [`crate::shard::ShardedIndex::hybrid_split_stats`].
#[derive(Debug)]
pub struct HybridStatus {
    /// One entry per shard: `Some((bins_backed, bins_total, bytes))`
    /// when the shard carries an exact tier, `None` when it does not
    /// (e.g. a v≤3 segment loaded from a store).
    shards: Vec<Option<(usize, u32, usize)>>,
}

impl HybridStatus {
    /// Wraps the per-shard split stats verbatim.
    pub fn new(shards: Vec<Option<(usize, u32, usize)>>) -> Self {
        HybridStatus { shards }
    }

    /// The `"hybrid"` object for the `/healthz` JSON body: tier-wide
    /// totals plus the per-shard split, so an operator can see at a
    /// glance how much of the index the planner promoted to exact
    /// containers and how big they are.
    pub fn healthz_fragment(&self) -> String {
        let backed_shards = self.shards.iter().filter(|s| s.is_some()).count();
        let (mut bins_backed, mut bins_total, mut bytes) = (0usize, 0u64, 0usize);
        let per_shard = self
            .shards
            .iter()
            .map(|s| match s {
                Some((backed, total, sz)) => {
                    bins_backed += backed;
                    bins_total += u64::from(*total);
                    bytes += sz;
                    format!(
                        "{{\"bins_backed\":{backed},\"bins_total\":{total},\
                         \"container_bytes\":{sz}}}"
                    )
                }
                None => "null".to_string(),
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"backed_shards\":{backed_shards},\"bins_backed\":{bins_backed},\
             \"bins_total\":{bins_total},\"container_bytes\":{bytes},\
             \"per_shard\":[{per_shard}]}}"
        )
    }
}

/// Reads the request line, routes, writes one response. Any parse
/// trouble gets a 400 rather than a hang.
fn handle_connection(
    mut stream: TcpStream,
    health: &ShardHealth,
    store: Option<&StoreStatus>,
    hybrid: Option<&HybridStatus>,
) -> std::io::Result<()> {
    obs::counter!("telemetry.requests").inc();
    // Read until the end of the request head (or a sane cap — GETs
    // have no body we care about).
    let mut buf = [0u8; 4096];
    let mut head = Vec::new();
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 16 * 1024 {
            break;
        }
    }
    let request_line = std::str::from_utf8(&head)
        .ok()
        .and_then(|s| s.lines().next())
        .unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n".to_string(),
        )
    } else {
        match path.split('?').next().unwrap_or("") {
            "/metrics" => (
                "200 OK",
                // The exposition-format content type scrapers expect.
                "text/plain; version=0.0.4; charset=utf-8",
                obs::global().snapshot().to_prometheus(),
            ),
            "/healthz" => {
                let quarantined = health.quarantined();
                let status = if quarantined.is_empty() {
                    "ok"
                } else {
                    "degraded"
                };
                let ids: Vec<String> = quarantined.iter().map(|s| s.to_string()).collect();
                // Listener stats from the TCP front end's counters
                // (all zero when no `net` server runs in-process).
                let accepted = obs::global().counter("net.accepted").get();
                let closed = obs::global().counter("net.conn_closed").get();
                let shed = obs::global().counter("net.shed_at_accept").get();
                // The store block only appears when a segment store is
                // actually being scrubbed.
                let store_block = store
                    .map(|s| format!(",\"store\":{}", s.healthz_fragment()))
                    .unwrap_or_default();
                // Likewise the hybrid block: only when the exact tier
                // is actually being served.
                let hybrid_block = hybrid
                    .map(|h| format!(",\"hybrid\":{}", h.healthz_fragment()))
                    .unwrap_or_default();
                (
                    "200 OK",
                    "application/json",
                    format!(
                        "{{\"status\":\"{status}\",\"shards\":{},\"quarantined\":[{}],\
                         \"traces_recorded\":{},\"traces_dropped\":{},\
                         \"listener\":{{\"open\":{},\"accepted\":{accepted},\
                         \"shed_at_accept\":{shed}}}{store_block}{hybrid_block}}}\n",
                        health.len(),
                        ids.join(","),
                        obs::recorder().recorded(),
                        obs::recorder().dropped(),
                        accepted.saturating_sub(closed),
                    ),
                )
            }
            "/debug/traces" => ("200 OK", "application/json", obs::recorder().to_json()),
            "" => (
                "400 Bad Request",
                "text/plain; charset=utf-8",
                "malformed request\n".to_string(),
            ),
            other => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                format!("no route {other}; try /metrics, /healthz, /debug/traces\n"),
            ),
        }
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut s = TcpStream::connect(addr).expect("connect");
        write!(s, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        let (head, body) = resp.split_once("\r\n\r\n").expect("has header separator");
        (head.to_string(), body.to_string())
    }

    fn server_with(health: ShardHealth) -> TelemetryServer {
        TelemetryServer::bind("127.0.0.1:0", Arc::new(health)).expect("bind")
    }

    #[test]
    fn metrics_endpoint_serves_prometheus_text() {
        obs::counter!("telemetry.test.hits").inc();
        let srv = server_with(ShardHealth::new(2));
        let (head, body) = get(srv.local_addr(), "/metrics");
        assert!(head.starts_with("HTTP/1.0 200 OK"), "head: {head}");
        assert!(head.contains("text/plain; version=0.0.4"));
        assert!(body.contains("# TYPE telemetry_test_hits counter"));
        let len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(len, body.len());
        srv.stop();
    }

    #[test]
    fn healthz_reflects_quarantine() {
        let health = ShardHealth::new(4);
        health.quarantine(2);
        let srv = server_with(health);
        let (head, body) = get(srv.local_addr(), "/healthz");
        assert!(head.starts_with("HTTP/1.0 200 OK"));
        assert!(body.contains("\"status\":\"degraded\""));
        assert!(body.contains("\"quarantined\":[2]"));
        srv.stop();
    }

    #[test]
    fn healthz_ok_when_all_healthy() {
        let srv = server_with(ShardHealth::new(4));
        let (_, body) = get(srv.local_addr(), "/healthz");
        assert!(body.contains("\"status\":\"ok\""), "body: {body}");
        srv.stop();
    }

    #[test]
    fn healthz_reports_listener_stats() {
        let srv = server_with(ShardHealth::new(2));
        let (_, body) = get(srv.local_addr(), "/healthz");
        // The listener block is always present; open is derived as
        // accepted - closed so it cannot go negative.
        assert!(body.contains("\"listener\":{\"open\":"), "body: {body}");
        assert!(body.contains("\"accepted\":"), "body: {body}");
        assert!(body.contains("\"shed_at_accept\":"), "body: {body}");
        srv.stop();
    }

    #[test]
    fn healthz_store_block_appears_only_with_a_store() {
        let srv = server_with(ShardHealth::new(2));
        let (_, body) = get(srv.local_addr(), "/healthz");
        assert!(!body.contains("\"store\""), "body: {body}");
        srv.stop();

        let status = Arc::new(StoreStatus::new("mmap"));
        let srv = TelemetryServer::bind_with_store(
            "127.0.0.1:0",
            Arc::new(ShardHealth::new(2)),
            Some(status),
        )
        .expect("bind");
        let (_, body) = get(srv.local_addr(), "/healthz");
        assert!(
            body.contains("\"store\":{\"state\":\"healthy\",\"backend\":\"mmap\""),
            "body: {body}"
        );
        srv.stop();
    }

    #[test]
    fn healthz_hybrid_block_appears_only_with_a_tier() {
        let srv = server_with(ShardHealth::new(2));
        let (_, body) = get(srv.local_addr(), "/healthz");
        assert!(!body.contains("\"hybrid\""), "body: {body}");
        srv.stop();

        let status = Arc::new(HybridStatus::new(vec![Some((3, 16, 1024)), None]));
        let srv = TelemetryServer::bind_with_status(
            "127.0.0.1:0",
            Arc::new(ShardHealth::new(2)),
            None,
            Some(status),
        )
        .expect("bind");
        let (_, body) = get(srv.local_addr(), "/healthz");
        assert!(
            body.contains(
                "\"hybrid\":{\"backed_shards\":1,\"bins_backed\":3,\
                 \"bins_total\":16,\"container_bytes\":1024,\
                 \"per_shard\":[{\"bins_backed\":3,\"bins_total\":16,\
                 \"container_bytes\":1024},null]}"
            ),
            "body: {body}"
        );
        srv.stop();
    }

    #[test]
    fn debug_traces_is_parseable_json() {
        let srv = server_with(ShardHealth::new(1));
        let (head, body) = get(srv.local_addr(), "/debug/traces");
        assert!(head.starts_with("HTTP/1.0 200 OK"));
        obs::parse_dump(&body).expect("dump parses");
        srv.stop();
    }

    #[test]
    fn unknown_route_404s_and_non_get_405s() {
        let srv = server_with(ShardHealth::new(1));
        let (head, _) = get(srv.local_addr(), "/nope");
        assert!(head.starts_with("HTTP/1.0 404"));
        let mut s = TcpStream::connect(srv.local_addr()).unwrap();
        write!(s, "POST /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.0 405"));
        srv.stop();
    }

    #[test]
    fn stop_joins_and_frees_the_port() {
        let srv = server_with(ShardHealth::new(1));
        let addr = srv.local_addr();
        srv.stop();
        // Once stopped, connections are refused (or at least never
        // answered by our server).
        let retry = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
        if let Ok(mut s) = retry {
            let _ = write!(s, "GET /healthz HTTP/1.0\r\n\r\n");
            let mut out = String::new();
            let _ = s.set_read_timeout(Some(Duration::from_millis(200)));
            let _ = s.read_to_string(&mut out);
            assert!(out.is_empty(), "stopped server answered: {out}");
        }
    }
}
