//! Scrub-under-load: rot a byte of the segment store **on disk**
//! while a service built from that store is answering queries, and
//! drive the detect → degrade → repair → healthy lifecycle. The
//! contract at every step:
//!
//! * detection — the scrubber finds the flipped page and names the
//!   damaged shard;
//! * degradation — the shard is quarantined, so every answer is a
//!   conservative superset (100% recall, zero false negatives);
//! * repair — the file is rebuilt through the crash-safe writer and
//!   is **bit-identical** to the pre-damage bytes (AB builds are
//!   deterministic);
//! * recovery — quarantine lifts, `/healthz` walks
//!   `healthy → degraded/repairing → healthy`.

use ab::{AbConfig, Level};
use bitmap::{AttrRange, BinnedColumn, BinnedTable, RectQuery};
use std::io::{Read, Seek, SeekFrom, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use svc::scrub::{scrub_pass, PassOutcome, RepairSource, Scrubber, StoreState, StoreStatus};
use svc::{Service, ShardedIndex, SvcConfig, TelemetryServer};

const ROWS: usize = 600;
const SHARDS: usize = 4;
const PAGE: u32 = 256;

fn table() -> BinnedTable {
    BinnedTable::new(vec![
        BinnedColumn::new("a", (0..ROWS).map(|i| (i % 5) as u32).collect(), 5),
        BinnedColumn::new("b", (0..ROWS).map(|i| ((i * 7) % 3) as u32).collect(), 3),
    ])
}

fn cfg() -> AbConfig {
    AbConfig::new(Level::PerAttribute).with_alpha(8)
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("svc-scrub-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn flip_on_disk(path: &Path, offset: u64, xor: u8) {
    let mut f = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)
        .unwrap();
    f.seek(SeekFrom::Start(offset)).unwrap();
    let mut b = [0u8; 1];
    f.read_exact(&mut b).unwrap();
    f.seek(SeekFrom::Start(offset)).unwrap();
    f.write_all(&[b[0] ^ xor]).unwrap();
    f.sync_all().unwrap();
}

/// Rows 0..ROWS with a % 5 in 1..=2 — the exact answer the AB
/// superset must always contain.
fn must_contain() -> Vec<usize> {
    (0..ROWS).filter(|r| (1..=2).contains(&(r % 5))).collect()
}

fn the_query() -> RectQuery {
    RectQuery::new(vec![AttrRange::new(0, 1, 2)], 0, ROWS - 1)
}

fn assert_superset(rows: &[usize], what: &str) {
    for r in must_contain() {
        assert!(rows.contains(&r), "{what}: false negative on row {r}");
    }
}

fn healthz(addr: std::net::SocketAddr) -> String {
    let mut s = TcpStream::connect(addr).unwrap();
    write!(s, "GET /healthz HTTP/1.0\r\n\r\n").unwrap();
    let mut resp = String::new();
    s.read_to_string(&mut resp).unwrap();
    resp.split_once("\r\n\r\n").unwrap().1.to_string()
}

#[test]
fn detect_degrade_repair_recover_under_live_traffic() {
    let dir = tmpdir("lifecycle");
    let path = dir.join("idx.seg");
    let payload = ShardedIndex::build(&table(), &cfg(), SHARDS, false).to_bytes();
    store::write(&path, &payload, PAGE, &store::RealIo).unwrap();
    let pristine = std::fs::read(&path).unwrap();

    let mut st = store::Store::open(&path).unwrap();
    let service = Arc::new(Service::from_index(
        ShardedIndex::from_bytes(st.payload()).unwrap(),
        &SvcConfig {
            threads: 2,
            shards: SHARDS,
            ..SvcConfig::default()
        },
    ));
    let health = service.health_arc();
    let status = Arc::new(StoreStatus::new(st.backend()));
    let telemetry = TelemetryServer::bind_with_store(
        "127.0.0.1:0",
        Arc::clone(&health),
        Some(Arc::clone(&status)),
    )
    .unwrap();

    // Live traffic: hammer the service from two threads for the whole
    // lifecycle, checking the no-false-negative contract on every
    // single answer.
    let stop = Arc::new(AtomicBool::new(false));
    let traffic: Vec<_> = (0..2)
        .map(|t| {
            let (svc, stop) = (Arc::clone(&service), Arc::clone(&stop));
            std::thread::spawn(move || {
                let mut answers = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let resp = svc.try_query_rect(&the_query()).unwrap();
                    assert_superset(&resp.value, &format!("traffic thread {t}"));
                    answers += 1;
                }
                answers
            })
        })
        .collect();

    let repair = RepairSource {
        table: table(),
        config: cfg(),
    };

    // Pass 1: clean, healthy.
    let out = scrub_pass(&mut st, &health, Some(&repair), &status, &store::RealIo).unwrap();
    assert_eq!(out, PassOutcome::Clean);
    assert_eq!(status.state(), StoreState::Healthy);
    assert!(healthz(telemetry.local_addr()).contains("\"state\":\"healthy\""));

    // Rot one byte in the middle of shard 2's extent, on disk, while
    // traffic flows.
    let victim_shard = 2usize;
    let e = st.extents()[victim_shard];
    flip_on_disk(
        &path,
        st.header().payload_offset() + (e.offset + e.len / 2) as u64,
        0x10,
    );

    // Pass 2 without repair: detect + degrade, and the degraded
    // service must still never drop a row.
    let out = scrub_pass(&mut st, &health, None, &status, &store::RealIo).unwrap();
    assert_eq!(out, PassOutcome::Degraded(vec![victim_shard]));
    assert!(health.is_quarantined(victim_shard));
    assert_eq!(status.state(), StoreState::Degraded);
    assert!(status.crc_errors() >= 1);
    let body = healthz(telemetry.local_addr());
    assert!(body.contains("\"status\":\"degraded\""), "body: {body}");
    assert!(body.contains("\"state\":\"degraded\""), "body: {body}");
    let resp = service.try_query_rect(&the_query()).unwrap();
    assert!(resp.is_degraded(), "quarantined shard must mark responses");
    assert_superset(&resp.value, "degraded window");

    // Pass 3 with repair: rebuild, crash-safe rewrite, verified
    // reopen, quarantine lifted — and the file is bit-identical to
    // the pre-damage bytes.
    let out = scrub_pass(&mut st, &health, Some(&repair), &status, &store::RealIo).unwrap();
    assert_eq!(out, PassOutcome::Repaired(vec![victim_shard]));
    assert!(!health.is_quarantined(victim_shard));
    assert_eq!(status.state(), StoreState::Healthy);
    assert_eq!(status.repairs(), 1);
    assert_eq!(
        std::fs::read(&path).unwrap(),
        pristine,
        "repair must be bit-identical"
    );
    assert!(st.scrub().unwrap().clean());
    let body = healthz(telemetry.local_addr());
    assert!(body.contains("\"status\":\"ok\""), "body: {body}");
    assert!(body.contains("\"state\":\"healthy\""), "body: {body}");
    assert!(body.contains("\"repairs\":1"), "body: {body}");

    stop.store(true, Ordering::Release);
    for t in traffic {
        let answers = t.join().unwrap();
        assert!(answers > 0, "traffic thread never got an answer");
    }
    telemetry.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn background_scrubber_repairs_without_help() {
    let dir = tmpdir("background");
    let path = dir.join("idx.seg");
    let payload = ShardedIndex::build(&table(), &cfg(), SHARDS, false).to_bytes();
    store::write(&path, &payload, PAGE, &store::RealIo).unwrap();
    let pristine = std::fs::read(&path).unwrap();
    let st = store::Store::open(&path).unwrap();
    let victim = st.header().payload_offset() + st.header().payload_len / 3;

    let health = Arc::new(svc::ShardHealth::new(SHARDS));
    let scrubber = Scrubber::spawn(
        st,
        Arc::clone(&health),
        Some(RepairSource {
            table: table(),
            config: cfg(),
        }),
        Duration::from_millis(10),
        Arc::new(store::RealIo),
    )
    .unwrap();
    let status = scrubber.status();

    // Let it complete at least one clean pass, then rot the file.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while status.passes() == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    flip_on_disk(&path, victim, 0x44);
    while status.repairs() == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(status.repairs(), 1, "scrubber never repaired");
    assert_eq!(status.state(), StoreState::Healthy);
    assert!(health.all_healthy(), "quarantine must lift after repair");
    assert_eq!(std::fs::read(&path).unwrap(), pristine);
    scrubber.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}
