//! Request-scoped tracing under real concurrency: every request must
//! yield exactly one complete, well-nested span tree in the flight
//! recorder — across 8 worker threads, with chaos faults panicking a
//! shard mid-request.

#![cfg(not(feature = "obs-off"))]

use ab::{AbConfig, Level};
use bitmap::{AttrRange, BinnedColumn, BinnedTable, RectQuery};
#[cfg(not(feature = "chaos-off"))]
use std::sync::Arc;
#[cfg(not(feature = "chaos-off"))]
use svc::chaos::{points, Fault, FaultPlan, FaultRule};
#[cfg(not(feature = "chaos-off"))]
use svc::RetryPolicy;
use svc::{Deadline, RequestCtx, Service, SvcConfig};

const ROWS: usize = 4096;

fn table() -> BinnedTable {
    BinnedTable::new(vec![
        BinnedColumn::new("a", (0..ROWS).map(|i| (i % 8) as u32).collect(), 8),
        BinnedColumn::new("b", (0..ROWS).map(|i| (i / 7 % 5) as u32).collect(), 5),
    ])
}

fn config() -> SvcConfig {
    SvcConfig {
        threads: 8,
        shards: 8,
        ..SvcConfig::default()
    }
}

fn rect(lo: usize, hi: usize) -> RectQuery {
    RectQuery::new(vec![AttrRange::new(0, 2, 6)], lo, hi)
}

/// Walks one trace and checks structural integrity: exactly one root,
/// every parent resolvable, every child's interval inside its
/// parent's.
#[cfg(not(feature = "chaos-off"))]
fn assert_well_formed(t: &obs::Trace) {
    assert_eq!(t.dropped_spans, 0, "trace {} dropped spans", t.trace_id);
    let roots: Vec<_> = t.spans.iter().filter(|s| s.parent == 0).collect();
    assert_eq!(
        roots.len(),
        1,
        "trace {} must have exactly one root, got {:?}",
        t.trace_id,
        roots.iter().map(|s| &s.name).collect::<Vec<_>>()
    );
    assert_eq!(roots[0].name, "svc.request");
    let by_id: std::collections::BTreeMap<u64, &obs::SpanRecord> =
        t.spans.iter().map(|s| (s.id, s)).collect();
    assert_eq!(by_id.len(), t.spans.len(), "duplicate span ids");
    for s in &t.spans {
        if s.parent == 0 {
            continue;
        }
        let p = by_id.get(&s.parent).unwrap_or_else(|| {
            panic!(
                "span {} ({}) orphaned in trace {}",
                s.id, s.name, t.trace_id
            )
        });
        assert!(
            s.start_us >= p.start_us && s.end_us <= p.end_us,
            "span {} [{}, {}] escapes parent {} [{}, {}] in trace {}",
            s.name,
            s.start_us,
            s.end_us,
            p.name,
            p.start_us,
            p.end_us,
            t.trace_id
        );
    }
}

#[test]
#[cfg(not(feature = "chaos-off"))]
fn one_complete_span_tree_per_request_across_threads_with_chaos() {
    // Shard 3 panics once: that request must still produce a complete
    // trace with the panicked shard job annotated and the request
    // degraded.
    let plan = Arc::new(
        FaultPlan::new(42).with_rule(
            FaultRule::new(points::SHARD_QUERY, Fault::Panic)
                .on_shard(3)
                .max_fires(1),
        ),
    );
    let svc = Service::build(
        &table(),
        &AbConfig::new(Level::PerAttribute).with_alpha(16),
        &config(),
    )
    .with_fault_plan(plan);

    obs::recorder().clear();
    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 4;
    std::thread::scope(|s| {
        for c in 0..CLIENTS {
            let svc = &svc;
            s.spawn(move || {
                for i in 0..PER_CLIENT {
                    let lo = (c * 131 + i * 17) % (ROWS / 2);
                    svc.try_query_rect(&rect(lo, ROWS - 1)).unwrap();
                }
            });
        }
    });

    let traces = obs::recorder().traces();
    assert_eq!(
        obs::recorder().recorded(),
        (CLIENTS * PER_CLIENT) as u64,
        "every request records exactly one trace"
    );
    assert_eq!(traces.len(), CLIENTS * PER_CLIENT);
    let mut saw_panicked = false;
    let mut saw_degraded_merge = false;
    for t in &traces {
        assert_well_formed(t);
        assert_eq!(t.kind, "rect");
        // Cross-thread handoff: shard jobs ran on pool threads yet
        // hang off this trace's root; kernel stages hang off shards.
        let shard_spans: Vec<_> = t.spans.iter().filter(|s| s.name == "svc.shard").collect();
        assert!(
            !shard_spans.is_empty(),
            "trace {} has no shard spans",
            t.trace_id
        );
        let kernel_spans = t
            .spans
            .iter()
            .filter(|s| s.name.starts_with("ab.kernel."))
            .count();
        assert!(kernel_spans > 0, "trace {} has no kernel spans", t.trace_id);
        assert!(t.spans.iter().any(|s| s.name == "svc.admit"));
        assert!(t.spans.iter().any(|s| s.name == "svc.merge"));
        for sp in &shard_spans {
            let outcome = sp
                .annotations
                .iter()
                .find(|(k, _)| k == "outcome")
                .unwrap_or_else(|| panic!("shard span without outcome in {}", t.trace_id));
            if outcome.1 == obs::AnnValue::Str("panicked".into()) {
                saw_panicked = true;
            }
        }
        if t.spans.iter().any(|s| {
            s.name == "svc.merge" && s.annotations.iter().any(|(k, _)| k == "degraded_shards")
        }) {
            saw_degraded_merge = true;
        }
    }
    assert!(saw_panicked, "the injected panic never showed in a trace");
    assert!(
        saw_degraded_merge,
        "no trace recorded a degraded merge despite the quarantine"
    );
}

#[test]
#[cfg(not(feature = "chaos-off"))]
fn caller_owned_trace_collects_all_retry_attempts() {
    // With a caller-owned trace, the service records request spans but
    // leaves finishing to the caller — so several attempts (here via
    // retry_traced against an always-overloaded pool) share one trace.
    let svc = Service::build(
        &table(),
        &AbConfig::new(Level::PerAttribute).with_alpha(16),
        &config(),
    )
    .with_fault_plan(Arc::new(
        FaultPlan::new(7).with_rule(FaultRule::new(points::POOL_SUBMIT, Fault::Overloaded)),
    ));
    let trace = obs::TraceCtx::start("rect");
    let policy = RetryPolicy {
        max_attempts: 3,
        ..RetryPolicy::default()
    };
    let out = svc::retry_traced(&policy, 99, &trace, |_attempt| {
        // A failed attempt cancels its RequestCtx, so each attempt
        // gets a fresh ctx carrying the same trace.
        let ctx = RequestCtx::traced(Deadline::none(), trace.clone());
        svc.query_rect_ctx(&rect(0, ROWS - 1), &ctx)
    });
    assert!(out.is_err(), "submission is always shed");
    let t = trace.finish().expect("caller finishes the trace");
    let attempts = t.spans.iter().filter(|s| s.name == "svc.request").count();
    assert_eq!(
        attempts, 3,
        "each retry attempt is a root-level request span"
    );
    let backoffs = t
        .spans
        .iter()
        .filter(|s| s.name == "svc.retry.backoff")
        .count();
    assert_eq!(backoffs, 2, "a backoff event between each pair of attempts");
    for s in t.spans.iter().filter(|s| s.name == "svc.request") {
        assert!(s
            .annotations
            .contains(&("error".to_string(), obs::AnnValue::Str("overloaded".into()))));
    }
}

#[test]
fn service_owned_traces_can_be_disabled() {
    let svc = Service::build(
        &table(),
        &AbConfig::new(Level::PerAttribute).with_alpha(16),
        &SvcConfig {
            trace_requests: false,
            ..config()
        },
    );
    // Caller-owned traces still work even when automatic ones are off.
    let trace = obs::TraceCtx::start("rect");
    let ctx = RequestCtx::traced(Deadline::none(), trace.clone());
    svc.query_rect_ctx(&rect(0, ROWS - 1), &ctx).unwrap();
    let t = trace.finish().unwrap();
    assert!(t.spans.iter().any(|s| s.name == "svc.shard"));
}
