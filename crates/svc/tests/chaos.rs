//! Fault-injection (chaos) tests for the sharded query service.
//!
//! Every test derives its fault plan from `CHAOS_SEED` (env var, CI
//! runs a small fixed set of seeds) — the invariants asserted here
//! must hold for *any* seed:
//!
//! * injected shard panics, latency, and spurious overload never
//!   produce a false negative — the service's answers stay supersets
//!   of the exact oracle, degraded or not;
//! * deadline expiry and cancellation racing mid-flight queries
//!   return typed errors, never partial results;
//! * a corrupted persisted index is detected by checksum and repaired
//!   shard-by-shard back to bit-identical answers.
#![cfg(not(feature = "chaos-off"))]

use ab::{AbConfig, Level};
use bitmap::{AttrRange, BinnedColumn, BinnedTable, BitmapIndex, Encoding, RectQuery};
use std::sync::Arc;
use std::time::Duration;
use svc::chaos::{points, Fault, FaultPlan, FaultRule};
use svc::{chaos, retry, RetryPolicy, Service, ShardedIndex, SvcConfig, SvcError};

/// Seed for the fault plans: `CHAOS_SEED` env var, or a fixed default.
fn seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

fn table(n: usize) -> BinnedTable {
    BinnedTable::new(vec![
        BinnedColumn::new(
            "a",
            (0..n)
                .map(|i| (hashkit::splitmix64(i as u64) % 8) as u32)
                .collect(),
            8,
        ),
        BinnedColumn::new(
            "b",
            (0..n)
                .map(|i| (hashkit::splitmix64(i as u64 ^ 0xABCD) % 5) as u32)
                .collect(),
            5,
        ),
    ])
}

fn ab_cfg() -> AbConfig {
    AbConfig::new(Level::PerAttribute).with_alpha(8)
}

fn svc_cfg() -> SvcConfig {
    SvcConfig {
        threads: 4,
        shards: 6,
        ..SvcConfig::default()
    }
}

fn workload(n: usize) -> Vec<RectQuery> {
    (0..24)
        .map(|i| {
            let lo = (hashkit::splitmix64(i) % (n as u64 / 2)) as usize;
            let hi = n - 1 - (hashkit::splitmix64(i ^ 0xF00) % (n as u64 / 4)) as usize;
            RectQuery::new(
                vec![AttrRange::new(0, (i % 4) as u32, 4 + (i % 4) as u32)],
                lo,
                hi.max(lo),
            )
        })
        .collect()
}

/// The headline chaos drill: panics, latency, and spurious overload
/// injected together, driven by the seed. Whatever fires, every
/// answer the service returns must contain every exact-oracle row —
/// zero false negatives, degraded or not.
#[test]
fn injected_faults_never_cause_false_negatives() {
    let n = 1200;
    let t = table(n);
    let oracle = BitmapIndex::build(&t, Encoding::Equality);
    let plan = Arc::new(
        FaultPlan::new(seed())
            .with_rule(
                FaultRule::new(points::SHARD_QUERY, Fault::Panic)
                    .one_in(5)
                    .max_fires(3),
            )
            .with_rule(
                FaultRule::new(
                    points::SHARD_QUERY,
                    Fault::Latency(Duration::from_micros(200)),
                )
                .one_in(4),
            )
            .with_rule(
                FaultRule::new(points::POOL_SUBMIT, Fault::Overloaded)
                    .one_in(6)
                    .max_fires(8),
            ),
    );
    let svc = Service::build(&t, &ab_cfg(), &svc_cfg()).with_fault_plan(Arc::clone(&plan));
    let policy = RetryPolicy {
        base: Duration::from_micros(10),
        cap: Duration::from_micros(200),
        max_attempts: 16,
        max_elapsed: Duration::from_secs(10),
    };
    let mut degraded_seen = 0usize;
    for (i, q) in workload(n).iter().enumerate() {
        // Spurious overload is transient; the bounded retry absorbs
        // it (its max_fires cap guarantees the supply dries up).
        let resp = retry(&policy, i as u64, |_| svc.try_query_rect(q))
            .expect("retry must outlast the capped overload injection");
        if resp.is_degraded() {
            degraded_seen += 1;
        }
        let got = &resp.value;
        assert!(got.windows(2).all(|w| w[0] < w[1]), "merge unsorted");
        for row in oracle.evaluate_rows(q) {
            assert!(
                got.contains(&row),
                "false negative: row {row} lost from query {i} \
                 (seed {}, degraded: {:?})",
                seed(),
                resp.degraded
            );
        }
    }
    // Whether any response degraded depends on the seed; the ledger
    // and the markers must agree either way.
    if svc.health().all_healthy() {
        assert_eq!(degraded_seen, 0);
    } else {
        assert!(degraded_seen > 0, "quarantined shards but no markers");
    }
}

/// Injected latency pushes shard jobs past the request deadline: the
/// request fails typed, and no partial result leaks out.
#[test]
fn deadline_expiry_discards_partial_results_under_latency() {
    let n = 800;
    let t = table(n);
    let plan = Arc::new(FaultPlan::new(seed()).with_rule(FaultRule::new(
        points::SHARD_QUERY,
        Fault::Latency(Duration::from_millis(80)),
    )));
    let svc = Service::build(&t, &ab_cfg(), &svc_cfg()).with_fault_plan(plan);
    let q = RectQuery::new(vec![AttrRange::new(0, 0, 6)], 0, n - 1);
    // Every shard job sleeps 80ms; a 10ms deadline cannot be met.
    let res = svc.query_rect_within(&q, Duration::from_millis(10));
    assert_eq!(res, Err(SvcError::DeadlineExceeded));
    // The service stays healthy afterwards: latency is not a panic,
    // nothing is quarantined, and an undeadlined query still answers.
    assert!(svc.health().all_healthy());
    assert!(svc.query_rect(&q).is_ok());
}

/// Cancellation racing a mid-flight rect query (slowed by injected
/// latency so the race is deterministic) returns `Cancelled` — the
/// partial work already done is discarded, not merged.
#[test]
fn cancellation_races_mid_flight_queries() {
    let n = 800;
    let t = table(n);
    let plan = Arc::new(FaultPlan::new(seed()).with_rule(FaultRule::new(
        points::SHARD_QUERY,
        Fault::Latency(Duration::from_millis(60)),
    )));
    let svc = Service::build(&t, &ab_cfg(), &svc_cfg()).with_fault_plan(plan);
    let ctx = svc::RequestCtx::new(svc::Deadline::none());
    let canceller = {
        let ctx = ctx.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(15));
            ctx.cancel();
        })
    };
    let q = RectQuery::new(vec![AttrRange::new(1, 0, 3)], 0, n - 1);
    let res = svc.try_query_rect_ctx(&q, &ctx);
    canceller.join().unwrap();
    assert_eq!(res, Err(SvcError::Cancelled));
    assert!(svc.health().all_healthy(), "cancellation is not a fault");
}

/// The corruption round trip: seeded byte-flip on the persisted
/// envelope → strict load fails with `ChecksumMismatch` → repair
/// rebuilds only the damaged shard from source data → answers are
/// bit-identical to the uncorrupted index.
#[test]
fn corruption_detected_then_repaired_bit_identically() {
    let n = 900;
    let t = table(n);
    let idx = ShardedIndex::build(&t, &ab_cfg(), 5, false);
    let clean = idx.to_bytes();

    let plan = FaultPlan::new(seed()).with_rule(FaultRule::new(
        points::IO_DECODE,
        Fault::FlipByte { xor: 0x10 },
    ));
    let mut bytes = clean.clone();
    // Target segment 0's blob so the flip is segment-local (envelope
    // damage is not repairable and is a different, fatal error).
    let seg0_len = u64::from_le_bytes(bytes[18..26].try_into().unwrap()) as usize;
    let flipped = chaos::corrupt(
        Some(&plan),
        points::IO_DECODE,
        &mut bytes[30..30 + seg0_len],
    );
    assert!(flipped.is_some(), "corruption fault must fire");
    assert_ne!(bytes, clean);

    assert!(matches!(
        ShardedIndex::from_bytes(&bytes),
        Err(ab::IoError::ChecksumMismatch { .. })
    ));

    let (repaired, rebuilt) = ShardedIndex::from_bytes_with_repair(&bytes, &t, &ab_cfg())
        .expect("segment-local damage must be repairable");
    assert_eq!(rebuilt, vec![0], "exactly the corrupted shard rebuilds");
    for (a, b) in repaired.shards().iter().zip(idx.shards()) {
        for (x, y) in a.index().abs().iter().zip(b.index().abs()) {
            assert_eq!(x.bits(), y.bits(), "repair not bit-identical");
        }
    }
    // And the repaired index re-serializes to the clean bytes.
    assert_eq!(repaired.to_bytes(), clean);

    for q in workload(n) {
        assert_eq!(
            repaired.execute_rect_sequential(&q).unwrap(),
            idx.execute_rect_sequential(&q).unwrap()
        );
    }
}

/// Quarantine end-to-end: a panicking shard degrades responses until
/// repair (here: `ShardHealth::clear`), after which answers return to
/// bit-identical.
#[test]
fn quarantine_then_repair_restores_exact_answers() {
    let n = 600;
    let t = table(n);
    let plan = Arc::new(
        FaultPlan::new(seed()).with_rule(
            FaultRule::new(points::SHARD_QUERY, Fault::Panic)
                .on_shard(2)
                .max_fires(1),
        ),
    );
    let svc = Service::build(&t, &ab_cfg(), &svc_cfg()).with_fault_plan(plan);
    let q = RectQuery::new(vec![AttrRange::new(0, 2, 5)], 0, n - 1);
    let reference = svc.index().execute_rect_sequential(&q).unwrap();

    let degraded = svc.try_query_rect(&q).unwrap();
    assert_eq!(
        degraded.degraded.as_ref().map(|d| d.shards.as_slice()),
        Some(&[2usize][..])
    );
    for row in &reference {
        assert!(degraded.value.contains(row));
    }
    assert!(svc.health().is_quarantined(2));

    svc.health().clear(2);
    let healthy = svc.try_query_rect(&q).unwrap();
    assert!(!healthy.is_degraded());
    assert_eq!(healthy.value, reference);
}
