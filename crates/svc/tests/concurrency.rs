//! Concurrency tests for the sharded query service.
//!
//! Run with `RUST_TEST_THREADS=8` in CI (the concurrency smoke step)
//! so the harness itself adds cross-test thread pressure.

use ab::{AbConfig, AbIndex, Cell, Level};
use bitmap::{AttrRange, BinnedColumn, BinnedTable, BitmapIndex, Encoding, RectQuery};
use std::sync::Arc;
use std::time::Duration;
use svc::{CountingService, Deadline, RequestCtx, Service, SvcConfig, SvcError, WorkerPool};

fn table(n: usize) -> BinnedTable {
    BinnedTable::new(vec![
        BinnedColumn::new(
            "a",
            (0..n)
                .map(|i| (hashkit::splitmix64(i as u64) % 8) as u32)
                .collect(),
            8,
        ),
        BinnedColumn::new(
            "b",
            (0..n)
                .map(|i| (hashkit::splitmix64(i as u64 ^ 0xABCD) % 5) as u32)
                .collect(),
            5,
        ),
    ])
}

fn ab_cfg() -> AbConfig {
    AbConfig::new(Level::PerAttribute).with_alpha(8)
}

/// The acceptance contract: concurrent sharded execution returns
/// exactly what single-threaded execution over the same shard layout
/// returns, for every query shape — and with one shard, exactly what
/// the monolithic index returns.
#[test]
fn merge_is_bit_identical_to_single_threaded() {
    let t = table(2000);
    for shards in [1usize, 3, 8] {
        let svc = Service::build(
            &t,
            &ab_cfg(),
            &SvcConfig {
                threads: 4,
                shards,
                ..SvcConfig::default()
            },
        );
        let queries = [
            RectQuery::new(vec![AttrRange::new(0, 0, 3)], 0, 1999),
            RectQuery::new(
                vec![AttrRange::new(0, 2, 6), AttrRange::new(1, 1, 3)],
                17,
                1834,
            ),
            RectQuery::new(vec![AttrRange::new(1, 0, 0)], 900, 1100),
            RectQuery::new(vec![], 1999, 1999),
        ];
        for q in &queries {
            let concurrent = svc.query_rect(q).unwrap();
            let sequential = svc.index().execute_rect_sequential(q).unwrap();
            assert_eq!(concurrent, sequential, "shards={shards}, query={q:?}");
        }
        if shards == 1 {
            let mono = AbIndex::build(&t, &ab_cfg());
            for q in &queries {
                assert_eq!(svc.query_rect(q).unwrap(), mono.execute_rect(q));
            }
        }
    }
}

/// Many threads hammering the same service concurrently must each see
/// the same answer the quiescent service gives.
#[test]
fn parallel_clients_get_identical_answers() {
    let t = table(1500);
    let svc = Arc::new(Service::build(
        &t,
        &ab_cfg(),
        &SvcConfig {
            threads: 4,
            shards: 6,
            queue_capacity: 1024,
            ..SvcConfig::default()
        },
    ));
    let q = RectQuery::new(
        vec![AttrRange::new(0, 1, 5), AttrRange::new(1, 0, 2)],
        50,
        1450,
    );
    let want = svc.query_rect(&q).unwrap();
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let svc = Arc::clone(&svc);
            let q = q.clone();
            let want = want.clone();
            std::thread::spawn(move || {
                for _ in 0..20 {
                    assert_eq!(svc.query_rect(&q).unwrap(), want);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

/// 100% recall through the concurrent path: the merged answer is a
/// superset of the exact bitmap answer.
#[test]
fn service_never_loses_true_matches() {
    let t = table(1200);
    let exact = BitmapIndex::build(&t, Encoding::Equality);
    let svc = Service::build(
        &t,
        &ab_cfg(),
        &SvcConfig {
            threads: 3,
            shards: 5,
            ..SvcConfig::default()
        },
    );
    let q = RectQuery::new(
        vec![AttrRange::new(0, 3, 7), AttrRange::new(1, 2, 4)],
        0,
        1199,
    );
    let got = svc.query_rect(&q).unwrap();
    for r in exact.evaluate_rows(&q) {
        assert!(got.contains(&r), "concurrent merge lost exact row {r}");
    }
}

/// A saturated single-slot queue sheds with a typed `Overloaded`
/// error instead of queueing unboundedly.
#[test]
fn overload_sheds_with_typed_error() {
    // One worker, one queue slot, and a query fanning out to many
    // shards over enough rows that the first shard job is still
    // running when the third is submitted.
    let svc = Service::build(
        &table(120_000),
        &ab_cfg(),
        &SvcConfig {
            threads: 1,
            shards: 8,
            queue_capacity: 1,
            ..SvcConfig::default()
        },
    );
    let q = RectQuery::new(
        vec![AttrRange::new(0, 0, 6), AttrRange::new(1, 0, 3)],
        0,
        119_999,
    );
    match svc.query_rect(&q) {
        Err(SvcError::Overloaded { capacity, .. }) => assert_eq!(capacity, 1),
        other => panic!("expected Overloaded, got {other:?}"),
    }
}

/// An impossible deadline fails with `DeadlineExceeded`, and the
/// service keeps answering afterwards (cancelled work is reaped).
#[test]
fn deadline_miss_then_recovery() {
    let svc = Service::build(
        &table(50_000),
        &ab_cfg(),
        &SvcConfig {
            threads: 2,
            shards: 4,
            ..SvcConfig::default()
        },
    );
    let q = RectQuery::new(vec![AttrRange::new(0, 0, 7)], 0, 49_999);
    assert_eq!(
        svc.query_rect_within(&q, Duration::from_nanos(1)),
        Err(SvcError::DeadlineExceeded)
    );
    // Unbounded retry succeeds and still matches the reference.
    assert_eq!(
        svc.query_rect(&q).unwrap(),
        svc.index().execute_rect_sequential(&q).unwrap()
    );
}

/// Mid-flight cancellation from another thread aborts the request.
#[test]
fn cancellation_aborts_in_flight_request() {
    let svc = Arc::new(Service::build(
        &table(100_000),
        &ab_cfg(),
        &SvcConfig {
            threads: 2,
            shards: 4,
            ..SvcConfig::default()
        },
    ));
    let ctx = RequestCtx::new(Deadline::none());
    let canceller = ctx.clone();
    let h = std::thread::spawn(move || canceller.cancel());
    let q = RectQuery::new(
        vec![AttrRange::new(0, 0, 7), AttrRange::new(1, 0, 4)],
        0,
        99_999,
    );
    let res = svc.query_rect_ctx(&q, &ctx);
    h.join().unwrap();
    // Depending on timing the request either finished first or was
    // cancelled — both are valid; anything else is a bug.
    match res {
        Ok(rows) => assert_eq!(rows, svc.index().execute_rect_sequential(&q).unwrap()),
        Err(SvcError::Cancelled) => {}
        other => panic!("unexpected result: {other:?}"),
    }
}

/// Satellite 3: concurrent inserts/deletes/queries through the
/// sharded CountingAb service. After the dust settles, every cell
/// that was inserted and never removed MUST read as present — the
/// no-false-negative guarantee survives concurrent updates.
#[test]
fn counting_service_no_false_negatives_under_concurrency() {
    let rows = 4000usize;
    let svc = Arc::new(CountingService::new(rows, &[8, 8], 16, 8));

    // 8 writer threads own disjoint row slices; each inserts two cells
    // per row, then deletes the second one for every even local index.
    let handles: Vec<_> = (0..8)
        .map(|w| {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || {
                let slice = (rows / 8 * w)..(rows / 8 * (w + 1));
                for r in slice.clone() {
                    let keep = Cell::new(r, 0, (r % 8) as u32);
                    let churn = Cell::new(r, 1, ((r + w) % 8) as u32);
                    svc.insert(keep).unwrap();
                    svc.insert(churn).unwrap();
                }
                for r in slice.step_by(2) {
                    let churn = Cell::new(r, 1, ((r + w) % 8) as u32);
                    svc.remove(churn).unwrap();
                }
            })
        })
        .collect();

    // Readers run concurrently with the writers; they may see either
    // state but must never panic or deadlock.
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || {
                for r in (0..rows).step_by(17) {
                    let _ = svc.contains(Cell::new(r, 0, (r % 8) as u32)).unwrap();
                }
            })
        })
        .collect();
    for h in handles.into_iter().chain(readers) {
        h.join().unwrap();
    }

    // Every kept cell must still be present (batched, via the pool).
    let pool = WorkerPool::new(4, 64);
    let kept: Vec<Cell> = (0..rows).map(|r| Cell::new(r, 0, (r % 8) as u32)).collect();
    let present = svc.query_cells(&pool, &kept).unwrap();
    for (r, &hit) in present.iter().enumerate() {
        assert!(hit, "false negative after concurrent updates: row {r}");
    }
}

/// Batched queries under cross-thread pressure match their solo runs.
#[test]
fn batched_queries_match_solo_under_load() {
    let t = table(800);
    let svc = Arc::new(Service::build(
        &t,
        &ab_cfg(),
        &SvcConfig {
            threads: 4,
            shards: 4,
            queue_capacity: 512,
            ..SvcConfig::default()
        },
    ));
    let batch: Vec<RectQuery> = (0..6)
        .map(|i| RectQuery::new(vec![AttrRange::new(i % 2, 0, 3)], i * 100, 700 + i * 10))
        .collect();
    let solo: Vec<Vec<usize>> = batch.iter().map(|q| svc.query_rect(q).unwrap()).collect();
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let svc = Arc::clone(&svc);
            let batch = batch.clone();
            let solo = solo.clone();
            std::thread::spawn(move || {
                for _ in 0..10 {
                    assert_eq!(svc.query_batch(&batch).unwrap(), solo);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}
