//! The crash matrix: kill the segment-store writer at **every**
//! injection point and prove the atomic-replace invariant — after any
//! simulated crash the store on disk is either the complete old state
//! or the complete new state, opens cleanly, and a retried write
//! always converges on the new state. Plus the serving-equivalence
//! half of the acceptance bar: a service loaded from a store file
//! answers rect / cells / batch queries bit-identically to one built
//! in RAM, across seeded datasets and both read backends.

#![cfg(not(feature = "chaos-off"))]

use ab::{AbConfig, Cell, Level};
use bitmap::{AttrRange, BinnedColumn, BinnedTable, RectQuery};
use std::path::PathBuf;
use std::sync::Arc;
use svc::chaos::{points, ChaosSegmentIo, Fault, FaultPlan, FaultRule};
use svc::{Service, ShardedIndex, SvcConfig};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("svc-crash-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A deterministic dataset, parameterised so each seed yields a
/// different table (rows, cardinalities, and value pattern all move).
fn dataset(seed: u64) -> BinnedTable {
    let rows = 400 + (seed as usize % 3) * 177;
    let card_a = 5 + (seed as usize % 4);
    let card_b = 3 + (seed as usize % 2);
    BinnedTable::new(vec![
        BinnedColumn::new(
            "a",
            (0..rows)
                .map(|i| ((i as u64 * (seed + 3)) % card_a as u64) as u32)
                .collect(),
            card_a as u32,
        ),
        BinnedColumn::new(
            "b",
            (0..rows)
                .map(|i| ((i as u64 + seed) % card_b as u64) as u32)
                .collect(),
            card_b as u32,
        ),
    ])
}

fn cfg() -> AbConfig {
    AbConfig::new(Level::PerAttribute).with_alpha(8)
}

fn payload_for(seed: u64, shards: usize) -> Vec<u8> {
    ShardedIndex::build(&dataset(seed), &cfg(), shards, false).to_bytes()
}

const PAGE: u32 = 256;

/// Every write-path injection point, with the state the destination
/// must be in after an EIO-crash there: the rename is the commit
/// point, so everything before it must leave the old state and
/// everything after it the new state.
const CRASH_MATRIX: &[(&str, bool)] = &[
    (points::STORE_CREATE, false),
    (points::STORE_WRITE, false),
    (points::STORE_SYNC_FILE, false),
    (points::STORE_RENAME, false),
    (points::STORE_SYNC_DIR, true),
];

#[test]
fn eio_crash_at_every_point_leaves_old_or_new_never_garbage() {
    let dir = tmpdir("matrix");
    let old = payload_for(1, 3);
    let new = payload_for(2, 3);
    assert_ne!(old, new);

    for &(point, expect_new) in CRASH_MATRIX {
        let path = dir.join(format!("{}.seg", point.replace('.', "-")));
        store::write(&path, &old, PAGE, &store::RealIo).unwrap();

        let plan =
            Arc::new(FaultPlan::new(7).with_rule(FaultRule::new(point, Fault::Eio).max_fires(1)));
        let chaos = ChaosSegmentIo::new(Arc::clone(&plan));
        let err = store::write(&path, &new, PAGE, &chaos).expect_err("injected EIO must surface");
        assert!(
            matches!(err, store::StoreError::Io(_)),
            "{point}: expected Io error, got {err:?}"
        );
        assert_eq!(plan.fires(point), 1, "{point}: rule must have fired");

        // Invariant: the destination opens cleanly and is exactly the
        // complete old or complete new payload — never torn.
        let st = store::Store::open(&path)
            .unwrap_or_else(|e| panic!("{point}: store unreadable after crash: {e}"));
        let expected: &[u8] = if expect_new { &new } else { &old };
        assert_eq!(
            st.payload(),
            expected,
            "{point}: wrong state after crash (expected {})",
            if expect_new { "new" } else { "old" }
        );
        drop(st);

        // The rule is spent (max_fires 1): the retry goes through the
        // same chaos io and must converge on the new state.
        store::write(&path, &new, PAGE, &chaos).unwrap();
        assert_eq!(store::Store::open(&path).unwrap().payload(), &new[..]);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn short_write_tears_the_temp_file_not_the_store() {
    let dir = tmpdir("short");
    let path = dir.join("idx.seg");
    let old = payload_for(3, 2);
    let new = payload_for(4, 2);
    store::write(&path, &old, PAGE, &store::RealIo).unwrap();

    let plan = Arc::new(
        FaultPlan::new(11)
            .with_rule(FaultRule::new(points::STORE_WRITE, Fault::ShortWrite).max_fires(1)),
    );
    let chaos = ChaosSegmentIo::new(plan);
    store::write(&path, &new, PAGE, &chaos).expect_err("short write must surface");

    // The torn image only ever existed under the temp name; the
    // destination still opens as the complete old payload.
    assert_eq!(store::Store::open(&path).unwrap().payload(), &old[..]);
    store::write(&path, &new, PAGE, &chaos).unwrap();
    assert_eq!(store::Store::open(&path).unwrap().payload(), &new[..]);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn flipped_byte_during_write_fails_open_typed_never_serves_garbage() {
    let dir = tmpdir("flip");
    let old = payload_for(5, 2);
    let new = payload_for(6, 2);

    // The flip offset is seed-deterministic; sweep seeds so the flip
    // lands in different file regions (header, table, payload) across
    // iterations — every single one must be caught at open.
    for seed in 0..16u64 {
        let path = dir.join(format!("flip-{seed}.seg"));
        store::write(&path, &old, PAGE, &store::RealIo).unwrap();
        let plan = Arc::new(FaultPlan::new(seed).with_rule(
            FaultRule::new(points::STORE_WRITE, Fault::FlipByte { xor: 0x20 }).max_fires(1),
        ));
        let chaos = ChaosSegmentIo::new(plan);
        // The write itself "succeeds": the corruption is silent, the
        // torn image gets renamed in — exactly the case the per-page
        // CRCs exist for.
        store::write(&path, &new, PAGE, &chaos).unwrap();
        let err = store::Store::open(&path).expect_err("flipped image must not open");
        assert!(
            !matches!(err, store::StoreError::Io(_)),
            "seed {seed}: expected a structural (CRC) error, got {err:?}"
        );
        // Recovery: rewrite through the spent plan, now clean.
        store::write(&path, &new, PAGE, &chaos).unwrap();
        assert_eq!(store::Store::open(&path).unwrap().payload(), &new[..]);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn store_loaded_service_answers_bit_identically_to_in_ram() {
    let dir = tmpdir("equiv");
    for seed in [10u64, 11, 12] {
        let table = dataset(seed);
        let rows = table.num_rows();
        let shards = 2 + (seed as usize % 3);
        let index = ShardedIndex::build(&table, &cfg(), shards, false);
        let svc_cfg = SvcConfig {
            threads: 2,
            shards,
            ..SvcConfig::default()
        };
        let in_ram =
            Service::from_index(ShardedIndex::build(&table, &cfg(), shards, false), &svc_cfg);

        let path = dir.join(format!("equiv-{seed}.seg"));
        store::write(&path, &index.to_bytes(), PAGE, &store::RealIo).unwrap();

        for force_pread in [false, true] {
            let st = store::Store::open_with(&path, force_pread).unwrap();
            let loaded =
                Service::from_index(ShardedIndex::from_bytes(st.payload()).unwrap(), &svc_cfg);

            // Rect queries across both attributes.
            let rects = [
                RectQuery::new(vec![AttrRange::new(0, 0, 1)], 0, rows - 1),
                RectQuery::new(
                    vec![AttrRange::new(0, 1, 3), AttrRange::new(1, 0, 1)],
                    rows / 4,
                    rows - 1,
                ),
                RectQuery::new(vec![AttrRange::new(1, 0, 0)], 0, rows / 2),
            ];
            for q in &rects {
                assert_eq!(
                    in_ram.query_rect(q).unwrap(),
                    loaded.query_rect(q).unwrap(),
                    "seed {seed} pread={force_pread}: rect mismatch"
                );
            }
            // Cell probes, including certain-absent and present cells.
            let cells: Vec<Cell> = (0..rows)
                .step_by(7)
                .map(|r| Cell::new(r, 0, (r % 5) as u32))
                .collect();
            assert_eq!(
                in_ram.retrieve_cells(&cells).unwrap(),
                loaded.retrieve_cells(&cells).unwrap(),
                "seed {seed} pread={force_pread}: cells mismatch"
            );
            // Batched rects take the grouped fan-out path.
            assert_eq!(
                in_ram.query_batch(&rects).unwrap(),
                loaded.query_batch(&rects).unwrap(),
                "seed {seed} pread={force_pread}: batch mismatch"
            );
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
