//! Request-scoped tracing and the in-memory flight recorder.
//!
//! The counters and histograms in this crate aggregate across *all*
//! requests; this module answers the per-request question — *where did
//! this query's time go?* A [`TraceCtx`] is attached to one request
//! and carried (cheaply, it is an `Option<Arc>`) across every thread
//! that works on it. Each unit of work opens a [`TraceSpan`]; spans
//! record wall-clock start/end offsets plus free-form annotations
//! (shard id, rows scanned, bits read, degraded/quarantine/retry
//! outcomes) and link to a parent span, so one request yields one
//! cross-thread span tree.
//!
//! Completed traces land in the global [`FlightRecorder`] — a
//! fixed-capacity ring that keeps the last N traces plus a pinned list
//! of slow ones. Writers only ever `try_lock` a slot: a contended slot
//! drops the trace and bumps a counter instead of blocking the request
//! path.
//!
//! ## Cross-thread handoff
//!
//! Span parentage is resolved through a **per-thread** stack of
//! entered spans (see [`TraceSpan::enter`]): [`TraceCtx::span`]
//! parents onto the innermost entered span *of the same trace* on the
//! current thread. Work shipped to another thread (a pool job) cannot
//! see that stack — the dispatching side must capture the parent id
//! ([`TraceSpan::id`]) and the receiving side calls
//! [`TraceCtx::span_under`] with it. This is the handoff
//! [`crate::active_spans`] cannot provide (its stack is also
//! thread-local; see the `span` module docs).
//!
//! Everything here compiles to a no-op under `obs-off`:
//! [`TraceCtx::start`] returns a disabled context, so spans carry no
//! allocation and touch no thread-local.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;
#[cfg(not(feature = "obs-off"))]
use std::time::{SystemTime, UNIX_EPOCH};

/// Spans kept per trace; further spans are counted in
/// [`Trace::dropped_spans`] instead of growing without bound.
pub const MAX_SPANS_PER_TRACE: usize = 512;

/// Ring slots in the global [`recorder`].
pub const RECORDER_SLOTS: usize = 128;

/// Slow (pinned) traces kept by the global [`recorder`] beyond the
/// ring.
pub const RECORDER_PINNED: usize = 32;

#[cfg_attr(feature = "obs-off", allow(dead_code))]
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Innermost-last stack of entered spans on this thread.
    static CURRENT: RefCell<Vec<(Arc<TraceInner>, u64)>> = const { RefCell::new(Vec::new()) };
}

/// An annotation value on a span.
#[derive(Clone, Debug, PartialEq)]
pub enum AnnValue {
    /// An unsigned integer (counts, ids, microseconds).
    U64(u64),
    /// A short string (outcomes, kinds).
    Str(String),
}

impl From<u64> for AnnValue {
    fn from(v: u64) -> Self {
        AnnValue::U64(v)
    }
}

impl From<usize> for AnnValue {
    fn from(v: usize) -> Self {
        AnnValue::U64(v as u64)
    }
}

impl From<u32> for AnnValue {
    fn from(v: u32) -> Self {
        AnnValue::U64(v as u64)
    }
}

impl From<&str> for AnnValue {
    fn from(v: &str) -> Self {
        AnnValue::Str(v.to_string())
    }
}

impl From<String> for AnnValue {
    fn from(v: String) -> Self {
        AnnValue::Str(v)
    }
}

impl std::fmt::Display for AnnValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnnValue::U64(v) => write!(f, "{v}"),
            AnnValue::Str(s) => write!(f, "{s}"),
        }
    }
}

/// One completed span inside a [`Trace`].
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// Span id, unique within the trace (1-based; never 0).
    pub id: u64,
    /// Parent span id; 0 marks a root.
    pub parent: u64,
    /// Span name (dotted, like metric names).
    pub name: String,
    /// Microseconds from trace start to span start.
    pub start_us: u64,
    /// Microseconds from trace start to span end.
    pub end_us: u64,
    /// Key/value annotations in record order.
    pub annotations: Vec<(String, AnnValue)>,
}

struct TraceInner {
    id: u64,
    kind: &'static str,
    unix_start_us: u64,
    epoch: Instant,
    next_span: AtomicU64,
    closed: AtomicBool,
    dropped_spans: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
}

impl TraceInner {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn push(&self, record: SpanRecord) {
        if self.closed.load(Ordering::Acquire) {
            self.dropped_spans.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut spans = self.spans.lock().expect("trace span list poisoned");
        if spans.len() >= MAX_SPANS_PER_TRACE {
            self.dropped_spans.fetch_add(1, Ordering::Relaxed);
        } else {
            spans.push(record);
        }
    }
}

/// A request's trace handle. Cloning shares the trace; a disabled
/// context (the default, and everything under `obs-off`) makes every
/// span a free no-op.
#[derive(Clone, Default)]
pub struct TraceCtx {
    inner: Option<Arc<TraceInner>>,
}

impl std::fmt::Debug for TraceCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(i) => write!(f, "TraceCtx({})", i.id),
            None => write!(f, "TraceCtx(disabled)"),
        }
    }
}

impl TraceCtx {
    /// Starts a new trace of the given request kind. Under `obs-off`
    /// this returns a disabled context instead.
    pub fn start(kind: &'static str) -> TraceCtx {
        #[cfg(feature = "obs-off")]
        {
            let _ = kind;
            TraceCtx::disabled()
        }
        #[cfg(not(feature = "obs-off"))]
        {
            let unix_start_us = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_micros() as u64)
                .unwrap_or(0);
            TraceCtx {
                inner: Some(Arc::new(TraceInner {
                    id: NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed),
                    kind,
                    unix_start_us,
                    epoch: Instant::now(),
                    next_span: AtomicU64::new(1),
                    closed: AtomicBool::new(false),
                    dropped_spans: AtomicU64::new(0),
                    spans: Mutex::new(Vec::new()),
                })),
            }
        }
    }

    /// A context that records nothing.
    pub fn disabled() -> TraceCtx {
        TraceCtx { inner: None }
    }

    /// Whether spans opened on this context are recorded.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The trace id, if enabled.
    pub fn trace_id(&self) -> Option<u64> {
        self.inner.as_ref().map(|i| i.id)
    }

    /// Opens a span parented onto the innermost span of *this trace*
    /// entered on the current thread (see [`TraceSpan::enter`]), or a
    /// root span if there is none.
    pub fn span(&self, name: &'static str) -> TraceSpan {
        let parent = match &self.inner {
            None => 0,
            Some(inner) => CURRENT.with(|c| {
                c.borrow()
                    .iter()
                    .rev()
                    .find(|(top, _)| Arc::ptr_eq(top, inner))
                    .map(|&(_, id)| id)
                    .unwrap_or(0)
            }),
        };
        self.span_under(parent, name)
    }

    /// Opens a span under an explicit parent id — the cross-thread
    /// handoff: capture [`TraceSpan::id`] on the dispatching side,
    /// call this on the worker side.
    pub fn span_under(&self, parent: u64, name: &'static str) -> TraceSpan {
        match &self.inner {
            None => TraceSpan { data: None },
            Some(inner) => {
                let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
                TraceSpan {
                    data: Some(SpanData {
                        inner: Arc::clone(inner),
                        id,
                        parent,
                        name,
                        start_us: inner.now_us(),
                        annotations: Vec::new(),
                    }),
                }
            }
        }
    }

    /// Records an instantaneous annotated event (a zero-length span)
    /// at the current tree position.
    pub fn event(&self, name: &'static str, key: &'static str, value: impl Into<AnnValue>) {
        if self.inner.is_some() {
            let mut s = self.span(name);
            s.annotate(key, value);
        }
    }

    /// Closes the trace and takes its spans. Returns `None` for a
    /// disabled context or if the trace was already finished; spans
    /// still open at this point are dropped (counted in
    /// [`Trace::dropped_spans`]) rather than kept forever.
    pub fn finish(&self) -> Option<Trace> {
        let inner = self.inner.as_ref()?;
        let duration_us = inner.now_us();
        if inner.closed.swap(true, Ordering::AcqRel) {
            return None;
        }
        let mut spans = std::mem::take(&mut *inner.spans.lock().expect("trace span list poisoned"));
        spans.sort_by_key(|s| (s.start_us, s.id));
        Some(Trace {
            trace_id: inner.id,
            kind: inner.kind.to_string(),
            unix_start_us: inner.unix_start_us,
            duration_us,
            pinned: false,
            dropped_spans: inner.dropped_spans.load(Ordering::Relaxed),
            spans,
        })
    }
}

struct SpanData {
    inner: Arc<TraceInner>,
    id: u64,
    parent: u64,
    name: &'static str,
    start_us: u64,
    annotations: Vec<(String, AnnValue)>,
}

/// A live span; annotations accumulate locally and the record is
/// committed to the trace when the span drops. A disabled span (from a
/// disabled [`TraceCtx`]) is a zero-cost no-op.
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub struct TraceSpan {
    data: Option<SpanData>,
}

impl TraceSpan {
    /// This span's id (0 when disabled) — capture it to parent
    /// cross-thread work via [`TraceCtx::span_under`].
    pub fn id(&self) -> u64 {
        self.data.as_ref().map(|d| d.id).unwrap_or(0)
    }

    /// Whether this span records anything.
    pub fn enabled(&self) -> bool {
        self.data.is_some()
    }

    /// Attaches a key/value annotation.
    pub fn annotate(&mut self, key: &'static str, value: impl Into<AnnValue>) {
        if let Some(d) = &mut self.data {
            d.annotations.push((key.to_string(), value.into()));
        }
    }

    /// Makes this span the current parent for [`TraceCtx::span`] and
    /// [`span_current`] on **this thread** until the guard drops.
    pub fn enter(&self) -> EnterGuard {
        match &self.data {
            None => EnterGuard { active: false },
            Some(d) => {
                CURRENT.with(|c| c.borrow_mut().push((Arc::clone(&d.inner), d.id)));
                EnterGuard { active: true }
            }
        }
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        if let Some(d) = self.data.take() {
            let end_us = d.inner.now_us();
            d.inner.push(SpanRecord {
                id: d.id,
                parent: d.parent,
                name: d.name.to_string(),
                start_us: d.start_us,
                end_us,
                annotations: d.annotations,
            });
        }
    }
}

impl std::fmt::Debug for TraceSpan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.data {
            Some(d) => write!(f, "TraceSpan({} id={})", d.name, d.id),
            None => write!(f, "TraceSpan(disabled)"),
        }
    }
}

/// Pops the entered span from the thread's stack on drop; see
/// [`TraceSpan::enter`].
#[must_use = "dropping the guard immediately exits the span"]
pub struct EnterGuard {
    active: bool,
}

impl Drop for EnterGuard {
    fn drop(&mut self) {
        if self.active {
            CURRENT.with(|c| {
                c.borrow_mut().pop();
            });
        }
    }
}

/// Opens a span on whatever trace is entered on this thread — the hook
/// instrumented library code (the probe kernel) uses so it needs no
/// trace plumbing of its own. Returns a disabled span when no trace is
/// entered, and compiles to exactly that under `obs-off`.
pub fn span_current(name: &'static str) -> TraceSpan {
    #[cfg(feature = "obs-off")]
    {
        let _ = name;
        TraceSpan { data: None }
    }
    #[cfg(not(feature = "obs-off"))]
    {
        let top = CURRENT.with(|c| c.borrow().last().map(|(i, id)| (Arc::clone(i), *id)));
        match top {
            None => TraceSpan { data: None },
            Some((inner, parent)) => TraceCtx { inner: Some(inner) }.span_under(parent, name),
        }
    }
}

/// A completed request trace.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    /// Process-unique trace id.
    pub trace_id: u64,
    /// Request kind (`rect`, `rect_wah`, `cells`, `batch`, …).
    pub kind: String,
    /// Wall-clock start, microseconds since the Unix epoch.
    pub unix_start_us: u64,
    /// Total duration in microseconds.
    pub duration_us: u64,
    /// Whether the recorder pinned this trace (slow-query log).
    pub pinned: bool,
    /// Spans dropped past [`MAX_SPANS_PER_TRACE`] or after finish.
    pub dropped_spans: u64,
    /// Completed spans, sorted by start offset.
    pub spans: Vec<SpanRecord>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl Trace {
    /// Serializes this trace as a JSON object (the element format of
    /// the `/debug/traces` dump).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"trace_id\":{},\"kind\":\"{}\",\"unix_start_us\":{},\"duration_us\":{},\"pinned\":{},\"dropped_spans\":{},\"spans\":[",
            self.trace_id,
            json_escape(&self.kind),
            self.unix_start_us,
            self.duration_us,
            self.pinned,
            self.dropped_spans,
        );
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"id\":{},\"parent\":{},\"name\":\"{}\",\"start_us\":{},\"end_us\":{},\"annotations\":{{",
                s.id,
                s.parent,
                json_escape(&s.name),
                s.start_us,
                s.end_us,
            );
            for (j, (k, v)) in s.annotations.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                match v {
                    AnnValue::U64(n) => {
                        let _ = write!(out, "\"{}\":{}", json_escape(k), n);
                    }
                    AnnValue::Str(sv) => {
                        let _ = write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(sv));
                    }
                }
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }

    /// Renders the span tree as indented text (the `abq trace`
    /// output). Orphaned spans (parent missing from the dump) are
    /// listed at root level with a marker.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace {} kind={} start_us={} duration={}µs{}{}",
            self.trace_id,
            self.kind,
            self.unix_start_us,
            self.duration_us,
            if self.pinned { " [pinned: slow]" } else { "" },
            if self.dropped_spans > 0 {
                format!(" [{} spans dropped]", self.dropped_spans)
            } else {
                String::new()
            },
        );
        let ids: std::collections::BTreeSet<u64> = self.spans.iter().map(|s| s.id).collect();
        let mut children: std::collections::BTreeMap<u64, Vec<&SpanRecord>> =
            std::collections::BTreeMap::new();
        let mut roots: Vec<(&SpanRecord, bool)> = Vec::new();
        for s in &self.spans {
            if s.parent != 0 && ids.contains(&s.parent) {
                children.entry(s.parent).or_default().push(s);
            } else {
                roots.push((s, s.parent != 0));
            }
        }
        fn emit(
            out: &mut String,
            s: &SpanRecord,
            orphan: bool,
            depth: usize,
            children: &std::collections::BTreeMap<u64, Vec<&SpanRecord>>,
        ) {
            let _ = write!(
                out,
                "{}- {} {}–{}µs ({}µs)",
                "  ".repeat(depth),
                s.name,
                s.start_us,
                s.end_us,
                s.end_us.saturating_sub(s.start_us),
            );
            for (k, v) in &s.annotations {
                let _ = write!(out, " {k}={v}");
            }
            if orphan {
                let _ = write!(out, " [orphan: parent {} missing]", s.parent);
            }
            out.push('\n');
            for c in children.get(&s.id).into_iter().flatten() {
                emit(out, c, false, depth + 1, children);
            }
        }
        for (r, orphan) in roots {
            emit(&mut out, r, orphan, 1, &children);
        }
        out
    }
}

/// Fixed-capacity ring of completed traces plus a pinned slow-query
/// list. Writers never block: a contended slot or pin list drops the
/// trace and counts it in [`FlightRecorder::dropped`].
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<Arc<Trace>>>>,
    cursor: AtomicUsize,
    pinned: Mutex<VecDeque<Arc<Trace>>>,
    pinned_cap: usize,
    recorded: AtomicU64,
    dropped: AtomicU64,
}

impl FlightRecorder {
    /// A recorder with `slots` ring entries and up to `pinned_cap`
    /// pinned slow traces.
    pub fn new(slots: usize, pinned_cap: usize) -> Self {
        FlightRecorder {
            slots: (0..slots.max(1)).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicUsize::new(0),
            pinned: Mutex::new(VecDeque::new()),
            pinned_cap,
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Records a completed trace, pinning it when `pin` is set (the
    /// slow-query log). Never blocks: contended slots drop the trace.
    pub fn record(&self, mut trace: Trace, pin: bool) {
        trace.pinned = pin;
        let trace = Arc::new(trace);
        let i = self.cursor.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        match self.slots[i].try_lock() {
            Ok(mut slot) => {
                *slot = Some(Arc::clone(&trace));
                self.recorded.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        if pin && self.pinned_cap > 0 {
            if let Ok(mut pinned) = self.pinned.try_lock() {
                pinned.push_back(trace);
                while pinned.len() > self.pinned_cap {
                    pinned.pop_front();
                }
            }
        }
    }

    /// Traces recorded successfully since construction (or [`Self::clear`]).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Traces dropped because a slot was contended.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Every retained trace — ring contents plus pinned slow traces —
    /// sorted by start time.
    pub fn traces(&self) -> Vec<Arc<Trace>> {
        let mut out: Vec<Arc<Trace>> = Vec::new();
        for slot in &self.slots {
            if let Ok(s) = slot.lock() {
                if let Some(t) = &*s {
                    out.push(Arc::clone(t));
                }
            }
        }
        if let Ok(pinned) = self.pinned.lock() {
            for t in pinned.iter() {
                if !out.iter().any(|o| Arc::ptr_eq(o, t)) {
                    out.push(Arc::clone(t));
                }
            }
        }
        out.sort_by_key(|t| (t.unix_start_us, t.trace_id));
        out
    }

    /// Empties the recorder and zeroes its counters (tests and the
    /// repro binaries use this to scope assertions to one workload).
    pub fn clear(&self) {
        for slot in &self.slots {
            if let Ok(mut s) = slot.lock() {
                *s = None;
            }
        }
        if let Ok(mut pinned) = self.pinned.lock() {
            pinned.clear();
        }
        self.cursor.store(0, Ordering::Relaxed);
        self.recorded.store(0, Ordering::Relaxed);
        self.dropped.store(0, Ordering::Relaxed);
    }

    /// The `/debug/traces` dump: a JSON object with recorder counters
    /// and every retained trace.
    pub fn to_json(&self) -> String {
        let traces = self.traces();
        let mut out = format!(
            "{{\"recorded\":{},\"dropped\":{},\"traces\":[",
            self.recorded(),
            self.dropped()
        );
        for (i, t) in traces.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&t.to_json());
        }
        out.push_str("]}");
        out
    }
}

static RECORDER: OnceLock<FlightRecorder> = OnceLock::new();

/// The process-wide flight recorder completed request traces land in.
pub fn recorder() -> &'static FlightRecorder {
    RECORDER.get_or_init(|| FlightRecorder::new(RECORDER_SLOTS, RECORDER_PINNED))
}

// ---------------------------------------------------------------------
// Parsing the /debug/traces dump (for `abq trace`).

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

#[derive(Debug)]
enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }
    fn get<'v>(&'v self, key: &str) -> Option<&'v JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            b: s.as_bytes(),
            i: 0,
        }
    }

    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {} of trace dump",
                c as char, self.i
            ))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.i)),
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        self.ws();
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        self.ws();
        let start = self.i;
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(JsonValue::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i).copied() {
                None => return Err("unterminated string in trace dump".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i).copied() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape in trace dump")?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.i += 1;
                }
                Some(c) => {
                    // Copy the full UTF-8 sequence starting here.
                    let len = match c {
                        c if c < 0x80 => 1,
                        c if c >= 0xf0 => 4,
                        c if c >= 0xe0 => 3,
                        _ => 2,
                    };
                    let chunk = self
                        .b
                        .get(self.i..self.i + len)
                        .ok_or("truncated UTF-8 in trace dump")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                    self.i += len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(JsonValue::Arr(out));
        }
        loop {
            out.push(self.value()?);
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(JsonValue::Arr(out));
                }
                other => return Err(format!("expected ',' or ']' but found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(JsonValue::Obj(out));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            out.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(JsonValue::Obj(out));
                }
                other => return Err(format!("expected ',' or '}}' but found {other:?}")),
            }
        }
    }
}

fn trace_from_value(v: &JsonValue) -> Result<Trace, String> {
    let spans = match v.get("spans") {
        Some(JsonValue::Arr(items)) => items
            .iter()
            .map(|s| {
                let annotations = match s.get("annotations") {
                    Some(JsonValue::Obj(pairs)) => pairs
                        .iter()
                        .map(|(k, av)| {
                            let value = match av {
                                JsonValue::Num(n) => AnnValue::U64(*n as u64),
                                JsonValue::Str(sv) => AnnValue::Str(sv.clone()),
                                JsonValue::Bool(b) => AnnValue::Str(b.to_string()),
                                _ => AnnValue::Str(String::new()),
                            };
                            (k.clone(), value)
                        })
                        .collect(),
                    _ => Vec::new(),
                };
                Ok(SpanRecord {
                    id: s
                        .get("id")
                        .and_then(JsonValue::as_u64)
                        .ok_or("span without id")?,
                    parent: s.get("parent").and_then(JsonValue::as_u64).unwrap_or(0),
                    name: match s.get("name") {
                        Some(JsonValue::Str(n)) => n.clone(),
                        _ => return Err("span without name".into()),
                    },
                    start_us: s.get("start_us").and_then(JsonValue::as_u64).unwrap_or(0),
                    end_us: s.get("end_us").and_then(JsonValue::as_u64).unwrap_or(0),
                    annotations,
                })
            })
            .collect::<Result<Vec<_>, String>>()?,
        _ => Vec::new(),
    };
    Ok(Trace {
        trace_id: v
            .get("trace_id")
            .and_then(JsonValue::as_u64)
            .ok_or("trace without trace_id")?,
        kind: match v.get("kind") {
            Some(JsonValue::Str(k)) => k.clone(),
            _ => "unknown".to_string(),
        },
        unix_start_us: v
            .get("unix_start_us")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0),
        duration_us: v
            .get("duration_us")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0),
        pinned: matches!(v.get("pinned"), Some(JsonValue::Bool(true))),
        dropped_spans: v
            .get("dropped_spans")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0),
        spans,
    })
}

/// Parses a `/debug/traces` dump (see [`FlightRecorder::to_json`]) —
/// also accepts a bare JSON array of traces, or a single trace object.
pub fn parse_dump(s: &str) -> Result<Vec<Trace>, String> {
    let mut p = Parser::new(s);
    let v = p.value()?;
    let list: Vec<&JsonValue> = match &v {
        JsonValue::Obj(_) if v.get("traces").is_some() => match v.get("traces") {
            Some(JsonValue::Arr(items)) => items.iter().collect(),
            _ => return Err("\"traces\" is not an array".into()),
        },
        JsonValue::Arr(items) => items.iter().collect(),
        JsonValue::Obj(_) => vec![&v],
        _ => return Err("trace dump is not an object or array".into()),
    };
    list.into_iter().map(trace_from_value).collect()
}

#[cfg(all(test, not(feature = "obs-off")))]
mod tests {
    use super::*;

    #[test]
    fn span_tree_nests_via_thread_stack() {
        let ctx = TraceCtx::start("test");
        let root_id;
        {
            let root = ctx.span("root");
            root_id = root.id();
            let _g = root.enter();
            {
                let child = ctx.span("child");
                let _g2 = child.enter();
                let mut grandchild = ctx.span("grandchild");
                grandchild.annotate("k", 7u64);
            }
            // A kernel-style span with no explicit ctx.
            let _k = span_current("kernel");
        }
        let t = ctx.finish().expect("first finish yields the trace");
        assert!(ctx.finish().is_none(), "finish is once");
        assert_eq!(t.spans.len(), 4);
        let by_name = |n: &str| t.spans.iter().find(|s| s.name == n).unwrap();
        assert_eq!(by_name("root").parent, 0);
        assert_eq!(by_name("child").parent, root_id);
        assert_eq!(by_name("grandchild").parent, by_name("child").id);
        assert_eq!(by_name("kernel").parent, root_id);
        assert_eq!(
            by_name("grandchild").annotations,
            vec![("k".to_string(), AnnValue::U64(7))]
        );
    }

    #[test]
    fn cross_thread_handoff_parents_correctly() {
        let ctx = TraceCtx::start("test");
        let root = ctx.span("root");
        let root_id = root.id();
        let _g = root.enter();
        std::thread::scope(|s| {
            for shard in 0..3u64 {
                let ctx = ctx.clone();
                s.spawn(move || {
                    let mut sp = ctx.span_under(root_id, "shard");
                    sp.annotate("shard", shard);
                    let _e = sp.enter();
                    let _k = span_current("kernel");
                });
            }
        });
        drop(_g);
        drop(root);
        let t = ctx.finish().unwrap();
        assert_eq!(t.spans.iter().filter(|s| s.name == "shard").count(), 3);
        for s in t.spans.iter().filter(|s| s.name == "shard") {
            assert_eq!(s.parent, root_id);
        }
        // Each kernel span hangs under one of the shard spans.
        let shard_ids: Vec<u64> = t
            .spans
            .iter()
            .filter(|s| s.name == "shard")
            .map(|s| s.id)
            .collect();
        for k in t.spans.iter().filter(|s| s.name == "kernel") {
            assert!(shard_ids.contains(&k.parent));
        }
    }

    #[test]
    fn disabled_ctx_is_free_and_silent() {
        let ctx = TraceCtx::disabled();
        assert!(!ctx.enabled());
        let mut s = ctx.span("anything");
        s.annotate("k", 1u64);
        let _e = s.enter();
        let inner = span_current("kernel");
        assert!(!inner.enabled());
        assert!(ctx.finish().is_none());
    }

    #[test]
    fn span_cap_counts_drops() {
        let ctx = TraceCtx::start("test");
        for _ in 0..(MAX_SPANS_PER_TRACE + 10) {
            let _s = ctx.span("s");
        }
        let t = ctx.finish().unwrap();
        assert_eq!(t.spans.len(), MAX_SPANS_PER_TRACE);
        assert_eq!(t.dropped_spans, 10);
    }

    #[test]
    fn recorder_ring_overwrites_and_pins() {
        let r = FlightRecorder::new(4, 2);
        for i in 0..6 {
            let ctx = TraceCtx::start("test");
            let t = ctx.finish().unwrap();
            // Pin the first one; it must survive ring overwrite.
            r.record(t, i == 0);
        }
        assert_eq!(r.recorded(), 6);
        let traces = r.traces();
        // 4 ring slots + the pinned one that was overwritten.
        assert_eq!(traces.len(), 5);
        assert_eq!(traces.iter().filter(|t| t.pinned).count(), 1);
        r.clear();
        assert!(r.traces().is_empty());
        assert_eq!(r.recorded(), 0);
    }

    #[test]
    fn recorder_never_blocks_on_contended_slot() {
        use std::time::Duration;
        let r = Arc::new(FlightRecorder::new(1, 0));
        // Hold the only slot's lock…
        let slot_guard = r.slots[0].lock().unwrap();
        let r2 = Arc::clone(&r);
        let h = std::thread::spawn(move || {
            let start = Instant::now();
            let t = TraceCtx::start("test").finish().unwrap();
            r2.record(t, false);
            start.elapsed()
        });
        let elapsed = h.join().unwrap();
        drop(slot_guard);
        assert!(
            elapsed < Duration::from_millis(100),
            "record blocked for {elapsed:?}"
        );
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn json_dump_roundtrips_through_parser() {
        let ctx = TraceCtx::start("rect");
        {
            let mut root = ctx.span("svc.request");
            root.annotate("outcome", "ok");
            root.annotate("shards", 3u64);
            let _g = root.enter();
            let _c = ctx.span("svc.merge");
        }
        let t = ctx.finish().unwrap();
        let r = FlightRecorder::new(4, 2);
        r.record(t.clone(), true);
        let parsed = parse_dump(&r.to_json()).unwrap();
        assert_eq!(parsed.len(), 1);
        let p = &parsed[0];
        assert_eq!(p.trace_id, t.trace_id);
        assert_eq!(p.kind, "rect");
        assert!(p.pinned);
        assert_eq!(p.spans.len(), t.spans.len());
        assert_eq!(p.spans[0].annotations, t.spans[0].annotations);
        // The renderer shows the tree with annotations inline.
        let tree = p.render_tree();
        assert!(tree.contains("svc.request"));
        assert!(tree.contains("outcome=ok"));
        assert!(tree.contains("[pinned: slow]"));
        assert!(
            tree.contains("  - svc.merge"),
            "nested child missing:\n{tree}"
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_dump("not json").is_err());
        assert!(parse_dump("{\"traces\":5}").is_err());
        assert!(parse_dump("{\"traces\":[{\"kind\":\"x\"}]}").is_err()); // no trace_id
    }
}

#[cfg(all(test, feature = "obs-off"))]
mod off_tests {
    use super::*;

    #[test]
    fn start_is_disabled_under_obs_off() {
        let ctx = TraceCtx::start("test");
        assert!(!ctx.enabled());
        assert!(ctx.finish().is_none());
        assert!(!span_current("x").enabled());
    }
}
