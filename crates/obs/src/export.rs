//! Snapshot exporters: JSON and Prometheus text exposition.
//!
//! The JSON is hand-rolled (this workspace has no `serde_json`), but
//! the output matches what serde's derives on [`Snapshot`] would
//! produce, so downstream tooling can deserialize it with serde once
//! available.
//!
//! The Prometheus exporter targets real scrapers: every metric gets
//! `# HELP` (carrying the original dotted name) and `# TYPE` lines,
//! histogram buckets are cumulative with a closing `+Inf`, sketches
//! export as summaries with `quantile` labels, and sanitized names are
//! **uniquified** — `kernel.batches` and `kernel_batches` both
//! sanitize to `kernel_batches`, so the second registrant (in snapshot
//! iteration order) is deterministically suffixed `_2` instead of
//! silently emitting a duplicate series that scrapers reject.

use crate::histogram::HistogramSnapshot;
use crate::sketch::SketchSnapshot;
use crate::Snapshot;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Escapes `s` as the contents of a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats `v` as a JSON number (JSON has no NaN/Infinity; those become
/// 0, which only arises from degenerate inputs).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` on a whole f64 prints "26" — keep it a float literal.
        if s.contains(['.', 'e', 'E']) {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "0.0".to_string()
    }
}

fn json_histogram(out: &mut String, h: &HistogramSnapshot) {
    let _ = write!(
        out,
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
        h.count,
        h.sum,
        h.min,
        h.max,
        json_f64(h.mean),
        h.p50,
        h.p90,
        h.p99,
    );
    for (i, (bits, count)) in h.buckets.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{bits},{count}]");
    }
    out.push_str("]}");
}

fn json_sketch(out: &mut String, s: &SketchSnapshot) {
    let _ = write!(
        out,
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p95\":{},\"p99\":{},\"p999\":{},\"buckets\":[",
        s.count,
        s.sum,
        s.min,
        s.max,
        json_f64(s.mean),
        s.p50,
        s.p90,
        s.p95,
        s.p99,
        s.p999,
    );
    for (i, (bucket, count)) in s.buckets.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{bucket},{count}]");
    }
    out.push_str("]}");
}

/// Sanitizes a dotted metric name into a Prometheus metric name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): dots and other invalid characters
/// become underscores. Sanitization can collide — [`NameSpace`]
/// resolves that per exposition.
fn prom_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Escapes a `# HELP` text (Prometheus exposition: backslash and
/// newline must be escaped).
fn help_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Tracks every series name emitted in one exposition and uniquifies
/// sanitized base names that collide: the first claimant keeps the
/// clean name, later ones get deterministic `_2`, `_3`, … suffixes.
/// A claim reserves the base name *and* each derived series suffix
/// (`_bucket`, `_sum`, `_count`), so a counter named `x_count` can
/// never collide with histogram `x`'s `_count` series either.
struct NameSpace {
    used: BTreeSet<String>,
}

impl NameSpace {
    fn new() -> Self {
        NameSpace {
            used: BTreeSet::new(),
        }
    }

    /// Claims a sanitized base name whose exposition will emit
    /// `base + suffix` for each listed suffix (use `""` for the bare
    /// name). Returns the possibly-uniquified base to emit under.
    fn claim(&mut self, base: &str, suffixes: &[&str]) -> String {
        let mut attempt = 0usize;
        loop {
            let candidate = if attempt == 0 {
                base.to_string()
            } else {
                format!("{base}_{}", attempt + 1)
            };
            let series: Vec<String> = suffixes.iter().map(|s| format!("{candidate}{s}")).collect();
            if series.iter().all(|s| !self.used.contains(s)) {
                self.used.extend(series);
                return candidate;
            }
            attempt += 1;
        }
    }
}

impl Snapshot {
    /// Serializes the snapshot as a JSON object with `counters`,
    /// `histograms`, `sketches`, and `extra` maps (see
    /// [`crate::HistogramSnapshot`] and [`crate::SketchSnapshot`] for
    /// the per-metric fields). Keys are sorted.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\": {}", json_escape(name), value);
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\": ", json_escape(name));
            json_histogram(&mut out, h);
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"sketches\": {");
        for (i, (name, s)) in self.sketches.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\": ", json_escape(name));
            json_sketch(&mut out, s);
        }
        if !self.sketches.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"extra\": {");
        for (i, (name, value)) in self.extra.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\": {}", json_escape(name), json_f64(*value));
        }
        if !self.extra.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Serializes the snapshot in Prometheus text exposition format.
    ///
    /// Dotted names become underscore names (uniquified on collision —
    /// see the module docs); every metric gets `# HELP` (the original
    /// dotted name) and `# TYPE` lines. Histograms expand to cumulative
    /// `_bucket{le="…"}` series plus `_sum`/`_count`; sketches export
    /// as summaries with `{quantile="…"}` series plus `_sum`/`_count`;
    /// `extra` values export as gauges.
    pub fn to_prometheus(&self) -> String {
        let mut ns = NameSpace::new();
        let mut out = String::new();
        for (name, value) in &self.counters {
            let n = ns.claim(&prom_name(name), &[""]);
            let _ = writeln!(out, "# HELP {n} {}", help_escape(name));
            let _ = writeln!(out, "# TYPE {n} counter");
            let _ = writeln!(out, "{n} {value}");
        }
        for (name, h) in &self.histograms {
            let n = ns.claim(&prom_name(name), &["", "_bucket", "_sum", "_count"]);
            let _ = writeln!(out, "# HELP {n} {}", help_escape(name));
            let _ = writeln!(out, "# TYPE {n} histogram");
            let mut cumulative = 0u64;
            for &(bits, count) in &h.buckets {
                cumulative += count;
                let le = HistogramSnapshot::bucket_upper(bits as usize);
                let _ = writeln!(out, "{n}_bucket{{le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{n}_sum {}", h.sum);
            let _ = writeln!(out, "{n}_count {}", h.count);
        }
        for (name, s) in &self.sketches {
            let n = ns.claim(&prom_name(name), &["", "_sum", "_count"]);
            let _ = writeln!(out, "# HELP {n} {}", help_escape(name));
            let _ = writeln!(out, "# TYPE {n} summary");
            for (q, v) in [
                ("0.5", s.p50),
                ("0.9", s.p90),
                ("0.95", s.p95),
                ("0.99", s.p99),
                ("0.999", s.p999),
            ] {
                let _ = writeln!(out, "{n}{{quantile=\"{q}\"}} {v}");
            }
            let _ = writeln!(out, "{n}_sum {}", s.sum);
            let _ = writeln!(out, "{n}_count {}", s.count);
        }
        for (name, value) in &self.extra {
            let n = ns.claim(&prom_name(name), &[""]);
            let _ = writeln!(out, "# HELP {n} {}", help_escape(name));
            let _ = writeln!(out, "# TYPE {n} gauge");
            let _ = writeln!(out, "{n} {}", json_f64(*value));
        }
        out
    }
}

#[cfg(all(test, not(feature = "obs-off")))]
mod tests {
    use crate::Registry;

    fn sample() -> crate::Snapshot {
        let r = Registry::new();
        r.counter("ex.hits").add(3);
        let h = r.histogram("ex.latency_us");
        h.record(5);
        h.record(700);
        let s = r.sketch("ex.lat_sketch_us");
        for v in [10, 20, 30, 40] {
            s.record(v);
        }
        r.snapshot().with_extra("check.sum", 3.0)
    }

    #[test]
    fn json_round_trips_key_facts() {
        let j = sample().to_json();
        assert!(j.contains("\"ex.hits\": 3"));
        assert!(j.contains("\"count\":2"));
        assert!(j.contains("\"sum\":705"));
        assert!(j.contains("\"check.sum\": 3.0"));
        assert!(j.contains("\"ex.lat_sketch_us\""));
        assert!(j.contains("\"p999\":"));
        // Balanced braces/brackets — cheap structural validity check.
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced braces in: {j}"
        );
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(super::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(super::json_f64(f64::NAN), "0.0");
        assert_eq!(super::json_f64(2.0), "2.0");
        assert_eq!(super::json_f64(2.5), "2.5");
    }

    #[test]
    fn prometheus_format() {
        let p = sample().to_prometheus();
        assert!(p.contains("# HELP ex_hits ex.hits"));
        assert!(p.contains("# TYPE ex_hits counter"));
        assert!(p.contains("ex_hits 3"));
        assert!(p.contains("# TYPE ex_latency_us histogram"));
        // 5 lands in bucket 3 (upper 7), 700 in bucket 10 (upper 1023);
        // cumulative counts 1 then 2.
        assert!(p.contains("ex_latency_us_bucket{le=\"7\"} 1"));
        assert!(p.contains("ex_latency_us_bucket{le=\"1023\"} 2"));
        assert!(p.contains("ex_latency_us_bucket{le=\"+Inf\"} 2"));
        assert!(p.contains("ex_latency_us_sum 705"));
        assert!(p.contains("ex_latency_us_count 2"));
        assert!(p.contains("# TYPE ex_lat_sketch_us summary"));
        assert!(p.contains("ex_lat_sketch_us{quantile=\"0.5\"}"));
        assert!(p.contains("ex_lat_sketch_us{quantile=\"0.999\"}"));
        assert!(p.contains("ex_lat_sketch_us_count 4"));
        assert!(p.contains("check_sum 3.0"));
    }

    #[test]
    fn sanitized_collisions_are_uniquified() {
        let r = Registry::new();
        // Both sanitize to `kernel_batches`.
        r.counter("kernel.batches").add(1);
        r.counter("kernel_batches").add(2);
        let p = r.snapshot().to_prometheus();
        // BTreeMap order: "kernel.batches" < "kernel_batches".
        assert!(p.contains("\nkernel_batches 1\n"));
        assert!(p.contains("# HELP kernel_batches_2 kernel_batches"));
        assert!(p.contains("\nkernel_batches_2 2\n"));
        // No duplicate series name anywhere.
        let mut seen = std::collections::BTreeSet::new();
        for line in p.lines().filter(|l| !l.starts_with('#')) {
            let series = line.split([' ', '{']).next().unwrap();
            assert!(seen.insert(series.to_string()), "duplicate series {series}");
        }
    }

    #[test]
    fn histogram_derived_series_cannot_collide_with_counters() {
        let r = Registry::new();
        r.counter("x.count").add(9); // sanitizes to x_count
        r.histogram("x").record(1); // wants x_bucket/x_sum/x_count
        let p = r.snapshot().to_prometheus();
        // The histogram's claim sees x_count taken and moves to x_2.
        assert!(p.contains("\nx_count 9\n"));
        assert!(p.contains("# TYPE x_2 histogram"));
        assert!(p.contains("x_2_count 1"));
        assert!(!p.contains("\nx_count 1\n"));
    }

    #[test]
    fn prom_name_sanitizes() {
        assert_eq!(
            super::prom_name("ab.query.cells_probed"),
            "ab_query_cells_probed"
        );
        assert_eq!(super::prom_name("1bad"), "_1bad");
    }
}
