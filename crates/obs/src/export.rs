//! Snapshot exporters: JSON and Prometheus text exposition.
//!
//! The JSON is hand-rolled (this workspace has no `serde_json`), but
//! the output matches what serde's derives on [`Snapshot`] would
//! produce, so downstream tooling can deserialize it with serde once
//! available.

use crate::histogram::HistogramSnapshot;
use crate::Snapshot;
use std::fmt::Write as _;

/// Escapes `s` as the contents of a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats `v` as a JSON number (JSON has no NaN/Infinity; those become
/// 0, which only arises from degenerate inputs).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` on a whole f64 prints "26" — keep it a float literal.
        if s.contains(['.', 'e', 'E']) {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "0.0".to_string()
    }
}

fn json_histogram(out: &mut String, h: &HistogramSnapshot) {
    let _ = write!(
        out,
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
        h.count,
        h.sum,
        h.min,
        h.max,
        json_f64(h.mean),
        h.p50,
        h.p90,
        h.p99,
    );
    for (i, (bits, count)) in h.buckets.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{bits},{count}]");
    }
    out.push_str("]}");
}

/// Sanitizes a dotted metric name into a Prometheus metric name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): dots and other invalid characters
/// become underscores.
fn prom_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

impl Snapshot {
    /// Serializes the snapshot as a JSON object with `counters`,
    /// `histograms`, and `extra` maps (see [`crate::HistogramSnapshot`]
    /// for the histogram fields). Keys are sorted.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\": {}", json_escape(name), value);
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\": ", json_escape(name));
            json_histogram(&mut out, h);
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"extra\": {");
        for (i, (name, value)) in self.extra.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\": {}", json_escape(name), json_f64(*value));
        }
        if !self.extra.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Serializes the snapshot in Prometheus text exposition format.
    /// Dotted names become underscore names; histograms expand to
    /// cumulative `_bucket{le="…"}` series plus `_sum` and `_count`.
    /// `extra` values export as untyped gauges.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} counter");
            let _ = writeln!(out, "{n} {value}");
        }
        for (name, h) in &self.histograms {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} histogram");
            let mut cumulative = 0u64;
            for &(bits, count) in &h.buckets {
                cumulative += count;
                let le = HistogramSnapshot::bucket_upper(bits as usize);
                let _ = writeln!(out, "{n}_bucket{{le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{n}_sum {}", h.sum);
            let _ = writeln!(out, "{n}_count {}", h.count);
        }
        for (name, value) in &self.extra {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} gauge");
            let _ = writeln!(out, "{n} {}", json_f64(*value));
        }
        out
    }
}

#[cfg(all(test, not(feature = "obs-off")))]
mod tests {
    use crate::Registry;

    fn sample() -> crate::Snapshot {
        let r = Registry::new();
        r.counter("ex.hits").add(3);
        let h = r.histogram("ex.latency_us");
        h.record(5);
        h.record(700);
        r.snapshot().with_extra("check.sum", 3.0)
    }

    #[test]
    fn json_round_trips_key_facts() {
        let j = sample().to_json();
        assert!(j.contains("\"ex.hits\": 3"));
        assert!(j.contains("\"count\":2"));
        assert!(j.contains("\"sum\":705"));
        assert!(j.contains("\"check.sum\": 3.0"));
        // Balanced braces/brackets — cheap structural validity check.
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced braces in: {j}"
        );
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(super::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(super::json_f64(f64::NAN), "0.0");
        assert_eq!(super::json_f64(2.0), "2.0");
        assert_eq!(super::json_f64(2.5), "2.5");
    }

    #[test]
    fn prometheus_format() {
        let p = sample().to_prometheus();
        assert!(p.contains("# TYPE ex_hits counter"));
        assert!(p.contains("ex_hits 3"));
        assert!(p.contains("# TYPE ex_latency_us histogram"));
        // 5 lands in bucket 3 (upper 7), 700 in bucket 10 (upper 1023);
        // cumulative counts 1 then 2.
        assert!(p.contains("ex_latency_us_bucket{le=\"7\"} 1"));
        assert!(p.contains("ex_latency_us_bucket{le=\"1023\"} 2"));
        assert!(p.contains("ex_latency_us_bucket{le=\"+Inf\"} 2"));
        assert!(p.contains("ex_latency_us_sum 705"));
        assert!(p.contains("ex_latency_us_count 2"));
        assert!(p.contains("check_sum 3.0"));
    }

    #[test]
    fn prom_name_sanitizes() {
        assert_eq!(
            super::prom_name("ab.query.cells_probed"),
            "ab_query_cells_probed"
        );
        assert_eq!(super::prom_name("1bad"), "_1bad");
    }
}
