//! Global metric registry and snapshots.

use crate::{Counter, Histogram, HistogramSnapshot, QuantileSketch, SketchSnapshot};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// A registry of named counters, histograms, and quantile sketches.
///
/// Names are `&'static str` dotted paths (see the crate docs for the
/// naming conventions). Lookup takes a `Mutex`, so hot paths should
/// resolve once and hold the `Arc` — the [`counter!`](crate::counter!),
/// [`histogram!`](crate::histogram!), and [`sketch!`](crate::sketch!)
/// macros do this per call site.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<&'static str, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<Histogram>>>,
    sketches: Mutex<BTreeMap<&'static str, Arc<QuantileSketch>>>,
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry all instrumentation records into.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

impl Registry {
    /// Creates an empty registry. Most code should use [`global`];
    /// separate registries exist only for isolated tests.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Returns the counter named `name`, creating it on first use.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        Arc::clone(
            self.counters
                .lock()
                .expect("obs registry poisoned")
                .entry(name)
                .or_default(),
        )
    }

    /// Returns the histogram named `name`, creating it on first use.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        Arc::clone(
            self.histograms
                .lock()
                .expect("obs registry poisoned")
                .entry(name)
                .or_default(),
        )
    }

    /// Returns the quantile sketch named `name`, creating it on first
    /// use.
    pub fn sketch(&self, name: &'static str) -> Arc<QuantileSketch> {
        Arc::clone(
            self.sketches
                .lock()
                .expect("obs registry poisoned")
                .entry(name)
                .or_default(),
        )
    }

    /// Registered counter names, sorted.
    pub fn counter_names(&self) -> Vec<&'static str> {
        self.counters
            .lock()
            .expect("obs registry poisoned")
            .keys()
            .copied()
            .collect()
    }

    /// Registered histogram names, sorted.
    pub fn histogram_names(&self) -> Vec<&'static str> {
        self.histograms
            .lock()
            .expect("obs registry poisoned")
            .keys()
            .copied()
            .collect()
    }

    /// Registered sketch names, sorted.
    pub fn sketch_names(&self) -> Vec<&'static str> {
        self.sketches
            .lock()
            .expect("obs registry poisoned")
            .keys()
            .copied()
            .collect()
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .lock()
            .expect("obs registry poisoned")
            .iter()
            .map(|(&k, v)| (k.to_string(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("obs registry poisoned")
            .iter()
            .map(|(&k, v)| (k.to_string(), v.snapshot()))
            .collect();
        let sketches = self
            .sketches
            .lock()
            .expect("obs registry poisoned")
            .iter()
            .map(|(&k, v)| (k.to_string(), v.snapshot()))
            .collect();
        Snapshot {
            counters,
            histograms,
            sketches,
            extra: BTreeMap::new(),
        }
    }

    /// Zeroes every registered metric (names stay registered). Used to
    /// scope a snapshot to one workload in tests and repro binaries.
    pub fn reset(&self) {
        for c in self
            .counters
            .lock()
            .expect("obs registry poisoned")
            .values()
        {
            c.reset();
        }
        for h in self
            .histograms
            .lock()
            .expect("obs registry poisoned")
            .values()
        {
            h.reset();
        }
        for s in self
            .sketches
            .lock()
            .expect("obs registry poisoned")
            .values()
        {
            s.reset();
        }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("counters", &self.counter_names().len())
            .field("histograms", &self.histogram_names().len())
            .field("sketches", &self.sketch_names().len())
            .finish()
    }
}

/// A point-in-time copy of a [`Registry`], plus free-form `extra`
/// key/value pairs callers may attach (the repro binaries use them to
/// embed cross-check values such as summed `QueryStats`). Export with
/// [`Snapshot::to_json`] or [`Snapshot::to_prometheus`].
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Counter totals by metric name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram states by metric name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Quantile-sketch states by metric name.
    #[serde(default)]
    pub sketches: BTreeMap<String, SketchSnapshot>,
    /// Caller-attached cross-check values (not registry metrics).
    pub extra: BTreeMap<String, f64>,
}

impl Snapshot {
    /// The counter named `name`, or 0 if it was never registered.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The histogram named `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// The quantile sketch named `name`, if registered.
    pub fn sketch(&self, name: &str) -> Option<&SketchSnapshot> {
        self.sketches.get(name)
    }

    /// Attaches a cross-check value under `key` (builder style).
    pub fn with_extra(mut self, key: &str, value: f64) -> Self {
        self.extra.insert(key.to_string(), value);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_returns_same_metric() {
        let r = Registry::new();
        let a = r.counter("obs.test.reg_counter");
        let b = r.counter("obs.test.reg_counter");
        assert!(Arc::ptr_eq(&a, &b));
        let ha = r.histogram("obs.test.reg_hist");
        let hb = r.histogram("obs.test.reg_hist");
        assert!(Arc::ptr_eq(&ha, &hb));
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn snapshot_and_reset() {
        let r = Registry::new();
        r.counter("obs.test.snap_counter").add(7);
        r.histogram("obs.test.snap_hist").record(3);
        let snap = r.snapshot().with_extra("check.value", 7.0);
        assert_eq!(snap.counter("obs.test.snap_counter"), 7);
        assert_eq!(snap.histogram("obs.test.snap_hist").unwrap().count, 1);
        assert_eq!(snap.extra["check.value"], 7.0);
        assert_eq!(snap.counter("obs.test.never_registered"), 0);

        r.reset();
        let snap = r.snapshot();
        assert_eq!(snap.counter("obs.test.snap_counter"), 0);
        assert_eq!(snap.histogram("obs.test.snap_hist").unwrap().count, 0);
    }

    #[test]
    fn global_registry_is_shared_across_threads() {
        let c = global().counter("obs.test.global_shared");
        let before = c.get();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| global().counter("obs.test.global_shared").add(10));
            }
        });
        #[cfg(not(feature = "obs-off"))]
        assert_eq!(c.get(), before + 40);
        #[cfg(feature = "obs-off")]
        assert_eq!(c.get(), before);
    }
}
