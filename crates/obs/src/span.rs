//! RAII timing spans.
//!
//! # Thread locality
//!
//! The span stack behind [`active_spans`] / [`span_depth`] is
//! **per-thread**: a guard pushed on one thread is invisible to every
//! other, so a request whose work fans out over a pool shows up as
//! disconnected single-thread fragments here. That is by design — this
//! stack exists for cheap ambient context (who is timing right now on
//! *this* thread), not request attribution, and making it global would
//! put a shared lock on every span push.
//!
//! For a request-scoped view that *does* cross threads, use
//! [`crate::trace`]: a [`crate::TraceCtx`] travels with the request,
//! the dispatching side captures a parent span id
//! ([`crate::TraceSpan::id`]) and the worker side reattaches with
//! [`crate::TraceCtx::span_under`] — producing one well-nested span
//! tree per request regardless of which threads ran the pieces.

use crate::Histogram;
use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;

thread_local! {
    /// Names of the spans currently open on this thread, outermost first.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Starts a timing span: the returned guard records the elapsed wall
/// time in microseconds into the histogram named `name` when dropped.
/// Spans nest freely; the per-thread stack of open span names is
/// visible via [`active_spans`] / [`span_depth`] (on **this thread
/// only** — see the module docs for the cross-thread story).
///
/// Under `obs-off` the guard still maintains the stack (it is cheap and
/// keeps `active_spans` truthful) but the drop records nothing.
///
/// ```
/// {
///     let _outer = obs::span("doc.outer_us");
///     let _inner = obs::span("doc.inner_us");
///     assert_eq!(obs::span_depth(), 2);
/// }
/// assert_eq!(obs::span_depth(), 0);
/// ```
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard::new(name, crate::global().histogram(name))
}

/// A live timing span; see [`span`]. Dropping it stops the clock and
/// records into the associated histogram.
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub struct SpanGuard {
    name: &'static str,
    #[cfg_attr(feature = "obs-off", allow(dead_code))]
    hist: Arc<Histogram>,
    start: Instant,
}

impl SpanGuard {
    fn new(name: &'static str, hist: Arc<Histogram>) -> Self {
        SPAN_STACK.with(|s| s.borrow_mut().push(name));
        SpanGuard {
            name,
            hist,
            start: Instant::now(),
        }
    }

    /// The metric name this span records into.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Microseconds elapsed so far (the span keeps running).
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        #[cfg(not(feature = "obs-off"))]
        self.hist.record(self.start.elapsed().as_micros() as u64);
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Guards are usually dropped LIFO, but a guard moved out of
            // scope order should remove its own entry, not the top.
            if let Some(pos) = stack.iter().rposition(|&n| n == self.name) {
                stack.remove(pos);
            }
        });
    }
}

impl std::fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanGuard")
            .field("name", &self.name)
            .field("elapsed_us", &self.elapsed_us())
            .finish()
    }
}

/// Number of spans currently open on this thread.
pub fn span_depth() -> usize {
    SPAN_STACK.with(|s| s.borrow().len())
}

/// Names of the spans currently open on this thread, outermost first.
pub fn active_spans() -> Vec<&'static str> {
    SPAN_STACK.with(|s| s.borrow().clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_unwind() {
        assert_eq!(span_depth(), 0);
        {
            let _a = span("obs.test.span_outer_us");
            assert_eq!(span_depth(), 1);
            {
                let _b = span("obs.test.span_inner_us");
                assert_eq!(
                    active_spans(),
                    vec!["obs.test.span_outer_us", "obs.test.span_inner_us"]
                );
            }
            assert_eq!(span_depth(), 1);
        }
        assert_eq!(span_depth(), 0);
    }

    #[test]
    fn out_of_order_drop_removes_own_entry() {
        let a = span("obs.test.span_a_us");
        let b = span("obs.test.span_b_us");
        drop(a);
        assert_eq!(active_spans(), vec!["obs.test.span_b_us"]);
        drop(b);
        assert_eq!(span_depth(), 0);
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn span_records_into_histogram() {
        {
            let g = span("obs.test.span_records_us");
            std::thread::sleep(std::time::Duration::from_millis(2));
            assert!(g.elapsed_us() >= 1_000);
        }
        let h = crate::global().histogram("obs.test.span_records_us");
        assert_eq!(h.count(), 1);
        assert!(h.max() >= 1_000);
    }

    #[test]
    fn span_stacks_are_per_thread() {
        let _a = span("obs.test.span_thread_us");
        std::thread::scope(|s| {
            s.spawn(|| {
                assert_eq!(span_depth(), 0);
                let _b = span("obs.test.span_thread2_us");
                assert_eq!(span_depth(), 1);
            });
        });
        assert_eq!(span_depth(), 1);
    }
}
