//! Zero-dependency observability for the AB reproduction.
//!
//! The paper's entire argument is quantitative — O(c·k) probe counts vs
//! O(N) WAH scans, FP(k, α) precision, the Figure 14 crossover — and
//! this crate is the substrate that makes those quantities observable
//! at runtime instead of re-derivable only by hand:
//!
//! * [`Counter`] — lock-free sharded atomic counters;
//! * [`Histogram`] — fixed power-of-two-bucket histograms (64 buckets,
//!   values are `u64`, typically microseconds or counts);
//! * [`span`] — RAII timing spans, nestable, with a thread-local span
//!   stack; each span records its wall time (µs) into the histogram of
//!   the same name on drop;
//! * [`QuantileSketch`] — log-linear (HDR-style) sketches with ~1.6%
//!   relative error, for latency quantiles where pow2 histogram buckets
//!   are too coarse near p99;
//! * [`trace`] — request-scoped span trees ([`TraceCtx`]) and the
//!   global [`FlightRecorder`] keeping the last N completed traces;
//! * [`Registry`] — a global registry keyed by `&'static str` metric
//!   names, snapshottable;
//! * [`Snapshot`] — exported as JSON ([`Snapshot::to_json`]) or
//!   Prometheus text exposition format ([`Snapshot::to_prometheus`]).
//!
//! Built intentionally with **no dependencies beyond `std` and the
//! workspace-pinned `serde`** (the build environment has no crates.io
//! access). The JSON exporter is hand-rolled for the same reason; the
//! serde derives on snapshot types keep them consumable by downstream
//! serde tooling when it exists.
//!
//! # Conventions
//!
//! Metric names are dotted lowercase paths: `ab.query.cells_probed`,
//! `wah.ops.words_scanned`, `planner.plan.ab`. The segment before the
//! first dot is the *family* (crate or subsystem). Histograms that hold
//! microseconds end in `_us`.
//!
//! # Disabling
//!
//! The `obs-off` feature compiles every mutation ([`Counter::add`],
//! [`Histogram::record`], span timing) to a no-op so instrumentation
//! overhead can be measured A/B — the registry and exporters keep
//! working and report zeros.
//!
//! # Example
//!
//! ```
//! let c = obs::global().counter("example.requests");
//! c.inc();
//! {
//!     let _t = obs::span("example.work_us");
//!     // … timed work …
//! }
//! let snap = obs::global().snapshot();
//! # #[cfg(not(feature = "obs-off"))]
//! assert_eq!(snap.counter("example.requests"), 1);
//! assert!(snap.to_json().contains("example.requests"));
//! ```

#![warn(missing_docs)]

mod counter;
mod export;
mod histogram;
mod registry;
mod sketch;
mod span;
pub mod trace;

pub use counter::Counter;
pub use histogram::{Histogram, HistogramSnapshot};
pub use registry::{global, Registry, Snapshot};
pub use sketch::{QuantileSketch, SketchSnapshot, SketchTimer, SKETCH_BUCKETS};
pub use span::{active_spans, span, span_depth, SpanGuard};
pub use trace::{
    parse_dump, recorder, span_current, AnnValue, FlightRecorder, SpanRecord, Trace, TraceCtx,
    TraceSpan,
};

/// Caches the [`Counter`] lookup for a call site: expands to an
/// expression of type `&'static Counter` resolved from the global
/// registry once and memoized in a per-call-site `OnceLock`.
///
/// ```
/// obs::counter!("doc.example.hits").inc();
/// ```
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static SITE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        &**SITE.get_or_init(|| $crate::global().counter($name))
    }};
}

/// Caches the [`Histogram`] lookup for a call site (see [`counter!`]).
///
/// ```
/// obs::histogram!("doc.example.latency_us").record(42);
/// ```
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static SITE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        &**SITE.get_or_init(|| $crate::global().histogram($name))
    }};
}

/// Caches the [`QuantileSketch`] lookup for a call site (see
/// [`counter!`]). Use a sketch instead of a histogram when the tail
/// matters: pow2 histogram buckets are ~2× wide near p99, a sketch is
/// accurate to ~1.6%.
///
/// ```
/// obs::sketch!("doc.example.lat_sketch_us").record(42);
/// ```
#[macro_export]
macro_rules! sketch {
    ($name:expr) => {{
        static SITE: ::std::sync::OnceLock<::std::sync::Arc<$crate::QuantileSketch>> =
            ::std::sync::OnceLock::new();
        &**SITE.get_or_init(|| $crate::global().sketch($name))
    }};
}
