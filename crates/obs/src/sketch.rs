//! Streaming log-linear quantile sketches.
//!
//! The pow2 [`Histogram`](crate::Histogram) answers "which decade" but
//! its quantiles are only within 2× — useless as a tracked p99. A
//! [`QuantileSketch`] is an HDR-style log-linear histogram: each
//! power-of-two octave is split into 64 linear sub-buckets, so any
//! reported quantile is within **1/64 ≈ 1.6 % relative error** of the
//! true value, at any magnitude, with a record path of five relaxed
//! atomic ops and no allocation. That is accurate enough to be the
//! headline per-query-kind p50/p95/p99/p999 latency number.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Sub-bucket resolution: each octave `[2^b, 2^(b+1))` is split into
/// `2^SUB_BITS` linear sub-buckets.
const SUB_BITS: u32 = 6;
const SUB: u64 = 1 << SUB_BITS; // 64

/// Total bucket count: values `< 64` get exact buckets `0..64`; each
/// of the 58 octaves `[2^6, 2^64)` contributes 64 sub-buckets.
pub const SKETCH_BUCKETS: usize = (SUB + (64 - SUB_BITS as u64) * SUB) as usize; // 3776

#[cfg_attr(feature = "obs-off", allow(dead_code))]
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let octave = 63 - v.leading_zeros() as u64; // >= SUB_BITS
        let sub = (v >> (octave - SUB_BITS as u64)) & (SUB - 1);
        (SUB + (octave - SUB_BITS as u64) * SUB + sub) as usize
    }
}

/// Largest value bucket `i` can hold (the reported quantile value).
#[inline]
fn bucket_upper(i: usize) -> u64 {
    let i = i as u64;
    if i < SUB {
        i
    } else {
        let octave = (i - SUB) / SUB + SUB_BITS as u64;
        let sub = (i - SUB) % SUB;
        // Top of the sub-bucket: (64 + sub + 1) · 2^(octave-6) − 1,
        // saturating in the last octave.
        ((SUB + sub + 1) << (octave - SUB_BITS as u64)).wrapping_sub(1)
    }
}

/// A lock-free streaming quantile sketch over `u64` values (typically
/// microseconds). See the module docs for the accuracy bound.
///
/// Under `obs-off`, [`QuantileSketch::record`] compiles to a no-op.
pub struct QuantileSketch {
    buckets: Box<[AtomicU64; SKETCH_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        let buckets: Vec<AtomicU64> = (0..SKETCH_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        QuantileSketch {
            buckets: buckets
                .into_boxed_slice()
                .try_into()
                .unwrap_or_else(|_| unreachable!("length is SKETCH_BUCKETS by construction")),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl QuantileSketch {
    /// Creates an empty sketch (registry use; prefer
    /// [`crate::global`]`().sketch(name)` or the [`crate::sketch!`]
    /// macro).
    pub fn new() -> Self {
        QuantileSketch::default()
    }

    /// Records one value. Compiled to a no-op under `obs-off`.
    #[inline]
    pub fn record(&self, v: u64) {
        #[cfg(not(feature = "obs-off"))]
        {
            self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
            self.min.fetch_min(v, Ordering::Relaxed);
            self.max.fetch_max(v, Ordering::Relaxed);
        }
        #[cfg(feature = "obs-off")]
        let _ = v;
    }

    /// Starts a wall-clock timer whose elapsed microseconds are
    /// recorded when the returned guard drops.
    pub fn start_timer(&self) -> SketchTimer<'_> {
        SketchTimer {
            sketch: self,
            start: Instant::now(),
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean of recorded values; 0 when empty.
    pub fn mean(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            0.0
        } else {
            self.sum() as f64 / c as f64
        }
    }

    /// Smallest recorded value; 0 when empty.
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX && self.count() == 0 {
            0
        } else {
            m
        }
    }

    /// Largest recorded value; 0 when empty.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`q ∈ [0, 1]`): the upper bound of the bucket
    /// where the cumulative count crosses `q·count`, capped at the
    /// observed max — within 1/64 relative error of the true value.
    /// Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return bucket_upper(i).min(self.max());
            }
        }
        self.max()
    }

    /// Zeroes every bucket and statistic.
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// A point-in-time copy of the sketch's state.
    pub fn snapshot(&self) -> SketchSnapshot {
        let buckets: Vec<(u16, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then_some((i as u16, c))
            })
            .collect();
        SketchSnapshot {
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            mean: self.mean(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
            buckets,
        }
    }
}

impl std::fmt::Debug for QuantileSketch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuantileSketch")
            .field("count", &self.count())
            .field("p50", &self.quantile(0.5))
            .field("p99", &self.quantile(0.99))
            .finish()
    }
}

/// A running timer from [`QuantileSketch::start_timer`]; records the
/// elapsed microseconds on drop.
#[must_use = "a timer records on drop; binding it to `_` drops it immediately"]
pub struct SketchTimer<'a> {
    sketch: &'a QuantileSketch,
    start: Instant,
}

impl SketchTimer<'_> {
    /// Microseconds elapsed so far (the timer keeps running).
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }
}

impl Drop for SketchTimer<'_> {
    fn drop(&mut self) {
        self.sketch.record(self.start.elapsed().as_micros() as u64);
    }
}

/// Point-in-time sketch state for export. `buckets` holds
/// `(bucket_index, count)` pairs for non-empty buckets only; use
/// [`SketchSnapshot::bucket_upper`] for the bucket's value bound.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SketchSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Mean of recorded values (0 when empty).
    pub mean: f64,
    /// Median (≤ 1/64 relative error, like all quantiles below).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// `(bucket_index, count)` for each non-empty bucket, ascending.
    pub buckets: Vec<(u16, u64)>,
}

impl SketchSnapshot {
    /// Upper bound (inclusive) of bucket `i` — exposed for exporters.
    pub fn bucket_upper(i: usize) -> u64 {
        bucket_upper(i)
    }

    /// The named quantile from the snapshot (only the precomputed
    /// ones: 0.5, 0.9, 0.95, 0.99, 0.999).
    pub fn quantile(&self, q: f64) -> u64 {
        match q {
            q if q <= 0.5 => self.p50,
            q if q <= 0.9 => self.p90,
            q if q <= 0.95 => self.p95,
            q if q <= 0.99 => self.p99,
            _ => self.p999,
        }
    }
}

#[cfg(all(test, not(feature = "obs-off")))]
mod tests {
    use super::*;

    #[test]
    fn bucket_roundtrip_and_bounds() {
        // Every value maps into a bucket whose bounds contain it.
        for v in (0..64u64).chain([
            64,
            65,
            127,
            128,
            1000,
            4095,
            4096,
            1 << 20,
            u64::MAX - 1,
            u64::MAX,
        ]) {
            let i = bucket_of(v);
            assert!(v <= bucket_upper(i), "v={v} above upper of bucket {i}");
            if i > 0 {
                assert!(
                    v > bucket_upper(i - 1),
                    "v={v} not above previous bucket {i}"
                );
            }
        }
        // Buckets are monotone.
        for i in 1..SKETCH_BUCKETS {
            assert!(bucket_upper(i) > bucket_upper(i - 1), "non-monotone at {i}");
        }
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(63), 63);
        assert_eq!(bucket_of(64), 64);
        assert_eq!(bucket_of(u64::MAX), SKETCH_BUCKETS - 1);
    }

    /// The headline guarantee: quantiles within 1/64 relative error
    /// against an exact reference on a seeded heavy-tailed
    /// distribution.
    #[test]
    fn quantiles_match_exact_reference_within_error_bound() {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        let s = QuantileSketch::new();
        let mut state = 0xab_2006u64;
        let mut values: Vec<u64> = (0..200_000)
            .map(|_| {
                // Log-uniform-ish latencies: 1 µs .. ~16 s with a heavy
                // tail, the shape service latencies actually have.
                let magnitude = splitmix(&mut state) % 24;
                let v = (1u64 << magnitude) + splitmix(&mut state) % (1u64 << magnitude).max(1);
                v.max(1)
            })
            .collect();
        for &v in &values {
            s.record(v);
        }
        values.sort_unstable();
        for q in [0.5, 0.9, 0.95, 0.99, 0.999] {
            let exact =
                values[(((values.len() as f64) * q).ceil() as usize - 1).min(values.len() - 1)];
            let got = s.quantile(q);
            let rel = (got as f64 - exact as f64).abs() / exact as f64;
            assert!(
                rel <= 1.0 / 64.0 + 1e-9,
                "q={q}: sketch {got} vs exact {exact} (rel err {rel:.4})"
            );
            // Sketch quantiles never understate except by sub-bucket
            // resolution; they must never exceed the observed max.
            assert!(got <= s.max());
        }
        assert_eq!(s.count(), 200_000);
    }

    #[test]
    fn empty_and_reset() {
        let s = QuantileSketch::new();
        assert_eq!(s.quantile(0.99), 0);
        assert_eq!(s.min(), 0);
        s.record(100);
        assert_eq!(s.count(), 1);
        s.reset();
        assert_eq!(s.count(), 0);
        assert_eq!(s.snapshot().buckets.len(), 0);
    }

    #[test]
    fn timer_records_elapsed_micros() {
        let s = QuantileSketch::new();
        {
            let t = s.start_timer();
            std::thread::sleep(std::time::Duration::from_millis(2));
            assert!(t.elapsed_us() >= 1_000);
        }
        assert_eq!(s.count(), 1);
        assert!(s.max() >= 1_000);
    }

    #[test]
    fn concurrent_records_are_exact_in_count() {
        let s = std::sync::Arc::new(QuantileSketch::new());
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let s = std::sync::Arc::clone(&s);
                scope.spawn(move || {
                    for i in 0..20_000u64 {
                        s.record(t * 20_000 + i);
                    }
                });
            }
        });
        assert_eq!(s.count(), 160_000);
        let total: u64 = s.snapshot().buckets.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 160_000);
    }

    #[test]
    fn snapshot_quantile_lookup() {
        let s = QuantileSketch::new();
        for v in 1..=1000u64 {
            s.record(v);
        }
        let snap = s.snapshot();
        assert_eq!(snap.quantile(0.5), snap.p50);
        assert_eq!(snap.quantile(0.999), snap.p999);
        assert!(snap.p50 <= snap.p90 && snap.p90 <= snap.p99 && snap.p99 <= snap.p999);
    }
}
