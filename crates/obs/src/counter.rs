//! Lock-free sharded counters.

#[cfg(not(feature = "obs-off"))]
use std::sync::atomic::AtomicUsize;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of independent shards per counter. Each shard sits on its own
/// cache line so concurrent builder threads don't bounce one line.
const SHARDS: usize = 8;

#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// Monotonic thread id used to pick a shard (round-robin assignment at
/// first use per thread).
#[cfg(not(feature = "obs-off"))]
static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);

#[cfg(not(feature = "obs-off"))]
thread_local! {
    static SHARD: usize = NEXT_THREAD.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

#[cfg(not(feature = "obs-off"))]
#[inline]
fn shard_index() -> usize {
    SHARD.with(|s| *s)
}

/// A lock-free monotonic counter.
///
/// Increments go to a per-thread shard with `Relaxed` ordering — the
/// cheapest possible atomic on every target — and reads sum the shards.
/// Totals are exact once writer threads quiesce (tests join their
/// threads first); mid-flight reads may lag by in-flight increments,
/// which is the usual metrics contract.
#[derive(Default)]
pub struct Counter {
    shards: [PaddedU64; SHARDS],
}

impl Counter {
    /// Creates a zeroed counter (registry use; prefer
    /// [`crate::global`]`().counter(name)`).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds `n`. Compiled to a no-op under the `obs-off` feature.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(not(feature = "obs-off"))]
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
        #[cfg(feature = "obs-off")]
        let _ = n;
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total across all shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    /// Zeroes the counter (snapshot scoping in tests and repro runs).
    pub fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

#[cfg(all(test, not(feature = "obs-off")))]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn concurrent_increments_are_exact() {
        let c = std::sync::Arc::new(Counter::new());
        let threads = 8;
        let per_thread = 100_000u64;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let c = std::sync::Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..per_thread {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), threads * per_thread);
    }
}

#[cfg(all(test, feature = "obs-off"))]
mod off_tests {
    use super::*;

    #[test]
    fn obs_off_compiles_to_noop() {
        let c = Counter::new();
        c.inc();
        c.add(100);
        assert_eq!(c.get(), 0);
    }
}
