//! Fixed-bucket (power-of-two) histograms.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: bucket `i` holds values whose bit length is `i`,
/// i.e. `v == 0` → bucket 0, otherwise `v ∈ [2^(i−1), 2^i)` → bucket
/// `i` (clamped to the last bucket). Covers the full `u64` range.
pub const NUM_BUCKETS: usize = 65;

#[cfg_attr(feature = "obs-off", allow(dead_code))]
#[inline]
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Upper bound (inclusive) of bucket `i`: the largest value the bucket
/// can hold. Used as the reported quantile value.
#[inline]
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A lock-free histogram over `u64` values with 65 power-of-two
/// buckets plus exact `count`, `sum`, `min`, and `max`.
///
/// Power-of-two buckets trade resolution (quantiles are reported as
/// the bucket's upper bound, so within 2× of the true value) for a
/// record path that is four relaxed atomic ops and no allocation —
/// cheap enough for per-query timing on the hot paths.
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; NUM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Creates an empty histogram (registry use; prefer
    /// [`crate::global`]`().histogram(name)`).
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one value. Compiled to a no-op under `obs-off`.
    #[inline]
    pub fn record(&self, v: u64) {
        #[cfg(not(feature = "obs-off"))]
        {
            self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
            self.min.fetch_min(v, Ordering::Relaxed);
            self.max.fetch_max(v, Ordering::Relaxed);
        }
        #[cfg(feature = "obs-off")]
        let _ = v;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean of recorded values; 0 when empty.
    pub fn mean(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            0.0
        } else {
            self.sum() as f64 / c as f64
        }
    }

    /// Smallest recorded value; 0 when empty.
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX && self.count() == 0 {
            0
        } else {
            m
        }
    }

    /// Largest recorded value; 0 when empty.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`q ∈ [0, 1]`) as the upper bound of the bucket
    /// where the cumulative count crosses `q·count` — an overestimate
    /// by at most 2×. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return bucket_upper(i).min(self.max());
            }
        }
        self.max()
    }

    /// Zeroes every bucket and statistic.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram's state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<(u8, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then_some((i as u8, c))
            })
            .collect();
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            mean: self.mean(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            buckets,
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("mean", &self.mean())
            .field("max", &self.max())
            .finish()
    }
}

/// Point-in-time histogram state for export. `buckets` holds
/// `(bit_length, count)` pairs for non-empty buckets only: bucket `b`
/// covers values in `[2^(b−1), 2^b)` (bucket 0 is exactly zero).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Mean of recorded values (0 when empty).
    pub mean: f64,
    /// Median, as the bucket upper bound (≤ 2× the true value).
    pub p50: u64,
    /// 90th percentile, same resolution.
    pub p90: u64,
    /// 99th percentile, same resolution.
    pub p99: u64,
    /// `(bit_length, count)` for each non-empty bucket, ascending.
    pub buckets: Vec<(u8, u64)>,
}

impl HistogramSnapshot {
    /// Upper bound (inclusive) of bucket `i` — exposed for exporters.
    pub fn bucket_upper(i: usize) -> u64 {
        bucket_upper(i)
    }
}

#[cfg(all(test, not(feature = "obs-off")))]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn stats_track_records() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 106);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 26.5).abs() < 1e-12);
        // p50 falls in bucket of 2..=3.
        assert!(h.quantile(0.5) <= 3);
        // p99 caps at the observed max.
        assert_eq!(h.quantile(0.99), 100);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        let s = h.snapshot();
        assert!(s.buckets.is_empty());
    }

    #[test]
    fn concurrent_records_are_exact() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads = 8u64;
        let per_thread = 50_000u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let h = std::sync::Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..per_thread {
                        h.record(t * per_thread + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), threads * per_thread);
        let total: u64 = h.snapshot().buckets.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, threads * per_thread);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), threads * per_thread - 1);
    }

    #[test]
    fn snapshot_reflects_buckets() {
        let h = Histogram::new();
        h.record(0);
        h.record(5);
        h.record(6);
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![(0, 1), (3, 2)]);
        h.reset();
        assert_eq!(h.count(), 0);
    }
}
