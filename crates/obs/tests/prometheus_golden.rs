//! Golden-file test for the Prometheus text exposition.
//!
//! The exact bytes a scraper sees are the contract: HELP/TYPE lines,
//! cumulative `le` buckets, summary quantiles, and deterministic
//! collision suffixes. Run with `UPDATE_GOLDEN=1` to re-bless after an
//! intentional format change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test -p obs --test prometheus_golden
//! ```

#![cfg(not(feature = "obs-off"))]

use obs::Registry;

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/exposition.prom")
}

/// A snapshot with every metric family, chosen so all derived values
/// (bucket uppers, quantiles, means) are exactly reproducible —
/// including the `kernel.batches` vs `kernel_batches` sanitization
/// collision.
fn sample() -> obs::Snapshot {
    let r = Registry::new();
    r.counter("ab.query.cells_probed").add(1234);
    r.counter("kernel.batches").add(7);
    r.counter("kernel_batches").add(8);
    let h = r.histogram("svc.request_us");
    for v in [1, 5, 5, 700, 90_000] {
        h.record(v);
    }
    let s = r.sketch("svc.latency_us.rect");
    for v in 1..=1000u64 {
        s.record(v);
    }
    r.snapshot().with_extra("bench.rps", 1250.5)
}

#[test]
fn exposition_matches_golden_file() {
    let actual = sample().to_prometheus();
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
    assert_eq!(
        actual,
        expected,
        "Prometheus exposition drifted from {} — if intentional, \
         re-bless with UPDATE_GOLDEN=1",
        path.display()
    );
}

#[test]
fn exposition_is_scrapable() {
    // Structural rules a real scraper enforces, independent of the
    // golden bytes: unique series, valid names, cumulative buckets.
    let text = sample().to_prometheus();
    let mut seen = std::collections::BTreeSet::new();
    let mut last_bucket: Option<(String, u64)> = None;
    for line in text.lines() {
        assert!(!line.is_empty(), "blank line in exposition");
        if line.starts_with("# HELP ") || line.starts_with("# TYPE ") {
            continue;
        }
        assert!(!line.starts_with('#'), "unknown comment form: {line}");
        let (series, value) = line.rsplit_once(' ').expect("sample line has a value");
        let base = series.split('{').next().unwrap();
        assert!(
            base.chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_'),
            "bad metric name start: {base}"
        );
        assert!(
            base.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "bad metric name char: {base}"
        );
        assert!(
            seen.insert(series.to_string()),
            "duplicate series: {series}"
        );
        if let Some(le) = series.strip_suffix("\"}").and_then(|s| {
            s.split_once("_bucket{le=\"")
                .map(|(n, le)| (n.to_string(), le))
        }) {
            let count: u64 = value.parse().expect("bucket count");
            if let Some((prev_name, prev_count)) = &last_bucket {
                if *prev_name == le.0 {
                    assert!(count >= *prev_count, "non-cumulative buckets for {}", le.0);
                }
            }
            last_bucket = Some((le.0, count));
        }
    }
}
