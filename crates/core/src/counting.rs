//! Counting Approximate Bitmap — the update extension.
//!
//! The paper assumes read-only data ("most of the large scientific
//! data sets are read-only", §4.1) and its conclusion lists updates as
//! future work. [`CountingAb`] fills that gap with the standard
//! counting-Bloom construction: each AB position holds a small
//! saturating counter instead of a bit, so deletions decrement what
//! insertions incremented. A saturated counter can no longer be
//! decremented (it may be shared by many cells), preserving the
//! no-false-negative guarantee at the cost of stuck-high positions.

use hashkit::{CellMapper, HashFamily};
use serde::{Deserialize, Serialize};

/// Counter saturation limit (8-bit counters; 255 is effectively ∞ for
/// realistic loads — the classic analysis puts P[counter ≥ 16] below
/// 10⁻¹⁵ at optimal k).
const SATURATED: u8 = u8::MAX;

/// A counting approximate bitmap supporting deletion.
///
/// # Examples
///
/// ```
/// use ab::CountingAb;
/// use hashkit::{CellMapper, HashFamily};
///
/// let mut ab = CountingAb::new(
///     1 << 12, 4, HashFamily::default_independent(), CellMapper::for_columns(8));
/// ab.insert(10, 3);
/// assert!(ab.contains(10, 3));
/// ab.remove(10, 3);
/// assert!(!ab.contains(10, 3));
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CountingAb {
    counters: Vec<u8>,
    k: usize,
    family: HashFamily,
    mapper: CellMapper,
    inserted: u64,
}

impl CountingAb {
    /// Creates an empty counting AB of `n` positions.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `k == 0`.
    pub fn new(n: u64, k: usize, family: HashFamily, mapper: CellMapper) -> Self {
        assert!(n > 0, "size must be positive");
        assert!(k > 0, "k must be positive");
        CountingAb {
            counters: vec![0; n as usize],
            k,
            family,
            mapper,
            inserted: 0,
        }
    }

    /// Number of counter positions.
    pub fn n(&self) -> u64 {
        self.counters.len() as u64
    }

    /// Number of hash functions.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Net number of inserted (non-removed) cells.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Storage size in bytes (8× the plain AB — the standard
    /// counting-Bloom space penalty).
    pub fn size_bytes(&self) -> usize {
        self.counters.len()
    }

    /// Inserts cell `(row, col)`, incrementing its k counters
    /// (saturating).
    pub fn insert(&mut self, row: u64, col: u64) {
        let mut buf = Vec::with_capacity(self.k);
        self.family
            .positions(row, col, self.mapper, self.k, self.n(), &mut buf);
        for &p in &buf {
            let c = &mut self.counters[p as usize];
            *c = c.saturating_add(1);
        }
        self.inserted += 1;
    }

    /// Removes a previously inserted cell, decrementing its counters.
    /// Saturated counters are left untouched (they may be shared).
    ///
    /// Removing a cell that was never inserted is undefined for any
    /// counting filter — it can introduce false negatives for other
    /// cells. In debug builds this fires an assertion when a counter
    /// would underflow (proof the cell was absent).
    pub fn remove(&mut self, row: u64, col: u64) {
        let mut buf = Vec::with_capacity(self.k);
        self.family
            .positions(row, col, self.mapper, self.k, self.n(), &mut buf);
        for &p in &buf {
            let c = &mut self.counters[p as usize];
            debug_assert!(*c > 0, "removing a cell that was never inserted");
            if *c > 0 && *c < SATURATED {
                *c -= 1;
            }
        }
        self.inserted = self.inserted.saturating_sub(1);
    }

    /// Tests cell membership: all k counters non-zero.
    pub fn contains(&self, row: u64, col: u64) -> bool {
        let mut buf = Vec::with_capacity(self.k);
        self.family
            .positions(row, col, self.mapper, self.k, self.n(), &mut buf);
        buf.iter().all(|&p| self.counters[p as usize] > 0)
    }

    /// Collapses to a plain bit-per-position [`super::ApproximateBitmap`]
    /// (counters > 0 become set bits) — freeze a mutable index into the
    /// compact read-only form.
    pub fn freeze(&self) -> crate::ApproximateBitmap {
        let mut frozen =
            crate::ApproximateBitmap::new(self.n(), self.k, self.family.clone(), self.mapper);
        // Direct bit copy: positions are what matter, not re-hashing.
        for (i, &c) in self.counters.iter().enumerate() {
            if c > 0 {
                frozen.set_raw_bit(i);
            }
        }
        frozen.set_inserted(self.inserted);
        frozen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make(n: u64, k: usize) -> CountingAb {
        CountingAb::new(
            n,
            k,
            HashFamily::default_independent(),
            CellMapper::for_columns(8),
        )
    }

    #[test]
    fn insert_then_contains() {
        let mut ab = make(1 << 10, 3);
        ab.insert(5, 2);
        assert!(ab.contains(5, 2));
        assert!(!ab.contains(6, 2));
    }

    #[test]
    fn remove_clears_membership() {
        let mut ab = make(1 << 12, 4);
        ab.insert(5, 2);
        ab.remove(5, 2);
        assert!(!ab.contains(5, 2));
        assert_eq!(ab.inserted(), 0);
    }

    #[test]
    fn remove_preserves_other_cells() {
        let mut ab = make(1 << 12, 4);
        for r in 0..100 {
            ab.insert(r, 1);
        }
        for r in 0..50 {
            ab.remove(r, 1);
        }
        // Remaining cells must still be present (no false negatives).
        for r in 50..100 {
            assert!(ab.contains(r, 1), "false negative at row {r}");
        }
    }

    #[test]
    fn duplicate_inserts_need_matching_removes() {
        let mut ab = make(1 << 12, 3);
        ab.insert(7, 0);
        ab.insert(7, 0);
        ab.remove(7, 0);
        assert!(ab.contains(7, 0), "one copy should remain");
        ab.remove(7, 0);
        assert!(!ab.contains(7, 0));
    }

    #[test]
    fn saturation_never_causes_false_negative() {
        // Hammer a tiny filter far past saturation.
        let mut ab = make(16, 2);
        for r in 0..10_000u64 {
            ab.insert(r, 0);
        }
        for r in 0..5_000u64 {
            ab.remove(r, 0);
        }
        for r in 5_000..10_000u64 {
            assert!(ab.contains(r, 0));
        }
    }

    #[test]
    fn freeze_matches_membership() {
        let mut ab = make(1 << 12, 4);
        for r in 0..200 {
            ab.insert(r, 3);
        }
        let frozen = ab.freeze();
        assert_eq!(frozen.inserted(), 200);
        for r in 0..200 {
            assert!(frozen.contains(r, 3));
        }
        // Frozen filter agrees with the counting filter on negatives too.
        for r in 200..400 {
            assert_eq!(frozen.contains(r, 3), ab.contains(r, 3), "row {r}");
        }
    }

    #[test]
    fn size_is_8x_plain_ab() {
        let ab = make(1 << 10, 2);
        assert_eq!(ab.size_bytes(), 1 << 10);
    }
}
