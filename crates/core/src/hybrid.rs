//! Hybrid exact tier: planner-calibrated Roaring-backed hot bins in
//! front of the AB (DESIGN.md §19).
//!
//! The AB trades false positives for direct access, but §10's cost
//! model already admits that per-(attribute, bin) densities vary
//! wildly. For a hot, low-cardinality bin an *exact* container is both
//! smaller and strictly faster: every false-positive row the AB admits
//! must be verified downstream, while a Roaring container answers the
//! same cell test exactly in O(log) — zero hash probes, zero false
//! positives. [`HybridAb`] holds an optional exact backing per
//! (attribute, bin), chosen by a calibrated split decision:
//!
//! > back the bin exactly iff its observed density ≥ `min_density`
//! > and the AB's expected per-row cost (k probe bits weighted by
//! > density, plus the false-positive rate × downstream verification
//! > cost) exceeds the exact container's lookup cost.
//!
//! The `AB_HYBRID` environment variable overrides the decision at
//! build time (`off`/`none` backs nothing, `all`/`force` backs every
//! bin, anything else defers to the cost model), and every decision
//! lands in the `planner.split.exact` / `planner.split.ab` counters.
//!
//! Alongside each exact container E the build stores a companion
//! false-positive container F = {rows the base AB admits for the cell
//! but the data rejects}, computed by probe-sweeping the AB (the same
//! deterministic construction [`crate::hier`] uses, so a damaged
//! container rebuilds bit-identically from the base AB + table). The
//! identity *AB verdict = E ∪ F* lets query dispatch count exactly
//! which flat-scan false positives the exact tier eliminated
//! (`QueryStats::fp_rows_eliminated`) without re-probing the AB.

use crate::level::AbIndex;
use bitmap::{BinnedTable, RectQuery};
use roar::RoaringBitmap;
use serde::{Deserialize, Serialize};

/// Cost of answering one row from an exact Roaring container,
/// expressed in AB-bit-read equivalents (a container word test plus
/// the chunk binary search).
const EXACT_ROW_COST: f64 = 2.0;

/// Tuning knobs for the split decision.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HybridConfig {
    /// Minimum bin density (bin count / num_rows) for exact backing.
    /// Bins below this are long-tail: their AB probes almost always
    /// short-circuit on the first zero bit, and backing thousands of
    /// ppm-density bins buys nothing. Set to 0.0 to let the cost model
    /// alone decide (differential tests back every bin this way).
    pub min_density: f64,
    /// Relative cost of verifying one false-positive row downstream
    /// (exact second step, network, user time), in AB-bit-read
    /// equivalents — the paper's motivation for precision (§5.3)
    /// turned into a number the planner can weigh.
    pub verify_cost: f64,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig {
            min_density: 1.0 / 64.0,
            verify_cost: 32.0,
        }
    }
}

/// One exactly-backed (attribute, bin) cell column.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HybridBin {
    attribute: u32,
    bin: u32,
    /// The truth: rows whose value falls in this bin.
    exact: RoaringBitmap,
    /// The base AB's false positives for this cell: rows the AB admits
    /// but `exact` rejects. `exact ∪ fp` is the AB's verdict, exactly.
    fp: RoaringBitmap,
}

impl HybridBin {
    /// Attribute index of the backed cell column.
    pub fn attribute(&self) -> usize {
        self.attribute as usize
    }

    /// Bin within the attribute.
    pub fn bin(&self) -> u32 {
        self.bin
    }

    /// The exact membership container.
    pub fn exact(&self) -> &RoaringBitmap {
        &self.exact
    }

    /// The companion false-positive container.
    pub fn fp(&self) -> &RoaringBitmap {
        &self.fp
    }

    /// Exact cell test: is `row` truly in this bin? Zero hash probes,
    /// zero false positives.
    #[inline]
    pub fn contains(&self, row: usize) -> bool {
        self.exact.contains(row as u32)
    }
}

/// Per-range masks the query kernels consume, relative to the row
/// interval they were planned for: bit `i` covers row `row_lo + i`.
pub(crate) struct HybridRangePlan {
    /// OR of the backed bins' exact containers — the range's truth
    /// restricted to backed bins.
    pub exact: Vec<u64>,
    /// OR of the backed bins' `exact ∪ fp` — what the flat AB scan
    /// would have said about the backed bins.
    pub flat: Vec<u64>,
    /// Bins in the range with no exact backing: the kernel probes the
    /// AB for these.
    pub unbacked: Vec<u32>,
}

/// The hybrid exact tier attached to an [`AbIndex`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HybridAb {
    config: HybridConfig,
    num_rows: usize,
    /// All (attribute, bin) cells the split decision considered —
    /// `total_bins - bins.len()` stayed on the AB.
    total_bins: u32,
    /// Backed cells, sorted by (attribute, bin).
    bins: Vec<HybridBin>,
}

/// The `AB_HYBRID` build-time override.
enum SplitOverride {
    /// Back nothing (`off`/`none`/`0`).
    None,
    /// Back every bin (`all`/`force`/`1`).
    All,
    /// Defer to the cost model (unset or anything else).
    CostModel,
}

fn split_override() -> SplitOverride {
    match std::env::var("AB_HYBRID").ok().as_deref() {
        Some("off") | Some("none") | Some("0") => SplitOverride::None,
        Some("all") | Some("force") | Some("1") => SplitOverride::All,
        _ => SplitOverride::CostModel,
    }
}

/// The calibrated split decision for one (attribute, bin): observed
/// bin density × AB false-positive rate × verification cost against
/// the exact container's lookup cost.
fn back_exactly(
    index: &AbIndex,
    attribute: usize,
    bin: u32,
    bin_count: usize,
    config: &HybridConfig,
) -> bool {
    let density = bin_count as f64 / index.num_rows() as f64;
    if density < config.min_density {
        return false;
    }
    let (ab, _) = index.cell_plan_target(attribute, bin);
    // Expected per-row AB cost: rows in the bin read all k bits, rows
    // outside it short-circuit after ~2, and every expected false
    // positive costs a downstream verification.
    let ab_row_cost = density * ab.k() as f64
        + (1.0 - density) * 2.0
        + ab.expected_fp_rate() * config.verify_cost;
    ab_row_cost > EXACT_ROW_COST
}

impl HybridAb {
    /// Builds the exact tier for `index` over its source `table`,
    /// running the split decision for every (attribute, bin) and
    /// probe-sweeping the base AB for the companion false-positive
    /// containers. Deterministic for a given index + table, so a
    /// damaged container rebuilds bit-identically.
    ///
    /// # Panics
    ///
    /// Panics if `table` does not match the index's row count or
    /// attribute schema.
    pub fn build(index: &AbIndex, table: &BinnedTable, config: &HybridConfig) -> Self {
        Self::build_parallel(index, table, config, 1)
    }

    /// [`Self::build`] over up to `threads` workers (one attribute per
    /// task); bit-identical to the sequential build.
    pub fn build_parallel(
        index: &AbIndex,
        table: &BinnedTable,
        config: &HybridConfig,
        threads: usize,
    ) -> Self {
        let t0 = std::time::Instant::now();
        assert_eq!(
            table.num_rows(),
            index.num_rows(),
            "table/index row count mismatch"
        );
        assert_eq!(
            table.num_attributes(),
            index.num_attributes(),
            "table/index attribute mismatch"
        );
        assert!(
            index.num_rows() <= u32::MAX as usize,
            "exact containers address rows as u32"
        );
        let over = split_override();
        let total_bins: u32 = table.columns().iter().map(|c| c.cardinality).sum();

        let cols = table.columns();
        let chunk = cols.len().div_ceil(threads.max(1));
        let per_chunk: Vec<Vec<HybridBin>> = std::thread::scope(|s| {
            let handles: Vec<_> = cols
                .chunks(chunk)
                .enumerate()
                .map(|(ci, chunk_cols)| {
                    let over = &over;
                    s.spawn(move || {
                        let mut out = Vec::new();
                        for (i, col) in chunk_cols.iter().enumerate() {
                            let attribute = ci * chunk + i;
                            for (bin, &count) in col.bin_counts().iter().enumerate() {
                                let bin = bin as u32;
                                let backed = match over {
                                    SplitOverride::None => false,
                                    SplitOverride::All => true,
                                    SplitOverride::CostModel => {
                                        back_exactly(index, attribute, bin, count, config)
                                    }
                                };
                                if backed {
                                    out.push(build_bin(index, attribute, bin, &col.bins));
                                }
                            }
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("hybrid builder thread panicked"))
                .collect()
        });

        let hybrid = HybridAb {
            config: *config,
            num_rows: index.num_rows(),
            total_bins,
            bins: per_chunk.into_iter().flatten().collect(),
        };
        hybrid.record_split_counters();
        obs::histogram!("hybrid.build.us").record(t0.elapsed().as_micros() as u64);
        hybrid
    }

    /// Flushes this tier's split decisions into the
    /// `planner.split.{exact,ab}` counters. Called once by the build;
    /// services that load a pre-built tier from storage (where no
    /// build ran in-process) call it so `/metrics` still reports the
    /// split.
    pub fn record_split_counters(&self) {
        obs::counter!("planner.split.exact").add(self.bins.len() as u64);
        obs::counter!("planner.split.ab").add(self.total_bins as u64 - self.bins.len() as u64);
    }

    /// The split-decision configuration this tier was built with.
    pub fn config(&self) -> HybridConfig {
        self.config
    }

    /// Rows the tier covers (the index's row count).
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// All (attribute, bin) cells the split decision considered.
    pub fn total_bins(&self) -> u32 {
        self.total_bins
    }

    /// The exactly-backed cells, sorted by (attribute, bin).
    pub fn bins(&self) -> &[HybridBin] {
        &self.bins
    }

    /// Serialized container bytes (both containers of every backed
    /// bin) — what the ABIX v4 hybrid section stores.
    pub fn size_bytes(&self) -> usize {
        self.bins
            .iter()
            .map(|b| b.exact.size_bytes() + b.fp.size_bytes())
            .sum()
    }

    /// The exact backing for (attribute, bin), if the split decision
    /// chose one.
    #[inline]
    pub fn backing(&self, attribute: usize, bin: u32) -> Option<&HybridBin> {
        self.bins
            .binary_search_by_key(&(attribute as u32, bin), |b| (b.attribute, b.bin))
            .ok()
            .map(|i| &self.bins[i])
    }

    /// Whether any bin a query's ranges touch is exactly backed — the
    /// `HybridMode::Auto` engagement test (an unbacked query would pay
    /// planning overhead for nothing).
    pub fn covers_any(&self, query: &RectQuery) -> bool {
        query
            .ranges
            .iter()
            .any(|r| (r.lo..=r.hi).any(|b| self.backing(r.attribute, b).is_some()))
    }

    /// Plans one attribute range over the row interval
    /// `row_lo..=row_hi`: batch-extracts the backed bins' exact and
    /// flat (exact ∪ fp) masks word-at-a-time and lists the bins the
    /// kernel still has to probe the AB for.
    pub(crate) fn plan_range(
        &self,
        attribute: usize,
        lo: u32,
        hi: u32,
        row_lo: usize,
        row_hi: usize,
    ) -> HybridRangePlan {
        let words = (row_hi - row_lo + 1).div_ceil(64);
        let mut exact = vec![0u64; words];
        let mut flat = vec![0u64; words];
        let mut unbacked = Vec::new();
        for bin in lo..=hi {
            match self.backing(attribute, bin) {
                Some(hb) => {
                    or_into(
                        &mut exact,
                        &hb.exact.contains_batch(row_lo as u32, row_hi as u32),
                    );
                    or_into(
                        &mut flat,
                        &hb.fp.contains_batch(row_lo as u32, row_hi as u32),
                    );
                }
                None => unbacked.push(bin),
            }
        }
        for (f, e) in flat.iter_mut().zip(&exact) {
            *f |= e;
        }
        HybridRangePlan {
            exact,
            flat,
            unbacked,
        }
    }

    /// Reassembles a tier from stored pieces (ABIX v4 deserialization).
    /// `parts` must arrive sorted by (attribute, bin) — the write
    /// order — and is validated.
    ///
    /// # Panics
    ///
    /// Panics if the parts are unsorted or duplicated.
    pub fn from_serialized(
        config: HybridConfig,
        num_rows: usize,
        total_bins: u32,
        parts: Vec<(u32, u32, RoaringBitmap, RoaringBitmap)>,
    ) -> Self {
        for w in parts.windows(2) {
            assert!(
                (w[0].0, w[0].1) < (w[1].0, w[1].1),
                "hybrid bins not sorted by (attribute, bin)"
            );
        }
        HybridAb {
            config,
            num_rows,
            total_bins,
            bins: parts
                .into_iter()
                .map(|(attribute, bin, exact, fp)| HybridBin {
                    attribute,
                    bin,
                    exact,
                    fp,
                })
                .collect(),
        }
    }
}

/// Builds one backed cell: the exact container from the column data,
/// the false-positive companion by probe-sweeping the base AB over
/// every row outside the bin.
fn build_bin(index: &AbIndex, attribute: usize, bin: u32, bins: &[u32]) -> HybridBin {
    let mut exact = RoaringBitmap::new();
    let mut fp = RoaringBitmap::new();
    for (row, &b) in bins.iter().enumerate() {
        if b == bin {
            exact.insert(row as u32);
        } else if index.test_cell(row, attribute, bin) {
            fp.insert(row as u32);
        }
    }
    exact.optimize();
    fp.optimize();
    HybridBin {
        attribute: attribute as u32,
        bin,
        exact,
        fp,
    }
}

/// OR-accumulates `src` into `dst` (equal lengths by construction).
fn or_into(dst: &mut [u64], src: &[u64]) {
    debug_assert_eq!(dst.len(), src.len());
    for (d, s) in dst.iter_mut().zip(src) {
        *d |= s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Level;
    use crate::config::AbConfig;
    use bitmap::{AttrRange, BinnedColumn, BinnedTable};

    /// Clustered 8-bin column: dense contiguous bins the split
    /// decision should back, over 2048 rows.
    fn clustered() -> BinnedTable {
        BinnedTable::new(vec![BinnedColumn::new(
            "v",
            (0..2048u32).map(|i| i / 256).collect(),
            8,
        )])
    }

    fn index(table: &BinnedTable, alpha: u64) -> AbIndex {
        AbIndex::build(table, &AbConfig::new(Level::PerAttribute).with_alpha(alpha))
    }

    #[test]
    fn cost_model_backs_dense_bins_and_skips_the_tail() {
        // 1 dense bin (99%) + 1023-row tail spread over 63 rare bins.
        let t = BinnedTable::new(vec![BinnedColumn::new(
            "x",
            (0..65536u32)
                .map(|i| if i % 64 == 0 { 1 + (i / 64) % 63 } else { 0 })
                .collect(),
            64,
        )]);
        let idx = index(&t, 8);
        let hy = HybridAb::build(&idx, &t, &HybridConfig::default());
        assert_eq!(hy.total_bins(), 64);
        assert!(hy.backing(0, 0).is_some(), "99% bin must be backed");
        assert!(
            hy.bins().len() < 8,
            "ppm tail bins must stay on the AB, got {}",
            hy.bins().len()
        );
    }

    #[test]
    fn exact_container_is_the_truth_and_fp_is_the_ab_remainder() {
        let t = clustered();
        let idx = index(&t, 8);
        let hy = HybridAb::build(
            &idx,
            &t,
            &HybridConfig {
                min_density: 0.0,
                ..Default::default()
            },
        );
        assert_eq!(hy.bins().len(), 8, "min_density 0 backs every bin");
        for hb in hy.bins() {
            for row in 0..t.num_rows() {
                let truth = t.column(0).bins[row] == hb.bin();
                assert_eq!(hb.contains(row), truth, "exact wrong at {row}");
                let ab_says = idx.test_cell(row, 0, hb.bin());
                assert_eq!(
                    hb.exact().contains(row as u32) || hb.fp().contains(row as u32),
                    ab_says,
                    "exact ∪ fp must equal the AB verdict at row {row}"
                );
            }
        }
    }

    #[test]
    fn build_is_deterministic_and_parallel_matches() {
        let t = clustered();
        let idx = index(&t, 8);
        let cfg = HybridConfig {
            min_density: 0.0,
            ..Default::default()
        };
        let a = HybridAb::build(&idx, &t, &cfg);
        let b = HybridAb::build_parallel(&idx, &t, &cfg, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn covers_any_and_backing_lookup() {
        let t = clustered();
        let idx = index(&t, 32);
        let hy = HybridAb::build(
            &idx,
            &t,
            &HybridConfig {
                min_density: 0.0,
                ..Default::default()
            },
        );
        assert!(hy.covers_any(&RectQuery::new(vec![AttrRange::new(0, 2, 3)], 0, 100)));
        assert!(!hy.covers_any(&RectQuery::new(vec![], 0, 100)));
        assert!(hy.backing(0, 7).is_some());
        assert!(hy.backing(0, 8).is_none());
    }

    #[test]
    fn plan_range_masks_match_per_row_tests() {
        let t = clustered();
        let idx = index(&t, 8);
        let hy = HybridAb::build(
            &idx,
            &t,
            &HybridConfig {
                min_density: 0.0,
                ..Default::default()
            },
        );
        let (row_lo, row_hi) = (200usize, 900usize);
        let plan = hy.plan_range(0, 0, 2, row_lo, row_hi);
        assert!(plan.unbacked.is_empty());
        for row in row_lo..=row_hi {
            let i = row - row_lo;
            let truth = t.column(0).bins[row] <= 2;
            let got = plan.exact[i / 64] >> (i % 64) & 1 == 1;
            assert_eq!(got, truth, "exact mask wrong at row {row}");
            let flat_bit = plan.flat[i / 64] >> (i % 64) & 1 == 1;
            let ab_says = (0..=2).any(|b| idx.test_cell(row, 0, b));
            assert_eq!(flat_bit, ab_says, "flat mask wrong at row {row}");
        }
    }

    #[test]
    fn from_serialized_roundtrips() {
        let t = clustered();
        let idx = index(&t, 8);
        let hy = HybridAb::build(
            &idx,
            &t,
            &HybridConfig {
                min_density: 0.0,
                ..Default::default()
            },
        );
        let parts: Vec<_> = hy
            .bins()
            .iter()
            .map(|b| {
                (
                    b.attribute() as u32,
                    b.bin(),
                    b.exact().clone(),
                    b.fp().clone(),
                )
            })
            .collect();
        let back = HybridAb::from_serialized(hy.config(), hy.num_rows(), hy.total_bins(), parts);
        assert_eq!(back, hy);
    }

    #[test]
    #[should_panic(expected = "not sorted")]
    fn from_serialized_rejects_unsorted_parts() {
        HybridAb::from_serialized(
            HybridConfig::default(),
            8,
            4,
            vec![
                (0, 1, RoaringBitmap::new(), RoaringBitmap::new()),
                (0, 0, RoaringBitmap::new(), RoaringBitmap::new()),
            ],
        );
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn split_counters_account_for_every_bin() {
        let exact = obs::global().counter("planner.split.exact");
        let ab = obs::global().counter("planner.split.ab");
        let (e0, a0) = (exact.get(), ab.get());
        let t = clustered();
        let idx = index(&t, 8);
        let hy = HybridAb::build(&idx, &t, &HybridConfig::default());
        let backed = hy.bins().len() as u64;
        assert!(exact.get() >= e0 + backed);
        assert!(ab.get() >= a0 + (hy.total_bins() as u64 - backed));
    }
}
