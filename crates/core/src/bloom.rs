//! A classic Bloom filter over arbitrary byte keys.
//!
//! The AB "is inspired by Bloom Filters" (paper §2.1, Figure 1): the
//! cell-addressed AB is a Bloom filter whose universe is bitmap-table
//! cells. This module provides the general-purpose form — insertion
//! and membership for arbitrary `&[u8]` keys — so the crate also
//! serves the §2.1 use cases (query processing, caching, summaries)
//! directly, and so the AB's behaviour can be cross-checked against
//! the textbook structure it specializes.

use bitmap::BitVec;
use hashkit::partow::fnv_hash;
use hashkit::splitmix64;
use serde::{Deserialize, Serialize};

/// A Bloom filter with `k` double-hashed probes over an `n`-bit array.
///
/// # Examples
///
/// ```
/// use ab::bloom::BloomFilter;
///
/// let mut f = BloomFilter::with_rate(1000, 0.01);
/// f.insert(b"tuple:42");
/// assert!(f.contains(b"tuple:42"));     // no false negatives
/// assert!(!f.contains(b"tuple:43") || true); // may rarely false-positive
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BloomFilter {
    bits: BitVec,
    k: usize,
    inserted: u64,
}

impl BloomFilter {
    /// Creates a filter of exactly `n_bits` bits and `k` hashes.
    ///
    /// # Panics
    ///
    /// Panics if `n_bits == 0` or `k == 0`.
    pub fn new(n_bits: u64, k: usize) -> Self {
        assert!(n_bits > 0, "filter size must be positive");
        assert!(k > 0, "k must be positive");
        BloomFilter {
            bits: BitVec::zeros(n_bits as usize),
            k,
            inserted: 0,
        }
    }

    /// Sizes the filter for `expected_items` at the target
    /// false-positive `rate`: `n = −s·ln(p)/ln(2)²` rounded up to a
    /// power of two (as the AB does, §4.2), with the FP-optimal `k`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < rate < 1`.
    pub fn with_rate(expected_items: u64, rate: f64) -> Self {
        assert!(rate > 0.0 && rate < 1.0, "rate must be in (0, 1)");
        let ln2 = std::f64::consts::LN_2;
        let bits = (-(expected_items.max(1) as f64) * rate.ln() / (ln2 * ln2)).ceil() as u64;
        let n_bits = crate::analysis::next_pow2(bits);
        let alpha = n_bits as f64 / expected_items.max(1) as f64;
        Self::new(n_bits, crate::analysis::optimal_k(alpha))
    }

    /// Filter size in bits.
    pub fn n_bits(&self) -> u64 {
        self.bits.len() as u64
    }

    /// Number of hash functions.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of keys inserted.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Storage size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bits.size_bytes()
    }

    /// Expected false-positive rate at the current load,
    /// `fill_ratio^k`.
    pub fn expected_fp_rate(&self) -> f64 {
        self.bits.density().powi(self.k as i32)
    }

    #[inline]
    fn hashes(&self, key: &[u8]) -> (u64, u64) {
        let h = fnv_hash(key);
        (splitmix64(h), splitmix64(h ^ 0x9E37_79B9_7F4A_7C15) | 1)
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: &[u8]) {
        let n = self.n_bits();
        let (h1, h2) = self.hashes(key);
        for t in 0..self.k as u64 {
            self.bits
                .set((h1.wrapping_add(t.wrapping_mul(h2)) % n) as usize);
        }
        self.inserted += 1;
    }

    /// Tests a key: `false` is definite, `true` is probabilistic.
    pub fn contains(&self, key: &[u8]) -> bool {
        let n = self.n_bits();
        let (h1, h2) = self.hashes(key);
        (0..self.k as u64).all(|t| {
            self.bits
                .get((h1.wrapping_add(t.wrapping_mul(h2)) % n) as usize)
        })
    }

    /// Unions another filter into this one (same `n` and `k` required)
    /// — the distributed-summary operation of the §2.1 applications
    /// (web cache sharing, semijoins).
    ///
    /// # Panics
    ///
    /// Panics on parameter mismatch.
    pub fn union_assign(&mut self, other: &BloomFilter) {
        assert_eq!(self.n_bits(), other.n_bits(), "filter size mismatch");
        assert_eq!(self.k, other.k, "hash count mismatch");
        self.bits.or_assign(&other.bits);
        self.inserted += other.inserted;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_contains() {
        let mut f = BloomFilter::new(1 << 12, 4);
        f.insert(b"hello");
        assert!(f.contains(b"hello"));
        assert!(!f.contains(b"world"));
    }

    #[test]
    fn no_false_negatives_under_load() {
        let mut f = BloomFilter::new(256, 3);
        let keys: Vec<String> = (0..100).map(|i| format!("key-{i}")).collect();
        for k in &keys {
            f.insert(k.as_bytes());
        }
        for k in &keys {
            assert!(f.contains(k.as_bytes()), "missed {k}");
        }
    }

    #[test]
    fn with_rate_hits_target() {
        let items = 10_000u64;
        let rate = 0.01;
        let mut f = BloomFilter::with_rate(items, rate);
        for i in 0..items {
            f.insert(&i.to_le_bytes());
        }
        let probes = 50_000u64;
        let fp = (items..items + probes)
            .filter(|i| f.contains(&i.to_le_bytes()))
            .count();
        let measured = fp as f64 / probes as f64;
        // Power-of-two round-up makes the real filter at least as big
        // as requested, so the measured rate must be <= ~1.5x target.
        assert!(
            measured <= rate * 1.5,
            "measured {measured} vs target {rate}"
        );
    }

    #[test]
    fn union_combines_membership() {
        let mut a = BloomFilter::new(1 << 10, 3);
        let mut b = BloomFilter::new(1 << 10, 3);
        a.insert(b"left");
        b.insert(b"right");
        a.union_assign(&b);
        assert!(a.contains(b"left"));
        assert!(a.contains(b"right"));
        assert_eq!(a.inserted(), 2);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn union_requires_same_shape() {
        let mut a = BloomFilter::new(1 << 10, 3);
        let b = BloomFilter::new(1 << 11, 3);
        a.union_assign(&b);
    }

    #[test]
    fn expected_fp_tracks_fill() {
        let mut f = BloomFilter::new(1 << 10, 2);
        assert_eq!(f.expected_fp_rate(), 0.0);
        for i in 0..100u64 {
            f.insert(&i.to_le_bytes());
        }
        assert!(f.expected_fp_rate() > 0.0);
    }
}
