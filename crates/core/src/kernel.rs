//! Batched, prefetch-pipelined probe kernel (DESIGN.md §13).
//!
//! The paper's retrieval algorithms (Figures 5 and 7) are O(c·k) in
//! *probe count*, but the scalar implementation realizes each probe as
//! a dependent random bit read: the next AB word address is only known
//! after the previous bit arrives, so a large rect query is bound by
//! `c · memory latency`, not by bandwidth. This module restructures the
//! same computation three ways without changing a single observable
//! result:
//!
//! 1. **Hash hoisting** — a rect query touches the same (attribute,
//!    bin) columns for every row, so the row-independent half of the
//!    probe pipeline (family dispatch, reduction mask, SHA-1 chunk
//!    width, column-group geometry) is computed once per query into a
//!    [`CellPlan`] and per-row positions come from the cheap mixer via
//!    [`hashkit::ColProber`].
//! 2. **Stage-pipelined probing** — rows are processed in batches of
//!    [`BATCH_ROWS`]; each live row ("lane") keeps exactly one probe in
//!    flight, its AB word prefetched, and probes are resolved
//!    breadth-first across the batch so up to [`BATCH_ROWS`] memory
//!    latencies overlap instead of serializing.
//! 3. **Short-circuit preservation** — a lane advances through bins and
//!    ranges exactly as the scalar Figure 7 loop does (OR short-circuit
//!    on the first present cell, AND short-circuit on the first empty
//!    range, per-cell break on the first zero bit), so `cells_probed`
//!    and `bits_read` are identical to the scalar path bit for bit.
//!
//! Prefetch instructions are gated behind the `prefetch` cargo feature
//! (x86-64 `_mm_prefetch`, aarch64 `prfm`); on other targets or with
//! the feature off the kernel still wins from the overlapped
//! independent loads the breadth-first order exposes.

use crate::encoding::ApproximateBitmap;
use crate::level::AbIndex;
use crate::query::{Cell, QueryStats};
use bitmap::RectQuery;
use serde::{Deserialize, Serialize};
use std::cell::Cell as StdCell;

/// Rows (or cells) resolved concurrently per batch. 64 keeps the match
/// mask in one machine word and comfortably exceeds the 10–16
/// outstanding misses current cores sustain.
pub const BATCH_ROWS: usize = 64;

/// True when this build compiles real prefetch instructions into the
/// kernel (the `prefetch` feature on a supported target); false means
/// the portable no-op fallback is in place.
pub const PREFETCH_ACTIVE: bool = cfg!(all(
    feature = "prefetch",
    any(target_arch = "x86_64", target_arch = "aarch64")
));

/// Which probe engine executes a query. Results are always identical;
/// only the memory access schedule differs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum KernelKind {
    /// The reference row-at-a-time loop (Figures 5/7 verbatim).
    Scalar,
    /// The batched, prefetch-pipelined kernel in this module.
    #[default]
    Batched,
}

impl std::str::FromStr for KernelKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "scalar" => Ok(KernelKind::Scalar),
            "batched" => Ok(KernelKind::Batched),
            other => Err(format!(
                "unknown kernel '{other}' (expected scalar|batched)"
            )),
        }
    }
}

impl std::fmt::Display for KernelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            KernelKind::Scalar => "scalar",
            KernelKind::Batched => "batched",
        })
    }
}

/// Requests the cache line holding AB bit `pos` ahead of its read.
#[inline(always)]
#[allow(unused_variables)]
fn prefetch(words: &[u64], pos: u64) {
    #[cfg(all(feature = "prefetch", target_arch = "x86_64"))]
    // SAFETY: pos < n and words.len() == ceil(n/64), so the word index
    // is in bounds; prefetch has no architectural side effects anyway.
    unsafe {
        use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch(
            words.as_ptr().add((pos / 64) as usize) as *const i8,
            _MM_HINT_T0,
        );
    }
    #[cfg(all(feature = "prefetch", target_arch = "aarch64"))]
    // SAFETY: in-bounds address as above; prfm is side-effect free.
    unsafe {
        let p = words.as_ptr().add((pos / 64) as usize);
        core::arch::asm!(
            "prfm pldl1keep, [{0}]",
            in(reg) p,
            options(nostack, preserves_flags, readonly)
        );
    }
}

/// The hoisted, row-independent state for one (attribute, bin) column
/// of a query: raw AB words, k, and the reusable hash prober.
struct CellPlan<'a> {
    words: &'a [u64],
    k: u32,
    prober: hashkit::ColProber<'a>,
    /// Hash positions computed against this plan, flushed once per
    /// query into `hashkit.hash_calls.*` (the scalar `Prober` flushes
    /// per cell on drop; batching amortizes that to one atomic op).
    calls: StdCell<u64>,
}

impl<'a> CellPlan<'a> {
    fn new(ab: &'a ApproximateBitmap, col: u64) -> Self {
        CellPlan {
            words: ab.bits().words(),
            k: ab.k() as u32,
            prober: ab.family().col_prober(col, ab.mapper(), ab.n_bits()),
            calls: StdCell::new(0),
        }
    }

    /// Reads one AB bit (the word was prefetched one wave earlier).
    #[inline(always)]
    fn bit(&self, pos: u64) -> bool {
        (self.words[(pos / 64) as usize] >> (pos % 64)) & 1 == 1
    }

    /// Computes (and prefetches) the next probe position for `probe`.
    #[inline(always)]
    fn issue(&self, probe: &mut hashkit::RowProbe) -> u64 {
        let pos = self.prober.next_position(probe);
        self.calls.set(self.calls.get() + 1);
        prefetch(self.words, pos);
        pos
    }
}

/// One in-flight row of a rect-query batch: where it is in the Figure 7
/// evaluation (range, bin, probe index) and its one outstanding probe.
struct Lane {
    row: u64,
    slot: u32,
    range: u32,
    bin: u32,
    /// Bits read for the current cell so far (< k; the cell resolves at
    /// the first zero bit or at the k-th one bit).
    t: u32,
    /// The already-issued (and prefetched) probe position.
    pos: u64,
    probe: hashkit::RowProbe,
}

impl Lane {
    /// Opens a lane on its row's first cell (range 0, bin 0).
    #[inline]
    fn new(row: u64, slot: u32, plans: &[Vec<CellPlan>], stats: &mut QueryStats) -> Self {
        let plan = &plans[0][0];
        stats.cells_probed += 1;
        let mut probe = plan.prober.begin(row);
        let pos = plan.issue(&mut probe);
        Lane {
            row,
            slot,
            range: 0,
            bin: 0,
            t: 0,
            pos,
            probe,
        }
    }

    /// Starts the probe sequence of cell (range, bin) for this lane's
    /// row. Mirrors the scalar path's `cells_probed += 1` placement:
    /// the counter moves *before* any bit is read.
    #[inline]
    fn start_cell(&mut self, plans: &[Vec<CellPlan>], stats: &mut QueryStats) {
        let plan = &plans[self.range as usize][self.bin as usize];
        stats.cells_probed += 1;
        self.t = 0;
        let mut probe = plan.prober.begin(self.row);
        self.pos = plan.issue(&mut probe);
        self.probe = probe;
    }
}

/// Figure 7 over row batches: bit-identical results and [`QueryStats`]
/// to the scalar loop in `query.rs`, with up to [`BATCH_ROWS`] probe
/// latencies overlapped. Returns `(rows, stats, or_short_circuits)`.
///
/// The caller has already validated row and bin bounds.
pub(crate) fn execute_rect_batched(
    index: &AbIndex,
    query: &RectQuery,
) -> (Vec<usize>, QueryStats, u64) {
    let mut rows = Vec::new();
    let mut stats = QueryStats::default();
    let mut short_circuits = 0u64;
    if query.row_lo > query.row_hi {
        return (rows, stats, 0);
    }
    if query.ranges.is_empty() {
        // Vacuous AND: every row matches without a single probe, as in
        // the scalar loop.
        rows.extend(query.row_lo..=query.row_hi);
        stats.rows_matched = rows.len();
        return (rows, stats, 0);
    }
    // Hash hoisting: one plan per (attribute, bin) the query can touch,
    // shared by every row.
    let plans: Vec<Vec<CellPlan>> = query
        .ranges
        .iter()
        .map(|r| {
            (r.lo..=r.hi)
                .map(|bin| {
                    let (ab, col) = index.cell_plan_target(r.attribute, bin);
                    CellPlan::new(ab, col)
                })
                .collect()
        })
        .collect();
    let num_ranges = plans.len();
    let mut lanes: Vec<Lane> = Vec::with_capacity(BATCH_ROWS);
    let mut batches = 0u64;
    let mut base = query.row_lo;
    loop {
        let batch_len = (query.row_hi - base + 1).min(BATCH_ROWS);
        batches += 1;
        let mut matched: u64 = 0;
        lanes.clear();
        if plans[0].is_empty() {
            // Degenerate first range (lo > hi): no row can match and,
            // like the scalar loop, no probe is issued.
        } else {
            for slot in 0..batch_len {
                let row = (base + slot) as u64;
                lanes.push(Lane::new(row, slot as u32, &plans, &mut stats));
            }
        }
        // Breadth-first resolution: each pass tests one (prefetched)
        // bit per live lane, so the batch keeps up to `lanes.len()`
        // independent loads in flight.
        while !lanes.is_empty() {
            let mut i = 0;
            while i < lanes.len() {
                let lane = &mut lanes[i];
                let range_plans = &plans[lane.range as usize];
                let plan = &range_plans[lane.bin as usize];
                stats.bits_read += 1;
                lane.t += 1;
                if plan.bit(lane.pos) {
                    if lane.t < plan.k {
                        // Bit set, cell undecided: issue the next probe.
                        lane.pos = plan.issue(&mut lane.probe);
                        i += 1;
                        continue;
                    }
                    // All k bits set: the cell is (approximately)
                    // present — Figure 7's OR short-circuit.
                    short_circuits += u64::from((lane.bin as usize) < range_plans.len() - 1);
                    lane.range += 1;
                    lane.bin = 0;
                    if lane.range as usize == num_ranges {
                        matched |= 1u64 << lane.slot;
                        lanes.swap_remove(i);
                        continue;
                    }
                    if plans[lane.range as usize].is_empty() {
                        lanes.swap_remove(i); // degenerate range: row fails
                        continue;
                    }
                    lane.start_cell(&plans, &mut stats);
                    i += 1;
                } else {
                    // Zero bit: cell definitely absent (Figure 5 break).
                    lane.bin += 1;
                    if lane.bin as usize == range_plans.len() {
                        // Range exhausted with no hit: Figure 7's AND
                        // short-circuit — the row is out.
                        lanes.swap_remove(i);
                        continue;
                    }
                    lane.start_cell(&plans, &mut stats);
                    i += 1;
                }
            }
        }
        // The match mask restores ascending row order regardless of the
        // order lanes retired in.
        let mut m = matched;
        while m != 0 {
            rows.push(base + m.trailing_zeros() as usize);
            m &= m - 1;
        }
        if query.row_hi - base < BATCH_ROWS {
            break;
        }
        base += batch_len;
    }
    stats.rows_matched = rows.len();
    for plan in plans.iter().flatten() {
        plan.prober.record_hash_calls(plan.calls.get());
    }
    obs::counter!("kernel.batches").add(batches);
    if PREFETCH_ACTIVE {
        // Every computed position is prefetched exactly once before its
        // read, so the prefetch count equals bits_read.
        obs::counter!("kernel.prefetches").add(stats.bits_read as u64);
    }
    (rows, stats, short_circuits)
}

/// One in-flight cell of a Figure 5 subset query.
struct CellLane<'a> {
    idx: usize,
    plan: CellPlan<'a>,
    probe: hashkit::RowProbe,
    pos: u64,
    t: u32,
}

/// Figure 5 over cell batches: identical verdicts (in query order) to
/// the scalar `test_cell` loop, with batched latency overlap.
///
/// # Panics
///
/// Panics on out-of-range rows or bins, with the same messages as
/// [`AbIndex::test_cell_counted`].
pub(crate) fn retrieve_cells_batched(index: &AbIndex, cells: &[Cell]) -> Vec<bool> {
    let mut out = vec![false; cells.len()];
    let mut batches = 0u64;
    let mut positions = 0u64;
    let mut lanes: Vec<CellLane> = Vec::with_capacity(BATCH_ROWS);
    for (chunk_idx, chunk) in cells.chunks(BATCH_ROWS).enumerate() {
        batches += 1;
        lanes.clear();
        for (j, c) in chunk.iter().enumerate() {
            let meta = &index.attributes()[c.attribute];
            assert!(
                c.bin < meta.cardinality,
                "bin {} out of range for attribute {}",
                c.bin,
                c.attribute
            );
            assert!(
                c.row < index.num_rows(),
                "row {} out of range {}",
                c.row,
                index.num_rows()
            );
            let (ab, col) = index.cell_plan_target(c.attribute, c.bin);
            let plan = CellPlan::new(ab, col);
            let mut probe = plan.prober.begin(c.row as u64);
            let pos = plan.issue(&mut probe);
            lanes.push(CellLane {
                idx: chunk_idx * BATCH_ROWS + j,
                plan,
                probe,
                pos,
                t: 0,
            });
        }
        while !lanes.is_empty() {
            let mut i = 0;
            while i < lanes.len() {
                let lane = &mut lanes[i];
                lane.t += 1;
                if !lane.plan.bit(lane.pos) {
                    let dead = lanes.swap_remove(i); // definite miss
                    positions += dead.plan.calls.get();
                    dead.plan.prober.record_hash_calls(dead.plan.calls.get());
                    continue;
                }
                if lane.t == lane.plan.k {
                    let done = lanes.swap_remove(i); // all k bits set
                    out[done.idx] = true;
                    positions += done.plan.calls.get();
                    done.plan.prober.record_hash_calls(done.plan.calls.get());
                    continue;
                }
                lane.pos = lane.plan.issue(&mut lane.probe);
                i += 1;
            }
        }
    }
    obs::counter!("kernel.batches").add(batches);
    if PREFETCH_ACTIVE {
        obs::counter!("kernel.prefetches").add(positions);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_kind_parses_and_displays() {
        assert_eq!("scalar".parse::<KernelKind>(), Ok(KernelKind::Scalar));
        assert_eq!("batched".parse::<KernelKind>(), Ok(KernelKind::Batched));
        assert_eq!(KernelKind::default(), KernelKind::Batched);
        assert_eq!(KernelKind::Scalar.to_string(), "scalar");
        assert_eq!(KernelKind::Batched.to_string(), "batched");
        let err = "fancy".parse::<KernelKind>().unwrap_err();
        assert!(
            err.contains("fancy") && err.contains("scalar|batched"),
            "{err}"
        );
    }
}
