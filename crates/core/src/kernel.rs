//! Batched, prefetch-pipelined, SIMD-widened probe kernel
//! (DESIGN.md §13–§14).
//!
//! The paper's retrieval algorithms (Figures 5 and 7) are O(c·k) in
//! *probe count*, but the scalar implementation realizes each probe as
//! a dependent random bit read: the next AB word address is only known
//! after the previous bit arrives, so a large rect query is bound by
//! `c · memory latency`, not by bandwidth. This module restructures the
//! same computation without changing a single observable result:
//!
//! 1. **Hash hoisting** — a rect query touches the same (attribute,
//!    bin) columns for every row, so the row-independent half of the
//!    probe pipeline (family dispatch, reduction mask, SHA-1 chunk
//!    width, column-group geometry) is computed once per query into a
//!    `CellPlan` and per-row positions come from the cheap mixer via
//!    [`hashkit::ColProber`].
//! 2. **Stage-pipelined probing** — rows are processed in batches;
//!    each live row ("lane") keeps exactly one probe in flight, its AB
//!    word prefetched, and probes are resolved breadth-first across
//!    the batch so many memory latencies overlap instead of
//!    serializing.
//! 3. **SIMD gather waves** ([`KernelKind::Simd`]) — the breadth-first
//!    pass splits into *waves* of up to [`SIMD_WAVE`] lanes whose AB
//!    words are fetched with one vector gather (AVX-512 / AVX2 on
//!    x86-64, paired NEON loads on aarch64) and whose bits are tested
//!    with vector shifts and masks. The engine is picked at runtime
//!    ([`active_simd_engine`]); without the `simd` feature or on an
//!    unsupported CPU the kernel degrades to the scalar wave loop.
//! 4. **Adaptive batch sizing** — the fixed 64-row batch of the first
//!    batched kernel becomes [`BatchRows::Adaptive`]: the batch depth
//!    is chosen per query from the resolved AB footprint against the
//!    machine's cache hierarchy ([`CacheModel`]) — shallow batches for
//!    L2-resident ABs (latency is short; deep pipelines only add
//!    bookkeeping), the classic 64 inside the LLC, and
//!    [`MAX_BATCH_ROWS`]-deep pipelines for DRAM-resident ABs where
//!    every independent miss in flight pays for itself.
//! 5. **Short-circuit preservation** — a lane advances through bins and
//!    ranges exactly as the scalar Figure 7 loop does (OR short-circuit
//!    on the first present cell, AND short-circuit on the first empty
//!    range, per-cell break on the first zero bit), so `cells_probed`
//!    and `bits_read` are identical to the scalar path bit for bit.
//!
//! Prefetch instructions are gated behind the `prefetch` cargo feature
//! (x86-64 `_mm_prefetch`, aarch64 `prfm`); SIMD gathers behind the
//! `simd` feature. On other targets or with the features off the
//! kernel still wins from the overlapped independent loads the
//! breadth-first order exposes.
//!
//! Observability: `kernel.batches` (row/cell batches opened),
//! `kernel.simd_waves` / `kernel.scalar_waves` (how each breadth-first
//! wave was resolved), `kernel.prefetches` (prefetch instructions
//! *actually executed* — zero on no-op fallback builds),
//! `kernel.cell_plans_deduped` (Figure 5 plan-hoisting hits), and the
//! `kernel.batch_rows` histogram (adaptive depth decisions).

use crate::encoding::ApproximateBitmap;
use crate::level::AbIndex;
use crate::query::{Cell, QueryStats};
use bitmap::RectQuery;
use serde::{Deserialize, Serialize};
use std::cell::Cell as StdCell;
use std::sync::OnceLock;

/// The classic fixed batch depth of the first batched kernel — still
/// the adaptive model's choice for LLC-resident ABs, and the depth
/// [`BatchRows::Fixed`] callers use to reproduce PR 4 behavior.
pub const BATCH_ROWS: usize = 64;

/// Upper bound on the per-batch lane count (the adaptive model's pick
/// for DRAM-resident ABs). The match mask is `MAX_BATCH_ROWS` bits.
pub const MAX_BATCH_ROWS: usize = 256;

/// Lanes resolved by one SIMD gather wave: one AVX-512 gather, two
/// AVX2 gathers, or four NEON load-pairs.
pub const SIMD_WAVE: usize = 8;

/// Gathers narrower than this fall back to scalar loads — a masked
/// gather of 1–3 lanes costs more than the loads it replaces.
const SIMD_MIN_GATHER: usize = 4;

/// True when this build compiles real prefetch instructions into the
/// kernel (the `prefetch` feature on a supported target); false means
/// the portable no-op fallback is in place.
pub const PREFETCH_ACTIVE: bool = cfg!(all(
    feature = "prefetch",
    any(target_arch = "x86_64", target_arch = "aarch64")
));

/// True when this build compiles vector gather/load waves into the
/// kernel (the `simd` feature on x86-64 or aarch64). Whether they
/// *run* additionally depends on runtime CPU detection — see
/// [`active_simd_engine`].
pub const SIMD_COMPILED: bool = cfg!(all(
    feature = "simd",
    any(target_arch = "x86_64", target_arch = "aarch64")
));

/// Which probe engine executes a query. Results are always identical;
/// only the memory access schedule differs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum KernelKind {
    /// The reference row-at-a-time loop (Figures 5/7 verbatim).
    Scalar,
    /// The batched, prefetch-pipelined kernel with scalar bit reads.
    #[default]
    Batched,
    /// The batched kernel with vector gather waves; degrades to the
    /// batched wave loop when no SIMD engine is compiled in/detected.
    Simd,
}

impl std::str::FromStr for KernelKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "scalar" => Ok(KernelKind::Scalar),
            "batched" => Ok(KernelKind::Batched),
            "simd" => Ok(KernelKind::Simd),
            other => Err(format!(
                "unknown kernel '{other}' (expected scalar|batched|simd)"
            )),
        }
    }
}

impl std::fmt::Display for KernelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            KernelKind::Scalar => "scalar",
            KernelKind::Batched => "batched",
            KernelKind::Simd => "simd",
        })
    }
}

/// How deep the kernel's row/cell batches are.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum BatchRows {
    /// Pick per query from the resolved AB footprint vs the cache
    /// hierarchy ([`CacheModel::batch_rows_for`]).
    #[default]
    Adaptive,
    /// Force a fixed depth (clamped to `1..=MAX_BATCH_ROWS`). `Fixed(64)`
    /// reproduces the PR 4 batched kernel exactly.
    Fixed(usize),
}

impl std::str::FromStr for BatchRows {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        if s == "adaptive" {
            return Ok(BatchRows::Adaptive);
        }
        match s.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(BatchRows::Fixed(n.min(MAX_BATCH_ROWS))),
            _ => Err(format!(
                "bad batch rows '{s}' (expected adaptive or 1..={MAX_BATCH_ROWS})"
            )),
        }
    }
}

impl std::fmt::Display for BatchRows {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchRows::Adaptive => f.write_str("adaptive"),
            BatchRows::Fixed(n) => write!(f, "{n}"),
        }
    }
}

/// Whether the coarse-to-fine pyramid ([`crate::hier::HierAb`])
/// prunes row regions before the per-row kernel runs. Results are
/// identical in every mode; only the amount of work differs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum HierMode {
    /// Never consult the pyramid (flat scan), even if one is attached.
    #[default]
    Off,
    /// Descend when the planner's cost model says pruning beats a flat
    /// scan ([`crate::planner::plan_descent`]); requires a pyramid.
    Auto,
    /// Always descend when a pyramid is attached (differential tests).
    Force,
}

impl std::str::FromStr for HierMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "off" => Ok(HierMode::Off),
            "auto" => Ok(HierMode::Auto),
            "force" => Ok(HierMode::Force),
            other => Err(format!(
                "unknown hier mode '{other}' (expected off|auto|force)"
            )),
        }
    }
}

impl std::fmt::Display for HierMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            HierMode::Off => "off",
            HierMode::Auto => "auto",
            HierMode::Force => "force",
        })
    }
}

/// Whether the exact tier ([`crate::hybrid::HybridAb`]) answers
/// backed bins from Roaring containers instead of probing the AB.
/// Exact-backed bins contribute zero false positives; results are a
/// subset of (or equal to) the flat AB answer, never missing a true
/// row.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum HybridMode {
    /// Never consult the exact tier, even if one is attached.
    #[default]
    Off,
    /// Engage when an attached tier backs at least one bin the query
    /// touches ([`crate::hybrid::HybridAb::covers_any`]).
    Auto,
    /// Always engage when a tier is attached (differential tests).
    Force,
}

impl std::str::FromStr for HybridMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "off" => Ok(HybridMode::Off),
            "auto" => Ok(HybridMode::Auto),
            "force" => Ok(HybridMode::Force),
            other => Err(format!(
                "unknown hybrid mode '{other}' (expected off|auto|force)"
            )),
        }
    }
}

impl std::fmt::Display for HybridMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            HybridMode::Off => "off",
            HybridMode::Auto => "auto",
            HybridMode::Force => "force",
        })
    }
}

/// Full kernel configuration: which engine, how deep the batches,
/// whether hierarchical pruning runs first, whether the exact tier
/// answers backed bins.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelOpts {
    /// The probe engine.
    pub kernel: KernelKind,
    /// The batch-depth policy.
    pub batch_rows: BatchRows,
    /// The hierarchical-pruning policy.
    pub hier: HierMode,
    /// The exact-tier policy.
    #[serde(default)]
    pub hybrid: HybridMode,
}

impl KernelOpts {
    /// `kernel` with the default (adaptive) batch policy, pruning
    /// off, and the exact tier off.
    pub fn new(kernel: KernelKind) -> Self {
        KernelOpts {
            kernel,
            batch_rows: BatchRows::default(),
            hier: HierMode::default(),
            hybrid: HybridMode::default(),
        }
    }

    /// Overrides the batch-depth policy.
    pub fn with_batch_rows(mut self, batch_rows: BatchRows) -> Self {
        self.batch_rows = batch_rows;
        self
    }

    /// Overrides the hierarchical-pruning policy.
    pub fn with_hier(mut self, hier: HierMode) -> Self {
        self.hier = hier;
        self
    }

    /// Overrides the exact-tier policy.
    pub fn with_hybrid(mut self, hybrid: HybridMode) -> Self {
        self.hybrid = hybrid;
        self
    }
}

impl From<KernelKind> for KernelOpts {
    fn from(kernel: KernelKind) -> Self {
        KernelOpts::new(kernel)
    }
}

/// The two cache-hierarchy levels the adaptive batch model cares
/// about. Detected once per process from sysfs on Linux
/// ([`CacheModel::get`]); conservative defaults elsewhere.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheModel {
    /// Per-core L2 capacity in bytes.
    pub l2_bytes: u64,
    /// Last-level cache capacity in bytes.
    pub llc_bytes: u64,
}

impl CacheModel {
    /// Fallback when detection finds nothing: a small modern core
    /// (1 MiB L2, 32 MiB LLC). Erring small only makes batches deeper,
    /// which is the safe direction for throughput.
    pub const DEFAULT: CacheModel = CacheModel {
        l2_bytes: 1 << 20,
        llc_bytes: 32 << 20,
    };

    /// Reads cpu0's cache sizes from Linux sysfs. Returns
    /// [`Self::DEFAULT`] when the hierarchy can't be read (non-Linux,
    /// restricted container).
    pub fn detect() -> CacheModel {
        Self::from_sysfs("/sys/devices/system/cpu/cpu0/cache").unwrap_or(Self::DEFAULT)
    }

    /// The process-wide model, detected on first use.
    pub fn get() -> CacheModel {
        static MODEL: OnceLock<CacheModel> = OnceLock::new();
        *MODEL.get_or_init(CacheModel::detect)
    }

    fn from_sysfs(dir: &str) -> Option<CacheModel> {
        let mut l2 = 0u64;
        let mut llc = 0u64;
        for entry in std::fs::read_dir(dir).ok()? {
            // Skip anything that isn't a fully-populated indexN dir
            // (the cache dir also holds e.g. `uevent`).
            let Ok(entry) = entry else { continue };
            let path = entry.path();
            let read = |leaf: &str| std::fs::read_to_string(path.join(leaf)).ok();
            let (Some(level), Some(kind), Some(size)) = (read("level"), read("type"), read("size"))
            else {
                continue;
            };
            let Ok(level) = level.trim().parse::<u32>() else {
                continue;
            };
            if kind.trim() == "Instruction" {
                continue;
            }
            let Some(size) = parse_cache_size(size.trim()) else {
                continue;
            };
            if level == 2 {
                l2 = l2.max(size);
            }
            if level >= 2 {
                llc = llc.max(size);
            }
        }
        if llc == 0 {
            return None;
        }
        Some(CacheModel {
            l2_bytes: if l2 > 0 { l2 } else { llc },
            llc_bytes: llc,
        })
    }

    /// The batch depth for a query whose probes land in
    /// `resolved_ab_bytes` of AB storage: shallow (16) when the
    /// working set sits in L2 (loads return in ~15 cycles; deep
    /// pipelines only add lane bookkeeping), the classic
    /// [`BATCH_ROWS`] inside the LLC, and [`MAX_BATCH_ROWS`] once
    /// probes miss to DRAM and every additional independent miss in
    /// flight directly buys latency overlap.
    pub fn batch_rows_for(&self, resolved_ab_bytes: u64) -> usize {
        if resolved_ab_bytes <= self.l2_bytes {
            16
        } else if resolved_ab_bytes <= self.llc_bytes {
            BATCH_ROWS
        } else {
            MAX_BATCH_ROWS
        }
    }
}

/// Parses sysfs cache sizes like `48K`, `2048K`, `260M`, `1G`.
fn parse_cache_size(s: &str) -> Option<u64> {
    let (digits, mult) = match s.as_bytes().last()? {
        b'K' => (&s[..s.len() - 1], 1024),
        b'M' => (&s[..s.len() - 1], 1024 * 1024),
        b'G' => (&s[..s.len() - 1], 1024 * 1024 * 1024),
        _ => (s, 1),
    };
    digits.trim().parse::<u64>().ok().map(|v| v * mult)
}

impl AbIndex {
    /// The batch depth [`BatchRows::Adaptive`] picks for full-index
    /// queries against this index — the per-index half of the
    /// calibration (the per-query half narrows the footprint to the
    /// ABs a query actually resolves to). Recorded into the
    /// `kernel.batch_rows` histogram by [`crate::planner::calibrate`]
    /// so index load time captures the decision once.
    pub fn adaptive_batch_rows(&self) -> usize {
        CacheModel::get().batch_rows_for(self.size_bytes() as u64)
    }
}

/// The vector engine resolving gather waves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimdEngine {
    /// x86-64 AVX2: two 4-lane `vpgatherqq` per wave.
    Avx2,
    /// x86-64 AVX-512F: one 8-lane masked gather per wave.
    Avx512,
    /// aarch64 NEON: four 2×u64 load-pairs per wave.
    Neon,
}

impl std::fmt::Display for SimdEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SimdEngine::Avx2 => "avx2",
            SimdEngine::Avx512 => "avx512",
            SimdEngine::Neon => "neon",
        })
    }
}

/// The gather engine [`KernelKind::Simd`] queries run on, resolved
/// once per process: `None` when the `simd` feature is off, the
/// target has no vector path, or the CPU lacks the instructions —
/// the kernel then degrades to scalar waves (counted in
/// `kernel.scalar_waves`).
///
/// The env var `AB_SIMD` (`avx512` | `avx2` | `neon` | `off`, read at
/// first query) can narrow the choice below what the CPU supports —
/// CI uses it to differentially test every compiled path — but never
/// widen it past detection.
pub fn active_simd_engine() -> Option<SimdEngine> {
    static ENGINE: OnceLock<Option<SimdEngine>> = OnceLock::new();
    *ENGINE.get_or_init(|| {
        let forced = std::env::var("AB_SIMD").ok();
        let best = detect_simd_engine();
        match (forced.as_deref(), best) {
            (Some("off"), _) => None,
            (Some("avx2"), Some(SimdEngine::Avx512)) | (Some("avx2"), Some(SimdEngine::Avx2)) => {
                Some(SimdEngine::Avx2)
            }
            (Some("avx512"), Some(SimdEngine::Avx512)) => Some(SimdEngine::Avx512),
            (Some("neon"), Some(SimdEngine::Neon)) => Some(SimdEngine::Neon),
            (Some(_), _) => None, // unknown or unsupported request: scalar waves
            (None, best) => best,
        }
    })
}

#[allow(unreachable_code)]
fn detect_simd_engine() -> Option<SimdEngine> {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            return Some(SimdEngine::Avx512);
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return Some(SimdEngine::Avx2);
        }
        return None;
    }
    #[cfg(all(feature = "simd", target_arch = "aarch64"))]
    {
        // NEON is baseline on aarch64.
        return Some(SimdEngine::Neon);
    }
    None
}

/// Requests the cache line holding AB bit `pos` ahead of its read.
#[inline(always)]
#[allow(unused_variables)]
fn prefetch(words: &[u64], pos: u64) {
    #[cfg(all(feature = "prefetch", target_arch = "x86_64"))]
    // SAFETY: pos < n and words.len() == ceil(n/64), so the word index
    // is in bounds; prefetch has no architectural side effects anyway.
    unsafe {
        use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch(
            words.as_ptr().add((pos / 64) as usize) as *const i8,
            _MM_HINT_T0,
        );
    }
    #[cfg(all(feature = "prefetch", target_arch = "aarch64"))]
    // SAFETY: in-bounds address as above; prfm is side-effect free.
    unsafe {
        let p = words.as_ptr().add((pos / 64) as usize);
        core::arch::asm!(
            "prfm pldl1keep, [{0}]",
            in(reg) p,
            options(nostack, preserves_flags, readonly)
        );
    }
}

// ---------------------------------------------------------------------------
// Vector gather waves
// ---------------------------------------------------------------------------

/// Tests the AB bits of one wave: lane `l` reads the u64 at absolute
/// address `addrs[l]` and tests bit `shifts[l]`; the returned mask has
/// bit `l` set iff that AB bit is set. Only the low `w` lanes are
/// read (masked gathers never dereference dead lanes).
#[cfg_attr(
    not(all(feature = "simd", any(target_arch = "x86_64", target_arch = "aarch64"))),
    allow(unused_variables)
)]
fn wave_bits(
    engine: SimdEngine,
    addrs: &[u64; SIMD_WAVE],
    shifts: &[u64; SIMD_WAVE],
    w: usize,
) -> u8 {
    debug_assert!((1..=SIMD_WAVE).contains(&w));
    match engine {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        // SAFETY: runtime dispatch guarantees the target features, and
        // every live lane's address points at an in-bounds AB word.
        SimdEngine::Avx2 => unsafe { gather_wave_avx2(addrs, shifts, w) },
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        // SAFETY: as above.
        SimdEngine::Avx512 => unsafe { gather_wave_avx512(addrs, shifts, w) },
        #[cfg(all(feature = "simd", target_arch = "aarch64"))]
        // SAFETY: as above; NEON is baseline on aarch64.
        SimdEngine::Neon => unsafe { gather_wave_neon(addrs, shifts, w) },
        #[allow(unreachable_patterns)]
        _ => unreachable!("SIMD engine not compiled into this build"),
    }
}

/// AVX2 wave: two masked 4-lane `vpgatherqq` against a null base with
/// the lanes' absolute addresses as byte offsets (scale 1), then a
/// variable right shift + mask to extract the probed bits.
///
/// # Safety
///
/// Caller must ensure AVX2 is available and `addrs[..w]` are valid,
/// aligned-for-u64 readable addresses.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
unsafe fn gather_wave_avx2(addrs: &[u64; SIMD_WAVE], shifts: &[u64; SIMD_WAVE], w: usize) -> u8 {
    use core::arch::x86_64::*;
    // Lane-enable masks for 0..=4 live lanes (gather reads where the
    // element's sign bit is set).
    const LANE_MASKS: [[i64; 4]; 5] = [
        [0, 0, 0, 0],
        [-1, 0, 0, 0],
        [-1, -1, 0, 0],
        [-1, -1, -1, 0],
        [-1, -1, -1, -1],
    ];
    let ones = _mm256_set1_epi64x(1);
    let mut out = 0u8;
    let mut lane = 0usize;
    while lane < w {
        let cnt = (w - lane).min(4);
        let idx = _mm256_loadu_si256(addrs.as_ptr().add(lane) as *const __m256i);
        let mask = _mm256_loadu_si256(LANE_MASKS[cnt].as_ptr() as *const __m256i);
        let words =
            _mm256_mask_i64gather_epi64::<1>(_mm256_setzero_si256(), core::ptr::null(), idx, mask);
        let sh = _mm256_loadu_si256(shifts.as_ptr().add(lane) as *const __m256i);
        let bits = _mm256_and_si256(_mm256_srlv_epi64(words, sh), ones);
        let hit = _mm256_cmpeq_epi64(bits, ones);
        let m = _mm256_movemask_pd(_mm256_castsi256_pd(hit)) as u32;
        out |= ((m & ((1u32 << cnt) - 1)) as u8) << lane;
        lane += cnt;
    }
    out
}

/// AVX-512F wave: one masked 8-lane gather (absolute addresses, scale
/// 1), vector shift, and a compare-to-mask — the probed bits land
/// directly in a `__mmask8`.
///
/// # Safety
///
/// Caller must ensure AVX-512F is available and `addrs[..w]` are
/// valid, aligned-for-u64 readable addresses.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx512f")]
unsafe fn gather_wave_avx512(addrs: &[u64; SIMD_WAVE], shifts: &[u64; SIMD_WAVE], w: usize) -> u8 {
    use core::arch::x86_64::*;
    let kmask = ((1u16 << w) - 1) as __mmask8;
    let idx = _mm512_loadu_si512(addrs.as_ptr() as *const __m512i);
    let words =
        _mm512_mask_i64gather_epi64::<1>(_mm512_setzero_si512(), kmask, idx, core::ptr::null());
    let sh = _mm512_loadu_si512(shifts.as_ptr() as *const __m512i);
    let ones = _mm512_set1_epi64(1);
    let bits = _mm512_and_epi64(_mm512_srlv_epi64(words, sh), ones);
    _mm512_mask_cmpeq_epi64_mask(kmask, bits, ones)
}

/// NEON wave: four 2×u64 load-pairs (no gather on NEON), vector
/// variable shift (negative left-shift counts shift right), mask, and
/// per-lane extraction.
///
/// # Safety
///
/// Caller must ensure `addrs[..w]` are valid, aligned-for-u64
/// readable addresses.
#[cfg(all(feature = "simd", target_arch = "aarch64"))]
unsafe fn gather_wave_neon(addrs: &[u64; SIMD_WAVE], shifts: &[u64; SIMD_WAVE], w: usize) -> u8 {
    use core::arch::aarch64::*;
    let mut out = 0u8;
    let mut lane = 0usize;
    while lane + 2 <= w {
        let words = vcombine_u64(
            vld1_u64(addrs[lane] as *const u64),
            vld1_u64(addrs[lane + 1] as *const u64),
        );
        let negsh = vcombine_s64(
            vdup_n_s64(-(shifts[lane] as i64)),
            vdup_n_s64(-(shifts[lane + 1] as i64)),
        );
        let bits = vandq_u64(vshlq_u64(words, negsh), vdupq_n_u64(1));
        out |= (vgetq_lane_u64::<0>(bits) as u8) << lane;
        out |= (vgetq_lane_u64::<1>(bits) as u8) << (lane + 1);
        lane += 2;
    }
    if lane < w {
        let word = core::ptr::read(addrs[lane] as *const u64);
        out |= (((word >> shifts[lane]) & 1) as u8) << lane;
    }
    out
}

/// Gathers whole u64 words: lane `l` of `out` receives the word at
/// absolute address `addrs[l]` for the low `w` lanes (dead lanes are
/// left untouched and never dereferenced). The raw-word sibling of
/// [`wave_bits`] for callers that test multi-bit masks per word (the
/// blocked AB's two-word test) instead of single bits. Falls back to
/// scalar loads when no SIMD engine is active.
#[inline]
pub(crate) fn gather_words(
    engine: Option<SimdEngine>,
    addrs: &[u64; SIMD_WAVE],
    w: usize,
    out: &mut [u64; SIMD_WAVE],
) {
    debug_assert!((1..=SIMD_WAVE).contains(&w));
    match engine {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        // SAFETY: runtime dispatch guarantees the target features, and
        // every live lane's address points at an in-bounds AB word.
        Some(SimdEngine::Avx2) => unsafe { gather_words_avx2(addrs, w, out) },
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        // SAFETY: as above.
        Some(SimdEngine::Avx512) => unsafe { gather_words_avx512(addrs, w, out) },
        #[cfg(all(feature = "simd", target_arch = "aarch64"))]
        // SAFETY: as above; NEON is baseline on aarch64.
        Some(SimdEngine::Neon) => unsafe { gather_words_neon(addrs, w, out) },
        _ => {
            for lane in 0..w {
                // SAFETY: the caller derived addrs[lane] from an
                // in-bounds AB word pointer.
                out[lane] = unsafe { core::ptr::read(addrs[lane] as *const u64) };
            }
        }
    }
}

/// AVX2 raw-word gather: two masked 4-lane `vpgatherqq` (absolute
/// addresses, scale 1) stored straight to `out`.
///
/// # Safety
///
/// Caller must ensure AVX2 is available and `addrs[..w]` are valid,
/// aligned-for-u64 readable addresses.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
unsafe fn gather_words_avx2(addrs: &[u64; SIMD_WAVE], w: usize, out: &mut [u64; SIMD_WAVE]) {
    use core::arch::x86_64::*;
    const LANE_MASKS: [[i64; 4]; 5] = [
        [0, 0, 0, 0],
        [-1, 0, 0, 0],
        [-1, -1, 0, 0],
        [-1, -1, -1, 0],
        [-1, -1, -1, -1],
    ];
    let mut lane = 0usize;
    while lane < w {
        let cnt = (w - lane).min(4);
        let idx = _mm256_loadu_si256(addrs.as_ptr().add(lane) as *const __m256i);
        let mask = _mm256_loadu_si256(LANE_MASKS[cnt].as_ptr() as *const __m256i);
        let words =
            _mm256_mask_i64gather_epi64::<1>(_mm256_setzero_si256(), core::ptr::null(), idx, mask);
        let mut tmp = [0u64; 4];
        _mm256_storeu_si256(tmp.as_mut_ptr() as *mut __m256i, words);
        out[lane..lane + cnt].copy_from_slice(&tmp[..cnt]);
        lane += cnt;
    }
}

/// AVX-512F raw-word gather: one masked 8-lane gather stored to `out`.
///
/// # Safety
///
/// Caller must ensure AVX-512F is available and `addrs[..w]` are
/// valid, aligned-for-u64 readable addresses.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx512f")]
unsafe fn gather_words_avx512(addrs: &[u64; SIMD_WAVE], w: usize, out: &mut [u64; SIMD_WAVE]) {
    use core::arch::x86_64::*;
    let kmask = ((1u16 << w) - 1) as __mmask8;
    let idx = _mm512_loadu_si512(addrs.as_ptr() as *const __m512i);
    let words =
        _mm512_mask_i64gather_epi64::<1>(_mm512_setzero_si512(), kmask, idx, core::ptr::null());
    _mm512_mask_storeu_epi64(out.as_mut_ptr() as *mut i64, kmask, words);
}

/// NEON raw-word gather: per-lane load pairs (no gather on NEON).
///
/// # Safety
///
/// Caller must ensure `addrs[..w]` are valid, aligned-for-u64
/// readable addresses.
#[cfg(all(feature = "simd", target_arch = "aarch64"))]
unsafe fn gather_words_neon(addrs: &[u64; SIMD_WAVE], w: usize, out: &mut [u64; SIMD_WAVE]) {
    use core::arch::aarch64::*;
    let mut lane = 0usize;
    while lane + 2 <= w {
        let words = vcombine_u64(
            vld1_u64(addrs[lane] as *const u64),
            vld1_u64(addrs[lane + 1] as *const u64),
        );
        out[lane] = vgetq_lane_u64::<0>(words);
        out[lane + 1] = vgetq_lane_u64::<1>(words);
        lane += 2;
    }
    if lane < w {
        out[lane] = core::ptr::read(addrs[lane] as *const u64);
    }
}

// ---------------------------------------------------------------------------
// Shared plan / lane machinery
// ---------------------------------------------------------------------------

/// The hoisted, row-independent state for one (attribute, bin) column
/// of a query: raw AB words, k, and the reusable hash prober.
struct CellPlan<'a> {
    words: &'a [u64],
    k: u32,
    prober: hashkit::ColProber<'a>,
    /// Hash positions computed against this plan, flushed once per
    /// query into `hashkit.hash_calls.*` (the scalar `Prober` flushes
    /// per cell on drop; batching amortizes that to one atomic op).
    calls: StdCell<u64>,
}

impl<'a> CellPlan<'a> {
    fn new(ab: &'a ApproximateBitmap, col: u64) -> Self {
        CellPlan {
            words: ab.bits().words(),
            k: ab.k() as u32,
            prober: ab.family().col_prober(col, ab.mapper(), ab.n_bits()),
            calls: StdCell::new(0),
        }
    }

    /// Reads one AB bit (the word was prefetched one wave earlier).
    #[inline(always)]
    fn bit(&self, pos: u64) -> bool {
        (self.words[(pos / 64) as usize] >> (pos % 64)) & 1 == 1
    }

    /// The absolute byte address of the word holding bit `pos` — the
    /// gather operand. Always in bounds (`pos < n`).
    #[inline(always)]
    fn word_addr(&self, pos: u64) -> u64 {
        self.words.as_ptr().wrapping_add((pos / 64) as usize) as u64
    }

    /// Computes (and prefetches) the next probe position for `probe`.
    #[inline(always)]
    fn issue(&self, probe: &mut hashkit::RowProbe) -> u64 {
        let pos = self.prober.next_position(probe);
        self.calls.set(self.calls.get() + 1);
        prefetch(self.words, pos);
        pos
    }

    /// Batch form of [`Self::issue`] for opening a wave of lanes on
    /// the same plan: positions come from the vector-friendly
    /// [`hashkit::ColProber::next_positions`] (identical sequence),
    /// the call count is bumped once, and every position's word is
    /// prefetched.
    fn issue_batch(&self, probes: &mut [hashkit::RowProbe], out: &mut [u64]) {
        self.prober.next_positions(probes, out);
        self.calls.set(self.calls.get() + probes.len() as u64);
        for &pos in out.iter().take(probes.len()) {
            prefetch(self.words, pos);
        }
    }
}

/// Per-query wave accounting, flushed into obs once at the end so the
/// probe loops stay atomics-free.
#[derive(Default)]
struct WaveCounters {
    batches: u64,
    simd_waves: u64,
    scalar_waves: u64,
}

impl WaveCounters {
    /// `prefetched_positions` is the number of probe positions the
    /// query issued; each issued position executes exactly one
    /// prefetch instruction — but only on builds where the prefetch
    /// is compiled in. On no-op fallback builds (`prefetch` feature
    /// off, or an unsupported target) nothing is added, so
    /// `kernel.prefetches` never reports phantom prefetches.
    fn flush(self, prefetched_positions: u64) {
        obs::counter!("kernel.batches").add(self.batches);
        if self.simd_waves > 0 {
            obs::counter!("kernel.simd_waves").add(self.simd_waves);
        }
        if self.scalar_waves > 0 {
            obs::counter!("kernel.scalar_waves").add(self.scalar_waves);
        }
        if PREFETCH_ACTIVE {
            obs::counter!("kernel.prefetches").add(prefetched_positions);
        }
    }
}

/// Ascending-order match mask over one batch's slots (up to
/// [`MAX_BATCH_ROWS`] bits).
#[derive(Default)]
struct MatchMask([u64; MAX_BATCH_ROWS / 64]);

impl MatchMask {
    #[inline(always)]
    fn set(&mut self, slot: u32) {
        self.0[slot as usize / 64] |= 1u64 << (slot % 64);
    }

    /// Pushes `base + slot` for every set slot, in ascending slot
    /// order — restoring row order regardless of lane retire order.
    fn drain_into(&mut self, rows: &mut Vec<usize>, base: usize) {
        for (w, word) in self.0.iter_mut().enumerate() {
            let mut m = *word;
            while m != 0 {
                rows.push(base + w * 64 + m.trailing_zeros() as usize);
                m &= m - 1;
            }
            *word = 0;
        }
    }
}

/// One in-flight row of a rect-query batch: where it is in the Figure 7
/// evaluation (range, bin, probe index) and its one outstanding probe.
struct Lane {
    row: u64,
    slot: u32,
    range: u32,
    bin: u32,
    /// Bits read for the current cell so far (< k; the cell resolves at
    /// the first zero bit or at the k-th one bit).
    t: u32,
    /// The already-issued (and prefetched) probe position.
    pos: u64,
    probe: hashkit::RowProbe,
}

impl Lane {
    /// Starts the probe sequence of cell (range, bin) for this lane's
    /// row. Mirrors the scalar path's `cells_probed += 1` placement:
    /// the counter moves *before* any bit is read.
    #[inline]
    fn start_cell(&mut self, plans: &[Vec<CellPlan>], stats: &mut QueryStats) {
        let plan = &plans[self.range as usize][self.bin as usize];
        stats.cells_probed += 1;
        self.t = 0;
        let mut probe = plan.prober.begin(self.row);
        self.pos = plan.issue(&mut probe);
        self.probe = probe;
    }
}

/// What the Figure 7 state transition did with a lane.
enum LaneFate {
    /// The lane has a new probe in flight.
    Live,
    /// Every range was satisfied: the row is an (approximate) match.
    Matched,
    /// A range was exhausted with no hit: the row is out.
    Dead,
}

/// Applies one bit's worth of the Figure 7 evaluation to `lane`,
/// identical for the scalar-wave and SIMD-wave loops (and, in
/// observable effect, to the row-at-a-time reference loop): OR
/// short-circuit on the k-th set bit, AND short-circuit on the last
/// exhausted bin, per-cell break on the first zero bit.
#[inline(always)]
fn advance_lane(
    lane: &mut Lane,
    plans: &[Vec<CellPlan>],
    num_ranges: usize,
    stats: &mut QueryStats,
    short_circuits: &mut u64,
    hit: bool,
) -> LaneFate {
    let range_plans = &plans[lane.range as usize];
    let plan = &range_plans[lane.bin as usize];
    stats.bits_read += 1;
    lane.t += 1;
    if hit {
        if lane.t < plan.k {
            // Bit set, cell undecided: issue the next probe.
            lane.pos = plan.issue(&mut lane.probe);
            return LaneFate::Live;
        }
        // All k bits set: the cell is (approximately) present —
        // Figure 7's OR short-circuit.
        *short_circuits += u64::from((lane.bin as usize) < range_plans.len() - 1);
        lane.range += 1;
        lane.bin = 0;
        if lane.range as usize == num_ranges {
            return LaneFate::Matched;
        }
        if plans[lane.range as usize].is_empty() {
            return LaneFate::Dead; // degenerate range: row fails
        }
        lane.start_cell(plans, stats);
        LaneFate::Live
    } else {
        // Zero bit: cell definitely absent (Figure 5 break).
        lane.bin += 1;
        if lane.bin as usize == range_plans.len() {
            // Range exhausted with no hit: Figure 7's AND
            // short-circuit — the row is out.
            return LaneFate::Dead;
        }
        lane.start_cell(plans, stats);
        LaneFate::Live
    }
}

/// Resolves the batch-depth policy against a resolved AB footprint and
/// records the decision in the `kernel.batch_rows` histogram.
fn choose_batch_rows(batch_rows: BatchRows, resolved_ab_bytes: u64) -> usize {
    let rows = match batch_rows {
        BatchRows::Fixed(n) => n.clamp(1, MAX_BATCH_ROWS),
        BatchRows::Adaptive => CacheModel::get().batch_rows_for(resolved_ab_bytes),
    };
    obs::histogram!("kernel.batch_rows").record(rows as u64);
    rows
}

/// Total bytes of the *distinct* ABs a query's plans resolve to — the
/// probe working set the adaptive batch model sizes against (several
/// plans of a per-attribute or per-dataset index share one AB).
fn resolved_plan_bytes(plans: &[Vec<CellPlan>]) -> u64 {
    let mut seen: Vec<*const u64> = Vec::new();
    let mut bytes = 0u64;
    for plan in plans.iter().flatten() {
        let ptr = plan.words.as_ptr();
        if !seen.contains(&ptr) {
            seen.push(ptr);
            bytes += (plan.words.len() * 8) as u64;
        }
    }
    bytes
}

// ---------------------------------------------------------------------------
// Figure 7: rectangular queries
// ---------------------------------------------------------------------------

/// Figure 7 over row batches: bit-identical results and [`QueryStats`]
/// to the scalar loop in `query.rs`, with up to the batch depth's
/// probe latencies overlapped (and, on the SIMD engine, the wave's AB
/// words fetched by vector gathers). Returns
/// `(rows, stats, or_short_circuits)`.
///
/// The caller has already validated row and bin bounds.
pub(crate) fn execute_rect_waves(
    index: &AbIndex,
    query: &RectQuery,
    opts: KernelOpts,
) -> (Vec<usize>, QueryStats, u64) {
    let mut rows = Vec::new();
    let mut stats = QueryStats::default();
    let mut short_circuits = 0u64;
    if query.row_lo > query.row_hi {
        return (rows, stats, 0);
    }
    if query.ranges.is_empty() {
        // Vacuous AND: every row matches without a single probe, as in
        // the scalar loop.
        rows.extend(query.row_lo..=query.row_hi);
        stats.rows_matched = rows.len();
        return (rows, stats, 0);
    }
    // Hash hoisting: one plan per (attribute, bin) the query can touch,
    // shared by every row.
    let plans: Vec<Vec<CellPlan>> = query
        .ranges
        .iter()
        .map(|r| {
            (r.lo..=r.hi)
                .map(|bin| {
                    let (ab, col) = index.cell_plan_target(r.attribute, bin);
                    CellPlan::new(ab, col)
                })
                .collect()
        })
        .collect();
    let batch_rows = choose_batch_rows(opts.batch_rows, resolved_plan_bytes(&plans));
    let engine = match opts.kernel {
        KernelKind::Simd => active_simd_engine(),
        _ => None,
    };
    let num_ranges = plans.len();
    let mut lanes: Vec<Lane> = Vec::with_capacity(batch_rows);
    let mut probes: Vec<hashkit::RowProbe> = Vec::with_capacity(batch_rows);
    let mut wave = WaveCounters::default();
    let mut matched = MatchMask::default();
    let mut base = query.row_lo;
    loop {
        let batch_len = (query.row_hi - base + 1).min(batch_rows);
        wave.batches += 1;
        lanes.clear();
        if plans[0].is_empty() {
            // Degenerate first range (lo > hi): no row can match and,
            // like the scalar loop, no probe is issued.
        } else {
            open_lanes(base, batch_len, &plans, &mut stats, &mut probes, &mut lanes);
        }
        match engine {
            None => run_scalar_waves(
                &plans,
                num_ranges,
                &mut lanes,
                &mut stats,
                &mut short_circuits,
                &mut matched,
                &mut wave,
            ),
            Some(e) => run_simd_waves(
                e,
                &plans,
                num_ranges,
                &mut lanes,
                &mut stats,
                &mut short_circuits,
                &mut matched,
                &mut wave,
            ),
        }
        matched.drain_into(&mut rows, base);
        if query.row_hi - base < batch_rows {
            break;
        }
        base += batch_len;
    }
    stats.rows_matched = rows.len();
    for plan in plans.iter().flatten() {
        plan.prober.record_hash_calls(plan.calls.get());
    }
    // Every issued position is read exactly once, so the number of
    // (potentially prefetched) positions equals bits_read.
    wave.flush(stats.bits_read as u64);
    (rows, stats, short_circuits)
}

/// Opens one batch's lanes on their rows' first cell (range 0, bin 0):
/// all first-probe positions come from one vector-friendly
/// `CellPlan::issue_batch` call against the shared plan.
fn open_lanes(
    base: usize,
    batch_len: usize,
    plans: &[Vec<CellPlan>],
    stats: &mut QueryStats,
    probes: &mut Vec<hashkit::RowProbe>,
    lanes: &mut Vec<Lane>,
) {
    let plan = &plans[0][0];
    stats.cells_probed += batch_len;
    probes.clear();
    probes.extend((0..batch_len).map(|slot| plan.prober.begin((base + slot) as u64)));
    let mut first = [0u64; MAX_BATCH_ROWS];
    plan.issue_batch(probes, &mut first[..batch_len]);
    for (slot, probe) in probes.drain(..).enumerate() {
        lanes.push(Lane {
            row: (base + slot) as u64,
            slot: slot as u32,
            range: 0,
            bin: 0,
            t: 0,
            pos: first[slot],
            probe,
        });
    }
}

/// Breadth-first resolution with scalar bit reads: each pass tests one
/// (prefetched) bit per live lane, so the batch keeps up to
/// `lanes.len()` independent loads in flight.
#[allow(clippy::too_many_arguments)]
fn run_scalar_waves(
    plans: &[Vec<CellPlan>],
    num_ranges: usize,
    lanes: &mut Vec<Lane>,
    stats: &mut QueryStats,
    short_circuits: &mut u64,
    matched: &mut MatchMask,
    wave: &mut WaveCounters,
) {
    while !lanes.is_empty() {
        wave.scalar_waves += 1;
        let mut i = 0;
        while i < lanes.len() {
            let lane = &mut lanes[i];
            let hit = plans[lane.range as usize][lane.bin as usize].bit(lane.pos);
            match advance_lane(lane, plans, num_ranges, stats, short_circuits, hit) {
                LaneFate::Live => i += 1,
                LaneFate::Matched => {
                    matched.set(lanes[i].slot);
                    lanes.swap_remove(i);
                }
                LaneFate::Dead => {
                    lanes.swap_remove(i);
                }
            }
        }
    }
}

/// Breadth-first resolution with vector gather waves: phase 1 fetches
/// every live lane's AB word in [`SIMD_WAVE`]-lane gathers and tests
/// the probed bits with vector shifts; phase 2 applies the identical
/// per-lane Figure 7 transitions. Tails narrower than
/// [`SIMD_MIN_GATHER`] use scalar loads (counted as scalar waves).
#[allow(clippy::too_many_arguments)]
fn run_simd_waves(
    engine: SimdEngine,
    plans: &[Vec<CellPlan>],
    num_ranges: usize,
    lanes: &mut Vec<Lane>,
    stats: &mut QueryStats,
    short_circuits: &mut u64,
    matched: &mut MatchMask,
    wave: &mut WaveCounters,
) {
    let mut bits = [false; MAX_BATCH_ROWS];
    while !lanes.is_empty() {
        let n = lanes.len();
        // Phase 1: resolve the current bit of every live lane.
        let mut j = 0usize;
        while j < n {
            let w = (n - j).min(SIMD_WAVE);
            if w >= SIMD_MIN_GATHER {
                let mut addrs = [0u64; SIMD_WAVE];
                let mut shifts = [0u64; SIMD_WAVE];
                for l in 0..w {
                    let lane = &lanes[j + l];
                    let plan = &plans[lane.range as usize][lane.bin as usize];
                    addrs[l] = plan.word_addr(lane.pos);
                    shifts[l] = lane.pos % 64;
                }
                let mask = wave_bits(engine, &addrs, &shifts, w);
                for l in 0..w {
                    bits[j + l] = mask & (1 << l) != 0;
                }
                wave.simd_waves += 1;
            } else {
                for l in 0..w {
                    let lane = &lanes[j + l];
                    bits[j + l] = plans[lane.range as usize][lane.bin as usize].bit(lane.pos);
                }
                wave.scalar_waves += 1;
            }
            j += w;
        }
        // Phase 2: per-lane transitions, bit-identical to the scalar
        // wave. Iterating downward keeps the bits[i] ↔ lanes[i]
        // correspondence intact across swap_removes (the swapped-in
        // lane always comes from an already-processed index).
        for i in (0..n).rev() {
            let hit = bits[i];
            let lane = &mut lanes[i];
            match advance_lane(lane, plans, num_ranges, stats, short_circuits, hit) {
                LaneFate::Live => {}
                LaneFate::Matched => {
                    matched.set(lanes[i].slot);
                    lanes.swap_remove(i);
                }
                LaneFate::Dead => {
                    lanes.swap_remove(i);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Figure 5: cell-subset queries
// ---------------------------------------------------------------------------

/// One in-flight cell of a Figure 5 subset query. Plans are hoisted
/// per chunk and shared between lanes probing the same (attribute,
/// bin), so the lane holds an index instead of owning its plan.
struct CellLane {
    idx: usize,
    plan: u32,
    probe: hashkit::RowProbe,
    pos: u64,
    t: u32,
}

/// Applies one bit's worth of the Figure 5 evaluation: `Some(verdict)`
/// retires the lane (first zero bit → definite miss; k-th set bit →
/// approximate hit), `None` leaves its next probe in flight.
#[inline(always)]
fn advance_cell_lane(lane: &mut CellLane, plans: &[CellPlan], hit: bool) -> Option<bool> {
    lane.t += 1;
    if !hit {
        return Some(false);
    }
    let plan = &plans[lane.plan as usize];
    if lane.t == plan.k {
        return Some(true);
    }
    lane.pos = plan.issue(&mut lane.probe);
    None
}

/// Figure 5 over cell batches: identical verdicts (in query order) to
/// the scalar `test_cell` loop, with batched latency overlap and
/// per-chunk `CellPlan` hoisting — repeated (attribute, bin) pairs
/// within a chunk share one hoisted hash state, the same win rect
/// queries get from per-query plans (counted in
/// `kernel.cell_plans_deduped`).
///
/// # Panics
///
/// Panics on out-of-range rows or bins, with the same messages as
/// [`AbIndex::test_cell_counted`].
pub(crate) fn retrieve_cells_waves(index: &AbIndex, cells: &[Cell], opts: KernelOpts) -> Vec<bool> {
    let mut out = vec![false; cells.len()];
    let batch_rows = choose_batch_rows(opts.batch_rows, index.size_bytes() as u64);
    let engine = match opts.kernel {
        KernelKind::Simd => active_simd_engine(),
        _ => None,
    };
    let mut wave = WaveCounters::default();
    let mut issued_positions = 0u64;
    let mut deduped = 0u64;
    let mut bits = [false; MAX_BATCH_ROWS];
    for (chunk_idx, chunk) in cells.chunks(batch_rows).enumerate() {
        wave.batches += 1;
        // Plan hoisting: one CellPlan per distinct (attribute, bin) in
        // the chunk.
        let mut plan_ids: std::collections::HashMap<(usize, u32), u32> =
            std::collections::HashMap::with_capacity(chunk.len());
        let mut plans: Vec<CellPlan> = Vec::new();
        let mut lanes: Vec<CellLane> = Vec::with_capacity(chunk.len());
        for (j, c) in chunk.iter().enumerate() {
            let meta = &index.attributes()[c.attribute];
            assert!(
                c.bin < meta.cardinality,
                "bin {} out of range for attribute {}",
                c.bin,
                c.attribute
            );
            assert!(
                c.row < index.num_rows(),
                "row {} out of range {}",
                c.row,
                index.num_rows()
            );
            let pid = match plan_ids.entry((c.attribute, c.bin)) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    deduped += 1;
                    *e.get()
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    let (ab, col) = index.cell_plan_target(c.attribute, c.bin);
                    plans.push(CellPlan::new(ab, col));
                    *v.insert((plans.len() - 1) as u32)
                }
            };
            let plan = &plans[pid as usize];
            let mut probe = plan.prober.begin(c.row as u64);
            let pos = plan.issue(&mut probe);
            lanes.push(CellLane {
                idx: chunk_idx * batch_rows + j,
                plan: pid,
                probe,
                pos,
                t: 0,
            });
        }
        match engine {
            None => {
                while !lanes.is_empty() {
                    wave.scalar_waves += 1;
                    let mut i = 0;
                    while i < lanes.len() {
                        let lane = &mut lanes[i];
                        let hit = plans[lane.plan as usize].bit(lane.pos);
                        match advance_cell_lane(lane, &plans, hit) {
                            None => i += 1,
                            Some(verdict) => {
                                out[lanes[i].idx] = verdict;
                                lanes.swap_remove(i);
                            }
                        }
                    }
                }
            }
            Some(e) => {
                while !lanes.is_empty() {
                    let n = lanes.len();
                    let mut j = 0usize;
                    while j < n {
                        let w = (n - j).min(SIMD_WAVE);
                        if w >= SIMD_MIN_GATHER {
                            let mut addrs = [0u64; SIMD_WAVE];
                            let mut shifts = [0u64; SIMD_WAVE];
                            for l in 0..w {
                                let lane = &lanes[j + l];
                                addrs[l] = plans[lane.plan as usize].word_addr(lane.pos);
                                shifts[l] = lane.pos % 64;
                            }
                            let mask = wave_bits(e, &addrs, &shifts, w);
                            for l in 0..w {
                                bits[j + l] = mask & (1 << l) != 0;
                            }
                            wave.simd_waves += 1;
                        } else {
                            for l in 0..w {
                                let lane = &lanes[j + l];
                                bits[j + l] = plans[lane.plan as usize].bit(lane.pos);
                            }
                            wave.scalar_waves += 1;
                        }
                        j += w;
                    }
                    for i in (0..n).rev() {
                        let hit = bits[i];
                        let lane = &mut lanes[i];
                        match advance_cell_lane(lane, &plans, hit) {
                            None => {}
                            Some(verdict) => {
                                out[lanes[i].idx] = verdict;
                                lanes.swap_remove(i);
                            }
                        }
                    }
                }
            }
        }
        // One flush per hoisted plan (not per lane): totals match the
        // per-cell scalar path, and — with shared plans — counting
        // each plan once is what keeps the issued-position count (and
        // hence `kernel.prefetches`) free of double counting.
        for plan in &plans {
            issued_positions += plan.calls.get();
            plan.prober.record_hash_calls(plan.calls.get());
        }
    }
    if deduped > 0 {
        obs::counter!("kernel.cell_plans_deduped").add(deduped);
    }
    wave.flush(issued_positions);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_kind_parses_and_displays() {
        assert_eq!("scalar".parse::<KernelKind>(), Ok(KernelKind::Scalar));
        assert_eq!("batched".parse::<KernelKind>(), Ok(KernelKind::Batched));
        assert_eq!("simd".parse::<KernelKind>(), Ok(KernelKind::Simd));
        assert_eq!(KernelKind::default(), KernelKind::Batched);
        assert_eq!(KernelKind::Scalar.to_string(), "scalar");
        assert_eq!(KernelKind::Batched.to_string(), "batched");
        assert_eq!(KernelKind::Simd.to_string(), "simd");
        let err = "fancy".parse::<KernelKind>().unwrap_err();
        assert!(
            err.contains("fancy") && err.contains("scalar|batched|simd"),
            "{err}"
        );
    }

    #[test]
    fn batch_rows_parses_clamps_and_displays() {
        assert_eq!("adaptive".parse::<BatchRows>(), Ok(BatchRows::Adaptive));
        assert_eq!("8".parse::<BatchRows>(), Ok(BatchRows::Fixed(8)));
        assert_eq!(
            "100000".parse::<BatchRows>(),
            Ok(BatchRows::Fixed(MAX_BATCH_ROWS))
        );
        assert!("0".parse::<BatchRows>().is_err());
        assert!("turbo".parse::<BatchRows>().is_err());
        assert_eq!(BatchRows::Adaptive.to_string(), "adaptive");
        assert_eq!(BatchRows::Fixed(64).to_string(), "64");
        assert_eq!(BatchRows::default(), BatchRows::Adaptive);
    }

    #[test]
    fn kernel_opts_builders() {
        let o = KernelOpts::new(KernelKind::Simd).with_batch_rows(BatchRows::Fixed(8));
        assert_eq!(o.kernel, KernelKind::Simd);
        assert_eq!(o.batch_rows, BatchRows::Fixed(8));
        let d: KernelOpts = KernelKind::Batched.into();
        assert_eq!(d.batch_rows, BatchRows::Adaptive);
    }

    #[test]
    fn cache_model_thresholds() {
        let m = CacheModel {
            l2_bytes: 1 << 20,
            llc_bytes: 32 << 20,
        };
        assert_eq!(m.batch_rows_for(16 << 10), 16); // in L2
        assert_eq!(m.batch_rows_for(1 << 20), 16); // exactly L2
        assert_eq!(m.batch_rows_for(2 << 20), BATCH_ROWS); // in LLC
        assert_eq!(m.batch_rows_for(33 << 20), MAX_BATCH_ROWS); // DRAM
    }

    #[test]
    fn cache_size_parsing() {
        assert_eq!(parse_cache_size("48K"), Some(48 * 1024));
        assert_eq!(parse_cache_size("2048K"), Some(2048 * 1024));
        assert_eq!(parse_cache_size("260M"), Some(260 * 1024 * 1024));
        assert_eq!(parse_cache_size("1G"), Some(1 << 30));
        assert_eq!(parse_cache_size("12345"), Some(12345));
        assert_eq!(parse_cache_size("nope"), None);
    }

    #[test]
    fn detected_cache_model_is_sane() {
        let m = CacheModel::detect();
        assert!(m.l2_bytes >= 64 << 10, "implausible L2: {}", m.l2_bytes);
        assert!(m.llc_bytes >= m.l2_bytes, "LLC smaller than L2: {m:?}");
    }

    #[test]
    fn match_mask_restores_ascending_order() {
        let mut mask = MatchMask::default();
        for slot in [200u32, 3, 64, 0, 255, 65] {
            mask.set(slot);
        }
        let mut rows = Vec::new();
        mask.drain_into(&mut rows, 1000);
        assert_eq!(rows, vec![1000, 1003, 1064, 1065, 1200, 1255]);
        // Drained mask is clear.
        let mut again = Vec::new();
        mask.drain_into(&mut again, 0);
        assert!(again.is_empty());
    }

    #[test]
    fn simd_engine_constants_consistent() {
        // A detected engine implies the build compiled the SIMD paths.
        assert!(active_simd_engine().is_none() || SIMD_COMPILED);
        // Display names are what the CLI/env accept.
        assert_eq!(SimdEngine::Avx2.to_string(), "avx2");
        assert_eq!(SimdEngine::Avx512.to_string(), "avx512");
        assert_eq!(SimdEngine::Neon.to_string(), "neon");
    }
}
