//! The three-level AB index over a binned table.
//!
//! [`AbIndex`] realizes paper contribution 4: the AB encoding applied
//! at one of three resolutions —
//!
//! * **per data set** — one AB covers all `d·N` set bits, addressed by
//!   `(row, global column)`;
//! * **per attribute** — `d` ABs, each covering one attribute's `N`
//!   set bits, addressed by `(row, bin)`;
//! * **per column** — `Σ C_i` ABs, each covering one bin's rows,
//!   addressed by `row` alone.
//!
//! All three answer the same cell test: *is bit `(row, bin-of-attr)`
//! set in the equality-encoded bitmap table?*

use crate::analysis::Level;
use crate::config::AbConfig;
use crate::encoding::ApproximateBitmap;
use crate::hier::{HierAb, HierConfig};
use crate::hybrid::{HybridAb, HybridConfig};
use bitmap::BinnedTable;
use hashkit::{CellMapper, HashFamily};
use serde::{Deserialize, Serialize};

/// Schema metadata for one attribute of the indexed table.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttributeMeta {
    /// Attribute name.
    pub name: String,
    /// Number of bins.
    pub cardinality: u32,
    /// Global column id of this attribute's bin 0.
    pub offset: usize,
}

/// A complete approximate bitmap index.
///
/// # Examples
///
/// ```
/// use ab::{AbConfig, AbIndex, Level};
/// use bitmap::{BinnedColumn, BinnedTable};
///
/// let table = BinnedTable::new(vec![
///     BinnedColumn::new("A", vec![0, 1, 2, 0], 3),
///     BinnedColumn::new("B", vec![2, 2, 0, 1], 3),
/// ]);
/// let index = AbIndex::build(&table, &AbConfig::new(Level::PerAttribute).with_alpha(16));
/// // Row 2 has A = bin 2: always found (no false negatives).
/// assert!(index.test_cell(2, 0, 2));
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AbIndex {
    level: Level,
    abs: Vec<ApproximateBitmap>,
    attributes: Vec<AttributeMeta>,
    num_rows: usize,
    /// Optional coarse-to-fine pruning pyramid (see [`crate::hier`]).
    /// Not built by default — attach with [`Self::ensure_hier`].
    hier: Option<HierAb>,
    /// Optional exact tier: Roaring-backed hot bins answered without
    /// probing the AB (see [`crate::hybrid`]). Not built by default —
    /// attach with [`Self::ensure_hybrid`].
    hybrid: Option<HybridAb>,
}

impl AbIndex {
    /// Builds the index from a binned table under `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config.family` is [`HashFamily::ColumnGroup`] at the
    /// per-column level (the paper restricts that hash to the coarser
    /// levels), or if the table is empty.
    pub fn build(table: &BinnedTable, config: &AbConfig) -> Self {
        let t0 = std::time::Instant::now();
        assert!(table.num_rows() > 0, "cannot index an empty table");
        assert!(table.num_attributes() > 0, "table has no attributes");

        let mut attributes = Vec::with_capacity(table.num_attributes());
        let mut offset = 0usize;
        for col in table.columns() {
            attributes.push(AttributeMeta {
                name: col.name.clone(),
                cardinality: col.cardinality,
                offset,
            });
            offset += col.cardinality as usize;
        }
        let total_columns = offset;
        let num_rows = table.num_rows();

        let abs = match config.level {
            Level::PerDataset => {
                let s = (num_rows * table.num_attributes()) as u64;
                let params = config.sizing.params(s, config.k);
                let family = adapt_family(&config.family, total_columns as u64, config.level);
                let mapper = CellMapper::for_columns(total_columns);
                let mut ab = ApproximateBitmap::new(params.n_bits, params.k, family, mapper);
                for (a, col) in table.columns().iter().enumerate() {
                    let base = attributes[a].offset as u64;
                    for (row, &bin) in col.bins.iter().enumerate() {
                        ab.insert(row as u64, base + bin as u64);
                    }
                }
                vec![ab]
            }
            Level::PerAttribute => table
                .columns()
                .iter()
                .map(|col| build_attribute_ab(col, config))
                .collect(),
            Level::PerColumn => {
                assert!(
                    !matches!(config.family, HashFamily::ColumnGroup { .. }),
                    "the column-group hash is only defined for per-dataset \
                     and per-attribute ABs (paper §5.2.2)"
                );
                table
                    .columns()
                    .iter()
                    .flat_map(|col| build_column_abs(col, config))
                    .collect()
            }
        };

        let index = AbIndex {
            level: config.level,
            abs,
            attributes,
            num_rows,
            hier: None,
            hybrid: None,
        };
        index.record_build_metrics(t0.elapsed().as_micros() as u64);
        index
    }

    /// Builds the index using up to `threads` worker threads. The
    /// per-attribute and per-column levels parallelize over their
    /// independent ABs (one attribute per task); the per-dataset level
    /// has a single AB and falls back to the sequential build. The
    /// result is bit-identical to [`Self::build`].
    ///
    /// The paper assumes read-only scientific data (§4.1) where the
    /// index is built once over millions of rows — construction is the
    /// one embarrassingly parallel step.
    pub fn build_parallel(table: &BinnedTable, config: &AbConfig, threads: usize) -> Self {
        let t0 = std::time::Instant::now();
        assert!(threads >= 1, "need at least one thread");
        if threads == 1 || config.level == Level::PerDataset || table.num_attributes() <= 1 {
            return Self::build(table, config);
        }
        if config.level == Level::PerColumn {
            assert!(
                !matches!(config.family, HashFamily::ColumnGroup { .. }),
                "the column-group hash is only defined for per-dataset \
                 and per-attribute ABs (paper §5.2.2)"
            );
        }

        let mut attributes = Vec::with_capacity(table.num_attributes());
        let mut offset = 0usize;
        for col in table.columns() {
            attributes.push(AttributeMeta {
                name: col.name.clone(),
                cardinality: col.cardinality,
                offset,
            });
            offset += col.cardinality as usize;
        }

        let cols = table.columns();
        let chunk = cols.len().div_ceil(threads);
        let per_chunk: Vec<Vec<ApproximateBitmap>> = std::thread::scope(|s| {
            let handles: Vec<_> = cols
                .chunks(chunk)
                .map(|chunk_cols| {
                    s.spawn(move || {
                        let mut out = Vec::new();
                        for col in chunk_cols {
                            match config.level {
                                Level::PerAttribute => {
                                    out.push(build_attribute_ab(col, config));
                                }
                                Level::PerColumn => {
                                    out.extend(build_column_abs(col, config));
                                }
                                Level::PerDataset => unreachable!("handled above"),
                            }
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("builder thread panicked"))
                .collect()
        });

        let index = AbIndex {
            level: config.level,
            abs: per_chunk.into_iter().flatten().collect(),
            attributes,
            num_rows: table.num_rows(),
            hier: None,
            hybrid: None,
        };
        index.record_build_metrics(t0.elapsed().as_micros() as u64);
        index
    }

    /// Builds an index covering only the contiguous row slice `rows`
    /// of `table`, with rows renumbered from 0 — one shard of a
    /// row-range-partitioned index. A shard's AB is sized for its own
    /// set-bit count, so S shards together use (about) the same space
    /// as one monolithic index, and a cell test inside the shard costs
    /// the same O(k) probes.
    ///
    /// Shard-local row ids are `global_row - rows.start`; callers keep
    /// the offset (see `ab::io::shards_to_bytes`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or extends past the table, plus
    /// the [`Self::build`] panics.
    pub fn build_row_range(
        table: &BinnedTable,
        config: &AbConfig,
        rows: std::ops::Range<usize>,
    ) -> Self {
        Self::build(&table.slice_rows(rows), config)
    }

    /// Flushes the `ab.build.*` metrics for one finished build: total
    /// insertions and set bits (summed over the constituent ABs, so the
    /// registry matches what [`ApproximateBitmap::inserted`] reports)
    /// and the wall time, both overall and per level.
    fn record_build_metrics(&self, elapsed_us: u64) {
        #[cfg(feature = "obs-off")]
        let _ = elapsed_us;
        #[cfg(not(feature = "obs-off"))]
        {
            obs::counter!("ab.build.indexes").inc();
            let insertions: u64 = self.abs.iter().map(ApproximateBitmap::inserted).sum();
            obs::counter!("ab.build.insertions").add(insertions);
            let bits_set: u64 = self
                .abs
                .iter()
                .map(|ab| ab.bits().count_ones() as u64)
                .sum();
            obs::counter!("ab.build.bits_set").add(bits_set);
            obs::histogram!("ab.build.us").record(elapsed_us);
            match self.level {
                Level::PerDataset => obs::histogram!("ab.build.per_dataset_us").record(elapsed_us),
                Level::PerAttribute => {
                    obs::histogram!("ab.build.per_attribute_us").record(elapsed_us)
                }
                Level::PerColumn => obs::histogram!("ab.build.per_column_us").record(elapsed_us),
            }
        }
    }

    /// The encoding level of this index.
    pub fn level(&self) -> Level {
        self.level
    }

    /// Number of rows covered.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of attributes covered.
    pub fn num_attributes(&self) -> usize {
        self.attributes.len()
    }

    /// Attribute metadata, in global column order.
    pub fn attributes(&self) -> &[AttributeMeta] {
        &self.attributes
    }

    /// The underlying ABs (1, `d`, or `Σ C_i` of them).
    pub fn abs(&self) -> &[ApproximateBitmap] {
        &self.abs
    }

    /// Total AB storage in bytes.
    pub fn size_bytes(&self) -> usize {
        self.abs.iter().map(ApproximateBitmap::size_bytes).sum()
    }

    /// Tests whether row `row` (approximately) falls in `bin` of
    /// `attribute` — the cell test of Figures 5/7. Never returns
    /// `false` for a genuinely set cell; probes short-circuit on the
    /// first zero bit.
    #[inline]
    pub fn test_cell(&self, row: usize, attribute: usize, bin: u32) -> bool {
        self.test_cell_counted(row, attribute, bin).0
    }

    /// [`Self::test_cell`] plus the number of AB bits read before the
    /// verdict (≤ the AB's k; see
    /// [`ApproximateBitmap::contains_counted`]).
    #[inline]
    pub fn test_cell_counted(&self, row: usize, attribute: usize, bin: u32) -> (bool, u32) {
        let meta = &self.attributes[attribute];
        assert!(
            bin < meta.cardinality,
            "bin {bin} out of range for attribute {attribute}"
        );
        assert!(
            row < self.num_rows,
            "row {row} out of range {}",
            self.num_rows
        );
        match self.level {
            Level::PerDataset => {
                self.abs[0].contains_counted(row as u64, (meta.offset + bin as usize) as u64)
            }
            Level::PerAttribute => self.abs[attribute].contains_counted(row as u64, bin as u64),
            Level::PerColumn => {
                self.abs[meta.offset + bin as usize].contains_counted(row as u64, 0)
            }
        }
    }

    /// The (AB, column id) a cell of `attribute`/`bin` addresses — the
    /// row-independent half of [`Self::test_cell_counted`]'s dispatch,
    /// hoisted once per query into the batched kernel's cell plans.
    #[inline]
    pub(crate) fn cell_plan_target(&self, attribute: usize, bin: u32) -> (&ApproximateBitmap, u64) {
        let meta = &self.attributes[attribute];
        debug_assert!(bin < meta.cardinality, "bin {bin} out of range");
        match self.level {
            Level::PerDataset => (&self.abs[0], (meta.offset + bin as usize) as u64),
            Level::PerAttribute => (&self.abs[attribute], bin as u64),
            Level::PerColumn => (&self.abs[meta.offset + bin as usize], 0),
        }
    }

    /// Largest k across the constituent ABs — the constant in the
    /// O(c·k) probe bound.
    pub fn max_k(&self) -> usize {
        self.abs.iter().map(ApproximateBitmap::k).max().unwrap_or(0)
    }

    /// Reassembles an index from stored pieces (deserialization).
    pub(crate) fn from_parts(
        level: Level,
        abs: Vec<ApproximateBitmap>,
        attributes: Vec<AttributeMeta>,
        num_rows: usize,
        hier: Option<HierAb>,
        hybrid: Option<HybridAb>,
    ) -> Self {
        AbIndex {
            level,
            abs,
            attributes,
            num_rows,
            hier,
            hybrid,
        }
    }

    /// The attached pruning pyramid, if any.
    pub fn hier(&self) -> Option<&HierAb> {
        self.hier.as_ref()
    }

    /// Builds and attaches a [`HierAb`] pyramid under `config` if one
    /// is not already present. Building probe-sweeps the base AB (see
    /// [`HierAb::build`]), so the pyramid is deterministic for a given
    /// index regardless of when it is attached — at build time or
    /// rebuilt when an old segment is opened.
    pub fn ensure_hier(&mut self, config: &HierConfig) {
        if self.hier.is_none() {
            let hier = HierAb::build_parallel(
                self,
                config,
                std::thread::available_parallelism().map_or(1, |n| n.get()),
            );
            self.hier = Some(hier);
        }
    }

    /// Attaches (or replaces) a pre-built pyramid.
    pub fn attach_hier(&mut self, hier: HierAb) {
        self.hier = Some(hier);
    }

    /// The attached exact tier, if any.
    pub fn hybrid(&self) -> Option<&HybridAb> {
        self.hybrid.as_ref()
    }

    /// Builds and attaches a [`HybridAb`] exact tier under `config` if
    /// one is not already present. Unlike [`Self::ensure_hier`] this
    /// needs the source `table` back: exact containers hold the truth,
    /// which the lossy AB cannot reproduce. The companion
    /// false-positive containers *are* probe-swept from the base AB,
    /// so the whole tier is deterministic for a given index + table
    /// and a damaged container rebuilds bit-identically.
    ///
    /// # Panics
    ///
    /// Panics if `table` does not match the index's row count or
    /// attribute schema.
    pub fn ensure_hybrid(&mut self, table: &BinnedTable, config: &HybridConfig) {
        if self.hybrid.is_none() {
            let hybrid = HybridAb::build_parallel(
                self,
                table,
                config,
                std::thread::available_parallelism().map_or(1, |n| n.get()),
            );
            self.hybrid = Some(hybrid);
        }
    }

    /// Attaches (or replaces) a pre-built exact tier.
    pub fn attach_hybrid(&mut self, hybrid: HybridAb) {
        self.hybrid = Some(hybrid);
    }

    /// Average expected false-positive rate across the constituent
    /// ABs, weighted by nothing (simple mean) — a quick quality probe.
    pub fn expected_fp_rate(&self) -> f64 {
        if self.abs.is_empty() {
            return 0.0;
        }
        self.abs
            .iter()
            .map(ApproximateBitmap::expected_fp_rate)
            .sum::<f64>()
            / self.abs.len() as f64
    }
}

/// Splits `num_rows` rows into `shards` contiguous, near-equal ranges
/// (the first `num_rows % shards` ranges hold one extra row). The
/// canonical shard layout shared by [`AbIndex::build_row_range`]
/// callers, `ab::io`'s `ABSH` segments, and the `svc` service crate.
///
/// # Panics
///
/// Panics if `shards == 0` or `shards > num_rows`.
pub fn shard_ranges(num_rows: usize, shards: usize) -> Vec<std::ops::Range<usize>> {
    assert!(shards > 0, "need at least one shard");
    assert!(
        shards <= num_rows,
        "cannot split {num_rows} rows into {shards} shards"
    );
    let base = num_rows / shards;
    let extra = num_rows % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0;
    for i in 0..shards {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Builds one attribute-level AB (`s = N` set bits).
fn build_attribute_ab(col: &bitmap::BinnedColumn, config: &AbConfig) -> ApproximateBitmap {
    let params = config.sizing.params(col.len() as u64, config.k);
    let family = adapt_family(&config.family, col.cardinality as u64, Level::PerAttribute);
    let mapper = CellMapper::for_columns(col.cardinality as usize);
    let mut ab = ApproximateBitmap::new(params.n_bits, params.k, family, mapper);
    for (row, &bin) in col.bins.iter().enumerate() {
        ab.insert(row as u64, bin as u64);
    }
    ab
}

/// Builds one attribute's per-column ABs (one per bin, sized by the
/// bin's set-bit count).
fn build_column_abs(col: &bitmap::BinnedColumn, config: &AbConfig) -> Vec<ApproximateBitmap> {
    let counts = col.bin_counts();
    let mut bin_abs: Vec<ApproximateBitmap> = counts
        .iter()
        .map(|&s| {
            let params = config.sizing.params(s.max(1) as u64, config.k);
            ApproximateBitmap::new(
                params.n_bits,
                params.k,
                config.family.clone(),
                CellMapper::RowOnly,
            )
        })
        .collect();
    for (row, &bin) in col.bins.iter().enumerate() {
        bin_abs[bin as usize].insert(row as u64, 0);
    }
    bin_abs
}

/// Instantiates the column-group family with the right group count for
/// the level; other families pass through.
fn adapt_family(family: &HashFamily, num_columns: u64, level: Level) -> HashFamily {
    match family {
        HashFamily::ColumnGroup { .. } => {
            assert!(
                level != Level::PerColumn,
                "column-group hash invalid at per-column level"
            );
            HashFamily::ColumnGroup { num_columns }
        }
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitmap::BinnedColumn;

    fn fig6_table() -> BinnedTable {
        BinnedTable::new(vec![
            BinnedColumn::new("A", vec![0, 1, 2, 0, 1, 1, 0, 2], 3),
            BinnedColumn::new("B", vec![2, 0, 1, 1, 0, 1, 0, 2], 3),
            BinnedColumn::new("C", vec![1, 1, 0, 2, 2, 0, 1, 0], 3),
        ])
    }

    fn check_no_false_negatives(index: &AbIndex, table: &BinnedTable) {
        for (a, col) in table.columns().iter().enumerate() {
            for (row, &bin) in col.bins.iter().enumerate() {
                assert!(
                    index.test_cell(row, a, bin),
                    "false negative at row {row}, attr {a}, bin {bin} ({:?})",
                    index.level()
                );
            }
        }
    }

    #[test]
    fn all_levels_have_no_false_negatives() {
        let t = fig6_table();
        for level in [Level::PerDataset, Level::PerAttribute, Level::PerColumn] {
            let idx = AbIndex::build(&t, &AbConfig::new(level).with_alpha(4));
            check_no_false_negatives(&idx, &t);
        }
    }

    #[test]
    fn ab_counts_per_level() {
        let t = fig6_table();
        let d = AbIndex::build(&t, &AbConfig::new(Level::PerDataset));
        let a = AbIndex::build(&t, &AbConfig::new(Level::PerAttribute));
        let c = AbIndex::build(&t, &AbConfig::new(Level::PerColumn));
        assert_eq!(d.abs().len(), 1);
        assert_eq!(a.abs().len(), 3);
        assert_eq!(c.abs().len(), 9);
    }

    #[test]
    fn large_alpha_gives_exact_answers_on_small_table() {
        // With α = 64 on 8 rows, collisions are (almost) impossible;
        // verify both positives and negatives against the table.
        let t = fig6_table();
        let idx = AbIndex::build(&t, &AbConfig::new(Level::PerAttribute).with_alpha(64));
        let mut wrong = 0;
        for (a, col) in t.columns().iter().enumerate() {
            for (row, &bin) in col.bins.iter().enumerate() {
                for b in 0..col.cardinality {
                    let got = idx.test_cell(row, a, b);
                    let want = b == bin;
                    if got != want {
                        assert!(got && !want, "false negative!");
                        wrong += 1;
                    }
                }
            }
        }
        assert!(wrong <= 2, "too many false positives at α=64: {wrong}");
    }

    #[test]
    fn column_group_family_adapts_to_levels() {
        let t = fig6_table();
        let cfg = AbConfig::new(Level::PerDataset)
            .with_alpha(8)
            .with_family(HashFamily::ColumnGroup { num_columns: 0 });
        let idx = AbIndex::build(&t, &cfg);
        check_no_false_negatives(&idx, &t);
    }

    #[test]
    #[should_panic(expected = "per-dataset")]
    fn column_group_rejected_at_per_column_level() {
        let t = fig6_table();
        let cfg =
            AbConfig::new(Level::PerColumn).with_family(HashFamily::ColumnGroup { num_columns: 0 });
        AbIndex::build(&t, &cfg);
    }

    #[test]
    fn per_column_abs_sized_by_bin_counts() {
        // Attribute with a heavily skewed bin: its AB must be larger.
        let t = BinnedTable::new(vec![BinnedColumn::new(
            "x",
            (0..1000).map(|i| if i < 990 { 0 } else { 1 }).collect(),
            2,
        )]);
        let idx = AbIndex::build(&t, &AbConfig::new(Level::PerColumn).with_alpha(4));
        assert!(idx.abs()[0].n_bits() > idx.abs()[1].n_bits());
    }

    #[test]
    fn size_bytes_sums_abs() {
        let t = fig6_table();
        let idx = AbIndex::build(&t, &AbConfig::new(Level::PerAttribute).with_alpha(4));
        let total: usize = idx.abs().iter().map(|a| a.size_bytes()).sum();
        assert_eq!(idx.size_bytes(), total);
    }

    #[test]
    #[should_panic(expected = "empty table")]
    fn empty_table_rejected() {
        AbIndex::build(&BinnedTable::new(vec![]), &AbConfig::new(Level::PerDataset));
    }

    #[test]
    fn parallel_build_is_bit_identical() {
        let t = BinnedTable::new(vec![
            BinnedColumn::new("A", (0..500u32).map(|i| i % 7).collect(), 7),
            BinnedColumn::new("B", (0..500u32).map(|i| (i * 3) % 5).collect(), 5),
            BinnedColumn::new("C", (0..500u32).map(|i| (i * 11) % 4).collect(), 4),
        ]);
        for level in [Level::PerAttribute, Level::PerColumn] {
            let cfg = AbConfig::new(level).with_alpha(8);
            let seq = AbIndex::build(&t, &cfg);
            for threads in [1usize, 2, 3, 8] {
                let par = AbIndex::build_parallel(&t, &cfg, threads);
                assert_eq!(par.abs().len(), seq.abs().len(), "{level} x{threads}");
                for (a, b) in par.abs().iter().zip(seq.abs()) {
                    assert_eq!(a.bits(), b.bits(), "{level} x{threads}");
                }
            }
        }
    }

    #[test]
    fn parallel_per_dataset_falls_back() {
        let t = fig6_table();
        let cfg = AbConfig::new(Level::PerDataset).with_alpha(8);
        let seq = AbIndex::build(&t, &cfg);
        let par = AbIndex::build_parallel(&t, &cfg, 4);
        assert_eq!(par.abs()[0].bits(), seq.abs()[0].bits());
    }

    #[test]
    #[should_panic(expected = "per-dataset")]
    fn parallel_rejects_column_group_at_per_column() {
        let t = fig6_table();
        let cfg =
            AbConfig::new(Level::PerColumn).with_family(HashFamily::ColumnGroup { num_columns: 0 });
        AbIndex::build_parallel(&t, &cfg, 2);
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn build_flushes_insertion_metrics() {
        let ins = obs::global().counter("ab.build.insertions");
        let builds = obs::global().counter("ab.build.indexes");
        let (i0, b0) = (ins.get(), builds.get());
        let t = fig6_table();
        let idx = AbIndex::build(&t, &AbConfig::new(Level::PerAttribute).with_alpha(4));
        let inserted: u64 = idx.abs().iter().map(|a| a.inserted()).sum();
        assert_eq!(inserted, 24); // 3 attributes × 8 rows
        assert!(ins.get() >= i0 + inserted);
        assert!(builds.get() > b0);
    }

    #[test]
    fn shard_ranges_cover_rows_exactly() {
        for (n, s) in [(8usize, 3usize), (100, 7), (5, 5), (1, 1), (64, 8)] {
            let ranges = shard_ranges(n, s);
            assert_eq!(ranges.len(), s);
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges[s - 1].end, n);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start, "gap between shards");
            }
            let (min, max) = (
                ranges.iter().map(|r| r.len()).min().unwrap(),
                ranges.iter().map(|r| r.len()).max().unwrap(),
            );
            assert!(max - min <= 1, "uneven split {n}/{s}");
        }
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn shard_ranges_rejects_too_many_shards() {
        shard_ranges(3, 4);
    }

    #[test]
    fn build_row_range_matches_slice_build() {
        let t = fig6_table();
        let cfg = AbConfig::new(Level::PerAttribute).with_alpha(8);
        let shard = AbIndex::build_row_range(&t, &cfg, 2..6);
        assert_eq!(shard.num_rows(), 4);
        // Shard-local row r corresponds to global row r + 2: every
        // genuinely set cell must still test positive.
        for (a, col) in t.columns().iter().enumerate() {
            for global in 2..6 {
                assert!(shard.test_cell(global - 2, a, col.bins[global]));
            }
        }
        // And the shard over the full range is the monolithic build.
        let full = AbIndex::build_row_range(&t, &cfg, 0..t.num_rows());
        let mono = AbIndex::build(&t, &cfg);
        for (a, b) in full.abs().iter().zip(mono.abs()) {
            assert_eq!(a.bits(), b.bits());
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn test_cell_validates_bin() {
        let t = fig6_table();
        let idx = AbIndex::build(&t, &AbConfig::new(Level::PerAttribute));
        idx.test_cell(0, 0, 3);
    }
}
