//! User-facing configuration of an AB index.
//!
//! The paper exposes two ways to pick parameters (contribution 3):
//! cap the size and get the best precision, or demand a precision and
//! use the least space. [`Sizing`] adds the direct `α` knob used by the
//! experiments (§5.4 sweeps α over powers of two from 2 to 16).

use crate::analysis::{self, AbParams, Level};
use hashkit::HashFamily;
use serde::{Deserialize, Serialize};

/// How each AB's size (and hash count) is chosen.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Sizing {
    /// Allocate `α` bits per set bit, rounded up to a power of two
    /// (the experimental knob of §5.4/§6.1).
    Alpha(
        /// Space multiplier α.
        u64,
    ),
    /// Cap each AB at `2^m_max` bits and use the `k` maximizing
    /// precision ("setting a maximum size", §3 contribution 3).
    MaxBits(
        /// Maximum AB size exponent `m_max`.
        u32,
    ),
    /// Use the least space achieving at least this precision
    /// ("setting a minimum precision", §3 contribution 3).
    MinPrecision(
        /// Target precision in `(0, 1)`.
        f64,
    ),
}

impl Sizing {
    /// Resolves the `(n, k)` parameters for one AB covering `s` set
    /// bits. `k_override` pins `k` regardless of the optimum (the
    /// Figure 10(b)/11(b)/13 sweeps).
    pub fn params(&self, s: u64, k_override: Option<usize>) -> AbParams {
        let mut p = match *self {
            Sizing::Alpha(alpha) => {
                assert!(alpha > 0, "alpha must be positive");
                let n_bits = analysis::ab_bits(s, alpha);
                let k = analysis::optimal_k(n_bits as f64 / s.max(1) as f64);
                AbParams { n_bits, k }
            }
            Sizing::MaxBits(m_max) => analysis::params_for_max_size(s, m_max),
            Sizing::MinPrecision(p_min) => analysis::params_for_min_precision(s, p_min),
        };
        if let Some(k) = k_override {
            assert!(k > 0, "k must be positive");
            p.k = k;
        }
        p
    }
}

/// Full configuration for building an [`crate::AbIndex`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AbConfig {
    /// Encoding level (paper contribution 4).
    pub level: Level,
    /// Size selection policy.
    pub sizing: Sizing,
    /// Optional fixed number of hash functions; `None` uses the
    /// FP-minimizing `k` for the resolved `α`.
    pub k: Option<usize>,
    /// Hash family (paper §3.2.2 / §5.2).
    pub family: HashFamily,
}

impl AbConfig {
    /// The experimental default: per-attribute ABs with α = 8 and the
    /// independent hash roster.
    pub fn new(level: Level) -> Self {
        AbConfig {
            level,
            sizing: Sizing::Alpha(8),
            k: None,
            family: HashFamily::default_independent(),
        }
    }

    /// Sets the `α` multiplier.
    pub fn with_alpha(mut self, alpha: u64) -> Self {
        self.sizing = Sizing::Alpha(alpha);
        self
    }

    /// Caps each AB at `2^m_max` bits.
    pub fn with_max_bits(mut self, m_max: u32) -> Self {
        self.sizing = Sizing::MaxBits(m_max);
        self
    }

    /// Demands a minimum precision.
    pub fn with_min_precision(mut self, p: f64) -> Self {
        self.sizing = Sizing::MinPrecision(p);
        self
    }

    /// Pins the number of hash functions.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = Some(k);
        self
    }

    /// Selects the hash family.
    pub fn with_family(mut self, family: HashFamily) -> Self {
        self.family = family;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_sizing_rounds_up() {
        let p = Sizing::Alpha(8).params(100_000, None);
        assert_eq!(p.n_bits, 1 << 20); // 800,000 → 2^20
        assert_eq!(p.k, analysis::optimal_k((1u64 << 20) as f64 / 100_000.0));
    }

    #[test]
    fn k_override_wins() {
        let p = Sizing::Alpha(8).params(1000, Some(3));
        assert_eq!(p.k, 3);
    }

    #[test]
    fn max_bits_sizing() {
        let p = Sizing::MaxBits(16).params(5000, None);
        assert_eq!(p.n_bits, 1 << 16);
    }

    #[test]
    fn min_precision_sizing_hits_target() {
        let p = Sizing::MinPrecision(0.9).params(10_000, None);
        assert!(p.expected_precision(10_000) >= 0.9 - 1e-9);
    }

    #[test]
    fn builder_chain() {
        let c = AbConfig::new(Level::PerColumn)
            .with_alpha(16)
            .with_k(5)
            .with_family(HashFamily::DoubleHashing);
        assert_eq!(c.level, Level::PerColumn);
        assert_eq!(c.sizing, Sizing::Alpha(16));
        assert_eq!(c.k, Some(5));
        assert_eq!(c.family, HashFamily::DoubleHashing);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_alpha_rejected() {
        Sizing::Alpha(0).params(10, None);
    }
}
