//! Exact second-step pruning of false positives.
//!
//! "For applications requiring exact answers, false positives can be
//! pruned in a second step in query execution. Thus, the recall is
//! always 100% and the precision depends on the amount of resources we
//! are willing to use" (paper §1). This module implements that second
//! step against the exact [`BitmapIndex`]: each candidate row from the
//! AB is verified by probing the relevant bin bitmaps at that row only
//! — O(candidates · Σ range widths), not a full index scan.

use bitmap::{BitmapIndex, Encoding, RectQuery};

/// Verifies AB candidates against the exact index, returning only the
/// true matches (in input order).
///
/// # Panics
///
/// Panics if the index is not equality-encoded (per-row probing needs
/// one bitmap per bin) or a candidate row is out of range.
pub fn prune_false_positives(
    index: &BitmapIndex,
    query: &RectQuery,
    candidates: &[usize],
) -> Vec<usize> {
    for a in index.attributes() {
        assert_eq!(
            a.encoding,
            Encoding::Equality,
            "pruning probes equality-encoded bins"
        );
    }
    let kept: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&row| row_matches(index, query, row))
        .collect();
    // Candidates the exact check discards are, by definition, the AB's
    // false positives for this query.
    obs::counter!("ab.query.false_positives").add((candidates.len() - kept.len()) as u64);
    kept
}

/// Exact check of one row against a rectangular query.
pub fn row_matches(index: &BitmapIndex, query: &RectQuery, row: usize) -> bool {
    assert!(row < index.num_rows(), "row {row} out of range");
    if row < query.row_lo || row > query.row_hi {
        return false;
    }
    query.ranges.iter().all(|r| {
        let attr = index.attribute(r.attribute);
        (r.lo..=r.hi).any(|bin| attr.bitmaps[bin as usize].get(row))
    })
}

/// The full exact pipeline the paper sketches: AB retrieval (fast,
/// approximate) followed by pruning (exact). Returns the exact answer
/// with 100% precision and recall.
pub fn execute_exact(
    ab_index: &crate::AbIndex,
    exact_index: &BitmapIndex,
    query: &RectQuery,
) -> Vec<usize> {
    let candidates = ab_index.execute_rect(query);
    prune_false_positives(exact_index, query, &candidates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AbConfig, AbIndex, Level};
    use bitmap::{AttrRange, BinnedColumn, BinnedTable};

    fn setup() -> (BinnedTable, BitmapIndex, AbIndex) {
        let n = 1500usize;
        let mk = |seed: u64| -> Vec<u32> {
            (0..n)
                .map(|i| (hashkit::splitmix64(seed.wrapping_mul(77) ^ i as u64) % 8) as u32)
                .collect()
        };
        let t = BinnedTable::new(vec![
            BinnedColumn::new("A", mk(5), 8),
            BinnedColumn::new("B", mk(9), 8),
        ]);
        let exact = BitmapIndex::build(&t, Encoding::Equality);
        // Deliberately small α so false positives actually occur.
        let ab = AbIndex::build(&t, &AbConfig::new(Level::PerAttribute).with_alpha(2));
        (t, exact, ab)
    }

    #[test]
    fn pruning_restores_exact_answer() {
        let (_, exact, ab) = setup();
        let q = RectQuery::new(
            vec![AttrRange::new(0, 1, 3), AttrRange::new(1, 4, 6)],
            0,
            1499,
        );
        let approx = ab.execute_rect(&q);
        let want = exact.evaluate_rows(&q);
        assert!(approx.len() >= want.len(), "AB must be a superset");
        let pruned = prune_false_positives(&exact, &q, &approx);
        assert_eq!(pruned, want);
    }

    #[test]
    fn execute_exact_end_to_end() {
        let (_, exact, ab) = setup();
        let q = RectQuery::new(vec![AttrRange::new(0, 0, 0)], 100, 900);
        assert_eq!(execute_exact(&ab, &exact, &q), exact.evaluate_rows(&q));
    }

    #[test]
    fn row_matches_respects_row_range() {
        let (_, exact, _) = setup();
        let q = RectQuery::new(vec![], 10, 20);
        assert!(!row_matches(&exact, &q, 9));
        assert!(row_matches(&exact, &q, 10));
        assert!(row_matches(&exact, &q, 20));
        assert!(!row_matches(&exact, &q, 21));
    }

    #[test]
    fn pruning_keeps_input_order() {
        let (_, exact, _) = setup();
        let q = RectQuery::new(vec![], 0, 1499);
        let pruned = prune_false_positives(&exact, &q, &[30, 10, 20]);
        assert_eq!(pruned, vec![30, 10, 20]);
    }

    #[test]
    #[should_panic(expected = "equality")]
    fn pruning_rejects_range_encoding() {
        let t = BinnedTable::new(vec![BinnedColumn::new("x", vec![0, 1], 2)]);
        let idx = BitmapIndex::build(&t, Encoding::Range);
        prune_false_positives(&idx, &RectQuery::new(vec![], 0, 1), &[0]);
    }
}
